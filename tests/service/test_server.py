"""The job server end to end: protocol, scheduling, cache, restart.

Every test drives a real :class:`ReproService` — event loop in a
background thread, real unix socket, real harness execution — via the
blocking :class:`ServiceClient`, because the service's contracts
(byte-identical artifacts, resume, cache hits) only mean something
measured through the real stack.  Workloads are inline-source campaigns
at tiny fault counts so the whole module stays CI-fast.
"""

import asyncio
import hashlib
import json
import os
import socket
import threading
import time

import pytest

from repro.exec.runner import CampaignRunner
from repro.exec.spec import CampaignSpec
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import read_journal
from repro.service.server import ReproService, ServiceConfig

SOURCE = """
main:   li $t0, 6
        li $s0, 0
loop:   addu $s0, $s0, $t0
        addi $t0, $t0, -1
        bgtz $t0, loop
        move $a0, $s0
        li $v0, 1
        syscall
        li $v0, 10
        syscall
"""

SPEC_JSON = {"source": SOURCE, "name": "server-test", "iht_size": 4}
SEED = 7
CHUNK = 4
FAULTS = 16  # 4 shards at CHUNK=4


def campaign_job(**overrides):
    job = {
        "kind": "campaign",
        "spec": dict(SPEC_JSON),
        "faults": FAULTS,
        "seed": SEED,
        "chunk_size": CHUNK,
    }
    job.update(overrides)
    return job


class ServerHandle:
    """One in-process server on its own event-loop thread."""

    def __init__(self, state_dir, **config_overrides):
        options = dict(
            state_dir=str(state_dir), max_jobs=2, step_shards=1, poll=0.01
        )
        options.update(config_overrides)
        self.config = ServiceConfig(**options)
        self.service = ReproService(self.config)
        self.thread = threading.Thread(
            target=lambda: asyncio.run(self.service.main()), daemon=True
        )

    def start(self):
        self.thread.start()
        deadline = time.monotonic() + 10
        while not os.path.exists(self.config.resolved_socket()):
            if time.monotonic() > deadline:  # pragma: no cover
                raise RuntimeError("server socket never appeared")
            time.sleep(0.01)
        return self

    def client(self, name="tenant"):
        return ServiceClient(
            socket_path=self.config.resolved_socket(), client=name
        )

    def stop(self):
        if not self.thread.is_alive():
            return
        try:
            self.client().shutdown()
        except ServiceError:
            pass
        self.thread.join(timeout=30)
        assert not self.thread.is_alive(), "server failed to drain"


@pytest.fixture
def server(tmp_path):
    handle = ServerHandle(tmp_path / "svc").start()
    yield handle
    handle.stop()


@pytest.fixture(scope="module")
def serial_reference(tmp_path_factory):
    """The ground truth: the same campaign run serially, no service."""
    out = tmp_path_factory.mktemp("serial") / "reference.jsonl"
    spec = CampaignSpec.from_json(SPEC_JSON)
    runner = CampaignRunner(spec, workers=1, chunk_size=CHUNK)
    faults = runner.campaign.random_single_bit(FAULTS, seed=SEED)
    runner.run(faults, seed=SEED, out=out)
    return out.read_bytes()


def digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


class TestProtocol:
    def test_ping(self, server):
        response = server.client().ping()
        assert response["pong"] is True
        assert response["protocol"] == 1

    def test_unknown_op(self, server):
        with pytest.raises(ServiceError, match="unknown op"):
            server.client().request("dance")

    def test_malformed_line_answered_not_dropped(self, server):
        with socket.socket(socket.AF_UNIX, socket.SOCK_STREAM) as sock:
            sock.settimeout(5)
            sock.connect(server.config.resolved_socket())
            sock.sendall(b"this is not json\n")
            with sock.makefile("rb") as handle:
                reply = json.loads(handle.readline())
                assert reply["ok"] is False
                # The connection survives for the next request.
                sock.sendall(b'{"op": "ping"}\n')
                assert json.loads(handle.readline())["ok"] is True

    def test_invalid_job_rejected_at_submit(self, server):
        with pytest.raises(ServiceError, match="unknown job kind"):
            server.client().submit({"kind": "espresso"})

    def test_status_of_unknown_job(self, server):
        with pytest.raises(ServiceError, match="unknown job"):
            server.client().status("j99999")


class TestExecution:
    def test_campaign_byte_identical_to_serial(
        self, server, serial_reference
    ):
        client = server.client("alice")
        job = client.submit(campaign_job())
        final = client.wait(job["id"], timeout=120)
        assert final["state"] == "done"
        assert final["records_done"] == FAULTS
        assert final["total"] == FAULTS
        served = open(final["out"], "rb").read()
        assert digest(served) == digest(serial_reference), (
            "service execution must not change a single committed byte"
        )

    def test_second_tenant_hits_the_cache(self, server, serial_reference):
        alice, bob = server.client("alice"), server.client("bob")
        first = alice.submit(campaign_job())
        second = bob.submit(campaign_job())
        final_first = alice.wait(first["id"], timeout=120)
        final_second = bob.wait(second["id"], timeout=120)
        assert final_first["state"] == "done"
        assert final_second["state"] == "done"
        stats = alice.stats()
        assert stats["cache"]["misses"] == 1
        assert stats["cache"]["hits"] >= 1
        assert (
            open(final_first["out"], "rb").read()
            == open(final_second["out"], "rb").read()
            == serial_reference
        )

    def test_dse_job(self, server):
        client = server.client()
        job = client.submit(
            {
                "kind": "dse",
                "space": {
                    "hash_names": ["xor"],
                    "iht_sizes": [4, 8],
                    "policy_names": ["lru_half"],
                    "miss_penalties": [100],
                    "workloads": ["sha"],
                    "scale": "tiny",
                    "adversary": "none",
                },
                "chunk_size": 1,
            }
        )
        final = client.wait(job["id"], timeout=180)
        assert final["state"] == "done"
        assert final["records_done"] == 2
        records = [
            json.loads(line)
            for line in open(final["out"], encoding="utf-8")
        ]
        assert any(entry.get("type") == "point" for entry in records)

    def test_failed_job_reports_error(self, server):
        client = server.client()
        # Valid grammar, impossible workload input: campaign spec with a
        # source that assembles but a bogus workload is caught at submit;
        # to reach the *runtime* failure path we use an unassemblable
        # source (validation does not assemble).
        job = client.submit(
            campaign_job(spec={"source": "bogus $$$", "name": "broken"})
        )
        final = client.wait(job["id"], timeout=60)
        assert final["state"] == "failed"
        assert final["error"]

    def test_cancel_queued_job(self, tmp_path):
        handle = ServerHandle(tmp_path / "svc", max_jobs=1).start()
        try:
            client = handle.client()
            blocker = client.submit(campaign_job())
            victim = client.submit(campaign_job(seed=SEED + 1))
            response = client.cancel(victim["id"])
            assert response["job"]["state"] == "cancelled"
            final = client.wait(blocker["id"], timeout=120)
            assert final["state"] == "done"
            # Cancelling a terminal job is a no-op, not an error.
            again = client.cancel(victim["id"])
            assert again.get("already_terminal") is True
        finally:
            handle.stop()

    def test_cancel_running_job_stops_at_step_boundary(self, server):
        client = server.client()
        job = client.submit(campaign_job(faults=96, chunk_size=1))
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            status = client.status(job["id"])
            if status["state"] == "running" and status["records_done"] > 0:
                break
            time.sleep(0.02)
        response = client.cancel(job["id"])
        final = client.wait(job["id"], timeout=60)
        assert final["state"] == "cancelled"
        assert final["records_done"] < 96


class TestWatch:
    def test_watch_streams_events_and_records(self, server):
        client = server.client()
        job = client.submit(campaign_job())
        events, records, end = [], [], None
        for line in client.watch(job["id"]):
            if line.get("stream") == "event":
                events.append(line["data"])
            elif line.get("stream") == "record":
                records.append(line["data"])
            else:
                end = line
        assert end["job"]["state"] == "done"
        sequences = [
            event["seq"] for event in events if isinstance(event.get("seq"), int)
        ]
        assert sequences == sorted(sequences)
        assert len(sequences) == len(set(sequences)), "duplicate seq seen"
        assert any(event["type"] == "run-started" for event in events)
        assert (
            sum(1 for entry in records if entry.get("type") == "record")
            == FAULTS
        )

    def test_watch_unknown_job(self, server):
        client = server.client()
        with pytest.raises(ServiceError, match="unknown job"):
            list(client.watch("j99999"))


class TestScheduling:
    def test_per_client_cap_lets_other_tenant_through(self, tmp_path):
        handle = ServerHandle(
            tmp_path / "svc", max_jobs=2, per_client=1
        ).start()
        try:
            flood, idle = handle.client("flood"), handle.client("idle")
            first = flood.submit(campaign_job())
            second = flood.submit(campaign_job(seed=SEED + 1))
            third = idle.submit(campaign_job(seed=SEED + 2), priority=-1)
            for job in (first, second, third):
                final = flood.wait(job["id"], timeout=180)
                assert final["state"] == "done"
            # With the flooder capped at one concurrent job, the second
            # execution slot must have gone to the idle tenant despite
            # its lower priority and later submission.
            started = {
                status["id"]: status["started_t"]
                for status in flood.jobs()
            }
            assert started[third["id"]] < started[second["id"]]
        finally:
            handle.stop()


class TestRestart:
    def test_graceful_shutdown_resumes_on_restart(
        self, tmp_path, serial_reference
    ):
        state_dir = tmp_path / "svc"
        handle = ServerHandle(state_dir, max_jobs=1).start()
        client = handle.client()
        job = client.submit(campaign_job(faults=48, chunk_size=1))
        # Let at least one shard commit, then shut down mid-job.
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            status = client.status(job["id"])
            if status["records_done"] > 0:
                break
            time.sleep(0.01)
        handle.stop()
        entries = read_journal(handle.config.journal_path())
        last_state = [
            entry
            for entry in entries
            if entry["type"] == "job-state" and entry["id"] == job["id"]
        ][-1]
        assert last_state["state"] == "running", (
            "drain must leave an interrupted job journaled as running"
        )
        # A new server over the same state dir finishes the job.
        second = ServerHandle(state_dir, max_jobs=1).start()
        try:
            client = second.client()
            final = client.wait(job["id"], timeout=120)
            assert final["state"] == "done"
            # 48 faults at chunk_size=1: same content, one resume seam.
            spec = CampaignSpec.from_json(SPEC_JSON)
            runner = CampaignRunner(spec, workers=1, chunk_size=1)
            faults = runner.campaign.random_single_bit(48, seed=SEED)
            reference = tmp_path / "reference-chunk1.jsonl"
            runner.run(faults, seed=SEED, out=reference)
            assert (
                open(final["out"], "rb").read() == reference.read_bytes()
            ), "kill/restart must resume byte-identical"
        finally:
            second.stop()

    def test_terminal_jobs_survive_restart(self, tmp_path):
        state_dir = tmp_path / "svc"
        handle = ServerHandle(state_dir).start()
        client = handle.client()
        job = client.submit(campaign_job())
        client.wait(job["id"], timeout=120)
        handle.stop()
        second = ServerHandle(state_dir).start()
        try:
            statuses = {item["id"]: item for item in second.client().jobs()}
            assert statuses[job["id"]]["state"] == "done"
            assert statuses[job["id"]]["records_done"] == FAULTS
        finally:
            second.stop()
