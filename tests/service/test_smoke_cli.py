"""The `make service-smoke` body: the service survives kill -9.

Everything here runs through real subprocesses — ``repro serve`` and
``repro submit`` exactly as a user would type them — because the claim
under test is about *processes*, not objects: a server killed with
SIGKILL mid-job must, on restart over the same state dir, resume every
interrupted job from its journal and finish with results files
byte-identical to an uninterrupted serial CLI run.  The checkpoint
cache claim rides along: the second tenant's identical submission must
lease the first tenant's published store, never rebuild it.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.service.client import ServiceClient, ServiceError

SOURCE = """
main:   li $t0, 6
        li $s0, 0
loop:   addu $s0, $s0, $t0
        addi $t0, $t0, -1
        bgtz $t0, loop
        move $a0, $s0
        li $v0, 1
        syscall
        li $v0, 10
        syscall
"""

SEED = 7
FAULTS = 96
CHUNK = 1  # 96 one-fault shards: a wide window to kill inside

REPRO = (sys.executable, "-m", "repro")


def cli_env():
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), "..", "..", "src")
    env["PYTHONPATH"] = os.path.abspath(src)
    return env


def run_cli(*argv, timeout=300):
    return subprocess.run(
        [*REPRO, *argv],
        capture_output=True,
        text=True,
        env=cli_env(),
        timeout=timeout,
    )


def campaign_flags(target):
    return (
        target,
        "--scale", "tiny",
        "--backend", "golden",
        "--faults", str(FAULTS),
        "--chunk", str(CHUNK),
        "--seed", str(SEED),
        "--iht", "4",
    )


def wait_for_server(socket_path, timeout=15.0):
    """A live server, not just a socket file: a stale path from a killed
    predecessor exists on disk but refuses connections."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        try:
            client = ServiceClient(socket_path=socket_path, client="probe")
            client.ping()
            return
        except (ServiceError, OSError):
            time.sleep(0.05)
    raise RuntimeError("server never answered ping")  # pragma: no cover


@pytest.fixture
def serve(tmp_path):
    """Start ``repro serve`` subprocesses; always reap them at teardown."""
    state_dir = tmp_path / "state"
    servers = []

    def start():
        proc = subprocess.Popen(
            [
                *REPRO, "serve",
                "--state-dir", str(state_dir),
                "--max-jobs", "2",
                "--step-shards", "1",
            ],
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            env=cli_env(),
        )
        servers.append(proc)
        wait_for_server(str(state_dir / "service.sock"))
        return proc

    yield start, state_dir
    for proc in servers:
        if proc.poll() is None:  # pragma: no cover - teardown safety net
            proc.kill()
            proc.wait(timeout=10)


def test_kill_dash_nine_then_resume_byte_identical(serve, tmp_path):
    start, state_dir = serve
    target = tmp_path / "loop.s"
    target.write_text(SOURCE)

    # Ground truth: the same campaign, serial, no service in sight.
    reference = tmp_path / "reference.jsonl"
    completed = run_cli(
        "campaign", *campaign_flags(str(target)), "--out", str(reference)
    )
    assert completed.returncode == 0, completed.stderr

    first = start()
    submitted = []
    for tenant in ("alice", "bob"):
        result = run_cli(
            "submit", "campaign", *campaign_flags(str(target)),
            "--state-dir", str(state_dir),
            "--client", tenant,
        )
        assert result.returncode == 0, result.stderr
        submitted.append(result.stdout.split()[0])
    assert submitted[0] != submitted[1]

    # Let both jobs make progress and the cache hit land, then kill -9.
    client = ServiceClient(
        socket_path=str(state_dir / "service.sock"), client="smoke"
    )
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        stats = client.stats()
        states = {job_id: client.status(job_id) for job_id in submitted}
        if stats["cache"]["hits"] >= 1 and all(
            status["records_done"] >= 2 for status in states.values()
        ):
            break
        time.sleep(0.01)
    else:  # pragma: no cover
        pytest.fail("jobs never reached the kill window")
    assert stats["cache"]["misses"] == 1, (
        "the second tenant's identical spec must lease, not rebuild"
    )
    first.send_signal(signal.SIGKILL)
    first.wait(timeout=10)

    # A new server over the same state dir picks the journal up.
    start()
    client = ServiceClient(
        socket_path=str(state_dir / "service.sock"), client="smoke"
    )
    finals = [client.wait(job_id, timeout=180) for job_id in submitted]
    for final in finals:
        assert final["state"] == "done", final
        assert final["records_done"] == FAULTS
        assert (
            open(final["out"], "rb").read() == reference.read_bytes()
        ), "kill -9 / restart / resume must not change a single byte"

    shutdown = run_cli("jobs", "--state-dir", str(state_dir), "--shutdown")
    assert shutdown.returncode == 0, shutdown.stderr
