"""CheckpointCache: content addressing, LRU, dedupe, neutrality."""

import threading

import pytest

from repro.exec.runner import Workspace
from repro.exec.spec import CampaignSpec
from repro.faults.campaign import FaultCampaign
from repro.service.cache import CheckpointCache

SOURCE_A = """
main:   li $t0, 5
        li $s0, 0
loop:   addu $s0, $s0, $t0
        addi $t0, $t0, -1
        bgtz $t0, loop
        li $v0, 10
        syscall
"""

SOURCE_B = """
main:   li $t1, 3
        sll $t2, $t1, 2
        li $v0, 10
        syscall
"""


def spec(source=SOURCE_A, name="cache-a", **kwargs):
    kwargs.setdefault("iht_size", 4)
    return CampaignSpec(source=source, name=name, **kwargs)


class TestLease:
    def test_miss_then_hit(self):
        cache = CheckpointCache(capacity=4)
        first = cache.lease(spec())
        second = cache.lease(spec())
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 1
        assert stats["entries"] == 1
        # Hits are private copies, never the same mutable object.
        assert first is not second
        cache.clear()

    def test_key_is_the_fingerprint(self):
        cache = CheckpointCache(capacity=4)
        cache.lease(spec())
        assert spec().fingerprint() in cache
        # A different monitor config is a different store.
        cache.lease(spec(hash_name="add"))
        assert cache.stats()["misses"] == 2
        cache.clear()

    def test_leased_workspace_classifies_like_fresh(self):
        cache = CheckpointCache(capacity=4)
        cache.lease(spec())  # miss: builds and publishes
        leased = cache.lease(spec())  # hit: shared-memory attach
        fresh = Workspace.build(spec())
        faults = FaultCampaign.from_context(fresh.context).random_single_bit(
            6, seed=9
        )
        for fault in faults:
            warm = leased.run_fault(fault)
            cold = fresh.run_fault(fault)
            assert warm.outcome == cold.outcome
            assert warm.detail == cold.detail
        cache.clear()

    def test_stats_shape(self):
        cache = CheckpointCache(capacity=4)
        cache.lease(spec())
        stats = cache.stats()
        assert stats["capacity"] == 4
        assert stats["bytes"] > 0
        (store,) = stats["stores"]
        assert store["key"] == spec().fingerprint()
        assert store["label"] == "cache-a"
        assert store["build_seconds"] > 0
        cache.clear()


class TestEviction:
    def test_lru_evicts_oldest(self):
        cache = CheckpointCache(capacity=2)
        cache.lease(spec(name="one"))
        cache.lease(spec(SOURCE_B, name="two"))
        cache.lease(spec(name="three", iht_size=8))  # evicts "one"
        stats = cache.stats()
        assert stats["evictions"] == 1
        assert stats["entries"] == 2
        assert spec(name="one").fingerprint() not in cache
        # Re-leasing the evicted spec is a fresh miss.
        cache.lease(spec(name="one"))
        assert cache.stats()["misses"] == 4
        cache.clear()

    def test_hit_refreshes_lru_position(self):
        cache = CheckpointCache(capacity=2)
        cache.lease(spec(name="one"))
        cache.lease(spec(SOURCE_B, name="two"))
        cache.lease(spec(name="one"))  # touch: "two" is now oldest
        cache.lease(spec(name="three", iht_size=8))
        assert spec(name="one").fingerprint() in cache
        assert spec(SOURCE_B, name="two").fingerprint() not in cache
        cache.clear()

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            CheckpointCache(capacity=0)


class TestConcurrency:
    def test_concurrent_same_key_builds_once(self, monkeypatch):
        cache = CheckpointCache(capacity=4)
        builds = []
        real_build = Workspace.build.__func__

        def counting_build(cls, build_spec, context=None):
            builds.append(build_spec.fingerprint())
            return real_build(cls, build_spec, context)

        monkeypatch.setattr(
            Workspace, "build", classmethod(counting_build)
        )
        workspaces = [None] * 4
        errors = []

        def lease(slot):
            try:
                workspaces[slot] = cache.lease(spec())
            except Exception as error:  # pragma: no cover - diagnostic
                errors.append(error)

        threads = [
            threading.Thread(target=lease, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(builds) == 1, "same-key misses must deduplicate"
        assert all(ws is not None for ws in workspaces)
        stats = cache.stats()
        assert stats["misses"] == 1
        assert stats["hits"] == 3
        cache.clear()

    def test_clear_releases_everything(self):
        cache = CheckpointCache(capacity=4)
        cache.lease(spec())
        cache.lease(spec(SOURCE_B, name="two"))
        assert len(cache) == 2
        cache.clear()
        assert len(cache) == 0
        assert cache.stats()["entries"] == 0
