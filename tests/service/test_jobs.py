"""Job validation, labels, the journal, and journal replay."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.service.jobs import (
    Journal,
    ServiceJob,
    job_label,
    read_journal,
    replay_journal,
    validate_job,
)

SOURCE = """
main:   li $v0, 10
        syscall
"""


class TestValidateJob:
    def test_campaign_fills_defaults(self):
        payload = validate_job(
            {"kind": "campaign", "spec": {"workload": "sha", "scale": "tiny"}}
        )
        assert payload["kind"] == "campaign"
        assert payload["spec"]["workload"] == "sha"
        assert payload["faults"] == 64
        assert payload["seed"] == 42
        assert payload["workers"] == 1
        assert payload["chunk_size"] == 16

    def test_campaign_inline_source(self):
        payload = validate_job(
            {"kind": "campaign", "spec": {"source": SOURCE, "name": "inline"}}
        )
        assert payload["spec"]["source"] == SOURCE

    def test_campaign_preset_checked(self):
        with pytest.raises(ConfigurationError, match="unknown campaign preset"):
            validate_job(
                {
                    "kind": "campaign",
                    "spec": {"workload": "sha"},
                    "preset": "no-such-preset",
                }
            )

    def test_campaign_needs_spec(self):
        with pytest.raises(ConfigurationError, match="'spec'"):
            validate_job({"kind": "campaign"})

    def test_bad_spec_field_rejected(self):
        with pytest.raises(ConfigurationError, match="bad campaign spec"):
            validate_job(
                {"kind": "campaign", "spec": {"workload": "sha", "nope": 1}}
            )

    def test_dse_preset(self):
        payload = validate_job({"kind": "dse", "preset": "smoke"})
        assert payload["kind"] == "dse"
        assert payload["space"]["workloads"]
        assert payload["backend"] == "golden"

    def test_dse_inline_space(self):
        payload = validate_job(
            {
                "kind": "dse",
                "space": {
                    "hash_names": ["xor"],
                    "iht_sizes": [4],
                    "policy_names": ["lru_half"],
                    "miss_penalties": [100],
                    "workloads": ["sha"],
                    "scale": "tiny",
                },
            }
        )
        assert payload["space"]["iht_sizes"] == [4]

    def test_dse_needs_space_or_preset(self):
        with pytest.raises(ConfigurationError, match="'space'"):
            validate_job({"kind": "dse"})

    def test_attack_defaults(self):
        payload = validate_job({"kind": "attack", "workload": "sha"})
        assert payload["scale"] == "tiny"
        assert payload["per_class"] == 4
        assert payload["classes"] == ["all"]

    def test_attack_unknown_workload(self):
        with pytest.raises(ConfigurationError, match="workload"):
            validate_job({"kind": "attack", "workload": "doom"})

    def test_coverage(self):
        payload = validate_job({"kind": "coverage", "corpus": "pairs-tiny"})
        assert payload["corpus"] == "pairs-tiny"

    def test_coverage_unknown_corpus(self):
        with pytest.raises(ConfigurationError):
            validate_job({"kind": "coverage", "corpus": "everything"})

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError, match="unknown job kind"):
            validate_job({"kind": "bake-bread"})

    def test_non_dict_payload(self):
        with pytest.raises(ConfigurationError, match="JSON object"):
            validate_job("campaign")

    def test_workers_capped(self):
        with pytest.raises(ConfigurationError, match="workers"):
            validate_job(
                {"kind": "coverage", "corpus": "pairs-tiny", "workers": 999}
            )

    def test_bool_is_not_an_integer(self):
        with pytest.raises(ConfigurationError, match="seed"):
            validate_job(
                {"kind": "coverage", "corpus": "pairs-tiny", "seed": True}
            )


class TestJobLabel:
    def test_labels(self):
        assert (
            job_label(
                validate_job(
                    {"kind": "campaign", "spec": {"workload": "sha", "scale": "tiny"}}
                )
            )
            == "sha-tiny"
        )
        assert job_label(
            validate_job({"kind": "attack", "workload": "susan"})
        ) == "attack:susan-tiny"
        assert job_label(
            validate_job({"kind": "coverage", "corpus": "pairs-tiny"})
        ) == "coverage:pairs-tiny"
        assert "dse:" in job_label(validate_job({"kind": "dse", "preset": "smoke"}))


def submitted_entry(job_id, seq, state_entries=(), out="/nonexistent/x.jsonl"):
    job = ServiceJob(
        id=job_id,
        client="t",
        kind="campaign",
        seq=seq,
        priority=0,
        payload={"kind": "campaign"},
        out=out,
    )
    return {"type": "job-submitted", "t": 1.0, "job": job.descriptor()}


class TestJournal:
    def test_append_and_read(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        journal = Journal(path)
        journal.append("service-started", pid=1)
        journal.append("job-state", id="j00000", state="running")
        journal.close()
        entries = read_journal(path)
        assert [entry["type"] for entry in entries] == [
            "service-started",
            "job-state",
        ]
        assert all("t" in entry for entry in entries)

    def test_torn_tail_terminated_on_reopen(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        Journal(path).append("service-started", pid=1)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "job-state", "id": "torn')  # kill -9 here
        journal = Journal(path)
        journal.append("service-started", pid=2)
        journal.close()
        entries = read_journal(path)
        # The torn line is skipped; both clean entries survive.
        assert [entry["pid"] for entry in entries] == [1, 2]

    def test_replay_empty(self, tmp_path):
        jobs, next_seq = replay_journal(tmp_path / "missing.jsonl")
        assert jobs == {}
        assert next_seq == 0


class TestReplay:
    def write_journal(self, path, entries):
        with open(path, "w", encoding="utf-8") as handle:
            for entry in entries:
                handle.write(json.dumps(entry) + "\n")

    def test_terminal_jobs_stay_terminal(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        self.write_journal(
            path,
            [
                submitted_entry("j00000", 0),
                {
                    "type": "job-state",
                    "id": "j00000",
                    "state": "done",
                    "records_done": 8,
                    "total": 8,
                },
            ],
        )
        jobs, next_seq = replay_journal(path)
        assert jobs["j00000"].state == "done"
        assert jobs["j00000"].records_done == 8
        assert next_seq == 1

    def test_running_requeues_with_resume(self, tmp_path):
        out = tmp_path / "j00000.jsonl"
        out.write_text('{"type": "header"}\n')
        path = tmp_path / "journal.jsonl"
        self.write_journal(
            path,
            [
                submitted_entry("j00000", 0, out=str(out)),
                {"type": "job-state", "id": "j00000", "state": "running"},
            ],
        )
        jobs, _ = replay_journal(path)
        job = jobs["j00000"]
        assert job.state == "queued"
        assert job.resume is True

    def test_queued_without_results_restarts_fresh(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        self.write_journal(path, [submitted_entry("j00000", 0)])
        jobs, _ = replay_journal(path)
        assert jobs["j00000"].state == "queued"
        assert jobs["j00000"].resume is False

    def test_failed_job_not_requeued(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        self.write_journal(
            path,
            [
                submitted_entry("j00000", 0),
                {"type": "job-state", "id": "j00000", "state": "running"},
                {
                    "type": "job-state",
                    "id": "j00000",
                    "state": "failed",
                    "error": "boom",
                },
            ],
        )
        jobs, _ = replay_journal(path)
        assert jobs["j00000"].state == "failed"
        assert jobs["j00000"].error == "boom"

    def test_next_seq_clears_existing_ids(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        self.write_journal(
            path,
            [submitted_entry("j00000", 0), submitted_entry("j00003", 3)],
        )
        _jobs, next_seq = replay_journal(path)
        assert next_seq == 4
