"""FairQueue: per-client caps, priorities, fairness, FIFO."""

import pytest

from repro.service.jobs import ServiceJob
from repro.service.scheduler import FairQueue


def job(job_id, client="a", seq=None, priority=0):
    return ServiceJob(
        id=job_id,
        client=client,
        kind="campaign",
        seq=seq if seq is not None else int(job_id[1:]),
        priority=priority,
        payload={},
        out=f"/tmp/{job_id}.jsonl",
    )


class TestFairQueue:
    def test_fifo_among_equals(self):
        queue = FairQueue()
        queue.push(job("j1"))
        queue.push(job("j2"))
        assert queue.next([]).id == "j1"
        assert queue.next([]).id == "j2"
        assert queue.next([]) is None

    def test_priority_beats_fifo(self):
        queue = FairQueue()
        queue.push(job("j1", priority=0))
        queue.push(job("j2", priority=5))
        assert queue.next([]).id == "j2"

    def test_per_client_cap_blocks_flooder(self):
        queue = FairQueue(per_client=1)
        queue.push(job("j2", client="flood"))
        queue.push(job("j3", client="flood", priority=99))
        running = [job("j1", client="flood")]
        # Both queued jobs belong to a client already at its cap.
        assert queue.next(running) is None
        # A slot frees up: highest priority of the client's jobs runs.
        assert queue.next([]).id == "j3"

    def test_cap_prefers_other_tenant(self):
        queue = FairQueue(per_client=1)
        queue.push(job("j2", client="flood", priority=99))
        queue.push(job("j3", client="idle"))
        running = [job("j1", client="flood")]
        assert queue.next(running).id == "j3"

    def test_fairness_tiebreak_prefers_less_loaded(self):
        queue = FairQueue(per_client=4)
        queue.push(job("j3", client="busy"))
        queue.push(job("j4", client="light"))
        running = [job("j1", client="busy"), job("j2", client="busy")]
        # Equal priority: the client with fewer running jobs wins even
        # though the busy client submitted first.
        assert queue.next(running).id == "j4"

    def test_remove_and_membership(self):
        queue = FairQueue()
        queue.push(job("j1"))
        queue.push(job("j2"))
        assert "j1" in queue
        assert len(queue) == 2
        assert queue.remove("j1").id == "j1"
        assert queue.remove("j1") is None
        assert "j1" not in queue
        assert [item.id for item in queue.jobs()] == ["j2"]

    def test_jobs_listed_in_submission_order(self):
        queue = FairQueue()
        queue.push(job("j2", seq=2))
        queue.push(job("j1", seq=1))
        assert [item.id for item in queue.jobs()] == ["j1", "j2"]

    def test_rejects_silly_cap(self):
        with pytest.raises(ValueError):
            FairQueue(per_client=0)
