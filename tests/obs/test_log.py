"""The shared structured logger: levels, rendering, the stderr contract."""

import io

import pytest

from repro.obs import core
from repro.obs.log import LEVELS, StructuredLog


def make_log(level="info"):
    stream = io.StringIO()
    return StructuredLog(level=level, stream=stream), stream


class TestLevels:
    def test_threshold_drops_lower_levels(self):
        log, stream = make_log("warning")
        log.debug("d")
        log.info("i")
        log.warning("w")
        log.error("e")
        lines = stream.getvalue().splitlines()
        assert lines == ["; w", "; e"]

    def test_set_level(self):
        log, stream = make_log("info")
        log.set_level("debug")
        log.debug("now visible")
        assert stream.getvalue() == "; now visible\n"
        assert log.level == "debug"

    def test_unknown_level_rejected(self):
        log, _ = make_log()
        with pytest.raises(ValueError, match="unknown log level"):
            log.set_level("chatty")

    def test_enabled_for(self):
        log, _ = make_log("warning")
        assert not log.enabled_for("info")
        assert log.enabled_for("error")

    def test_order(self):
        assert LEVELS["debug"] < LEVELS["info"] < LEVELS["warning"] < LEVELS["error"]


class TestRendering:
    def test_prefix_and_fields_in_call_order(self):
        log, stream = make_log()
        log.info("campaign complete", faults=200, workers=4)
        assert stream.getvalue() == "; campaign complete faults=200 workers=4\n"

    def test_values_with_spaces_are_quoted(self):
        log, stream = make_log()
        log.info("saved", path="a b.txt", empty="")
        assert stream.getvalue() == "; saved path='a b.txt' empty=''\n"


class TestTelemetryCoupling:
    def test_emitted_levels_are_counted(self):
        log, _ = make_log("info")
        with core.scoped(True):
            core.local().clear()
            log.info("hello")
            log.debug("dropped")  # below threshold: not counted either
            data = core.local().drain()
        assert data["counters"] == {"log.info": 1}
