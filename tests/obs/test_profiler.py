"""The phase profiler is a pure observer: identical RunResult, restored sim."""

import pytest

from repro.asm.assembler import assemble
from repro.obs.profiler import PHASES, PhaseProfiler, _MonitorProxy
from repro.osmodel.loader import load_process
from repro.pipeline.cpu import PipelineCPU
from repro.pipeline.funcsim import FuncSim

SOURCE = """
main:   li $t0, 5
        li $s0, 0
loop:   addu $s0, $s0, $t0
        addi $t0, $t0, -1
        bgtz $t0, loop
        move $a0, $s0
        li $v0, 1
        syscall
        li $v0, 10
        syscall
"""

ENGINES = (FuncSim, PipelineCPU)


def build(engine, monitored=True):
    program = assemble(SOURCE, name="profiled")
    monitor = load_process(program, iht_size=4).monitor if monitored else None
    return engine(program, monitor=monitor)


def result_key(result):
    return (
        result.exit_code,
        result.instructions,
        result.cycles,
        result.console,
    )


@pytest.mark.parametrize("engine", ENGINES)
class TestObserverOnly:
    def test_profiled_run_result_identical(self, engine):
        plain = build(engine).run()
        sim = build(engine)
        profiler = PhaseProfiler().attach(sim)
        profiled = sim.run()
        assert result_key(profiled) == result_key(plain)
        assert (
            profiled.monitor_stats.lookups == plain.monitor_stats.lookups
        )
        assert profiled.monitor_stats.misses == plain.monitor_stats.misses

    def test_monitor_proxy_forwards_attributes(self, engine):
        sim = build(engine)
        monitor = sim.monitor
        PhaseProfiler().attach(sim)
        result = sim.run()
        # The proxy forwards .stats (and everything else) to the wrapped
        # monitor, so the reported stats are the real monitor's.
        assert result.monitor_stats == monitor.stats
        assert sim.monitor.iht is monitor.iht

    def test_phases_observed(self, engine):
        sim = build(engine)
        profiler = PhaseProfiler().attach(sim)
        sim.run()
        report = profiler.report()
        assert set(report) == set(PHASES)
        for phase in ("fetch", "decode", "execute", "monitor"):
            assert report[phase]["calls"] > 0, phase
        total_share = sum(entry["share"] for entry in report.values())
        assert total_share == pytest.approx(1.0)

    def test_detach_restores_instance(self, engine):
        sim = build(engine)
        profiler = PhaseProfiler().attach(sim)
        assert isinstance(sim.monitor, _MonitorProxy)
        profiler.detach()
        assert not isinstance(sim.monitor, _MonitorProxy)
        # No shadowing instance attributes left: methods resolve on the class.
        shadowed = [name for name in vars(sim) if name.startswith("_fetch")]
        assert shadowed == []

    def test_unmonitored_run_profiles_without_monitor_bucket(self, engine):
        sim = build(engine, monitored=False)
        profiler = PhaseProfiler().attach(sim)
        sim.run()
        assert profiler.report()["monitor"]["calls"] == 0


class TestAttachment:
    def test_double_attach_rejected(self):
        sim = build(FuncSim)
        profiler = PhaseProfiler().attach(sim)
        with pytest.raises(RuntimeError, match="already attached"):
            profiler.attach(build(FuncSim))

    def test_unprofilable_object_rejected(self):
        with pytest.raises(TypeError, match="cannot profile"):
            PhaseProfiler.kind_of(object())

    def test_render_is_a_table(self):
        sim = build(FuncSim)
        profiler = PhaseProfiler().attach(sim)
        sim.run()
        text = profiler.render()
        assert "phase" in text
        for phase in PHASES:
            assert phase in text
