"""Cross-run regression diffs: ``repro stats diff A B [--gate pct]``.

Pins the comparator's contract: a self-diff is all-zero (the
``make trace-smoke`` invariant), regression percentages are signed
*toward worse* in each metric's own direction, informational rows
(span shares, unclassified bench leaves) are reported but never gated,
and the CLI turns ``--gate`` into exit code 1 exactly when the worst
regression meets it.
"""

import json
import math

import pytest

from repro.errors import ConfigurationError
from repro.obs.diff import (
    HIGHER,
    INFO,
    LOWER,
    DiffRow,
    diff_artifacts,
    load_artifact,
    render_diff,
)


def metrics_payload(
    wall=2.0, rate=500.0, hits=80, misses=20, run_seconds=2.0,
    execute_seconds=1.5,
):
    return {
        "type": "metrics",
        "wall_seconds": wall,
        "telemetry": {
            "counters": {
                "measure_cache.hit": hits,
                "measure_cache.miss": misses,
            },
            "gauges": {"run.records_per_second": rate},
            "histograms": {},
            "spans": {
                "run": {"count": 1, "seconds": run_seconds},
                "run/execute": {"count": 1, "seconds": execute_seconds},
            },
        },
    }


def bench_payload(per_second=100.0, wall=2.0):
    return {
        "benchmark": "tests/test_perf.py",
        "results": {
            "test_campaign": {
                "faults_per_second": per_second,
                "wall_seconds": wall,
                "label": "not a number",
            },
        },
    }


def write(path, payload):
    path.write_text(json.dumps(payload))
    return path


class TestDiffRow:
    def test_signed_toward_worse(self):
        # Lower-is-better: growing is a regression.
        assert DiffRow("w", LOWER, 2.0, 2.5).regression_pct == 25.0
        assert DiffRow("w", LOWER, 2.0, 1.5).regression_pct == -25.0
        # Higher-is-better: shrinking is a regression.
        assert DiffRow("r", HIGHER, 100.0, 80.0).regression_pct == 20.0
        assert DiffRow("r", HIGHER, 100.0, 120.0).regression_pct == -20.0

    def test_zero_and_missing_sides(self):
        assert DiffRow("x", LOWER, 0.0, 0.0).regression_pct == 0.0
        assert DiffRow("x", LOWER, 0.0, 1.0).regression_pct == math.inf
        assert DiffRow("x", HIGHER, 0.0, 1.0).regression_pct == -math.inf
        assert DiffRow("x", LOWER, None, 1.0).regression_pct is None
        assert DiffRow("x", INFO, 1.0, 9.0).regression_pct is None

    def test_no_negative_zero(self):
        assert str(DiffRow("r", HIGHER, 5.0, 5.0).regression_pct) == "0.0"


class TestMetricsDiff:
    def test_self_diff_is_all_zero(self, tmp_path):
        a = write(tmp_path / "a.metrics.json", metrics_payload())
        report = diff_artifacts(a, a)
        assert report.kind == "metrics"
        assert report.worst == 0.0
        assert report.gated(0.001) == []
        names = {row.name for row in report.rows}
        assert {"wall_seconds", "records_per_second",
                "measure_cache_hit_rate"} <= names

    def test_regression_is_gated(self, tmp_path):
        a = write(tmp_path / "a.metrics.json", metrics_payload(wall=2.0))
        b = write(tmp_path / "b.metrics.json", metrics_payload(wall=2.6))
        report = diff_artifacts(a, b)
        assert report.worst == pytest.approx(30.0)
        gated = report.gated(10.0)
        assert [row.name for row in gated] == ["wall_seconds"]

    def test_improvement_never_trips_the_gate(self, tmp_path):
        a = write(tmp_path / "a.metrics.json", metrics_payload())
        b = write(
            tmp_path / "b.metrics.json",
            metrics_payload(wall=1.0, rate=900.0, hits=95, misses=5),
        )
        assert diff_artifacts(a, b).worst == 0.0

    def test_throughput_drop_is_a_regression(self, tmp_path):
        a = write(tmp_path / "a.metrics.json", metrics_payload(rate=500.0))
        b = write(tmp_path / "b.metrics.json", metrics_payload(rate=400.0))
        report = diff_artifacts(a, b)
        by_name = {row.name: row for row in report.rows}
        assert by_name["records_per_second"].regression_pct == (
            pytest.approx(20.0)
        )

    def test_span_shares_are_info_only(self, tmp_path):
        a = write(tmp_path / "a.metrics.json", metrics_payload())
        b = write(
            tmp_path / "b.metrics.json",
            metrics_payload(execute_seconds=0.1),  # share shifts wildly
        )
        report = diff_artifacts(a, b)
        shares = [
            row for row in report.rows if row.name.startswith("span_share:")
        ]
        assert shares
        assert all(row.regression_pct is None for row in shares)
        assert report.worst == 0.0


class TestBenchDiff:
    def test_senses_from_flattened_leaf_names(self, tmp_path):
        a = write(tmp_path / "a.json", bench_payload())
        b = write(
            tmp_path / "b.json", bench_payload(per_second=80.0, wall=2.2)
        )
        report = diff_artifacts(a, b)
        assert report.kind == "bench"
        by_name = {row.name: row for row in report.rows}
        assert by_name[
            "test_campaign.faults_per_second"
        ].regression_pct == pytest.approx(20.0)
        assert by_name[
            "test_campaign.wall_seconds"
        ].regression_pct == pytest.approx(10.0)
        # Non-numeric leaves never appear; no crash on them either.
        assert "test_campaign.label" not in by_name

    def test_renamed_copy_still_sniffs_as_bench(self, tmp_path):
        # PREV_BENCH_* stashes diff fine: family is content, not filename.
        a = write(tmp_path / "PREV_BENCH_perf.json", bench_payload())
        assert load_artifact(a)[0] == "bench"


class TestLoadErrors:
    def test_mixed_families_refuse(self, tmp_path):
        a = write(tmp_path / "a.metrics.json", metrics_payload())
        b = write(tmp_path / "b.json", bench_payload())
        with pytest.raises(ConfigurationError):
            diff_artifacts(a, b)

    def test_unrecognized_payload_refuses(self, tmp_path):
        stray = write(tmp_path / "stray.json", {"hello": "world"})
        with pytest.raises(ConfigurationError):
            load_artifact(stray)


class TestRender:
    def test_table_and_verdict(self, tmp_path):
        a = write(tmp_path / "a.metrics.json", metrics_payload(wall=2.0))
        b = write(tmp_path / "b.metrics.json", metrics_payload(wall=2.6))
        text = render_diff(diff_artifacts(a, b), gate=10.0)
        assert "wall_seconds" in text
        assert "+30.0%" in text
        assert "!! >= 10% gate" in text
        assert "worst regression: +30.0% (gate 10%: FAIL)" in text

    def test_self_diff_verdict_ok(self, tmp_path):
        a = write(tmp_path / "a.metrics.json", metrics_payload())
        text = render_diff(diff_artifacts(a, a), gate=5.0)
        assert "worst regression: +0.0% (gate 5%: ok)" in text


class TestCli:
    def test_gate_exit_codes(self, tmp_path, capsys):
        from repro.cli import main

        a = write(tmp_path / "a.metrics.json", metrics_payload(wall=2.0))
        b = write(tmp_path / "b.metrics.json", metrics_payload(wall=2.6))
        assert main(["stats", "diff", str(a), str(a), "--gate", "5"]) == 0
        assert main(["stats", "diff", str(a), str(b), "--gate", "5"]) == 1
        assert main(["stats", "diff", str(a), str(b)]) == 0  # no gate: report
        assert "worst regression" in capsys.readouterr().out

    def test_wrong_operand_count_fails(self, tmp_path):
        from repro.cli import main

        a = write(tmp_path / "a.metrics.json", metrics_payload())
        assert main(["stats", "diff", str(a)]) == 1
