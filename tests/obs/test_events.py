"""The live event log: crash-tolerant appends, tailing, kill→resume.

Three layers under test:

* :class:`~repro.obs.events.EventWriter` / :func:`read_events` — the
  writer/reader halves of the torn-tail contract (a killed run leaves a
  valid prefix; a resuming writer terminates the torn line, records a
  ``torn-marker``, and keeps ``seq``/``t`` monotonic across sessions);
* the harness emission seam — every ``--out`` run with telemetry on
  streams a schema-valid ``*.events.jsonl`` whose counts reconcile with
  the shard plan, including across kill→resume with a torn tail;
* :func:`follow_events` / :func:`~repro.obs.stats.follow_path` — tailing
  buffers incomplete lines (never crashes on truncation), survives a
  stale mid-log ``run-finished``, and times out loudly.
"""

import os
import threading

import pytest

from repro.exec import CampaignRunner, CampaignSpec
from repro.exec.pool import shutdown_pools
from repro.obs import core as obs
from repro.obs.events import (
    EVENT_TYPES,
    EventWriter,
    events_path,
    follow_events,
    read_events,
    resolve_events_path,
)
from repro.obs.schema import validate_events
from repro.obs.stats import FollowView, follow_path

SOURCE = """
main:   li $t0, 5
        li $s0, 0
loop:   addu $s0, $s0, $t0
        addi $t0, $t0, -1
        bgtz $t0, loop
        move $a0, $s0
        li $v0, 1
        syscall
        li $v0, 10
        syscall
"""

SEED = 7
FAULT_COUNT = 20
CHUNK = 5  # 4 shards


def run_campaign(out, *, workers=1, stop_after_shards=None, resume=False):
    with obs.scoped(True):
        runner = CampaignRunner(
            CampaignSpec(
                source=SOURCE, name="events-test", iht_size=4, backend="golden"
            ),
            workers=workers,
            chunk_size=CHUNK,
        )
        faults = runner.campaign.random_single_bit(FAULT_COUNT, seed=SEED)
        return runner.run(
            faults, seed=SEED, out=out,
            stop_after_shards=stop_after_shards, resume=resume,
        )


@pytest.fixture(autouse=True)
def fresh_pools():
    shutdown_pools()
    yield
    shutdown_pools()


class TestPaths:
    def test_events_path_replaces_extension(self):
        assert events_path("runs/camp.jsonl") == "runs/camp.events.jsonl"

    def test_resolve_accepts_all_three_siblings(self):
        expected = "runs/camp.events.jsonl"
        assert resolve_events_path("runs/camp.jsonl") == expected
        assert resolve_events_path("runs/camp.metrics.json") == expected
        assert resolve_events_path(expected) == expected


class TestEventWriter:
    def test_emit_stamps_monotonic_seq_and_t(self, tmp_path):
        log = tmp_path / "x.events.jsonl"
        with EventWriter(log, fresh=True) as writer:
            first = writer.emit("run-started", kind="campaign", total=4)
            second = writer.emit("shard-committed", shard=0)
        assert first["type"] == "run-started"
        assert first["kind"] == "campaign"  # own `kind` field survives
        assert second["seq"] == first["seq"] + 1
        assert second["t"] >= first["t"]
        events = read_events(log)
        assert [event["type"] for event in events] == [
            "run-started", "shard-committed",
        ]
        assert validate_events(events) == []

    def test_fresh_truncates_append_restores_highwater(self, tmp_path):
        log = tmp_path / "x.events.jsonl"
        with EventWriter(log, fresh=True) as writer:
            for _ in range(3):
                writer.emit("shard-committed")
            last_t = writer.emit("run-finished")["t"]
        with EventWriter(log) as writer:  # append: seq/t continue
            event = writer.emit("run-started")
        assert event["seq"] == 4
        assert event["t"] >= last_t
        assert validate_events(read_events(log)) == []
        with EventWriter(log, fresh=True) as writer:  # fresh: start over
            assert writer.emit("run-started")["seq"] == 0
        assert len(read_events(log)) == 1

    def test_torn_tail_terminated_and_marked(self, tmp_path):
        log = tmp_path / "x.events.jsonl"
        with EventWriter(log, fresh=True) as writer:
            writer.emit("run-started", total=9)
            writer.emit("shard-committed", shard=0)
        with open(log, "ab") as handle:  # a kill mid-append
            handle.write(b'{"type":"shard-committed","seq":2,"t":')
        assert [e["type"] for e in read_events(log)] == [
            "run-started", "shard-committed",
        ]  # reader: valid prefix only
        with EventWriter(log) as writer:  # writer: terminate + mark
            writer.emit("resume", shards_done=1)
        events = read_events(log)
        assert [event["type"] for event in events] == [
            "run-started", "shard-committed", "torn-marker", "resume",
        ]
        assert validate_events(events) == []

    def test_reader_skips_blank_and_foreign_lines(self, tmp_path):
        log = tmp_path / "x.events.jsonl"
        log.write_bytes(
            b'{"type":"run-started","seq":0,"t":1.0}\n'
            b"\n"
            b"not json at all\n"
            b"[1,2,3]\n"
            b'{"no_type_key":true}\n'
            b'{"type":"run-finished","seq":1,"t":2.0}\n'
        )
        assert [event["type"] for event in read_events(log)] == [
            "run-started", "run-finished",
        ]

    def test_schema_rejects_unknown_type(self):
        errors = validate_events(
            [{"type": "bogus-event", "seq": 0, "t": 1.0}]
        )
        assert errors
        assert all(kind != "bogus-event" for kind in EVENT_TYPES)


class TestHarnessEmission:
    def test_serial_run_emits_reconciling_log(self, tmp_path):
        out = tmp_path / "camp.jsonl"
        run_campaign(out)
        events = read_events(events_path(out))
        assert validate_events(events) == []
        kinds = [event["type"] for event in events]
        assert kinds[0] == "run-started"
        assert kinds[-1] == "run-finished"
        shards = [e for e in events if e["type"] == "shard-committed"]
        assert len(shards) == events[0]["shards_total"] == 4
        assert shards[-1]["records_done"] == FAULT_COUNT
        heartbeats = [e for e in events if e["type"] == "worker-heartbeat"]
        assert len(heartbeats) == len(shards)
        finished = events[-1]
        assert finished["complete"] is True
        assert finished["records_done"] == finished["total"] == FAULT_COUNT
        assert finished["throughput"] > 0

    def test_parallel_run_covers_every_shard(self, tmp_path):
        out = tmp_path / "camp.jsonl"
        run_campaign(out, workers=2)
        events = read_events(events_path(out))
        assert validate_events(events) == []
        shards = [e for e in events if e["type"] == "shard-committed"]
        assert sorted(e["shard"] for e in shards) == [0, 1, 2, 3]
        assert events[-1]["type"] == "run-finished"
        assert events[-1]["complete"] is True

    def test_partial_session_finishes_incomplete(self, tmp_path):
        out = tmp_path / "camp.jsonl"
        result = run_campaign(out, stop_after_shards=2)
        assert not result.complete
        events = read_events(events_path(out))
        assert events[-1]["type"] == "run-finished"
        assert events[-1]["complete"] is False
        assert events[-1]["records_done"] == 2 * CHUNK

    def test_resume_appends_to_the_same_log(self, tmp_path):
        out = tmp_path / "camp.jsonl"
        run_campaign(out, stop_after_shards=2)
        run_campaign(out, resume=True)
        events = read_events(events_path(out))
        assert validate_events(events) == []  # seq/t monotonic across both
        starts = [e for e in events if e["type"] == "run-started"]
        assert [e.get("resumed") for e in starts] == [False, True]
        resumes = [e for e in events if e["type"] == "resume"]
        assert len(resumes) == 1
        assert resumes[0]["shards_done"] == 2
        assert events[-1]["complete"] is True
        assert events[-1]["records_done"] == FAULT_COUNT

    def test_kill_with_torn_tail_then_resume(self, tmp_path):
        """The satellite: a kill mid-append leaves a torn final line; the
        reader tolerates it, the resumed session appends after it, and
        the follow view never crashes on the result."""
        out = tmp_path / "camp.jsonl"
        run_campaign(out, stop_after_shards=2)
        log = events_path(out)
        with open(log, "rb") as handle:
            content = handle.read()
        with open(log, "wb") as handle:  # tear the final line in half
            handle.write(content[:-20])
        torn_prefix = read_events(log)
        assert validate_events(torn_prefix) == []  # reader tolerates
        run_campaign(out, resume=True)
        events = read_events(log)
        assert validate_events(events) == []
        assert "torn-marker" in [event["type"] for event in events]
        assert events[-1]["type"] == "run-finished"
        assert events[-1]["complete"] is True
        # The follow view renders both sessions without crashing.
        lines: list[str] = []
        assert follow_path(out, write=lines.append) == 0
        assert "finished" in "\n".join(lines)


class TestFollowEvents:
    def test_backlog_then_live_appends(self, tmp_path):
        log = tmp_path / "x.events.jsonl"
        with EventWriter(log, fresh=True) as writer:
            writer.emit("run-started", total=2)

            def trailer():
                writer.emit("shard-committed", shard=0)
                writer.emit("run-finished", complete=True)

            thread = threading.Thread(target=trailer)
            thread.start()
            try:
                kinds = [
                    event["type"]
                    for event in follow_events(log, poll=0.01, timeout=10)
                ]
            finally:
                thread.join()
        assert kinds == ["run-started", "shard-committed", "run-finished"]

    def test_torn_tail_stays_buffered(self, tmp_path):
        log = tmp_path / "x.events.jsonl"
        log.write_bytes(
            b'{"type":"run-started","seq":0,"t":1.0}\n'
            b'{"type":"run-finis'  # torn mid-append — never yielded
        )
        seen = []
        with pytest.raises(TimeoutError):
            for event in follow_events(log, poll=0.01, timeout=0.3):
                seen.append(event["type"])
        assert seen == ["run-started"]

    def test_stale_run_finished_does_not_stop_the_tail(self, tmp_path):
        log = tmp_path / "x.events.jsonl"
        with EventWriter(log, fresh=True) as writer:
            writer.emit("run-started", total=4)
            writer.emit("run-finished", complete=False)
            writer.emit("run-started", resumed=True)  # resumed session
        seen = []
        with pytest.raises(TimeoutError):
            for event in follow_events(log, poll=0.01, timeout=0.3):
                seen.append(event["type"])
        assert seen == ["run-started", "run-finished", "run-started"]

    def test_missing_log_times_out(self, tmp_path):
        with pytest.raises(TimeoutError):
            list(
                follow_events(
                    tmp_path / "never.events.jsonl", poll=0.01, timeout=0.2
                )
            )


class TestFollowPath:
    def test_finished_run_renders_summary_only(self, tmp_path):
        out = tmp_path / "camp.jsonl"
        run_campaign(out, workers=2)
        lines: list[str] = []
        assert follow_path(out, write=lines.append) == 0
        text = "\n".join(lines)
        assert "finished" in text
        assert f"{FAULT_COUNT}/{FAULT_COUNT}" in text
        assert "workers (shards, records, rec/s):" in text

    def test_timeout_exits_one_with_partial_summary(self, tmp_path):
        out = tmp_path / "camp.jsonl"
        run_campaign(out, stop_after_shards=2)
        lines: list[str] = []
        status = follow_path(out, interval=0.01, timeout=0.3,
                             write=lines.append)
        # The partial session's run-finished is the newest event, so the
        # backlog path summarizes it as stopped rather than tailing.
        assert status == 0
        assert "stopped (partial)" in "\n".join(lines)

    def test_timeout_on_in_flight_log(self, tmp_path):
        log = tmp_path / "x.events.jsonl"
        with EventWriter(log, fresh=True) as writer:
            writer.emit("run-started", kind="campaign", total=10,
                        shards_total=2, workers=1, seed=1,
                        records_done=0, resumed=False)
            writer.emit("shard-committed", shard=0, worker=123, records=5,
                        records_done=5, total=10, throughput=50.0,
                        eta_seconds=0.1, cache_hits=3, cache_misses=2)
        lines: list[str] = []
        status = follow_path(log, interval=0.01, timeout=0.3,
                             write=lines.append)
        assert status == 1
        text = "\n".join(lines)
        assert "timed out" in text
        assert "in flight" in text


class TestFollowView:
    def test_event_lines(self):
        view = FollowView()
        started = view.handle({
            "type": "run-started", "kind": "campaign", "total": 10,
            "shards_total": 2, "workers": 1, "seed": 9,
            "records_done": 0, "resumed": True,
        })
        assert "campaign: 10 items in 2 shards" in started
        assert "[resumed]" in started
        assert "torn" in view.handle({"type": "torn-marker"})
        shard = view.handle({
            "type": "shard-committed", "shard": 0, "worker": 42,
            "records": 5, "records_done": 5, "total": 10,
            "throughput": 123.4, "eta_seconds": 90.0,
            "cache_hits": 9, "cache_misses": 1,
        })
        assert "5/10" in shard
        assert "123.4 rec/s" in shard
        assert "eta 1.5m" in shard
        assert "cache 90%" in shard

    def test_heartbeats_feed_the_worker_table(self):
        view = FollowView()
        beat = {
            "type": "worker-heartbeat", "worker": 42, "shards": 2,
            "records": 10, "seconds": 0.5, "throughput": 20.0,
        }
        assert view.handle(beat) is None  # quiet unless verbose
        assert FollowView(verbose=True).handle(beat) is not None
        assert view.workers[42]["records"] == 10
        assert "worker" in view.summary()
