"""Concurrent event-log readers: no torn lines, no duplicate seq.

The event log's contract is single-writer, *any* number of readers:
:class:`EventWriter` appends one flushed line per event and
:func:`follow_events` consumes only complete lines.  These tests pin the
multi-reader half — two clients tailing the same ``*.events.jsonl``
during an active run (the `repro top` + `repro jobs --watch` scenario)
must each see the exact committed event sequence: every ``seq`` once, in
order, with no torn or interleaved reads — both on a synthetic
high-frequency writer and on a real harness campaign.
"""

import threading

import pytest

from repro.exec.runner import CampaignRunner
from repro.exec.spec import CampaignSpec
from repro.obs.events import EventWriter, events_path, follow_events

SOURCE = """
main:   li $t0, 4
        li $s0, 0
loop:   addu $s0, $s0, $t0
        addi $t0, $t0, -1
        bgtz $t0, loop
        li $v0, 10
        syscall
"""


def follow_all(path, results, slot, timeout=60.0):
    try:
        results[slot] = list(follow_events(path, poll=0.001, timeout=timeout))
    except Exception as error:  # pragma: no cover - diagnostic
        results[slot] = error


def assert_clean_sequence(events):
    """Every line parsed whole, every seq exactly once, in order."""
    assert events, "reader saw no events"
    sequences = [event["seq"] for event in events]
    assert sequences == sorted(sequences), "seq went backwards"
    assert len(sequences) == len(set(sequences)), "duplicate seq observed"
    times = [event["t"] for event in events]
    assert times == sorted(times), "t went backwards"
    # A torn read would have failed JSON parsing inside follow_events
    # (and been skipped, breaking the seq completeness checked below).


class TestSyntheticWriter:
    def test_two_followers_see_identical_streams(self, tmp_path):
        log_path = tmp_path / "run.events.jsonl"
        results = [None, None]
        readers = [
            threading.Thread(target=follow_all, args=(log_path, results, slot))
            for slot in range(2)
        ]
        for reader in readers:
            reader.start()
        total = 500
        with EventWriter(log_path) as writer:
            for index in range(total):
                # Long payloads make torn reads likely if any reader ever
                # consumed a partially flushed line.
                writer.emit(
                    "shard-committed",
                    shard=index,
                    records_done=index + 1,
                    padding="x" * 200,
                )
            writer.emit("run-finished", records_done=total, complete=True)
        for reader in readers:
            reader.join(timeout=60)
            assert not reader.is_alive()
        for events in results:
            assert not isinstance(events, Exception), events
            assert_clean_sequence(events)
            assert len(events) == total + 1, "reader missed committed lines"
        assert results[0] == results[1], (
            "two followers of one log must see the same stream"
        )

    def test_reader_joining_mid_stream_sees_consistent_suffix(self, tmp_path):
        log_path = tmp_path / "run.events.jsonl"
        with EventWriter(log_path) as writer:
            for index in range(100):
                writer.emit("shard-committed", shard=index)
        results = [None]
        reader = threading.Thread(
            target=follow_all, args=(log_path, results, 0)
        )
        reader.start()
        with EventWriter(log_path) as writer:  # resuming session appends
            for index in range(100, 200):
                writer.emit("shard-committed", shard=index)
            writer.emit("run-finished", complete=True)
        reader.join(timeout=60)
        assert not reader.is_alive()
        assert_clean_sequence(results[0])
        assert len(results[0]) == 201

    def test_torn_tail_never_reaches_followers(self, tmp_path):
        log_path = tmp_path / "run.events.jsonl"
        with EventWriter(log_path) as writer:
            writer.emit("run-started", kind="campaign")
        with open(log_path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "shard-committed", "seq": 99')  # kill -9
        results = [None, None]
        readers = [
            threading.Thread(target=follow_all, args=(log_path, results, slot))
            for slot in range(2)
        ]
        for reader in readers:
            reader.start()
        with EventWriter(log_path) as writer:  # terminates the torn tail
            writer.emit("run-finished", complete=True)
        for reader in readers:
            reader.join(timeout=60)
        for events in results:
            assert_clean_sequence(events)
            assert all(event["seq"] != 99 for event in events), (
                "a torn line must never surface as an event"
            )
            assert {event["type"] for event in events} >= {
                "run-started",
                "run-finished",
            }


class TestRealRun:
    def test_two_followers_of_a_live_campaign(self, tmp_path):
        out = tmp_path / "campaign.jsonl"
        spec = CampaignSpec(source=SOURCE, name="follow-test", iht_size=4)
        runner = CampaignRunner(spec, workers=1, chunk_size=2)
        faults = runner.campaign.random_single_bit(24, seed=3)
        results = [None, None]
        readers = [
            threading.Thread(
                target=follow_all, args=(events_path(out), results, slot)
            )
            for slot in range(2)
        ]
        for reader in readers:
            reader.start()
        result = runner.run(faults, seed=3, out=out)
        assert result.complete
        for reader in readers:
            reader.join(timeout=60)
            assert not reader.is_alive()
        for events in results:
            assert not isinstance(events, Exception), events
            assert_clean_sequence(events)
            committed = [
                event for event in events if event["type"] == "shard-committed"
            ]
            assert len(committed) == 12  # 24 faults / chunk 2
            assert events[-1]["type"] == "run-finished"
        assert results[0] == results[1]
