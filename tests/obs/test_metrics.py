"""The per-run metrics artifact: emission, schema, coverage, rendering."""

import json

import pytest

from repro.exec import CampaignRunner, CampaignSpec
from repro.exec.pool import shutdown_pools
from repro.obs import core as obs
from repro.obs.metrics import (
    build_payload,
    environment,
    load_metrics,
    metrics_path,
    per_worker,
    span_coverage,
)
from repro.obs.schema import validate_metrics
from repro.obs.stats import find_metrics, render_metrics

SOURCE = """
main:   li $t0, 6
        li $s0, 0
loop:   addu $s0, $s0, $t0
        addi $t0, $t0, -1
        bgtz $t0, loop
        move $a0, $s0
        li $v0, 1
        syscall
        li $v0, 10
        syscall
"""

SEED = 42
FAULT_COUNT = 24
CHUNK = 6  # 4 shards


@pytest.fixture(scope="module")
def campaign_run(tmp_path_factory):
    """One telemetered campaign; returns (result, metrics payload, path)."""
    shutdown_pools()
    out = tmp_path_factory.mktemp("metrics") / "campaign.jsonl"
    with obs.scoped(True):
        runner = CampaignRunner(
            CampaignSpec(
                source=SOURCE, name="metrics-test", iht_size=4,
                backend="golden",
            ),
            chunk_size=CHUNK,
        )
        faults = runner.campaign.random_single_bit(FAULT_COUNT, seed=SEED)
        result = runner.run(faults, seed=SEED, out=out)
    path = metrics_path(out)
    return result, load_metrics(path), path


class TestHelpers:
    def test_metrics_path_mapping(self):
        assert metrics_path("runs/c.jsonl") == "runs/c.metrics.json"
        assert metrics_path("noext") == "noext.metrics.json"

    def test_environment_keys(self):
        env = environment()
        for key in ("host", "platform", "python", "effective_cores",
                    "cpu_count", "created"):
            assert key in env
        assert env["effective_cores"] >= 1

    def test_span_coverage(self):
        payload = {"telemetry": {"spans": {
            "run": {"count": 1, "seconds": 10.0},
            "run/execute": {"count": 1, "seconds": 9.0},
            "run/resume": {"count": 1, "seconds": 0.6},
            "run/execute/inner": {"count": 1, "seconds": 9.0},  # not direct
        }}}
        assert span_coverage(payload) == pytest.approx(0.96)
        assert span_coverage({"telemetry": {"spans": {}}}) == 0.0

    def test_per_worker_rollup(self):
        shards = [
            {"shard": 0, "worker": 1, "seconds": 1.0, "records": 4},
            {"shard": 1, "worker": 2, "seconds": 2.0, "records": 4},
            {"shard": 2, "worker": 1, "seconds": 3.0, "records": 4},
        ]
        rollup = per_worker(shards)
        assert rollup[1] == {"shards": 2, "seconds": 4.0, "records": 8}
        assert rollup[2]["records"] == 4

    def test_build_payload_wall_from_run_span(self):
        telem = obs.Telemetry()
        telem.spans["run"] = {"count": 1, "seconds": 2.5}
        payload = build_payload({"kind": "x"}, telem, [])
        assert payload["wall_seconds"] == 2.5
        assert payload["type"] == "metrics"


class TestCampaignMetrics:
    def test_emitted_and_schema_valid(self, campaign_run):
        _result, payload, _path = campaign_run
        assert validate_metrics(payload) == []

    def test_manifest_provenance(self, campaign_run):
        _result, payload, _path = campaign_run
        manifest = payload["manifest"]
        assert manifest["kind"] == "campaign results"
        assert manifest["backend"] == "golden"
        assert manifest["total"] == FAULT_COUNT
        assert manifest["seed"] == SEED
        assert manifest["chunk_size"] == CHUNK
        assert manifest["workers"] == 1
        assert manifest["fingerprint"]
        assert manifest["out"] == "campaign.jsonl"

    def test_coverage_gate(self, campaign_run):
        """≥95% of the measured run wall time lands in named spans."""
        _result, payload, _path = campaign_run
        assert span_coverage(payload) >= 0.95

    def test_per_shard_and_per_worker_accounting(self, campaign_run):
        result, payload, _path = campaign_run
        shards = payload["shards"]
        assert len(shards) == FAULT_COUNT // CHUNK
        assert sum(entry["records"] for entry in shards) == len(result.records)
        workers = per_worker(shards)
        assert len(workers) == 1  # serial run: every shard in-process
        assert sum(entry["records"] for entry in workers.values()) == FAULT_COUNT

    def test_execution_counters_present(self, campaign_run):
        _result, payload, _path = campaign_run
        counters = payload["telemetry"]["counters"]
        assert counters["harness.records.executed"] == FAULT_COUNT
        assert counters["golden.batch.fork"] == FAULT_COUNT
        assert sum(
            count for name, count in counters.items()
            if name.startswith("outcome.")
        ) == FAULT_COUNT

    def test_rendering(self, campaign_run):
        _result, payload, path = campaign_run
        text = render_metrics(payload, path=str(path))
        assert "campaign results: 24 items" in text
        assert "backend: golden" in text
        assert "coverage:" in text
        assert "golden.batch.fork" in text
        assert "shard    0" in text


class TestStatsCli:
    def test_stats_renders_campaign_and_checks(self, campaign_run, capsys):
        from repro.cli import main

        _result, _payload, path = campaign_run
        assert main(["stats", str(path), "--check"]) == 0
        captured = capsys.readouterr()
        assert "coverage:" in captured.out
        assert "shards (worker, seconds, records" in captured.out
        assert "schema-valid" in captured.err

    def test_stats_scans_directories(self, campaign_run, capsys):
        import os

        from repro.cli import main

        _result, _payload, path = campaign_run
        assert main(["stats", os.path.dirname(path)]) == 0
        assert "campaign results" in capsys.readouterr().out

    def test_stats_on_empty_directory_fails(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["stats", str(tmp_path)]) == 1
        assert "no metrics files" in capsys.readouterr().err

    def test_stats_check_flags_corruption(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "x.metrics.json"
        bad.write_text(json.dumps({"type": "metrics"}))
        assert main(["stats", str(bad), "--check"]) == 1
        assert "missing required key" in capsys.readouterr().err

    def test_find_metrics(self, campaign_run, tmp_path):
        _result, _payload, path = campaign_run
        assert find_metrics(path) == [str(path)]
        assert find_metrics(tmp_path) == []


class TestDseMetrics:
    def test_sweep_emits_valid_metrics(self, tmp_path):
        from repro.dse.engine import DseSweep
        from repro.dse.space import ConfigSpace

        shutdown_pools()
        out = tmp_path / "sweep.jsonl"
        space = ConfigSpace(
            hash_names=("xor",),
            iht_sizes=(4, 8),
            policy_names=("lru_half",),
            miss_penalties=(100,),
            workloads=("bitcount",),
            scale="tiny",
            adversary="same-column",
            pair_count=4,
        )
        with obs.scoped(True):
            DseSweep(space, seed=SEED, chunk_size=1).run(out=out)
        payload = load_metrics(metrics_path(out))
        assert validate_metrics(payload) == []
        manifest = payload["manifest"]
        assert manifest["kind"] == "DSE sweep"
        assert manifest["workloads"] == ["bitcount"]
        assert manifest["adversary"] == "same-column"
        assert span_coverage(payload) >= 0.95
        text = render_metrics(payload)
        assert "DSE sweep: 2 items" in text
