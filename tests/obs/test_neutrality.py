"""Telemetry is an execution-side observer — never a participant.

The hard invariant of the observability PR: result artifacts (campaign
and DSE JSONL files) are **byte-identical** with telemetry on, off, or
at any verbosity, for any worker count, any batch plan, and across
kill/resume.  Only the observability siblings — ``*.metrics.json`` and
the live ``*.events.jsonl`` stream — appear or disappear with the
switch.

Serial (1-worker) files are compared byte-for-byte; multi-worker files
line-set-wise (shard completion order is scheduling, and the engines
only promise sorted-record equality — the same contract
``tests/exec/test_scaling_invariants.py`` pins for worker counts).
"""

import os

import pytest

from repro.exec import CampaignRunner, CampaignSpec
from repro.exec.pool import shutdown_pools
from repro.obs import core as obs
from repro.obs.events import events_path
from repro.obs.metrics import metrics_path

SOURCE = """
main:   li $t0, 6
        li $s0, 0
loop:   addu $s0, $s0, $t0
        addi $t0, $t0, -1
        bgtz $t0, loop
        move $a0, $s0
        li $v0, 1
        syscall
        li $v0, 10
        syscall
"""

SEED = 42
FAULT_COUNT = 24
CHUNK = 6  # 4 shards


def spec():
    return CampaignSpec(
        source=SOURCE, name="neutrality-test", iht_size=4, backend="golden"
    )


def run_campaign(out, *, telemetry, workers=1, batch_size=None,
                 stop_after_shards=None, resume=False):
    with obs.scoped(telemetry):
        runner = CampaignRunner(
            spec(), workers=workers, chunk_size=CHUNK, batch_size=batch_size
        )
        faults = runner.campaign.random_single_bit(FAULT_COUNT, seed=SEED)
        return runner.run(
            faults, seed=SEED, out=out,
            stop_after_shards=stop_after_shards, resume=resume,
        )


def read_bytes(path):
    with open(path, "rb") as handle:
        return handle.read()


def line_set(path):
    return sorted(read_bytes(path).splitlines())


@pytest.fixture(autouse=True)
def fresh_pools():
    """Worker pools inherit the parent's telemetry flag at fork time;
    isolate every case from pools warmed under another flag."""
    shutdown_pools()
    yield
    shutdown_pools()


class TestCampaignNeutrality:
    def test_serial_artifact_byte_identical(self, tmp_path):
        on = tmp_path / "on.jsonl"
        off = tmp_path / "off.jsonl"
        run_campaign(on, telemetry=True)
        run_campaign(off, telemetry=False)
        assert read_bytes(on) == read_bytes(off)
        # The switch governs only the observability siblings.
        assert os.path.exists(metrics_path(on))
        assert not os.path.exists(metrics_path(off))
        assert os.path.exists(events_path(on))
        assert not os.path.exists(events_path(off))

    def test_parallel_artifact_identical(self, tmp_path):
        on = tmp_path / "on.jsonl"
        off = tmp_path / "off.jsonl"
        run_campaign(on, telemetry=True, workers=4)
        shutdown_pools()
        run_campaign(off, telemetry=False, workers=4)
        assert line_set(on) == line_set(off)
        assert os.path.exists(metrics_path(on))
        assert not os.path.exists(metrics_path(off))
        assert os.path.exists(events_path(on))
        assert not os.path.exists(events_path(off))

    def test_batch_plan_with_telemetry(self, tmp_path):
        reference = tmp_path / "ref.jsonl"
        batched = tmp_path / "batch.jsonl"
        run_campaign(reference, telemetry=False)
        run_campaign(batched, telemetry=True, batch_size=5)
        assert read_bytes(reference) == read_bytes(batched)

    def test_kill_resume_across_the_switch(self, tmp_path):
        """A run killed with telemetry ON and resumed with it OFF (and
        vice versa) converges to the uninterrupted artifact."""
        reference = tmp_path / "ref.jsonl"
        run_campaign(reference, telemetry=False)
        for first, second in ((True, False), (False, True)):
            out = tmp_path / f"resumed-{int(first)}.jsonl"
            partial = run_campaign(
                out, telemetry=first, stop_after_shards=2
            )
            assert not partial.complete
            final = run_campaign(out, telemetry=second, resume=True)
            assert final.complete
            assert read_bytes(out) == read_bytes(reference)


class TestDseNeutrality:
    def sweep(self, out, *, telemetry, workers=1):
        from repro.dse.engine import DseSweep
        from repro.dse.space import ConfigSpace

        space = ConfigSpace(
            hash_names=("xor", "crc32"),
            iht_sizes=(4,),
            policy_names=("lru_half",),
            miss_penalties=(100,),
            workloads=("bitcount",),
            scale="tiny",
            adversary="same-column",
            pair_count=4,
        )
        with obs.scoped(telemetry):
            return DseSweep(
                space, seed=SEED, workers=workers, chunk_size=1
            ).run(out=out)

    def test_serial_sweep_byte_identical(self, tmp_path):
        on = tmp_path / "on.jsonl"
        off = tmp_path / "off.jsonl"
        self.sweep(on, telemetry=True)
        self.sweep(off, telemetry=False)
        assert read_bytes(on) == read_bytes(off)
        assert os.path.exists(metrics_path(on))
        assert not os.path.exists(metrics_path(off))
        assert os.path.exists(events_path(on))
        assert not os.path.exists(events_path(off))

    def test_parallel_sweep_identical(self, tmp_path):
        on = tmp_path / "on.jsonl"
        off = tmp_path / "off.jsonl"
        self.sweep(on, telemetry=True, workers=2)
        shutdown_pools()
        self.sweep(off, telemetry=False, workers=2)
        assert line_set(on) == line_set(off)


class TestCliSwitch:
    def test_no_telemetry_flag_suppresses_metrics_only(self, tmp_path):
        from repro.cli import main

        source = tmp_path / "prog.s"
        source.write_text(SOURCE)
        base = ["campaign", str(source), "--faults", "10", "--seed", "7",
                "--chunk", "4"]
        on = tmp_path / "on.jsonl"
        off = tmp_path / "off.jsonl"
        assert main(base + ["--out", str(on)]) == 0
        assert main(base + ["--out", str(off), "--no-telemetry"]) == 0
        assert read_bytes(on) == read_bytes(off)
        assert os.path.exists(metrics_path(on))
        assert not os.path.exists(metrics_path(off))
        assert os.path.exists(events_path(on))
        assert not os.path.exists(events_path(off))

    def test_quiet_silences_progress_but_not_results(self, tmp_path, capsys):
        from repro.cli import main

        source = tmp_path / "prog.s"
        source.write_text(SOURCE)
        out = tmp_path / "q.jsonl"
        assert main(["campaign", str(source), "--faults", "10", "-q",
                     "--out", str(out)]) == 0
        captured = capsys.readouterr()
        assert captured.err == ""
        assert "10 faults" in captured.out
