"""Chrome/Perfetto trace export: ``repro stats --export-trace``.

Pins the document contract: schema-valid ``trace_event`` JSON, one
``X`` slice per committed shard on the real timeline (pid 1), the
synthetic span-tree track on pid 2, graceful degradation when only one
of the two source artifacts exists, and a loud
:class:`~repro.errors.ConfigurationError` when neither does.
"""

import json
import os

import pytest

from repro.errors import ConfigurationError
from repro.exec import CampaignRunner, CampaignSpec
from repro.exec.pool import shutdown_pools
from repro.obs import core as obs
from repro.obs.events import events_path, read_events
from repro.obs.metrics import metrics_path
from repro.obs.schema import validate_trace
from repro.obs.trace import build_trace, collect_sources, export_trace

SOURCE = """
main:   li $t0, 4
        li $s0, 0
loop:   addu $s0, $s0, $t0
        addi $t0, $t0, -1
        bgtz $t0, loop
        li $v0, 10
        syscall
"""


@pytest.fixture(autouse=True)
def fresh_pools():
    shutdown_pools()
    yield
    shutdown_pools()


@pytest.fixture()
def finished_run(tmp_path):
    """A tiny finished campaign with both observability siblings."""
    out = tmp_path / "camp.jsonl"
    with obs.scoped(True):
        runner = CampaignRunner(
            CampaignSpec(
                source=SOURCE, name="trace-test", iht_size=4, backend="golden"
            ),
            chunk_size=4,
        )
        faults = runner.campaign.random_single_bit(12, seed=3)
        runner.run(faults, seed=3, out=out)
    assert os.path.exists(metrics_path(out))
    assert os.path.exists(events_path(out))
    return out


def slices(trace, category):
    return [
        event for event in trace["traceEvents"]
        if event["ph"] == "X" and event.get("cat") == category
    ]


class TestExport:
    def test_written_document_is_schema_valid(self, finished_run, tmp_path):
        target = tmp_path / "run.trace.json"
        export_trace(finished_run, target)
        with open(target, encoding="utf-8") as handle:
            trace = json.load(handle)
        assert validate_trace(trace) == []
        assert trace["displayTimeUnit"] == "ms"
        assert "repro stats --export-trace" in str(trace["otherData"])

    def test_one_slice_per_committed_shard(self, finished_run, tmp_path):
        trace = export_trace(finished_run, tmp_path / "t.json")
        committed = [
            event
            for event in read_events(events_path(finished_run))
            if event["type"] == "shard-committed"
        ]
        shard_slices = slices(trace, "shard")
        assert len(shard_slices) == len(committed) == 3
        assert all(event["pid"] == 1 for event in shard_slices)
        assert all(event["ts"] >= 0 for event in trace["traceEvents"])

    def test_lifecycle_instants_and_counters(self, finished_run, tmp_path):
        trace = export_trace(finished_run, tmp_path / "t.json")
        instants = {
            event["name"]
            for event in trace["traceEvents"]
            if event["ph"] == "i"
        }
        assert {"run-started", "run-finished"} <= instants
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        assert any(e["name"] == "throughput" for e in counters)

    def test_span_track_is_marked_synthetic(self, finished_run, tmp_path):
        trace = export_trace(finished_run, tmp_path / "t.json")
        span_slices = slices(trace, "span")
        assert span_slices
        assert all(event["pid"] == 2 for event in span_slices)
        assert all(
            event["args"]["synthetic_layout"] for event in span_slices
        )
        names = {
            event["args"]["name"]
            for event in trace["traceEvents"]
            if event["ph"] == "M" and event["pid"] == 2
        }
        assert any("synthetic" in name for name in names)

    def test_events_only_still_exports(self, finished_run, tmp_path):
        os.remove(metrics_path(finished_run))
        trace = export_trace(finished_run, tmp_path / "t.json")
        assert validate_trace(trace) == []
        assert slices(trace, "shard")
        assert not slices(trace, "span")

    def test_metrics_only_still_exports(self, finished_run, tmp_path):
        os.remove(events_path(finished_run))
        trace = export_trace(finished_run, tmp_path / "t.json")
        assert validate_trace(trace) == []
        assert slices(trace, "span")
        assert not slices(trace, "shard")

    def test_no_sources_raises(self, tmp_path):
        bare = tmp_path / "bare.jsonl"
        bare.write_text("")
        with pytest.raises(ConfigurationError):
            export_trace(bare, tmp_path / "t.json")


class TestSources:
    def test_collect_resolves_any_sibling(self, finished_run, tmp_path):
        for name in (
            finished_run,
            metrics_path(finished_run),
            events_path(finished_run),
        ):
            metrics, events = collect_sources(name)
            assert metrics is not None
            assert events is not None

    def test_build_trace_empty_sources(self):
        trace = build_trace(metrics=None, events=None)
        assert trace["traceEvents"] == []
        assert validate_trace(trace) == []


class TestCli:
    def test_export_flag(self, finished_run, tmp_path):
        from repro.cli import main

        target = tmp_path / "run.trace.json"
        assert main(
            ["stats", str(finished_run), "--export-trace", str(target)]
        ) == 0
        with open(target, encoding="utf-8") as handle:
            assert validate_trace(json.load(handle)) == []

    def test_export_without_sources_fails(self, tmp_path):
        from repro.cli import main

        bare = tmp_path / "bare.jsonl"
        bare.write_text("")
        assert main(
            ["stats", str(bare), "--export-trace", str(tmp_path / "t.json")]
        ) == 1
