"""The mini JSON-schema validator, and every committed artifact against it."""

import json
import pathlib

import pytest

from repro.obs.schema import (
    BENCH_SCHEMA,
    METRICS_SCHEMA,
    validate,
    validate_bench,
)

RESULTS_DIR = pathlib.Path(__file__).resolve().parents[2] / "results"


class TestValidator:
    def test_type_mismatch_names_path(self):
        schema = {
            "type": "object",
            "properties": {"a": {"type": "object", "properties": {
                "b": {"type": "integer"}}}},
        }
        errors = validate({"a": {"b": "nope"}}, schema)
        assert errors == ["$.a.b: expected integer, got str"]

    def test_required(self):
        errors = validate({}, {"type": "object", "required": ["x"]})
        assert errors == ["$: missing required key 'x'"]

    def test_additional_properties_false(self):
        schema = {"type": "object", "properties": {}, "additionalProperties": False}
        assert validate({"rogue": 1}, schema) == ["$: unexpected key 'rogue'"]

    def test_additional_properties_schema(self):
        schema = {"type": "object", "additionalProperties": {"type": "integer"}}
        assert validate({"a": 1, "b": 2}, schema) == []
        assert validate({"a": "x"}, schema) != []

    def test_enum(self):
        assert validate("other", {"enum": ["metrics"]}) != []
        assert validate("metrics", {"enum": ["metrics"]}) == []

    def test_minimum(self):
        assert validate(-1, {"type": "integer", "minimum": 0}) != []
        assert validate(0, {"type": "integer", "minimum": 0}) == []

    def test_bool_is_not_a_number(self):
        assert validate(True, {"type": "integer"}) != []
        assert validate(True, {"type": "boolean"}) == []

    def test_items(self):
        schema = {"type": "array", "items": {"type": "string"}}
        assert validate(["a", "b"], schema) == []
        errors = validate(["a", 3], schema)
        assert errors == ["$[1]: expected string, got int"]

    def test_type_lists(self):
        schema = {"type": ["string", "null"]}
        assert validate(None, schema) == []
        assert validate("x", schema) == []
        assert validate(3, schema) != []


class TestMetricsSchema:
    def test_minimal_payload_conforms(self):
        payload = {
            "type": "metrics",
            "version": 1,
            "manifest": {
                "host": "h", "python": "3.11", "effective_cores": 1,
                "workers": 1, "chunk_size": 16, "kind": "campaign results",
                "seed": 42, "total": 10,
            },
            "wall_seconds": 0.5,
            "telemetry": {"counters": {"a": 1}},
            "shards": [
                {"shard": 0, "worker": 123, "seconds": 0.1, "records": 5},
            ],
        }
        assert validate(payload, METRICS_SCHEMA) == []

    def test_rogue_telemetry_kind_rejected(self):
        payload = {
            "type": "metrics",
            "version": 1,
            "manifest": {
                "host": "h", "python": "3.11", "effective_cores": 1,
                "workers": 1, "chunk_size": 16, "kind": "campaign results",
                "seed": 42, "total": 10,
            },
            "wall_seconds": 0.5,
            "telemetry": {"surprises": {}},
        }
        errors = validate(payload, METRICS_SCHEMA)
        assert any("surprises" in error for error in errors)


class TestCommittedArtifacts:
    """Every committed results/BENCH_*.json must conform to BENCH_SCHEMA."""

    bench_files = sorted(RESULTS_DIR.glob("BENCH_*.json"))

    def test_artifacts_exist(self):
        assert self.bench_files, f"no BENCH_*.json under {RESULTS_DIR}"

    @pytest.mark.parametrize(
        "path", bench_files, ids=[path.name for path in bench_files]
    )
    def test_committed_bench_file_conforms(self, path):
        data = json.loads(path.read_text())
        assert validate_bench(data) == []
        assert data["benchmark"] == path.stem.removeprefix("BENCH_")

    def test_bench_schema_rejects_malformed(self):
        broken = {"benchmark": "x", "results": {"t": {"seconds": "fast"}}}
        assert validate(broken, BENCH_SCHEMA) != []
