"""Observability subsystem tests (:mod:`repro.obs`)."""
