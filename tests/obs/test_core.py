"""Telemetry core: instruments, span trees, the drain/merge protocol."""

import pytest

from repro.obs import core
from repro.obs.core import Telemetry


@pytest.fixture
def telemetry():
    return Telemetry(enabled=True)


class TestCounters:
    def test_count_accumulates(self, telemetry):
        telemetry.count("a")
        telemetry.count("a", 4)
        assert telemetry.counters == {"a": 5}

    def test_disabled_is_a_noop(self):
        off = Telemetry(enabled=False)
        off.count("a")
        off.gauge("g", 1.0)
        off.observe("h", 1.0)
        with off.span("s"):
            pass
        assert off.empty


class TestGauges:
    def test_gauge_keeps_latest(self, telemetry):
        telemetry.gauge("g", 1.5)
        telemetry.gauge("g", 2.5)
        assert telemetry.gauges == {"g": 2.5}


class TestHistograms:
    def test_summary_statistics(self, telemetry):
        for value in (1.0, 3.0, 8.0):
            telemetry.observe("h", value)
        entry = telemetry.histograms["h"]
        assert entry["count"] == 3
        assert entry["sum"] == 12.0
        assert entry["min"] == 1.0
        assert entry["max"] == 8.0
        # Power-of-two buckets: 1 -> 2**0, 3 -> 2**2, 8 -> 2**3.
        assert entry["buckets"] == {"0": 1, "2": 1, "3": 1}


class TestSpans:
    def test_nested_spans_record_paths(self, telemetry):
        with telemetry.span("run"):
            with telemetry.span("execute"):
                pass
            with telemetry.span("execute"):
                pass
        assert set(telemetry.spans) == {"run", "run/execute"}
        assert telemetry.spans["run"]["count"] == 1
        assert telemetry.spans["run/execute"]["count"] == 2

    def test_span_charged_when_body_raises(self, telemetry):
        with pytest.raises(ValueError):
            with telemetry.span("boom"):
                raise ValueError("x")
        assert telemetry.spans["boom"]["count"] == 1
        assert telemetry.spans["boom"]["seconds"] >= 0.0
        # The stack unwound: a later span is not nested under "boom".
        with telemetry.span("after"):
            pass
        assert "after" in telemetry.spans


class TestMovement:
    def test_drain_resets(self, telemetry):
        telemetry.count("a")
        delta = telemetry.drain()
        assert delta == {"counters": {"a": 1}}
        assert telemetry.empty

    def test_snapshot_is_detached(self, telemetry):
        telemetry.count("a")
        telemetry.observe("h", 2.0)
        data = telemetry.snapshot()
        telemetry.count("a")
        telemetry.observe("h", 4.0)
        assert data["counters"] == {"a": 1}
        assert data["histograms"]["h"]["count"] == 1

    def test_merge_adds_counters_spans_histograms(self, telemetry):
        other = Telemetry()
        for instance in (telemetry, other):
            instance.count("a", 2)
            instance.observe("h", 4.0)
            with instance.span("s"):
                pass
        telemetry.merge(other.drain())
        assert telemetry.counters == {"a": 4}
        assert telemetry.histograms["h"]["count"] == 2
        assert telemetry.spans["s"]["count"] == 2

    def test_merge_keeps_newest_gauge(self, telemetry):
        telemetry.gauge("g", 1.0)
        telemetry.merge({"gauges": {"g": 9.0}})
        assert telemetry.gauges["g"] == 9.0

    def test_merge_none_and_empty(self, telemetry):
        telemetry.merge(None)
        telemetry.merge({})
        assert telemetry.empty

    def test_merge_ignores_enabled(self):
        off = Telemetry(enabled=False)
        off.merge({"counters": {"a": 1}})
        assert off.counters == {"a": 1}


class TestModuleFace:
    def test_scoped_restores(self):
        before = core.enabled()
        with core.scoped(not before):
            assert core.enabled() is (not before)
        assert core.enabled() is before

    def test_module_delegates_hit_local(self):
        with core.scoped(True):
            core.local().clear()
            core.count("x")
            core.gauge("g", 2.0)
            core.observe("h", 1.0)
            with core.span("s"):
                pass
            data = core.local().drain()
        assert data["counters"] == {"x": 1}
        assert data["gauges"] == {"g": 2.0}
        assert "s" in data["spans"]
