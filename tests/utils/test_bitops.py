"""Unit and property tests for bit-manipulation helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bitops import (
    MASK32,
    bit_count,
    bits,
    flip_bit,
    parity32,
    rotl32,
    rotr32,
    sign_extend,
    to_signed32,
    to_unsigned32,
)

words = st.integers(min_value=0, max_value=MASK32)


class TestConversions:
    def test_to_unsigned_wraps(self):
        assert to_unsigned32(-1) == MASK32
        assert to_unsigned32(1 << 32) == 0

    def test_to_signed_negative(self):
        assert to_signed32(0xFFFFFFFF) == -1
        assert to_signed32(0x80000000) == -(1 << 31)

    def test_to_signed_positive(self):
        assert to_signed32(0x7FFFFFFF) == 0x7FFFFFFF

    @given(words)
    def test_roundtrip(self, value):
        assert to_unsigned32(to_signed32(value)) == value

    @given(st.integers(min_value=-(1 << 31), max_value=(1 << 31) - 1))
    def test_signed_roundtrip(self, value):
        assert to_signed32(to_unsigned32(value)) == value


class TestSignExtend:
    @pytest.mark.parametrize(
        "value,width,expected",
        [
            (0x8000, 16, -32768),
            (0x7FFF, 16, 32767),
            (0xFF, 8, -1),
            (0x7F, 8, 127),
            (0b100, 3, -4),
        ],
    )
    def test_cases(self, value, width, expected):
        assert sign_extend(value, width) == expected

    @given(st.integers(min_value=0, max_value=0xFFFF))
    def test_16_bit_range(self, value):
        result = sign_extend(value, 16)
        assert -32768 <= result <= 32767
        assert result & 0xFFFF == value


class TestBits:
    def test_field_extraction(self):
        word = 0xABCD1234
        assert bits(word, 31, 28) == 0xA
        assert bits(word, 15, 0) == 0x1234
        assert bits(word, 31, 0) == word

    def test_invalid_range(self):
        with pytest.raises(ValueError):
            bits(0, 0, 5)


class TestRotation:
    def test_rotl_known(self):
        assert rotl32(0x80000000, 1) == 1
        assert rotl32(1, 31) == 0x80000000

    def test_rotate_by_zero(self):
        assert rotl32(0x1234, 0) == 0x1234
        assert rotr32(0x1234, 0) == 0x1234

    @given(words, st.integers(min_value=0, max_value=64))
    def test_rotl_rotr_inverse(self, value, amount):
        assert rotr32(rotl32(value, amount), amount) == value

    @given(words, st.integers(min_value=0, max_value=64))
    def test_rotation_preserves_popcount(self, value, amount):
        assert bit_count(rotl32(value, amount)) == bit_count(value)


class TestFlipBit:
    @given(words, st.integers(min_value=0, max_value=31))
    def test_involution(self, value, bit):
        assert flip_bit(flip_bit(value, bit), bit) == value

    @given(words, st.integers(min_value=0, max_value=31))
    def test_changes_exactly_one_bit(self, value, bit):
        assert bit_count(flip_bit(value, bit) ^ value) == 1

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            flip_bit(0, 32)
        with pytest.raises(ValueError):
            flip_bit(0, -1)


class TestParity:
    @given(words, st.integers(min_value=0, max_value=31))
    def test_single_flip_changes_parity(self, value, bit):
        assert parity32(flip_bit(value, bit)) != parity32(value)

    def test_known(self):
        assert parity32(0) == 0
        assert parity32(1) == 1
        assert parity32(0b11) == 0
