"""Tests for the report table renderer."""

import pytest

from repro.utils.tables import TextTable


class TestTextTable:
    def test_renders_headers_and_rows(self):
        table = TextTable(["name", "value"])
        table.add_row(["alpha", 3])
        table.add_row(["b", 12345])
        rendered = table.render()
        lines = rendered.splitlines()
        assert lines[0].startswith("name")
        assert "-" in lines[1]
        assert "alpha" in lines[2]
        assert "12345" in lines[3]

    def test_numeric_columns_right_aligned(self):
        table = TextTable(["n"])
        table.add_row([1])
        table.add_row([100])
        lines = table.render().splitlines()
        assert lines[2] == "  1"
        assert lines[3] == "100"

    def test_title_first_line(self):
        table = TextTable(["a"], title="My Title")
        table.add_row([1])
        assert table.render().splitlines()[0] == "My Title"

    def test_float_formatting(self):
        table = TextTable(["x"])
        table.add_row([3.14159])
        assert "3.14" in table.render()

    def test_wrong_column_count_rejected(self):
        table = TextTable(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_percent_cells_stay_numeric(self):
        table = TextTable(["rate"])
        table.add_row(["12.5%"])
        table.add_row(["3.0%"])
        lines = table.render().splitlines()
        assert lines[2].endswith("12.5%")

    def test_text_columns_left_aligned(self):
        table = TextTable(["name"])
        table.add_row(["a"])
        table.add_row(["longer"])
        lines = table.render().splitlines()
        assert lines[2] == "a"
