"""Test package."""
