"""Evaluation harness tests (run at reduced scale for speed)."""

import pytest

from repro.eval.ablation_hashes import run_hash_ablation
from repro.eval.ablation_policies import run_policy_ablation
from repro.eval.fault_analysis import run_fault_analysis
from repro.eval.fig6_miss_rate import run_fig6
from repro.eval.table1_cycles import run_table1
from repro.eval.table2_area import PAPER_TABLE2, run_table2

WORKLOADS = ("bitcount", "stringsearch", "dijkstra")


@pytest.fixture(scope="module")
def fig6():
    return run_fig6(scale="small", workloads=WORKLOADS)


@pytest.fixture(scope="module")
def table1():
    return run_table1(scale="small", workloads=WORKLOADS)


class TestFig6:
    def test_rates_are_probabilities(self, fig6):
        for row in fig6.rows:
            for rate in row.miss_rates.values():
                assert 0.0 <= rate <= 1.0

    def test_ordering_matches_paper(self, fig6):
        assert fig6.miss_rate("stringsearch", 16) > fig6.miss_rate("bitcount", 16)
        assert fig6.miss_rate("dijkstra", 1) > fig6.miss_rate("dijkstra", 8)

    def test_table_renders(self, fig6):
        text = fig6.table().render()
        assert "Figure 6" in text
        assert "stringsearch" in text


class TestTable1:
    def test_overhead_accounting_exact(self, table1):
        """monitored = base + penalty * misses, per the paper's model."""
        for row in table1.rows:
            for size in (8, 16):
                assert row.monitored_cycles[size] == (
                    row.base_cycles + 100 * row.misses[size]
                )

    def test_overhead_shrinks_with_table_size(self, table1):
        for row in table1.rows:
            assert row.overhead(16) <= row.overhead(8) + 1e-9

    def test_normalized_overhead_is_miss_rate(self, table1):
        for row in table1.rows:
            rate = 100.0 * row.misses[8] / row.lookups[8]
            assert row.normalized_overhead(8) == pytest.approx(rate)

    def test_bitcount_negligible(self, table1):
        # Scale-free metric: cold misses dominate tiny runs, so assert on
        # the normalized (miss-rate) overhead like the paper's 0.0 %.
        assert table1.row("bitcount").normalized_overhead(8) < 1.0

    def test_table_renders_with_paper_columns(self, table1):
        text = table1.table().render()
        assert "paper ovhd8 %" in text
        assert "average" in text

    def test_consistency_with_fig6(self, fig6, table1):
        """Trace replay and live monitored simulation must agree."""
        for name in WORKLOADS:
            row = table1.row(name)
            for size in (8, 16):
                replay_rate = fig6.miss_rate(name, size)
                live_rate = row.misses[size] / row.lookups[size]
                assert live_rate == pytest.approx(replay_rate, abs=1e-12)


class TestTable2:
    def test_matches_paper_within_tolerance(self):
        result = run_table2()
        for entries, (_, _, paper_area, paper_overhead) in PAPER_TABLE2.items():
            row = result.row(entries)
            assert row.area_overhead == pytest.approx(paper_overhead, abs=2.0)
            assert row.period_overhead == 0.0

    def test_baseline_area_exact(self):
        result = run_table2()
        assert result.row(None).report.cell_area == pytest.approx(2_136_594, abs=1)


class TestFaultAnalysis:
    def test_single_bit_full_coverage(self):
        result = run_fault_analysis(
            workload="bitcount", scale="tiny",
            single_bit_count=25, multi_bit_count=10,
        )
        assert result.scenario("single-bit (executed code)").coverage == 1.0

    def test_same_column_escapes_xor(self):
        result = run_fault_analysis(
            workload="dijkstra", scale="tiny",
            single_bit_count=5, multi_bit_count=25,
        )
        scenario = result.scenario("2-bit, same column, same block")
        assert scenario.coverage < 1.0


class TestAblations:
    def test_policy_grid_complete(self):
        result = run_policy_ablation(
            scale="small", workloads=("bitcount", "dijkstra"), sizes=(8,)
        )
        assert result.policies == ("fifo", "lru_half", "lru_one", "random")
        for row in result.rows:
            assert len(row.rates) == 4

    def test_hash_ablation_orders_coverage(self):
        result = run_hash_ablation(
            workload="bitcount", scale="tiny", pair_count=15,
            hashes=("xor", "rotxor", "crc32"),
        )
        xor_row = result.row("xor")
        assert result.row("crc32").adversarial_coverage == 1.0
        assert result.row("rotxor").adversarial_coverage == 1.0
        assert xor_row.adversarial_coverage < 1.0
        assert result.row("crc32").fits_if_stage

    def test_sha1_flagged_as_unfit(self):
        result = run_hash_ablation(
            workload="bitcount", scale="tiny", pair_count=4, hashes=("sha1",)
        )
        assert not result.row("sha1").fits_if_stage
