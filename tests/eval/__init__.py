"""Test package."""
