"""Exception hierarchy tests."""

import pytest

from repro import errors


class TestHierarchy:
    @pytest.mark.parametrize(
        "subclass",
        [
            errors.EncodingError,
            errors.DecodingError,
            errors.AssemblerError,
            errors.LinkError,
            errors.SimulationError,
            errors.MemoryAccessError,
            errors.MonitorViolation,
            errors.ConfigurationError,
        ],
    )
    def test_all_derive_from_repro_error(self, subclass):
        assert issubclass(subclass, errors.ReproError)

    def test_memory_error_is_simulation_error(self):
        assert issubclass(errors.MemoryAccessError, errors.SimulationError)


class TestMessages:
    def test_decoding_error_fields(self):
        error = errors.DecodingError(0xDEADBEEF, address=0x400000, reason="bad")
        assert error.word == 0xDEADBEEF
        assert "0xdeadbeef" in str(error)
        assert "0x00400000" in str(error)
        assert "bad" in str(error)

    def test_assembler_error_line_prefix(self):
        assert str(errors.AssemblerError("oops", line=12)) == "line 12: oops"

    def test_simulation_error_context(self):
        error = errors.SimulationError("boom", pc=0x400004, cycle=9)
        assert "pc=0x00400004" in str(error)
        assert "cycle=9" in str(error)

    def test_monitor_violation_fields(self):
        violation = errors.MonitorViolation(0x100, 0x10C, 0xAB, 0xCD)
        assert violation.start == 0x100
        assert violation.expected == 0xAB
        assert "0x000000ab" in str(violation)

    def test_monitor_violation_absent_expected(self):
        violation = errors.MonitorViolation(0x100, 0x10C, None, 0xCD)
        assert "<absent>" in str(violation)
