"""Parser tests: statements and operand forms."""

import pytest

from repro.errors import AssemblerError
from repro.asm.parser import (
    DirectiveStatement,
    InstructionStatement,
    LabelStatement,
    parse,
)


class TestLabels:
    def test_label_alone(self):
        (statement,) = parse("main:")
        assert isinstance(statement, LabelStatement)
        assert statement.name == "main"

    def test_label_with_instruction(self):
        statements = parse("loop: nop")
        assert isinstance(statements[0], LabelStatement)
        assert isinstance(statements[1], InstructionStatement)

    def test_multiple_labels_one_line(self):
        statements = parse("a: b: nop")
        assert [s.name for s in statements[:2]] == ["a", "b"]


class TestDirectives:
    def test_word_values(self):
        (statement,) = parse(".word 1, 0x10, -3")
        assert isinstance(statement, DirectiveStatement)
        assert statement.args == [1, 16, -3]

    def test_asciiz_string_with_escapes(self):
        (statement,) = parse(r'.asciiz "hi\n"')
        assert statement.args == ["hi\n"]

    def test_word_with_symbol(self):
        (statement,) = parse(".word mylabel")
        assert statement.args[0].kind == "sym"
        assert statement.args[0].symbol == "mylabel"

    def test_unknown_escape_rejected(self):
        with pytest.raises(AssemblerError):
            parse(r'.asciiz "bad\q"')


class TestInstructionOperands:
    def test_three_registers(self):
        (statement,) = parse("add $t0, $t1, $t2")
        assert statement.mnemonic == "add"
        assert [op.kind for op in statement.operands] == ["reg"] * 3
        assert [op.value for op in statement.operands] == [8, 9, 10]

    def test_immediate(self):
        (statement,) = parse("addi $t0, $t0, -100")
        assert statement.operands[2].kind == "imm"
        assert statement.operands[2].value == -100

    def test_memory_operand(self):
        (statement,) = parse("lw $t0, 12($sp)")
        mem = statement.operands[1]
        assert mem.kind == "mem"
        assert mem.value == 12
        assert mem.base == 29

    def test_bare_paren_memory(self):
        (statement,) = parse("lw $t0, ($sp)")
        assert statement.operands[1].kind == "mem"
        assert statement.operands[1].value == 0

    def test_symbol_operand(self):
        (statement,) = parse("j exit_label")
        assert statement.operands[0].kind == "sym"

    def test_symbolic_memory(self):
        (statement,) = parse("lw $t0, var($t1)")
        mem = statement.operands[1]
        assert mem.kind == "mem"
        assert mem.symbol == "var"

    def test_char_immediate(self):
        (statement,) = parse("li $a0, 'A'")
        assert statement.operands[1].value == 65

    def test_malformed_memory_rejected(self):
        with pytest.raises(AssemblerError):
            parse("lw $t0, 4($t1")
