"""Disassembler round-trip tests: text -> word -> text -> word."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.asm.assembler import assemble
from repro.asm.disassembler import disassemble_word, format_instruction
from repro.asm.program import TEXT_BASE
from repro.isa.encoding import decode, encode_fields
from repro.isa.opcodes import Mnemonic

regs = st.integers(min_value=0, max_value=31)


def _reassemble(text: str) -> int:
    program = assemble(text)
    return program.text.word_at(TEXT_BASE)


class TestRoundTrip:
    @pytest.mark.parametrize(
        "source",
        [
            "add $t0, $t1, $t2",
            "sub $s0, $s1, $s2",
            "sll $t0, $t1, 5",
            "sllv $t0, $t1, $t2",
            "mult $t0, $t1",
            "mfhi $t0",
            "mtlo $t3",
            "jr $ra",
            "jalr $t0, $t1",
            "syscall",
            "addi $t0, $t1, -42",
            "ori $t0, $t1, 255",
            "lui $t0, 0x1234",
            "lw $t0, -8($sp)",
            "sb $t1, 3($t2)",
        ],
    )
    def test_canonical_text_reassembles_identically(self, source):
        word = _reassemble(source)
        text = disassemble_word(word)
        assert _reassemble(text) == word

    @given(rs=regs, rt=regs, rd=regs)
    def test_r_type_random(self, rs, rt, rd):
        word = encode_fields(Mnemonic.XOR, rs=rs, rt=rt, rd=rd)
        assert _reassemble(disassemble_word(word)) == word

    @given(rs=regs, rt=regs, imm=st.integers(min_value=-32768, max_value=32767))
    def test_load_random(self, rs, rt, imm):
        word = encode_fields(Mnemonic.LW, rs=rs, rt=rt, imm=imm)
        assert _reassemble(disassemble_word(word)) == word


class TestFormatting:
    def test_branch_with_address_shows_target(self):
        word = encode_fields(Mnemonic.BEQ, rs=8, rt=9, imm=3)
        text = disassemble_word(word, address=0x400000)
        assert "0x400010" in text

    def test_branch_without_address_shows_offset(self):
        word = encode_fields(Mnemonic.BEQ, rs=8, rt=9, imm=3)
        assert disassemble_word(word).endswith("3")

    def test_jump_with_address(self):
        word = encode_fields(Mnemonic.J, target=0x400100 >> 2)
        assert "0x400100" in disassemble_word(word, address=0x400000)

    def test_syscall_plain(self):
        assert disassemble_word(encode_fields(Mnemonic.SYSCALL)) == "syscall"

    def test_instruction_str_uses_formatter(self):
        instruction = decode(encode_fields(Mnemonic.ADDU, rs=8, rt=0, rd=8))
        assert str(instruction) == format_instruction(instruction)
