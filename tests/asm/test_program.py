"""Program image tests."""

import pytest

from repro.errors import LinkError
from repro.asm.assembler import assemble
from repro.asm.program import Program, Segment


class TestSegment:
    def test_bounds(self):
        segment = Segment(0x1000, bytearray(16))
        assert segment.end == 0x1010
        assert segment.contains(0x1000)
        assert segment.contains(0x100F)
        assert not segment.contains(0x1010)

    def test_word_access(self):
        segment = Segment(0x1000, bytearray(8))
        segment.set_word(0x1004, 0xCAFEBABE)
        assert segment.word_at(0x1004) == 0xCAFEBABE


class TestProgram:
    def test_word_at_dispatches_to_segments(self):
        program = assemble(".data\nv: .word 77\n.text\nmain: nop")
        assert program.word_at(program.entry) == 0  # nop
        assert program.word_at(program.symbols["v"]) == 77

    def test_word_at_unmapped_rejected(self):
        program = assemble("nop")
        with pytest.raises(LinkError):
            program.word_at(0x7000_0000)

    def test_symbol_lookup(self):
        program = assemble("main: nop")
        assert program.symbol("main") == program.entry
        with pytest.raises(LinkError):
            program.symbol("nothere")

    def test_text_addresses(self):
        program = assemble("nop\nnop\nnop")
        assert list(program.text_addresses()) == [
            program.text_start + offset for offset in (0, 4, 8)
        ]

    def test_listing_shows_source(self):
        program = assemble("main: addi $t0, $t0, 7")
        listing = program.listing()
        assert "addi" in listing
        assert "$8" in listing or "$t0" in listing

    def test_listing_tolerates_invalid_words(self):
        program = assemble("nop")
        program.text.set_word(program.entry, 0xFFFFFFFF)
        assert ".word" in program.listing()
