"""Lexer tests."""

import pytest

from repro.errors import AssemblerError
from repro.asm.lexer import strip_comment, tokenize, tokenize_line


class TestStripComment:
    def test_hash_comment(self):
        assert strip_comment("add $t0, $t1 # comment") == "add $t0, $t1 "

    def test_semicolon_comment(self):
        assert strip_comment("nop ; trailing") == "nop "

    def test_hash_inside_string_kept(self):
        assert strip_comment('.asciiz "a#b" # real') == '.asciiz "a#b" '

    def test_escaped_quote_in_string(self):
        assert strip_comment(r'.asciiz "a\"b" # c') == r'.asciiz "a\"b" '


class TestTokenizeLine:
    def test_instruction_tokens(self):
        tokens = tokenize_line("add $t0, $t1, $t2", 1)
        kinds = [token.kind for token in tokens]
        assert kinds == ["IDENT", "REG", "COMMA", "REG", "COMMA", "REG"]

    def test_memory_operand(self):
        tokens = tokenize_line("lw $t0, 8($sp)", 1)
        kinds = [token.kind for token in tokens]
        assert kinds == ["IDENT", "REG", "COMMA", "NUM", "LPAREN", "REG", "RPAREN"]

    def test_hex_number(self):
        tokens = tokenize_line("li $t0, 0xFF", 1)
        assert tokens[-1].kind == "HEX"
        assert int(tokens[-1].text, 0) == 255

    def test_negative_number(self):
        tokens = tokenize_line("addi $t0, $t0, -4", 1)
        assert tokens[-1].kind == "NUM"
        assert int(tokens[-1].text) == -4

    def test_char_literal(self):
        tokens = tokenize_line("li $a0, '\\n'", 1)
        assert tokens[-1].kind == "CHAR"

    def test_label_definition(self):
        tokens = tokenize_line("loop: addi $t0, $t0, 1", 1)
        assert tokens[0].kind == "IDENT"
        assert tokens[1].kind == "COLON"

    def test_directive(self):
        tokens = tokenize_line(".word 1, 2", 1)
        assert tokens[0].text == ".word"

    def test_bad_character(self):
        with pytest.raises(AssemblerError):
            tokenize_line("add $t0 @ $t1", 3)

    def test_line_number_recorded(self):
        tokens = tokenize_line("nop", 17)
        assert tokens[0].line == 17


class TestTokenize:
    def test_blank_lines_preserved(self):
        lines = tokenize("nop\n\nnop")
        assert len(lines) == 3
        assert lines[1] == []
