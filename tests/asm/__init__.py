"""Test package."""
