"""Assembler tests: layout, symbols, pseudo-instructions, diagnostics."""

import pytest

from repro.errors import AssemblerError
from repro.asm.assembler import assemble
from repro.asm.program import DATA_BASE, TEXT_BASE
from repro.isa.encoding import decode
from repro.isa.opcodes import Mnemonic


class TestLayout:
    def test_text_starts_at_base(self):
        program = assemble("nop")
        assert program.text.base == TEXT_BASE
        assert len(program.text.data) == 4

    def test_data_section(self):
        program = assemble(".data\nv: .word 7\n.text\nnop")
        assert program.data.word_at(DATA_BASE) == 7
        assert program.symbols["v"] == DATA_BASE

    def test_label_binds_past_alignment_padding(self):
        program = assemble('.data\ns: .asciiz "abc"\nw: .word 9\n.text\nnop')
        # "abc\0" = 4 bytes, already aligned; add an odd case:
        program2 = assemble('.data\ns: .asciiz "ab"\nw: .word 9\n.text\nnop')
        assert program.data.word_at(program.symbols["w"]) == 9
        assert program2.symbols["w"] % 4 == 0
        assert program2.data.word_at(program2.symbols["w"]) == 9

    def test_align_directive(self):
        program = assemble(".data\n.byte 1\n.align 3\nv: .word 2\n.text\nnop")
        assert program.symbols["v"] % 8 == 0

    def test_space_directive(self):
        program = assemble(".data\nbuf: .space 10\nv: .word 1\n.text\nnop")
        assert program.symbols["v"] == program.symbols["buf"] + 12  # padded

    def test_half_and_byte(self):
        program = assemble(".data\nh: .half 0x1234\nb: .byte 0xFF\n.text\nnop")
        assert program.data.data[0] == 0x34
        assert program.data.data[1] == 0x12
        assert program.data.data[2] == 0xFF

    def test_entry_defaults_to_main(self):
        program = assemble("nop\nmain: nop")
        assert program.entry == TEXT_BASE + 4

    def test_entry_without_main_is_text_base(self):
        program = assemble("nop")
        assert program.entry == TEXT_BASE


class TestSymbols:
    def test_forward_reference(self):
        program = assemble("j end\nnop\nend: nop")
        word = program.text.word_at(TEXT_BASE)
        instruction = decode(word)
        assert instruction.target << 2 == (TEXT_BASE + 8) & 0x0FFFFFFF

    def test_duplicate_label_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("a: nop\na: nop")

    def test_undefined_symbol_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("j nowhere")

    def test_word_directive_with_symbol(self):
        program = assemble(".data\nptr: .word msg\nmsg: .word 0\n.text\nnop")
        assert program.data.word_at(program.symbols["ptr"]) == program.symbols["msg"]


class TestBranchEncoding:
    def test_backward_branch_offset(self):
        program = assemble("loop: nop\nbne $t0, $zero, loop")
        instruction = decode(program.text.word_at(TEXT_BASE + 4))
        assert instruction.imm == -2

    def test_branch_out_of_range_rejected(self):
        source = "beq $t0, $t1, far\n" + ".space 0\n"
        big = "loop: nop\n" * 40000 + "far: nop\n" + "beq $t0, $t1, loop\n"
        with pytest.raises(AssemblerError):
            assemble("far_branch: beq $t0, $t1, target\n"
                     + "nop\n" * 40000 + "target: nop")
        del source, big


class TestPseudoInstructions:
    def test_nop_is_sll_zero(self):
        program = assemble("nop")
        assert program.text.word_at(TEXT_BASE) == 0

    def test_move(self):
        program = assemble("move $t0, $t1")
        instruction = decode(program.text.word_at(TEXT_BASE))
        assert instruction.mnemonic is Mnemonic.ADDU
        assert instruction.rt == 0

    def test_li_small_positive(self):
        program = assemble("li $t0, 5")
        assert len(program.text.data) == 4
        assert decode(program.text.word_at(TEXT_BASE)).mnemonic is Mnemonic.ADDIU

    def test_li_16bit_unsigned(self):
        program = assemble("li $t0, 0x8000")
        assert len(program.text.data) == 4
        assert decode(program.text.word_at(TEXT_BASE)).mnemonic is Mnemonic.ORI

    def test_li_32bit(self):
        program = assemble("li $t0, 0x12345678")
        assert len(program.text.data) == 8
        first = decode(program.text.word_at(TEXT_BASE))
        second = decode(program.text.word_at(TEXT_BASE + 4))
        assert first.mnemonic is Mnemonic.LUI
        assert second.mnemonic is Mnemonic.ORI

    def test_li_round_value_single_lui(self):
        program = assemble("li $t0, 0x10000")
        assert len(program.text.data) == 4

    def test_la_two_instructions(self):
        program = assemble(".data\nv: .word 0\n.text\nla $t0, v")
        assert len(program.text.data) == 8

    def test_branch_pseudos(self):
        program = assemble("x: bgt $t0, $t1, x\nblt $t0, $t1, x\n"
                           "bge $t0, $t1, x\nble $t0, $t1, x")
        assert len(program.text.data) == 8 * 4

    def test_branch_pseudo_with_immediate(self):
        program = assemble("x: blt $t0, 10, x")
        assert len(program.text.data) == 12  # addiu + slt + bne

    def test_mul_expansion(self):
        program = assemble("mul $t0, $t1, $t2")
        first = decode(program.text.word_at(TEXT_BASE))
        second = decode(program.text.word_at(TEXT_BASE + 4))
        assert first.mnemonic is Mnemonic.MULT
        assert second.mnemonic is Mnemonic.MFLO

    def test_div_three_operand(self):
        program = assemble("div $t0, $t1, $t2")
        assert decode(program.text.word_at(TEXT_BASE)).mnemonic is Mnemonic.DIV
        assert decode(program.text.word_at(TEXT_BASE + 4)).mnemonic is Mnemonic.MFLO

    def test_rem(self):
        program = assemble("rem $t0, $t1, $t2")
        assert decode(program.text.word_at(TEXT_BASE + 4)).mnemonic is Mnemonic.MFHI

    def test_ret(self):
        program = assemble("ret")
        instruction = decode(program.text.word_at(TEXT_BASE))
        assert instruction.mnemonic is Mnemonic.JR
        assert instruction.rs == 31

    def test_not_and_neg(self):
        program = assemble("not $t0, $t1\nneg $t2, $t3")
        assert decode(program.text.word_at(TEXT_BASE)).mnemonic is Mnemonic.NOR
        assert decode(program.text.word_at(TEXT_BASE + 4)).mnemonic is Mnemonic.SUB

    def test_load_with_symbol_expands(self):
        program = assemble(".data\nv: .word 42\n.text\nlw $t0, v")
        assert len(program.text.data) == 8

    def test_unknown_mnemonic_rejected(self):
        with pytest.raises(AssemblerError):
            assemble("frobnicate $t0")

    def test_instruction_in_data_rejected(self):
        with pytest.raises(AssemblerError):
            assemble(".data\nnop")


class TestJalr:
    def test_jalr_one_operand_defaults_ra(self):
        program = assemble("jalr $t0")
        instruction = decode(program.text.word_at(TEXT_BASE))
        assert instruction.rd == 31
        assert instruction.rs == 8

    def test_jalr_two_operands(self):
        program = assemble("jalr $t1, $t0")
        instruction = decode(program.text.word_at(TEXT_BASE))
        assert instruction.rd == 9
