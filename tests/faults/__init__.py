"""Test package."""
