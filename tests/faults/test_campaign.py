"""Fault campaign tests: the paper's Section 6.3 claims, made executable."""

import pytest

from repro.asm.assembler import assemble
from repro.faults.campaign import DETECTED, FaultCampaign, Outcome
from repro.faults.models import BitFlipFault, TransientFetchFault

SOURCE = """
main:   li $t0, 6
        li $s0, 0
loop:   addu $s0, $s0, $t0
        addi $t0, $t0, -1
        bgtz $t0, loop
        move $a0, $s0
        li $v0, 1
        syscall
        li $v0, 10
        syscall
"""


@pytest.fixture(scope="module")
def campaign():
    return FaultCampaign(assemble(SOURCE), iht_size=4)


class TestGolden:
    def test_golden_captured(self, campaign):
        assert campaign.golden_console == "21"
        assert campaign.executed_addresses


class TestSingleBit:
    def test_exhaustive_single_bit_never_silent(self, campaign):
        """Paper §6.3: a single bit flip in executed code is always caught —
        by the CIC, or earlier by a baseline machine check."""
        report = campaign.run_campaign(campaign.exhaustive_single_bit())
        counts = report.counts()
        assert counts[Outcome.SDC] == 0
        assert counts[Outcome.BENIGN] == 0
        assert counts[Outcome.HANG] == 0
        assert report.detection_rate == 1.0

    def test_random_generator_targets_executed_code(self, campaign):
        faults = campaign.random_single_bit(50, seed=3)
        executed = set(campaign.executed_addresses)
        assert all(fault.address in executed for fault in faults)

    def test_generators_deterministic(self, campaign):
        first = campaign.random_single_bit(10, seed=9)
        second = campaign.random_single_bit(10, seed=9)
        assert first == second


class TestUnexecutedCode:
    def test_flip_in_dead_code_is_benign(self):
        program = assemble("""
main:   j live
dead:   addu $s0, $s0, $s0
live:   li $v0, 10
        syscall
        """)
        campaign = FaultCampaign(program, iht_size=4)
        dead = program.symbols["dead"]
        result = campaign.run_single(BitFlipFault(dead, (7,)))
        assert result.outcome is Outcome.BENIGN


class TestMultiBit:
    def test_same_column_pairs_can_escape_xor(self, campaign):
        faults = campaign.random_multi_bit(
            30, flips=2, seed=5, same_column=True
        )
        report = campaign.run_campaign(faults)
        # The XOR checksum provably cannot see these inside one block; some
        # pairs span blocks (detected) and some alter semantics (SDC).
        assert report.detection_rate < 1.0

    def test_two_bits_one_word_always_flagged_by_xor(self, campaign):
        """Two flips in ONE word always change the XOR (two columns)."""
        faults = campaign.random_multi_bit(30, flips=2, seed=6)
        report = campaign.run_campaign(faults)
        counts = report.counts()
        assert counts[Outcome.SDC] == 0
        assert counts[Outcome.BENIGN] == 0


class TestTransient:
    def test_transient_fetch_fault_detected(self, campaign):
        address = campaign.executed_addresses[2]
        fault = TransientFetchFault(address, (5,), occurrence=1)
        result = campaign.run_single(fault)
        assert result.outcome in DETECTED

    def test_summary_readable(self, campaign):
        report = campaign.run_campaign(campaign.random_single_bit(5, seed=1))
        text = report.summary()
        assert "coverage" in text
        assert "5 faults" in text
