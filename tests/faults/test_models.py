"""Fault model tests."""

from repro.faults.models import BitFlipFault, TransientFetchFault, make_fetch_hook
from repro.pipeline.memory import Memory


class TestBitFlipFault:
    def test_mask(self):
        fault = BitFlipFault(0x400000, (0, 4, 31))
        assert fault.mask == 0x80000011

    def test_apply_to_memory(self):
        memory = Memory()
        memory.write_word(0x400000, 0xF)
        BitFlipFault(0x400000, (0,)).apply_to_memory(memory)
        assert memory.read_word(0x400000) == 0xE

    def test_describe(self):
        text = BitFlipFault(0x400000, (3,)).describe()
        assert "0x00400000" in text and "3" in text


class TestTransientFetchFault:
    def test_fires_on_nth_occurrence_only(self):
        fault = TransientFetchFault(0x400000, (0,), occurrence=2)
        assert fault.transform(0x400000, 0x10) == 0x10  # first fetch clean
        assert fault.transform(0x400000, 0x10) == 0x11  # second flipped
        assert fault.transform(0x400000, 0x10) == 0x10  # third clean again

    def test_other_addresses_untouched(self):
        fault = TransientFetchFault(0x400000, (0,))
        assert fault.transform(0x400004, 0x10) == 0x10

    def test_reset(self):
        fault = TransientFetchFault(0x400000, (0,), occurrence=1)
        fault.transform(0x400000, 0)
        fault.reset()
        assert fault.transform(0x400000, 0x10) == 0x11

    def test_hook_composition(self):
        first = TransientFetchFault(0x400000, (0,))
        second = TransientFetchFault(0x400000, (1,))
        hook = make_fetch_hook([first, second])
        assert hook(0x400000, 0) == 0b11
