"""Test package."""
