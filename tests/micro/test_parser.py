"""Microoperation parser tests, including the paper's literal syntax."""

import pytest

from repro.errors import ConfigurationError
from repro.micro.microop import Const, Ref, TupleArg
from repro.micro.parser import parse_microop, parse_microprogram

FIGURE_1 = """
current_pc = CPC.read();
instr = IMAU.read(current_pc);
null = IReg.write(instr);
null = CPC.inc();
"""

FIGURE_3B_EXTENSION = """
start = STA.read();
null =[start==0]STA.write(current_pc);
ohashv = RHASH.read();
nhashv = HASHFU.ope(ohashv, instr);
null = RHASH.write(nhashv)
"""

FIGURE_4 = """
start = STA.read();
end = PPC.read();
hashv = RHASH.read();
<found,match> = IHTbb.lookup(<start,end,hashv>);
exception0 = [found==0] '1';
exception1 = [found==1 & match==0] '1';
null = STA.reset();
null = RHASH.reset();
target = GPR.read(rs);
null = CPC.write(target)
"""


class TestPaperFigures:
    def test_figure_1_parses(self):
        program = parse_microprogram(FIGURE_1)
        assert len(program) == 4
        assert program.resources_used() == ("CPC", "IMAU", "IReg")

    def test_figure_3b_extension_parses(self):
        program = parse_microprogram(FIGURE_3B_EXTENSION)
        assert len(program) == 5
        guarded = program.ops[1]
        assert guarded.guard is not None
        assert guarded.guard.terms == (("start", 0),)

    def test_figure_4_parses(self):
        program = parse_microprogram(FIGURE_4)
        lookup = program.ops[3]
        assert lookup.dests == ("found", "match")
        assert isinstance(lookup.args[0], TupleArg)
        assert [item.name for item in lookup.args[0].items] == [
            "start", "end", "hashv",
        ]
        exception1 = program.ops[5]
        assert exception1.guard.terms == (("found", 1), ("match", 0))
        assert exception1.args == (Const(1),)


class TestSyntaxForms:
    def test_null_dest(self):
        op = parse_microop("null = CPC.inc();")
        assert op.dests == ()

    def test_no_args(self):
        op = parse_microop("x = CPC.read()")
        assert op.args == ()

    def test_integer_literal_arg(self):
        op = parse_microop("null = CPC.write(4)")
        assert op.args == (Const(4),)

    def test_quoted_literal_rhs(self):
        op = parse_microop("flag = '1';")
        assert op.resource is None
        assert op.args == (Const(1),)

    def test_ref_args(self):
        op = parse_microop("y = ALU.ope(a, b)")
        assert op.args == (Ref("a"), Ref("b"))

    def test_comments_and_blanks_skipped(self):
        program = parse_microprogram("""
        // comment
        x = CPC.read();

        # another
        null = CPC.inc();
        """)
        assert len(program) == 2

    def test_describe_reparses(self):
        for text in (FIGURE_1, FIGURE_3B_EXTENSION, FIGURE_4):
            program = parse_microprogram(text)
            again = parse_microprogram(program.describe())
            assert [op.describe() for op in again.ops] == [
                op.describe() for op in program.ops
            ]

    def test_bad_line_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_microop("this is not a microop")

    def test_bad_rhs_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_microop("x = %%%")

    def test_nested_tuple_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_microop("x = T.lookup(<a,<b,c>>)")
