"""Datapath resource tests."""

import pytest

from repro.errors import ConfigurationError
from repro.cic.iht import InternalHashTable
from repro.micro.resources import (
    FunctionalUnit,
    HashTableResource,
    MemoryAccessUnit,
    Register,
    RegisterFileResource,
    ResourceSet,
)
from repro.pipeline.memory import Memory


class TestRegister:
    def test_read_write(self):
        reg = Register("R")
        reg.op_write(0x1234)
        assert reg.op_read() == 0x1234

    def test_width_masking(self):
        reg = Register("R", width=8)
        reg.op_write(0x1FF)
        assert reg.op_read() == 0xFF

    def test_reset(self):
        reg = Register("R", reset_value=7)
        reg.op_write(99)
        reg.op_reset()
        assert reg.op_read() == 7

    def test_inc_default_step(self):
        reg = Register("PC")
        reg.op_write(0x400000)
        reg.op_inc()
        assert reg.op_read() == 0x400004

    def test_inc_wraps(self):
        reg = Register("PC")
        reg.op_write(0xFFFFFFFC)
        reg.op_inc()
        assert reg.op_read() == 0

    def test_opaque_state_allowed(self):
        reg = Register("RHASH", reset_value=(1, 2))
        reg.op_write((3, 4))
        assert reg.op_read() == (3, 4)
        with pytest.raises(ConfigurationError):
            reg.op_inc()

    def test_invoke_dispatch(self):
        reg = Register("R")
        reg.invoke("write", (5,))
        assert reg.invoke("read", ()) == 5

    def test_unknown_operation(self):
        with pytest.raises(ConfigurationError):
            Register("R").invoke("explode", ())


class TestRegisterFile:
    def test_zero_register_stays_zero(self):
        regs = [0] * 32
        gpr = RegisterFileResource("GPR", regs)
        gpr.op_write(0, 99)
        assert gpr.op_read(0) == 0
        gpr.op_write(5, 42)
        assert gpr.op_read(5) == 42
        assert regs[5] == 42  # shared storage


class TestMemoryAccessUnit:
    def test_read_write(self):
        memory = Memory()
        port = MemoryAccessUnit("DMAU", memory)
        port.op_write(0x100, 7)
        assert port.op_read(0x100) == 7

    def test_fetch_hook_applies(self):
        memory = Memory()
        memory.write_word(0x100, 0xF0)
        port = MemoryAccessUnit("IMAU", memory, fetch_hook=lambda a, w: w ^ 1)
        assert port.op_read(0x100) == 0xF1
        assert memory.read_word(0x100) == 0xF0  # memory unchanged


class TestFunctionalUnit:
    def test_ope(self):
        alu = FunctionalUnit("ALU", lambda a, b: a + b)
        assert alu.op_ope(2, 3) == 5


class TestHashTableResource:
    def test_lookup_returns_found_match_pair(self):
        iht = InternalHashTable(2)
        iht.insert(0x100, 0x10C, 0xAB)
        resource = HashTableResource("IHTbb", iht)
        assert resource.op_lookup((0x100, 0x10C, 0xAB)) == (1, 1)
        assert resource.op_lookup((0x100, 0x10C, 0xCD)) == (1, 0)
        assert resource.op_lookup((0x200, 0x20C, 0xAB)) == (0, 0)


class TestResourceSet:
    def test_lookup_by_name(self):
        resources = ResourceSet(Register("A"), Register("B"))
        assert resources["A"].name == "A"
        assert "B" in resources
        assert "C" not in resources

    def test_duplicate_rejected(self):
        with pytest.raises(ConfigurationError):
            ResourceSet(Register("A"), Register("A"))

    def test_unknown_name(self):
        with pytest.raises(ConfigurationError):
            ResourceSet()["missing"]
