"""Experiment E5: execute the paper's literal microoperation figures.

Figure 1's fetch sequence, Figure 3(b)'s augmented IF stage, and Figure 4's
augmented ID stage are parsed from their paper-text form and executed
against real resources; the resulting monitor behaviour must equal the
behavioural CodeIntegrityChecker over the same instruction stream.
"""

from repro.cfg.hashgen import build_fht
from repro.cic.checker import CodeIntegrityChecker
from repro.cic.hashes import XorChecksum, block_hash
from repro.cic.iht import InternalHashTable
from repro.micro.parser import parse_microprogram
from repro.micro.program import MicroContext
from repro.micro.resources import (
    FunctionalUnit,
    HashTableResource,
    MemoryAccessUnit,
    Register,
    RegisterFileResource,
    ResourceSet,
)
from repro.osmodel.handler import OSExceptionHandler
from repro.osmodel.policies import get_policy
from repro.pipeline.memory import Memory

FIGURE_1 = """
current_pc = CPC.read();
instr = IMAU.read(current_pc);
null = IReg.write(instr);
null = CPC.inc();
"""

FIGURE_3B = """
current_pc = CPC.read();
instr = IMAU.read(current_pc);
null = IReg.write(instr);
null = CPC.inc();
start = STA.read();
null =[start==0]STA.write(current_pc);
ohashv = RHASH.read();
nhashv = HASHFU.ope(ohashv, instr);
null = RHASH.write(nhashv)
"""

FIGURE_4 = """
start = STA.read();
end = PPC.read();
hashv = RHASH.read();
<found,match> = IHTbb.lookup(<start,end,hashv>);
exception0 = [found==0] '1';
exception1 = [found==1 & match==0] '1';
null = STA.reset();
null = RHASH.reset();
target = GPR.read(rs);
null = CPC.write(target)
"""


def _datapath(words, iht):
    memory = Memory()
    for index, word in enumerate(words):
        memory.write_word(0x400000 + 4 * index, word)
    algorithm = XorChecksum()
    regs = [0] * 32
    regs[31] = 0x400100  # jr $ra target
    resources = ResourceSet(
        Register("CPC", reset_value=0x400000),
        Register("PPC"),
        Register("IReg"),
        Register("STA", reset_value=0),
        Register("RHASH", reset_value=algorithm.initial()),
        MemoryAccessUnit("IMAU", memory),
        FunctionalUnit("HASHFU", algorithm.update),
        HashTableResource("IHTbb", iht),
        RegisterFileResource("GPR", regs),
    )
    resources["CPC"].op_write(0x400000)
    return resources


class TestFigure1:
    def test_fetch_sequence(self):
        iht = InternalHashTable(2)
        resources = _datapath([0x11111111, 0x22222222], iht)
        program = parse_microprogram(FIGURE_1)
        program.execute(resources, MicroContext())
        assert resources["IReg"].op_read() == 0x11111111
        assert resources["CPC"].op_read() == 0x400004
        program.execute(resources, MicroContext())
        assert resources["IReg"].op_read() == 0x22222222


class TestFigure3b:
    def test_sta_latched_once_and_hash_accumulates(self):
        words = [0xAAAA0000, 0x0000BBBB, 0x12345678]
        iht = InternalHashTable(2)
        resources = _datapath(words, iht)
        program = parse_microprogram(FIGURE_3B)
        for _ in words:
            program.execute(resources, MicroContext())
        assert resources["STA"].op_read() == 0x400000  # latched at block start
        expected = block_hash(XorChecksum(), words)
        assert resources["RHASH"].op_read() == expected


class TestFigure4:
    def _run_block(self, words, iht, expected_hash):
        resources = _datapath(words, iht)
        if_program = parse_microprogram(FIGURE_3B)
        id_program = parse_microprogram(FIGURE_4)
        for _ in words:
            if_program.execute(resources, MicroContext())
        # The flow-control instruction (jr $ra) is now in ID: PPC holds its
        # address, the last word fetched.
        resources["PPC"].op_write(0x400000 + 4 * (len(words) - 1))
        context = MicroContext(fields={"rs": 31})
        id_program.execute(resources, context)
        return resources, context

    def test_hash_hit(self):
        words = [0x11111111, 0x03E0_0008]  # something + jr $ra
        iht = InternalHashTable(2)
        iht.insert(0x400000, 0x400004, block_hash(XorChecksum(), words))
        resources, context = self._run_block(words, iht, None)
        assert context.value("found") == 1
        assert context.value("match") == 1
        assert context.value("exception0") == 0
        assert context.value("exception1") == 0
        # Monitor reset and the jump executed:
        assert resources["STA"].op_read() == 0
        assert resources["RHASH"].op_read() == 0
        assert resources["CPC"].op_read() == 0x400100

    def test_hash_miss_raises_exception0(self):
        words = [0x11111111, 0x03E0_0008]
        iht = InternalHashTable(2)  # empty: tag absent
        _, context = self._run_block(words, iht, None)
        assert context.value("exception0") == 1
        assert context.value("exception1") == 0

    def test_hash_mismatch_raises_exception1(self):
        words = [0x11111111, 0x03E0_0008]
        iht = InternalHashTable(2)
        iht.insert(0x400000, 0x400004, 0xBAD)  # wrong expected hash
        _, context = self._run_block(words, iht, None)
        assert context.value("exception0") == 0
        assert context.value("exception1") == 1


class TestEquivalenceWithBehaviouralChecker:
    def test_figure_programs_match_fast_checker(self):
        """Drive both monitors with the same two-block stream."""
        from repro.asm.assembler import assemble

        program = assemble("""
        main:
            li $t0, 2
        loop:
            addi $t0, $t0, -1
            bgtz $t0, loop
            li $v0, 10
            syscall
        """)
        algorithm = XorChecksum()
        fht = build_fht(program, algorithm)

        def make_fast():
            iht = InternalHashTable(4)
            handler = OSExceptionHandler(
                fht=fht, iht=iht, policy=get_policy("lru_half")
            )
            return CodeIntegrityChecker(iht, handler, algorithm)

        from repro.pipeline.funcsim import FuncSim

        fast = make_fast()
        result = FuncSim(program, monitor=fast).run()

        # Micro-level: replay the same fetch stream through Figure 3b/4.
        from repro.cic.micromonitor import MicroMonitor

        iht = InternalHashTable(4)
        handler = OSExceptionHandler(fht=fht, iht=iht, policy=get_policy("lru_half"))
        micro = MicroMonitor(iht, handler, XorChecksum())
        result_micro = FuncSim(program, monitor=micro).run()

        assert result.monitor_stats.lookups == result_micro.monitor_stats.lookups
        assert result.monitor_stats.misses == result_micro.monitor_stats.misses
        assert result.monitor_stats.hits == result_micro.monitor_stats.hits
        assert result.cycles == result_micro.cycles
