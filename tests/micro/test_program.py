"""Microprogram execution tests."""

import pytest

from repro.errors import ConfigurationError
from repro.micro.microop import Const, Guard, MicroOp, Ref
from repro.micro.parser import parse_microprogram
from repro.micro.program import MicroContext, MicroProgram
from repro.micro.resources import FunctionalUnit, Register, ResourceSet


def _resources():
    return ResourceSet(
        Register("A", reset_value=0),
        Register("B", reset_value=0),
        FunctionalUnit("ADDER", lambda x, y: (x + y) & 0xFFFFFFFF),
    )


class TestExecution:
    def test_sequential_dataflow(self):
        program = parse_microprogram("""
        x = A.read();
        y = ADDER.ope(x, 5);
        null = B.write(y);
        """)
        resources = _resources()
        resources["A"].op_write(10)
        program.execute(resources, MicroContext())
        assert resources["B"].op_read() == 15

    def test_fields_resolve_as_fallback(self):
        program = parse_microprogram("y = ADDER.ope(rs, imm);")
        context = MicroContext(fields={"rs": 4, "imm": 38})
        program.execute(_resources(), context)
        assert context.value("y") == 42

    def test_vars_shadow_fields(self):
        program = parse_microprogram("""
        rs = A.read();
        y = ADDER.ope(rs, 0);
        """)
        resources = _resources()
        resources["A"].op_write(7)
        context = MicroContext(fields={"rs": 999})
        program.execute(resources, context)
        assert context.value("y") == 7

    def test_guard_true_executes(self):
        program = parse_microprogram("""
        flag = A.read();
        null = [flag==0]B.write(77);
        """)
        resources = _resources()
        program.execute(resources, MicroContext())
        assert resources["B"].op_read() == 77

    def test_guard_false_skips_side_effect(self):
        program = parse_microprogram("""
        flag = A.read();
        null = [flag==1]B.write(77);
        """)
        resources = _resources()
        program.execute(resources, MicroContext())
        assert resources["B"].op_read() == 0

    def test_guard_false_binds_dest_zero(self):
        program = parse_microprogram("""
        flag = A.read();
        excep = [flag==1] '1';
        """)
        context = program.execute(_resources(), MicroContext())
        assert context.value("excep") == 0

    def test_guard_conjunction(self):
        program = parse_microprogram("""
        a = A.read();
        b = B.read();
        both = [a==0 & b==0] '1';
        """)
        context = program.execute(_resources(), MicroContext())
        assert context.value("both") == 1

    def test_unbound_variable_rejected(self):
        program = parse_microprogram("y = ADDER.ope(nope, 1);")
        with pytest.raises(ConfigurationError):
            program.execute(_resources(), MicroContext())

    def test_tuple_dest_arity_checked(self):
        bad = MicroProgram(
            [MicroOp(dests=("a", "b"), resource="A", operation="read", args=())]
        )
        with pytest.raises(ConfigurationError):
            bad.execute(_resources(), MicroContext())

    def test_concatenation_embeds(self):
        base = parse_microprogram("x = A.read();", "base")
        extension = parse_microprogram("null = B.write(x);", "ext")
        combined = base + extension
        resources = _resources()
        resources["A"].op_write(3)
        combined.execute(resources, MicroContext())
        assert resources["B"].op_read() == 3
        assert len(combined) == 2

    def test_literal_assignment(self):
        program = MicroProgram(
            [MicroOp(dests=("k",), resource=None, operation=None, args=(Const(9),))]
        )
        context = program.execute(_resources(), MicroContext())
        assert context.value("k") == 9

    def test_describe_contains_guard(self):
        op = MicroOp(
            dests=("x",),
            resource="A",
            operation="read",
            args=(),
            guard=Guard((("g", 1),)),
        )
        assert "[g==1]" in op.describe()

    def test_resources_used_ordered_unique(self):
        program = parse_microprogram("""
        x = A.read();
        y = B.read();
        z = A.read();
        """)
        assert program.resources_used() == ("A", "B")

    def test_ref_describe(self):
        assert Ref("abc").describe() == "abc"
