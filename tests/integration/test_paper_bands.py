"""Pin the headline reproduction claims of EXPERIMENTS.md at full scale.

These are the numbers the README advertises; if a change to the workloads,
the replacement policy, or the cycle model moves them out of band, this
test fails before the documentation silently goes stale.
"""

import pytest

from repro.eval.fig6_miss_rate import run_fig6
from repro.eval.table1_cycles import PAPER_AVERAGE_OVERHEAD, run_table1
from repro.eval.table2_area import run_table2


@pytest.fixture(scope="module")
def fig6_default():
    return run_fig6(scale="default")


@pytest.fixture(scope="module")
def table1_default():
    return run_table1(scale="default")


class TestFigure6Bands:
    def test_all_high_at_one_entry(self, fig6_default):
        for row in fig6_default.rows:
            if row.workload != "susan":  # susan's giant blocks self-hit
                assert row.miss_rates[1] > 0.25, row.workload

    def test_collapse_group_at_8(self, fig6_default):
        for name in ("dijkstra", "bitcount", "susan", "sha", "rijndael"):
            assert fig6_default.miss_rate(name, 8) < 0.12, name

    def test_persistent_group_at_16(self, fig6_default):
        assert fig6_default.miss_rate("stringsearch", 16) > 0.10
        assert fig6_default.miss_rate("blowfish", 16) > 0.10

    def test_everything_reduced_at_32(self, fig6_default):
        for row in fig6_default.rows:
            assert row.miss_rates[32] < 0.12, row.workload


class TestTable1Bands:
    def test_normalized_averages_near_paper(self, table1_default):
        """Paper: 14.7 % (CIC-8) and 7.7 % (CIC-16)."""
        average8 = table1_default.average_normalized_overhead(8)
        average16 = table1_default.average_normalized_overhead(16)
        assert average8 == pytest.approx(PAPER_AVERAGE_OVERHEAD[8], abs=4.0)
        assert average16 == pytest.approx(PAPER_AVERAGE_OVERHEAD[16], abs=3.0)

    def test_basicmath_row_matches_paper_exactly_in_band(self, table1_default):
        row = table1_default.row("basicmath")
        assert row.normalized_overhead(8) == pytest.approx(10.7, abs=2.0)

    def test_zero_rows(self, table1_default):
        for name in ("bitcount", "susan"):
            assert table1_default.row(name).normalized_overhead(8) < 1.0

    def test_monitor_adds_no_cycles_beyond_os_handling(self, table1_default):
        for row in table1_default.rows:
            for size in (8, 16):
                assert row.monitored_cycles[size] == (
                    row.base_cycles + 100 * row.misses[size]
                )


class TestTable2Bands:
    def test_area_and_period_bands(self):
        result = run_table2()
        assert result.row(1).area_overhead == pytest.approx(2.7, abs=0.1)
        assert result.row(8).area_overhead == pytest.approx(16.5, abs=2.0)
        assert result.row(16).area_overhead == pytest.approx(28.8, abs=0.1)
        for entries in (None, 1, 8, 16):
            assert result.row(entries).report.min_period == pytest.approx(37.90)
