"""Test package."""
