"""Integration: both simulators, both monitor implementations, all workloads.

For every workload (tiny scale), the functional ISS with the behavioural
checker and the cycle-level pipeline with the *microoperation-driven*
monitor must agree on every observable: cycles, console, instruction count,
block trace, and monitor statistics.  This single property transitively
validates the scoreboard against the stage machine and the paper's
microoperation listings against the behavioural CIC.
"""

import pytest

from repro.cfg.hashgen import build_fht
from repro.cic.hashes import get_hash
from repro.cic.iht import InternalHashTable
from repro.cic.micromonitor import MicroMonitor
from repro.osmodel.handler import OSExceptionHandler
from repro.osmodel.loader import load_process
from repro.osmodel.policies import get_policy
from repro.pipeline.cpu import PipelineCPU
from repro.pipeline.funcsim import FuncSim
from repro.workloads.suite import WORKLOAD_NAMES, build, workload_inputs

IHT_SIZE = 8


def _micro_monitor(program, hash_name="xor"):
    algorithm = get_hash(hash_name)
    fht = build_fht(program, algorithm)
    iht = InternalHashTable(IHT_SIZE)
    handler = OSExceptionHandler(fht=fht, iht=iht, policy=get_policy("lru_half"))
    return MicroMonitor(iht, handler, algorithm)


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_unmonitored_equivalence(name):
    program = build(name, "tiny")
    inputs = workload_inputs(name, "tiny")
    func_result = FuncSim(program, collect_trace=True, inputs=inputs).run()
    pipe_result = PipelineCPU(program, collect_trace=True, inputs=inputs).run()
    assert func_result.cycles == pipe_result.cycles
    assert func_result.console == pipe_result.console
    assert func_result.instructions == pipe_result.instructions
    assert [e.key for e in func_result.block_trace] == [
        e.key for e in pipe_result.block_trace
    ]


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_monitored_equivalence_fast_vs_micro(name):
    program = build(name, "tiny")
    inputs = workload_inputs(name, "tiny")
    process = load_process(program, iht_size=IHT_SIZE)
    func_result = FuncSim(program, monitor=process.monitor, inputs=inputs).run()
    pipe_result = PipelineCPU(
        program, monitor=_micro_monitor(program), inputs=inputs
    ).run()
    assert func_result.cycles == pipe_result.cycles
    assert func_result.console == pipe_result.console
    for field in ("lookups", "hits", "misses", "mismatches", "os_cycles"):
        assert getattr(func_result.monitor_stats, field) == getattr(
            pipe_result.monitor_stats, field
        ), field


@pytest.mark.parametrize("name", ["bitcount", "stringsearch", "sha"])
def test_monitoring_cost_is_exactly_os_cycles(name):
    program = build(name, "tiny")
    inputs = workload_inputs(name, "tiny")
    baseline = FuncSim(program, inputs=inputs).run()
    process = load_process(program, iht_size=IHT_SIZE)
    monitored = FuncSim(program, monitor=process.monitor, inputs=inputs).run()
    assert monitored.cycles == baseline.cycles + monitored.monitor_stats.os_cycles
