"""Integration: end-to-end attack/fault detection stories.

Each scenario models a threat from the paper's introduction — memory-
resident code modification after the load-time checkpoint, transient
fetch-path corruption, control-flow diversion — and asserts the monitor's
verdict on both simulator engines.
"""

import pytest

from repro.errors import MonitorViolation
from repro.asm.assembler import assemble
from repro.faults.models import TransientFetchFault, make_fetch_hook
from repro.osmodel.loader import load_process
from repro.pipeline.cpu import PipelineCPU
from repro.pipeline.funcsim import FuncSim

VICTIM = """
main:   li $s0, 0
        li $t0, 8
loop:   addu $s0, $s0, $t0
        addi $t0, $t0, -1
        bgtz $t0, loop
        move $a0, $s0
        li $v0, 1
        syscall
        li $v0, 10
        syscall
"""

ENGINES = [FuncSim, PipelineCPU]


@pytest.mark.parametrize("engine", ENGINES)
class TestMemoryResidentAttack:
    def test_patched_instruction_detected(self, engine):
        """Attacker rewrites the accumulator update after load time."""
        program = assemble(VICTIM)
        process = load_process(program, iht_size=4)
        simulator = engine(program, monitor=process.monitor)
        loop = program.symbols["loop"]
        # addu $s0,$s0,$t0 -> subu $s0,$s0,$t0 (funct 33 -> 35: flip bit 1)
        simulator.state.memory.flip_bit(loop, 1)
        with pytest.raises(MonitorViolation) as excinfo:
            simulator.run()
        assert excinfo.value.start <= loop <= excinfo.value.end

    def test_injected_jump_detected(self, engine):
        """Attacker diverts the loop's branch somewhere else."""
        program = assemble(VICTIM)
        process = load_process(program, iht_size=4)
        simulator = engine(program, monitor=process.monitor)
        branch = program.symbols["loop"] + 8  # the bgtz
        simulator.state.memory.flip_bit(branch, 0)  # offset bit: new target
        with pytest.raises(MonitorViolation):
            simulator.run()

    def test_untampered_run_passes(self, engine):
        program = assemble(VICTIM)
        process = load_process(program, iht_size=4)
        result = engine(program, monitor=process.monitor).run()
        assert result.console == "36"
        assert result.monitor_stats.mismatches == 0


@pytest.mark.parametrize("engine", ENGINES)
class TestTransientFetchFault:
    def test_soft_error_on_fetch_path_detected(self, engine):
        """The word is intact in memory; one fetch delivers a flipped bit.

        This is exactly the coverage the paper claims over cache-resident
        checkers (Section 3.2): the hash is computed on what *enters the
        pipeline*.
        """
        program = assemble(VICTIM)
        process = load_process(program, iht_size=4)
        loop = program.symbols["loop"]
        fault = TransientFetchFault(loop, (2,), occurrence=3)
        simulator = engine(
            program, monitor=process.monitor, fetch_hook=make_fetch_hook([fault])
        )
        with pytest.raises(MonitorViolation):
            simulator.run()

    def test_fault_after_last_fetch_is_harmless(self, engine):
        program = assemble(VICTIM)
        process = load_process(program, iht_size=4)
        loop = program.symbols["loop"]
        fault = TransientFetchFault(loop, (2,), occurrence=10_000)
        simulator = engine(
            program, monitor=process.monitor, fetch_hook=make_fetch_hook([fault])
        )
        assert simulator.run().console == "36"


class TestDetectionLatency:
    def test_detected_at_end_of_tampered_block(self):
        """Detection happens at the block's flow-control instruction, not
        at the tampered instruction itself (Section 3.1's granularity
        trade-off)."""
        program = assemble(VICTIM)
        process = load_process(program, iht_size=4)
        simulator = FuncSim(program, monitor=process.monitor)
        loop = program.symbols["loop"]
        simulator.state.memory.flip_bit(loop, 1)
        with pytest.raises(MonitorViolation) as excinfo:
            simulator.run()
        # The violated block ends at the bgtz terminating the loop body.
        assert excinfo.value.end == loop + 8

    def test_stronger_hash_detects_same_attack(self):
        program = assemble(VICTIM)
        process = load_process(program, iht_size=4, hash_name="crc32")
        simulator = FuncSim(program, monitor=process.monitor)
        simulator.state.memory.flip_bit(program.symbols["loop"], 1)
        with pytest.raises(MonitorViolation):
            simulator.run()
