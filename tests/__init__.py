"""Test package."""
