"""Differential pinning of the golden-trace backend: ``golden ≡ full``.

The golden backend may only ever be a *faster* way to compute the same
answer.  These tests compare :func:`repro.exec.golden.run_one_golden`
against the full-replay kernel :func:`repro.faults.campaign.run_one` on
outcome, detail, *and* detection latency — for a crafted injection per
Outcome class, for every fault model, and for all five attack classes in
both persistent and transient delivery.
"""

from __future__ import annotations

import random

import pytest

from repro.asm.assembler import assemble
from repro.attacks import AttackCorpus
from repro.attacks.generators import ATTACK_CLASSES, PERSISTENT_CLASSES
from repro.errors import ConfigurationError
from repro.exec import CampaignRunner, CampaignSpec, build_golden_store, run_one_golden
from repro.faults.campaign import FaultCampaign, Outcome, build_context, run_one
from repro.faults.models import BitFlipFault, TransientFetchFault


def assert_equivalent(store, fault):
    """golden and full classify *fault* identically, latency included."""
    full = run_one(store.context, fault)
    golden = run_one_golden(store, fault)
    assert (golden.outcome, golden.latency, golden.detail) == (
        full.outcome,
        full.latency,
        full.detail,
    ), fault
    return full


def store_for(source: str):
    return build_golden_store(build_context(assemble(source)), interval=4)


class TestPerOutcome:
    """One crafted injection per Outcome class, both backends agreeing."""

    def test_detected_cic(self):
        store = store_for("""
main:   li $a0, 2
        li $v0, 1
        syscall
        li $v0, 10
        syscall
        """)
        result = assert_equivalent(
            store, BitFlipFault(store.context.program.symbols["main"], (0,))
        )
        assert result.outcome is Outcome.DETECTED_CIC

    def test_detected_baseline(self):
        store = store_for("""
main:   li $a0, 2
        li $v0, 1
        syscall
        li $v0, 10
        syscall
        """)
        main = store.context.program.symbols["main"]
        # Bit 29 turns `addiu` into an undecodable major opcode.
        for bit in range(26, 32):
            result = run_one(store.context, BitFlipFault(main, (bit,)))
            if result.outcome is Outcome.DETECTED_BASELINE:
                assert_equivalent(store, BitFlipFault(main, (bit,)))
                return
        pytest.fail("no baseline-detected flip found")

    def test_crashed(self):
        store = store_for("""
main:   li $v0, 1
        li $a0, 5
        syscall
        li $v0, 10
        syscall
        """)
        main = store.context.program.symbols["main"]
        result = assert_equivalent(
            store, (BitFlipFault(main, (6,)), BitFlipFault(main + 4, (6,)))
        )
        assert result.outcome is Outcome.CRASHED

    def test_hang(self):
        store = store_for("""
main:   li $t0, 0
loop:   addi $t0, $t0, 1
        li $t1, 5
        bne $t0, $t1, loop
        li $v0, 10
        syscall
        """)
        loop = store.context.program.symbols["loop"]
        result = assert_equivalent(
            store, (BitFlipFault(loop, (1,)), BitFlipFault(loop + 4, (1,)))
        )
        assert result.outcome is Outcome.HANG

    def test_silent_corruption(self):
        store = store_for("""
main:   li $t0, 1
        li $t1, 1
        addu $a0, $t0, $t1
        li $v0, 1
        syscall
        li $v0, 10
        syscall
        """)
        main = store.context.program.symbols["main"]
        result = assert_equivalent(
            store, (BitFlipFault(main, (3,)), BitFlipFault(main + 4, (3,)))
        )
        assert result.outcome is Outcome.SDC

    def test_benign_never_executed(self):
        store = store_for("""
main:   j live
dead:   addu $s0, $s0, $s0
live:   li $v0, 10
        syscall
        """)
        result = assert_equivalent(
            store, BitFlipFault(store.context.program.symbols["dead"], (7,))
        )
        assert result.outcome is Outcome.BENIGN

    def test_store_into_text_forces_full_fork(self):
        """A store over soon-to-execute text, sourced from an *identical*
        instruction elsewhere: the full backend's boot-time patch is
        silently repaired before its first fetch (BENIGN), which the
        golden backend only reproduces because written text words fork at
        checkpoint 0 instead of planning from fetch ordinals."""
        store = store_for("""
main:   la   $t0, src
        la   $t2, target
        lw   $t1, 0($t0)
        sw   $t1, 0($t2)     # overwrite target with src's equal word
src:    li   $a0, 7
target: li   $a0, 7
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
        """)
        target = store.context.program.symbols["target"]
        assert target in store.unsafe_words
        for bit in (0, 3, 16):
            result = assert_equivalent(store, BitFlipFault(target, (bit,)))
            # The store restored the pristine word before target ever
            # fetched, so the fault is masked — and golden must agree.
            assert result.outcome is Outcome.BENIGN

    def test_store_of_patched_word_back_into_text(self):
        """Read-modify-write of the patched word itself: the store writes
        the *corrupted* value back, the fetch sees it, both backends
        detect with identical latency."""
        store = store_for("""
main:   la   $t0, target
        lw   $t1, 0($t0)
        sw   $t1, 0($t0)     # rewrite the word about to execute
target: li   $a0, 7
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
        """)
        target = store.context.program.symbols["target"]
        assert target in store.unsafe_words
        result = assert_equivalent(store, BitFlipFault(target, (0,)))
        assert result.outcome is Outcome.DETECTED_CIC

    def test_benign_transient_occurrence_never_reached(self):
        """A transient fault on the 1000th fetch of a once-fetched word."""
        store = store_for("""
main:   li $a0, 2
        li $v0, 1
        syscall
        li $v0, 10
        syscall
        """)
        main = store.context.program.symbols["main"]
        result = assert_equivalent(
            store, TransientFetchFault(main, (0,), occurrence=1000)
        )
        assert result.outcome is Outcome.BENIGN


@pytest.fixture(scope="module")
def sha_store():
    spec = CampaignSpec(workload="sha", scale="tiny", iht_size=8)
    context = spec.build_context()
    return build_golden_store(context)


@pytest.fixture(scope="module")
def sha_campaign(sha_store):
    return FaultCampaign.from_context(sha_store.context)


class TestFaultModels:
    """Every fault model the campaign generators emit, both backends."""

    def test_random_single_bit(self, sha_store, sha_campaign):
        for fault in sha_campaign.random_single_bit(25, seed=11):
            assert_equivalent(sha_store, fault)

    def test_random_multi_bit(self, sha_store, sha_campaign):
        for fault in sha_campaign.random_multi_bit(10, flips=3, seed=12):
            assert_equivalent(sha_store, fault)

    def test_same_column_multi_word(self, sha_store, sha_campaign):
        for fault in sha_campaign.random_multi_bit(
            10, flips=2, seed=13, same_column=True
        ):
            assert_equivalent(sha_store, fault)

    def test_transient_occurrences(self, sha_store, sha_campaign):
        rng = random.Random(14)
        addresses = sha_campaign.executed_addresses
        for occurrence in (1, 2, 3, 50):
            for _ in range(5):
                fault = TransientFetchFault(
                    rng.choice(addresses),
                    (rng.randrange(32),),
                    occurrence=occurrence,
                )
                assert_equivalent(sha_store, fault)

    def test_mixed_persistent_and_transient(self, sha_store, sha_campaign):
        rng = random.Random(15)
        addresses = sha_campaign.executed_addresses
        for _ in range(8):
            fault = (
                BitFlipFault(rng.choice(addresses), (rng.randrange(32),)),
                TransientFetchFault(
                    rng.choice(addresses), (rng.randrange(32),), occurrence=2
                ),
            )
            assert_equivalent(sha_store, fault)

    def test_unexecuted_code(self, sha_store, sha_campaign):
        for fault in sha_campaign.random_single_bit(
            10, seed=16, executed_only=False
        ):
            assert_equivalent(sha_store, fault)


class TestAttackClasses:
    """All five attack classes, persistent and transient delivery."""

    @pytest.mark.parametrize("attack_class", ATTACK_CLASSES)
    def test_class_equivalence(self, sha_store, attack_class):
        corpus = AttackCorpus.from_context(sha_store.context)
        scenarios = corpus.sample(attack_class, 4, seed=21)
        assert scenarios, attack_class
        for scenario in scenarios:
            assert_equivalent(sha_store, scenario)

    def test_class_list_is_the_papers_five(self):
        assert len(PERSISTENT_CLASSES) == 5
        assert len(ATTACK_CLASSES) == 10


class TestRunnerIntegration:
    """The backend knob on the engine: same records, any worker count."""

    def test_backend_validation(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec(workload="sha", scale="tiny", backend="warp")

    def test_campaign_records_identical(self, tmp_path):
        faults_seed = 31
        records = {}
        for backend in ("full", "golden"):
            spec = CampaignSpec(workload="sha", scale="tiny", backend=backend)
            runner = CampaignRunner(spec)
            faults = runner.campaign.random_single_bit(40, seed=faults_seed)
            out = tmp_path / f"{backend}.jsonl"
            result = runner.run(faults, seed=faults_seed, out=out)
            records[backend] = [
                (record.index, record.outcome, record.latency, record.detail)
                for record in sorted(result.records, key=lambda r: r.index)
            ]
        assert records["golden"] == records["full"]

    def test_golden_resume(self, tmp_path):
        spec = CampaignSpec(workload="sha", scale="tiny", backend="golden")
        runner = CampaignRunner(spec, chunk_size=8)
        faults = runner.campaign.random_single_bit(32, seed=5)
        out = tmp_path / "resume.jsonl"
        partial = runner.run(faults, seed=5, out=out, stop_after_shards=2)
        assert not partial.complete
        resumed = CampaignRunner(spec, chunk_size=8).run(
            faults, seed=5, out=out, resume=True
        )
        assert resumed.complete
        reference = CampaignRunner(spec, chunk_size=8).run(faults, seed=5)
        assert resumed.report().summary() == reference.report().summary()

    def test_full_resume_refuses_golden_file(self, tmp_path):
        golden = CampaignSpec(workload="sha", scale="tiny", backend="golden")
        runner = CampaignRunner(golden, chunk_size=8)
        faults = runner.campaign.random_single_bit(16, seed=5)
        out = tmp_path / "golden.jsonl"
        runner.run(faults, seed=5, out=out, stop_after_shards=1)
        full = CampaignSpec(workload="sha", scale="tiny", backend="full")
        with pytest.raises(ConfigurationError, match="fingerprint"):
            CampaignRunner(full, chunk_size=8).run(
                faults, seed=5, out=out, resume=True
            )


class TestGoldenStoreInternals:
    def test_checkpoints_cover_the_run(self, sha_store):
        marks = [checkpoint.instructions for checkpoint in sha_store.checkpoints]
        assert marks[0] == 0
        assert marks == sorted(marks)
        assert marks[-1] < sha_store.golden_instructions
        # The spacing honours the configured interval.
        assert all(
            later - earlier <= sha_store.interval
            for earlier, later in zip(marks, marks[1:])
        )

    def test_fetch_ordinals_account_for_every_instruction(self, sha_store):
        total = sum(
            len(ordinals) for ordinals in sha_store.fetch_ordinals.values()
        )
        assert total == sha_store.golden_instructions

    def test_trace_matches_context_executed_set(self, sha_store):
        from repro.pipeline.trace import executed_addresses

        assert (
            executed_addresses(sha_store.trace)
            == sha_store.context.executed_addresses
        )
