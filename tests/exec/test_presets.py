"""Campaign preset registry + the ``mibench-tiny`` workload roster.

The preset registry is the CLI's contract (``tests/test_cli.py`` pins
the parser's choice tuple against it); this file pins the presets'
semantics — and gives the five MiBench-class workloads beyond the
bitcount/dijkstra/sha trio (rijndael, susan, patricia, blowfish,
basicmath) end-to-end campaign smoke coverage on the execution harness,
not just the cache-shape assertions of ``tests/workloads``.
"""

import pytest

from repro.errors import ConfigurationError
from repro.exec import CampaignRunner, CampaignSpec
from repro.exec.presets import PRESETS, get_campaign_preset
from repro.workloads import WORKLOAD_NAMES

SEED = 7

MIBENCH = get_campaign_preset("mibench-tiny")


class TestRegistry:
    def test_lookup_round_trips(self):
        for name, preset in PRESETS.items():
            assert get_campaign_preset(name) is preset
            assert preset.name == name

    def test_unknown_preset_raises(self):
        with pytest.raises(ConfigurationError, match="unknown campaign preset"):
            get_campaign_preset("nosuch")

    def test_rosters_name_real_workloads(self):
        """Every preset's workload roster must resolve in the workload
        suite — a renamed workload should fail here, not in the CLI."""
        for preset in PRESETS.values():
            for workload in preset.workloads:
                assert workload in WORKLOAD_NAMES, (preset.name, workload)

    def test_mibench_roster_extends_the_classic_trio(self):
        assert MIBENCH.workloads == (
            "rijndael",
            "susan",
            "patricia",
            "blowfish",
            "basicmath",
        )
        assert not set(MIBENCH.workloads) & {"bitcount", "dijkstra", "sha"}

    def test_classic_presets_take_any_single_workload(self):
        assert get_campaign_preset("smoke").workloads == ()
        assert get_campaign_preset("exhaustive-single-bit").workloads == ()


class TestMibenchTinySmoke:
    """Each roster workload completes a tiny seeded campaign with full
    detection coverage — the wiring the CLI's ``campaign all --preset
    mibench-tiny`` sweep relies on."""

    @pytest.mark.parametrize("workload", MIBENCH.workloads)
    def test_campaign_completes_with_full_coverage(self, workload):
        spec = CampaignSpec(
            workload=workload, scale=MIBENCH.scale, backend=MIBENCH.backend
        )
        runner = CampaignRunner(spec, workers=1)
        faults = MIBENCH.faults(runner.campaign, seed=SEED)
        assert len(faults) == MIBENCH.fault_count
        result = runner.run(faults, seed=SEED)
        assert result.complete
        report = result.report()
        assert report.total == MIBENCH.fault_count
        assert report.detection_rate == 1.0, report.summary()

    def test_roster_faults_are_seed_deterministic(self):
        spec = CampaignSpec(
            workload=MIBENCH.workloads[0],
            scale=MIBENCH.scale,
            backend=MIBENCH.backend,
        )
        campaign = CampaignRunner(spec).campaign
        first = MIBENCH.faults(campaign, seed=SEED)
        second = MIBENCH.faults(campaign, seed=SEED)
        assert [repr(fault) for fault in first] == [
            repr(fault) for fault in second
        ]
