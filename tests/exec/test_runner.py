"""Engine tests: determinism across worker counts, streaming, resume."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.exec import CampaignRunner, CampaignSpec
from repro.faults import Outcome

SOURCE = """
main:   li $t0, 6
        li $s0, 0
loop:   addu $s0, $s0, $t0
        addi $t0, $t0, -1
        bgtz $t0, loop
        move $a0, $s0
        li $v0, 1
        syscall
        li $v0, 10
        syscall
"""

SEED = 42
FAULT_COUNT = 40
CHUNK = 8  # 40 faults -> 5 shards


@pytest.fixture(scope="module")
def spec():
    return CampaignSpec(source=SOURCE, name="runner-test", iht_size=4)


@pytest.fixture(scope="module")
def faults(spec):
    return CampaignRunner(spec).campaign.random_single_bit(FAULT_COUNT, seed=SEED)


@pytest.fixture(scope="module")
def serial_result(spec, faults):
    return CampaignRunner(spec, workers=1, chunk_size=CHUNK).run(faults, seed=SEED)


class TestDeterminism:
    def test_workers_1_vs_4_identical(self, spec, faults, serial_result):
        pooled = CampaignRunner(spec, workers=4, chunk_size=CHUNK).run(
            faults, seed=SEED
        )
        assert pooled.summary() == serial_result.summary()
        ordered = lambda result: [
            (record.index, record.fault, record.outcome, record.detail)
            for record in sorted(result.records, key=lambda r: r.index)
        ]
        assert ordered(pooled) == ordered(serial_result)

    def test_chunk_size_does_not_change_statistics(self, spec, faults, serial_result):
        other = CampaignRunner(spec, workers=1, chunk_size=7).run(faults, seed=SEED)
        assert other.summary() == serial_result.summary()

    def test_report_matches_legacy_serial_campaign(self, spec, faults, serial_result):
        legacy = CampaignRunner(spec).campaign.run_campaign(faults)
        assert serial_result.report().summary() == legacy.summary()


class TestStreaming:
    def test_jsonl_layout(self, spec, faults, tmp_path):
        out = tmp_path / "campaign.jsonl"
        result = CampaignRunner(spec, workers=1, chunk_size=CHUNK).run(
            faults, seed=SEED, out=out
        )
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        header, body = lines[0], lines[1:]
        assert header["type"] == "header"
        assert header["fingerprint"] == spec.fingerprint()
        assert header["total"] == FAULT_COUNT
        records = [entry for entry in body if entry["type"] == "record"]
        markers = [entry for entry in body if entry["type"] == "shard-done"]
        assert len(records) == FAULT_COUNT
        assert len(markers) == 5
        assert sorted(entry["index"] for entry in records) == list(range(FAULT_COUNT))
        assert result.complete

    def test_no_out_file_is_fine(self, spec, faults):
        result = CampaignRunner(spec, chunk_size=CHUNK).run(faults, seed=SEED)
        assert result.out is None
        assert result.complete


class TestResume:
    def test_resume_after_interrupt_completes(self, spec, faults, serial_result, tmp_path):
        out = tmp_path / "interrupted.jsonl"
        runner = CampaignRunner(spec, workers=2, chunk_size=CHUNK)
        partial = runner.run(faults, seed=SEED, out=out, stop_after_shards=2)
        assert not partial.complete
        assert len(partial.records) == 2 * CHUNK

        resumed = runner.run(faults, seed=SEED, out=out, resume=True)
        assert resumed.complete
        assert resumed.summary() == serial_result.summary()
        # Exactly the remaining three shards ran; the first two replayed.
        fresh_shards = {record.shard for record in resumed.records} - {
            record.shard for record in partial.records
        }
        assert len(fresh_shards) == 3

    def test_resume_on_complete_file_runs_nothing(self, spec, faults, serial_result, tmp_path):
        out = tmp_path / "done.jsonl"
        runner = CampaignRunner(spec, chunk_size=CHUNK)
        runner.run(faults, seed=SEED, out=out)
        before = out.read_text()
        resumed = runner.run(faults, seed=SEED, out=out, resume=True)
        assert resumed.complete
        assert resumed.summary() == serial_result.summary()
        assert out.read_text() == before

    def test_uncommitted_shard_records_are_discarded(self, spec, faults, tmp_path):
        out = tmp_path / "torn.jsonl"
        runner = CampaignRunner(spec, chunk_size=CHUNK)
        runner.run(faults, seed=SEED, out=out, stop_after_shards=2)
        # Drop the last line (a shard-done marker): that shard's records
        # are now uncommitted and must re-run on resume.
        lines = out.read_text().splitlines()
        assert json.loads(lines[-1])["type"] == "shard-done"
        out.write_text("\n".join(lines[:-1]) + "\n")
        resumed = runner.run(faults, seed=SEED, out=out, resume=True)
        assert resumed.complete
        assert sorted(record.index for record in resumed.records) == list(
            range(FAULT_COUNT)
        )

    def test_orphan_records_never_double_count(self, spec, faults, serial_result, tmp_path):
        """A shard interrupted mid-write leaves orphan record lines; after
        the shard re-runs on resume, a *further* resume of the now-complete
        file must not count both copies."""
        out = tmp_path / "orphans.jsonl"
        runner = CampaignRunner(spec, chunk_size=CHUNK)
        runner.run(faults, seed=SEED, out=out, stop_after_shards=2)
        lines = out.read_text().splitlines()
        assert json.loads(lines[-1])["type"] == "shard-done"
        out.write_text("\n".join(lines[:-1]) + "\n")  # tear off the commit

        completed = runner.run(faults, seed=SEED, out=out, resume=True)
        assert completed.complete
        again = runner.run(faults, seed=SEED, out=out, resume=True)
        assert again.complete
        assert len(again.records) == FAULT_COUNT
        assert again.summary() == serial_result.summary()

    def test_orphan_tail_resume_is_byte_identical(self, spec, faults, tmp_path):
        """Orphan record lines and torn tails from a kill mid-commit are
        truncated on resume, so the finished file is byte-for-byte the
        file an uninterrupted run would have written."""
        reference = tmp_path / "reference.jsonl"
        runner = CampaignRunner(spec, chunk_size=CHUNK)
        runner.run(faults, seed=SEED, out=reference)

        out = tmp_path / "killed.jsonl"
        runner.run(faults, seed=SEED, out=out, stop_after_shards=2)
        lines = out.read_text().splitlines()
        assert json.loads(lines[-1])["type"] == "shard-done"
        # Kill -9 mid-commit: the marker never landed and the last
        # record of the next shard is half-written.
        torn = "\n".join(lines[:-1]) + "\n" + lines[1][: len(lines[1]) // 2]
        out.write_text(torn)
        resumed = runner.run(faults, seed=SEED, out=out, resume=True)
        assert resumed.complete
        assert out.read_bytes() == reference.read_bytes()

    def test_corrupted_committed_record_reruns_shard(self, spec, faults, tmp_path):
        """A committed shard with a garbled record line is not trusted:
        the shard re-runs instead of silently losing the fault."""
        out = tmp_path / "corrupt.jsonl"
        runner = CampaignRunner(spec, chunk_size=CHUNK)
        runner.run(faults, seed=SEED, out=out)
        lines = out.read_text().splitlines()
        first_record = next(
            position for position, line in enumerate(lines)
            if json.loads(line)["type"] == "record"
        )
        lines[first_record] = lines[first_record][: len(lines[first_record]) // 2]
        out.write_text("\n".join(lines) + "\n")
        resumed = runner.run(faults, seed=SEED, out=out, resume=True)
        assert resumed.complete
        assert sorted(record.index for record in resumed.records) == list(
            range(FAULT_COUNT)
        )

    def test_resume_of_empty_file_starts_fresh(self, spec, faults, tmp_path):
        """A run that died before the header flushed leaves an empty file;
        resume starts the campaign from scratch instead of refusing."""
        out = tmp_path / "empty.jsonl"
        out.write_text("")
        result = CampaignRunner(spec, chunk_size=CHUNK).run(
            faults, seed=SEED, out=out, resume=True
        )
        assert result.complete
        header = json.loads(out.read_text().splitlines()[0])
        assert header["type"] == "header"

    def test_resume_refuses_mismatched_campaign(self, spec, faults, tmp_path):
        out = tmp_path / "other.jsonl"
        CampaignRunner(spec, chunk_size=CHUNK).run(faults, seed=SEED, out=out)
        with pytest.raises(ConfigurationError, match="cannot resume"):
            CampaignRunner(spec, chunk_size=CHUNK).run(
                faults, seed=SEED + 1, out=out, resume=True
            )

    def test_resume_requires_out(self, spec, faults):
        with pytest.raises(ConfigurationError, match="requires out"):
            CampaignRunner(spec).run(faults, seed=SEED, resume=True)


class TestValidation:
    def test_bad_worker_and_chunk_counts(self, spec):
        with pytest.raises(ConfigurationError):
            CampaignRunner(spec, workers=0)
        with pytest.raises(ConfigurationError):
            CampaignRunner(spec, chunk_size=0)


class TestCoverage:
    def test_all_single_bit_faults_detected(self, serial_result):
        """Paper §6.3 on the engine: single-bit faults never escape."""
        counts = serial_result.report().counts()
        assert counts[Outcome.SDC] == 0
        assert counts[Outcome.BENIGN] == 0
        assert serial_result.report().detection_rate == 1.0
