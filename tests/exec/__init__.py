"""Test package."""
