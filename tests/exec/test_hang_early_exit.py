"""Hang early-exit: the PC-set cycling detector.

``hang`` outcomes used to burn the entire instruction budget.  The armed
detector in :class:`~repro.pipeline.funcsim.FuncSim` declares the hang as
soon as the architected state provably cycles — and must classify exactly
like the budget-burning run it replaces, which these tests pin
differentially for every fault class (the detector is *sound*: it only
fires on recurrences that imply the budget would be exceeded).
"""

import pytest

from repro.asm.assembler import assemble
from repro.errors import SimulationError
from repro.faults import BitFlipFault, Outcome, build_context, run_one
from repro.faults.campaign import classify_run, make_probe, split_perturbation
from repro.faults.models import TransientFetchFault
from repro.osmodel.loader import load_process
from repro.pipeline.funcsim import FuncSim

COUNTER_LOOP = """
main:   li $t0, 0
loop:   addi $t0, $t0, 1
        li $t1, 5
        bne $t0, $t1, loop
        li $v0, 10
        syscall
"""


def run_one_budget(context, fault):
    """The pre-detector kernel: identical to run_one, detector disabled."""
    monitor = load_process(
        context.program,
        iht_size=context.iht_size,
        hash_name=context.hash_name,
        policy_name=context.policy_name,
    ).monitor
    persistents, transients = split_perturbation(fault)
    for part in transients:
        part.reset()
    probe = make_probe(persistents, transients)
    simulator = FuncSim(
        context.program,
        monitor=monitor,
        fetch_hook=probe,
        inputs=context.inputs,
        max_instructions=context.instruction_budget,
    )
    for part in persistents:
        part.apply_to_memory(simulator.state.memory)
    return classify_run(context, fault, simulator, probe)


class TestDetectorMechanics:
    def test_pure_loop_caught_in_a_fraction_of_the_budget(self):
        program = assemble("main:   j main\n")
        simulator = FuncSim(program, hang_detector=0, max_instructions=10_000)
        with pytest.raises(SimulationError, match="instruction limit"):
            simulator.run()
        assert simulator._executed < 100

    def test_disabled_by_default(self):
        program = assemble("main:   j main\n")
        simulator = FuncSim(program, max_instructions=500)
        with pytest.raises(SimulationError, match="instruction limit"):
            simulator.run()
        assert simulator._executed == 500

    def test_arming_threshold_respected(self):
        program = assemble("main:   j main\n")
        simulator = FuncSim(program, hang_detector=300, max_instructions=10_000)
        with pytest.raises(SimulationError, match="instruction limit"):
            simulator.run()
        assert 300 <= simulator._executed < 400

    def test_store_clears_the_state_table(self):
        # A loop that writes memory is never declared a cycle (the write
        # makes the recurrence test unsound), so the budget path rules.
        program = assemble("""
main:   li $t0, 4096
loop:   sw $zero, 0($t0)
        j loop
        """)
        simulator = FuncSim(program, hang_detector=0, max_instructions=2_000)
        with pytest.raises(SimulationError, match="instruction limit"):
            simulator.run()
        assert simulator._executed == 2_000


class TestClassificationPinned:
    def test_stable_loop_pair_classifies_hang_early(self):
        context = build_context(assemble(COUNTER_LOOP))
        loop = context.program.symbols["loop"]
        # Same bit column (the rs-field bit for register 8), two words of
        # one block: the XOR hash is preserved, and the patched code is
        # `addi $t0, $zero, 1` / `addiu $t1, $t0, 5` — registers stabilize
        # after one iteration, so the state provably cycles.
        pair = (BitFlipFault(loop, (24,)), BitFlipFault(loop + 4, (24,)))
        result = run_one(context, pair)
        budget = run_one_budget(context, pair)
        assert result.outcome is Outcome.HANG
        assert (result.outcome, result.detail, result.latency) == (
            budget.outcome, budget.detail, budget.latency
        )
        # And the detector really did exit early.
        monitor = load_process(context.program).monitor
        probe = make_probe(*split_perturbation(pair))
        simulator = FuncSim(
            context.program,
            monitor=monitor,
            fetch_hook=probe,
            max_instructions=context.instruction_budget,
            hang_detector=context.golden_instructions,
        )
        for part in split_perturbation(pair)[0]:
            part.apply_to_memory(simulator.state.memory)
        with pytest.raises(SimulationError):
            simulator.run()
        assert simulator._executed < context.instruction_budget // 20

    def test_counter_loop_pair_still_classifies_hang(self):
        # Registers change every iteration: no recurrence, so this hang
        # burns the budget exactly as before — classification unchanged.
        context = build_context(assemble(COUNTER_LOOP))
        loop = context.program.symbols["loop"]
        pair = (BitFlipFault(loop, (1,)), BitFlipFault(loop + 4, (1,)))
        result = run_one(context, pair)
        budget = run_one_budget(context, pair)
        assert result.outcome is Outcome.HANG
        assert (result.outcome, result.detail, result.latency) == (
            budget.outcome, budget.detail, budget.latency
        )

    def test_pending_transient_disarms_the_detector(self):
        # The persistent pair makes the loop register-stable (a provable
        # cycle on its own), but a transient part will corrupt the EIGHTH
        # fetch of the bne — an escape hatch the state table cannot see.
        # A detector that ignored the pending transient would declare a
        # hang around iteration two and misclassify; the gated detector
        # waits, the transient delivers, and the altered block hash is
        # caught by the CIC exactly as in the budget-burning run.
        context = build_context(assemble(COUNTER_LOOP))
        loop = context.program.symbols["loop"]
        fault = (
            BitFlipFault(loop, (24,)),
            BitFlipFault(loop + 4, (24,)),
            TransientFetchFault(loop + 8, (16,), occurrence=8),
        )
        result = run_one(context, fault)
        budget = run_one_budget(context, fault)
        assert result.outcome is not Outcome.HANG
        assert (result.outcome, result.detail, result.latency) == (
            budget.outcome, budget.detail, budget.latency
        )

    def test_random_campaign_differential(self):
        """Detector-on ≡ detector-off over a seeded mixed fault corpus."""
        from repro.faults.campaign import FaultCampaign
        from repro.workloads.suite import build, workload_inputs

        program = build("sha", "tiny")
        campaign = FaultCampaign(
            program, inputs=workload_inputs("sha", "tiny")
        )
        faults = campaign.random_single_bit(30, seed=9)
        faults += campaign.random_multi_bit(15, flips=2, seed=10)
        faults += campaign.random_multi_bit(
            15, flips=2, seed=11, same_column=True
        )
        for fault in faults:
            detected = run_one(campaign.context, fault)
            budget = run_one_budget(campaign.context, fault)
            assert (
                detected.outcome, detected.detail, detected.latency
            ) == (budget.outcome, budget.detail, budget.latency)
