"""One crafted fault per Outcome classification.

Each case constructs a program and a fault whose classification is forced
by the microarchitecture, not by luck: the hash-escaping cases use the XOR
checksum's structural blind spot (an even number of flips in one bit
column of one monitored block preserves the block hash), which is exactly
the §6.3 escape the paper analyses.
"""

import pytest

from repro.asm.assembler import assemble
from repro.errors import DecodingError
from repro.faults import BitFlipFault, Outcome, build_context, run_one
from repro.isa.encoding import decode


def context_for(source: str):
    return build_context(assemble(source))


class TestDetectedCic:
    def test_single_flip_in_executed_code(self):
        context = context_for("""
main:   li $a0, 2
        li $v0, 1
        syscall
        li $v0, 10
        syscall
        """)
        # Flip an immediate bit: the word still decodes, so the CIC's
        # block-hash comparison is the first line that can catch it.
        result = run_one(context, BitFlipFault(context.program.symbols["main"], (0,)))
        assert result.outcome is Outcome.DETECTED_CIC
        assert "violation" in result.detail


class TestDetectedBaseline:
    def test_undecodable_word_is_machine_checked(self):
        context = context_for("""
main:   li $a0, 2
        li $v0, 1
        syscall
        li $v0, 10
        syscall
        """)
        main = context.program.symbols["main"]
        word = context.program.word_at(main)
        bad_bit = next(
            bit for bit in range(32) if _undecodable(word ^ (1 << bit), main)
        )
        result = run_one(context, BitFlipFault(main, (bad_bit,)))
        # Decode happens before the monitor observes the word, so the
        # invalid-opcode trap fires first: a baseline detection.
        assert result.outcome is Outcome.DETECTED_BASELINE


def _undecodable(word: int, address: int) -> bool:
    try:
        decode(word, address)
    except DecodingError:
        return True
    return False


class TestCrashed:
    def test_hash_preserving_pair_reaches_unknown_syscall(self):
        context = context_for("""
main:   li $v0, 1
        li $a0, 5
        syscall
        li $v0, 10
        syscall
        """)
        main = context.program.symbols["main"]
        # Same bit column, two words, one block: XOR hash unchanged, but
        # $v0 becomes 65 — a syscall number the OS model rejects.
        pair = (BitFlipFault(main, (6,)), BitFlipFault(main + 4, (6,)))
        result = run_one(context, pair)
        assert result.outcome is Outcome.CRASHED
        assert "unknown syscall" in result.detail


class TestHang:
    def test_hash_preserving_pair_defeats_loop_exit(self):
        context = context_for("""
main:   li $t0, 0
loop:   addi $t0, $t0, 1
        li $t1, 5
        bne $t0, $t1, loop
        li $v0, 10
        syscall
        """)
        loop = context.program.symbols["loop"]
        # Step becomes 3 and the exit value becomes 7: with $t0 stuck at
        # multiples of 3, equality needs a 2^32 wrap — far past the budget.
        pair = (BitFlipFault(loop, (1,)), BitFlipFault(loop + 4, (1,)))
        result = run_one(context, pair)
        assert result.outcome is Outcome.HANG
        assert "instruction limit" in result.detail


class TestSilentCorruption:
    def test_hash_preserving_pair_changes_output(self):
        context = context_for("""
main:   li $t0, 1
        li $t1, 1
        addu $a0, $t0, $t1
        li $v0, 1
        syscall
        li $v0, 10
        syscall
        """)
        main = context.program.symbols["main"]
        # Both addends become 9: prints 18 instead of 2, hash unchanged.
        pair = (BitFlipFault(main, (3,)), BitFlipFault(main + 4, (3,)))
        result = run_one(context, pair)
        assert result.outcome is Outcome.SDC
        assert context.golden_console == "2"


class TestBenign:
    def test_flip_in_never_executed_code(self):
        context = context_for("""
main:   j live
dead:   addu $s0, $s0, $s0
live:   li $v0, 10
        syscall
        """)
        result = run_one(context, BitFlipFault(context.program.symbols["dead"], (7,)))
        assert result.outcome is Outcome.BENIGN


class TestKernelPurity:
    def test_run_one_is_stateless(self):
        """The same (context, fault) pair classifies identically on repeat —
        the property the parallel engine's determinism rests on."""
        context = context_for("""
main:   li $a0, 2
        li $v0, 1
        syscall
        li $v0, 10
        syscall
        """)
        fault = BitFlipFault(context.program.symbols["main"], (0,))
        first = run_one(context, fault)
        second = run_one(context, fault)
        assert (first.outcome, first.detail) == (second.outcome, second.detail)
