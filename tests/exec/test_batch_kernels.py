"""Differential pinning of the batched replay kernels.

The batched kernels may only ever be a *faster* way to compute the same
answers: ``run_batch_golden ≡ [run_one_golden] ≡ [run_one]`` on outcome,
detail, and detection latency, and ``run_batch_pipeline_golden ≡
[run_one_pipeline_golden] ≡ [run_one_pipeline]`` with measured cycles
included.  Pinned per Outcome class (the crafted hash-escape programs of
``tests/exec/test_outcomes.py``), per fault model, and across all ten
attack classes — the same matrix the per-fault backends are pinned on,
now with the whole list going through one kernel call so prefix sharing,
micro-snapshot reuse, and simulator reuse are all exercised.
"""

from __future__ import annotations

import random

import pytest

from repro.asm.assembler import assemble
from repro.attacks import AttackCorpus
from repro.attacks.generators import ATTACK_CLASSES
from repro.exec import (
    CampaignRunner,
    CampaignSpec,
    build_golden_store,
    run_batch_golden,
    run_one_golden,
)
from repro.exec.pipeline_golden import (
    build_pipeline_golden_store,
    run_batch_pipeline_golden,
    run_one_pipeline,
    run_one_pipeline_golden,
)
from repro.faults.campaign import (
    FaultCampaign,
    Outcome,
    WarmProcess,
    build_context,
    run_one,
    same_column_pairs,
)
from repro.faults.models import BitFlipFault, TransientFetchFault

SEED = 17


def fverdict(result):
    return (result.outcome, result.detail, result.latency)


def cverdict(result):
    return (result.outcome, result.detail, result.latency, result.cycles)


def assert_batch_equivalent(store, faults, full=True):
    """One batch call ≡ per-fault golden ≡ full replay, element-wise."""
    faults = list(faults)
    batched = run_batch_golden(store, faults)
    assert len(batched) == len(faults)
    for fault, batch in zip(faults, batched):
        assert batch.fault is fault
        assert fverdict(batch) == fverdict(run_one_golden(store, fault)), fault
        if full:
            assert fverdict(batch) == fverdict(
                run_one(store.context, fault)
            ), fault
    return batched


def store_for(source: str):
    return build_golden_store(build_context(assemble(source)), interval=4)


class TestPerOutcome:
    """One crafted injection per Outcome class, batched with company.

    Each batch mixes the crafted fault with a batch-of-1 re-check and a
    never-delivered transient (the BENIGN fast path), so every batch
    exercises the planner's benign short-circuit next to a planned fork.
    """

    def check(self, store, fault, expected):
        main_fetch = min(
            ordinals[0] for ordinals in store.fetch_ordinals.values()
        )
        assert main_fetch  # the store recorded a live program
        company = TransientFetchFault(
            next(iter(store.fetch_ordinals)), (0,), occurrence=100_000
        )
        [result] = assert_batch_equivalent(store, [fault])
        assert result.outcome is expected
        mixed = assert_batch_equivalent(store, [company, fault, fault])
        assert mixed[0].outcome is Outcome.BENIGN
        assert mixed[1].outcome is expected
        assert fverdict(mixed[1]) == fverdict(mixed[2])

    def test_detected_cic(self):
        store = store_for("""
main:   li $a0, 2
        li $v0, 1
        syscall
        li $v0, 10
        syscall
        """)
        main = store.context.program.symbols["main"]
        self.check(store, BitFlipFault(main, (0,)), Outcome.DETECTED_CIC)

    def test_detected_baseline(self):
        store = store_for("""
main:   li $a0, 2
        li $v0, 1
        syscall
        li $v0, 10
        syscall
        """)
        main = store.context.program.symbols["main"]
        for bit in range(26, 32):
            if (
                run_one(store.context, BitFlipFault(main, (bit,))).outcome
                is Outcome.DETECTED_BASELINE
            ):
                self.check(
                    store, BitFlipFault(main, (bit,)), Outcome.DETECTED_BASELINE
                )
                return
        pytest.fail("no baseline-detected flip found")

    def test_crashed(self):
        store = store_for("""
main:   li $v0, 1
        li $a0, 5
        syscall
        li $v0, 10
        syscall
        """)
        main = store.context.program.symbols["main"]
        self.check(
            store,
            (BitFlipFault(main, (6,)), BitFlipFault(main + 4, (6,))),
            Outcome.CRASHED,
        )

    def test_hang(self):
        store = store_for("""
main:   li $t0, 0
loop:   addi $t0, $t0, 1
        li $t1, 5
        bne $t0, $t1, loop
        li $v0, 10
        syscall
        """)
        loop = store.context.program.symbols["loop"]
        self.check(
            store,
            (BitFlipFault(loop, (1,)), BitFlipFault(loop + 4, (1,))),
            Outcome.HANG,
        )

    def test_silent_corruption(self):
        store = store_for("""
main:   li $t0, 1
        li $t1, 1
        addu $a0, $t0, $t1
        li $v0, 1
        syscall
        li $v0, 10
        syscall
        """)
        main = store.context.program.symbols["main"]
        self.check(
            store,
            (BitFlipFault(main, (3,)), BitFlipFault(main + 4, (3,))),
            Outcome.SDC,
        )

    def test_benign_never_executed(self):
        store = store_for("""
main:   j live
dead:   addu $s0, $s0, $s0
live:   li $v0, 10
        syscall
        """)
        self.check(
            store,
            BitFlipFault(store.context.program.symbols["dead"], (7,)),
            Outcome.BENIGN,
        )

    def test_unsafe_word_falls_back_mid_batch(self):
        """A batch mixing an unsafe-word fault (text the program stores
        to — forked at checkpoint 0 through the per-fault path) with
        plannable faults: the fallback must not disturb its neighbours."""
        store = store_for("""
main:   la   $t0, target
        lw   $t1, 0($t0)
        sw   $t1, 0($t0)     # rewrite the word about to execute
target: li   $a0, 7
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
        """)
        program = store.context.program
        target = program.symbols["target"]
        assert target in store.unsafe_words
        main = program.symbols["main"]
        batch = [
            BitFlipFault(main, (0,)),
            BitFlipFault(target, (0,)),  # unsafe: run_one_golden fallback
            BitFlipFault(main, (1,)),
        ]
        results = assert_batch_equivalent(store, batch)
        assert results[1].outcome is Outcome.DETECTED_CIC


@pytest.fixture(scope="module")
def sha_store():
    spec = CampaignSpec(workload="sha", scale="tiny", iht_size=8)
    return build_golden_store(spec.build_context())


@pytest.fixture(scope="module")
def sha_campaign(sha_store):
    return FaultCampaign.from_context(sha_store.context)


class TestFaultModels:
    """Every fault model the campaign generators emit, one batch each."""

    def test_random_single_bit(self, sha_store, sha_campaign):
        assert_batch_equivalent(
            sha_store, sha_campaign.random_single_bit(24, seed=SEED)
        )

    def test_random_multi_bit(self, sha_store, sha_campaign):
        assert_batch_equivalent(
            sha_store, sha_campaign.random_multi_bit(10, flips=3, seed=SEED + 1)
        )

    def test_same_column_multi_word(self, sha_store, sha_campaign):
        assert_batch_equivalent(
            sha_store,
            sha_campaign.random_multi_bit(
                10, flips=2, seed=SEED + 2, same_column=True
            ),
        )

    def test_transient_occurrences(self, sha_store, sha_campaign):
        rng = random.Random(SEED + 3)
        addresses = sha_campaign.executed_addresses
        batch = [
            TransientFetchFault(
                rng.choice(addresses), (rng.randrange(32),), occurrence=occurrence
            )
            for occurrence in (1, 2, 3, 50)
            for _ in range(4)
        ]
        assert_batch_equivalent(sha_store, batch)

    def test_mixed_persistent_and_transient(self, sha_store, sha_campaign):
        rng = random.Random(SEED + 4)
        addresses = sha_campaign.executed_addresses
        batch = [
            (
                BitFlipFault(rng.choice(addresses), (rng.randrange(32),)),
                TransientFetchFault(
                    rng.choice(addresses), (rng.randrange(32),), occurrence=2
                ),
            )
            for _ in range(6)
        ]
        assert_batch_equivalent(sha_store, batch)

    def test_unexecuted_code(self, sha_store, sha_campaign):
        assert_batch_equivalent(
            sha_store,
            sha_campaign.random_single_bit(
                10, seed=SEED + 5, executed_only=False
            ),
        )

    def test_batch_of_one_equals_batch_of_n(self, sha_store, sha_campaign):
        faults = sha_campaign.random_single_bit(16, seed=SEED + 6)
        whole = run_batch_golden(sha_store, faults)
        ones = [
            result
            for fault in faults
            for result in run_batch_golden(sha_store, [fault])
        ]
        assert [fverdict(result) for result in whole] == [
            fverdict(result) for result in ones
        ]

    def test_input_order_is_preserved(self, sha_store, sha_campaign):
        """Execution is delivery-sorted internally; results come back in
        input order regardless — shuffle and check the alignment."""
        faults = sha_campaign.random_single_bit(20, seed=SEED + 7)
        rng = random.Random(SEED + 7)
        shuffled = list(faults)
        rng.shuffle(shuffled)
        results = run_batch_golden(sha_store, shuffled)
        for fault, result in zip(shuffled, results):
            assert result.fault is fault


class TestAttackClasses:
    """All ten attack classes through the batched kernel, one batch per
    class (persistent and transient delivery both covered)."""

    @pytest.mark.parametrize("attack_class", ATTACK_CLASSES)
    def test_class_equivalence(self, sha_store, attack_class):
        corpus = AttackCorpus.from_context(sha_store.context)
        scenarios = corpus.sample(attack_class, 4, seed=SEED)
        assert scenarios, attack_class
        assert_batch_equivalent(sha_store, scenarios)


@pytest.fixture(scope="module", params=("sha", "bitcount"))
def pipeline_rig(request):
    """(campaign, store) on one smoke workload for the cycle-level pair."""
    spec = CampaignSpec(
        workload=request.param, scale="tiny", backend="pipeline-golden"
    )
    campaign = CampaignRunner(spec).campaign
    warm = WarmProcess.from_context(campaign.context)
    return campaign, build_pipeline_golden_store(campaign.context, warm)


def assert_pipeline_batch_equivalent(rig, faults, full_sample=2):
    """One batch call ≡ per-fault forking, cycles included; the first
    *full_sample* elements are additionally pinned against full replay."""
    campaign, store = rig
    faults = list(faults)
    batched = run_batch_pipeline_golden(store, faults)
    assert len(batched) == len(faults)
    for position, (fault, batch) in enumerate(zip(faults, batched)):
        assert cverdict(batch) == cverdict(
            run_one_pipeline_golden(store, fault)
        ), fault
        if position < full_sample:
            assert cverdict(batch) == cverdict(
                run_one_pipeline(campaign.context, fault, store.warm)
            ), fault
    return batched


class TestPipelineBatch:
    def test_random_single_bit(self, pipeline_rig):
        campaign, _store = pipeline_rig
        assert_pipeline_batch_equivalent(
            pipeline_rig, campaign.random_single_bit(12, seed=SEED)
        )

    def test_random_multi_bit(self, pipeline_rig):
        campaign, _store = pipeline_rig
        assert_pipeline_batch_equivalent(
            pipeline_rig, campaign.random_multi_bit(6, flips=2, seed=SEED + 1)
        )

    def test_same_column_pairs(self, pipeline_rig):
        from repro.eval.common import baseline_run

        campaign, _store = pipeline_rig
        workload = campaign.context.program.name.rsplit("-", 1)[0]
        trace = baseline_run(workload, "tiny").block_trace
        assert_pipeline_batch_equivalent(
            pipeline_rig, same_column_pairs(trace, 6, SEED + 2)
        )

    def test_transient_fetch_faults(self, pipeline_rig):
        campaign, _store = pipeline_rig
        addresses = campaign.executed_addresses
        batch = [
            TransientFetchFault(
                addresses[offset % len(addresses)],
                (offset % 32,),
                occurrence=occurrence,
            )
            for offset, occurrence in ((0, 1), (3, 1), (5, 2), (9, 3))
        ]
        assert_pipeline_batch_equivalent(pipeline_rig, batch)

    def test_attack_scenarios(self, pipeline_rig):
        campaign, _store = pipeline_rig
        corpus = AttackCorpus.from_context(campaign.context)
        scenarios = corpus.build(
            ["branch-retarget", "nop-slide", "opcode-sub/transient"],
            per_class=2,
            seed=SEED,
        )
        assert scenarios
        assert_pipeline_batch_equivalent(pipeline_rig, scenarios)

    def test_benign_fast_path_carries_golden_cycles(self, pipeline_rig):
        campaign, store = pipeline_rig
        never = TransientFetchFault(
            campaign.executed_addresses[0], (0,), occurrence=1_000_000
        )
        [result] = run_batch_pipeline_golden(store, [never])
        assert result.outcome is Outcome.BENIGN
        assert result.cycles == store.golden_cycles
