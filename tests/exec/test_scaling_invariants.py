"""Scaling invariance: worker count, batch plan, and pool reuse are
execution knobs — they must never change a single byte of the results.

The persistent warm pools (:mod:`repro.exec.pool`) and the batched
replay kernels (``run_batch_golden`` / ``run_batch_pipeline_golden``)
exist purely for throughput.  This tier pins the property that makes
them safe to enable by default:

* 1, 2, and 4 workers produce identical sorted JSONL records;
* batch-of-1, batch-of-5, and whole-shard batches produce identical
  sorted JSONL records (campaign *and* DSE jobs, all three backends);
* a reused warm pool produces the same records as a cold one;
* a campaign killed mid-run resumes correctly under a *different*
  batch plan — the ``shard-done`` commit protocol is batch-safe.

``make scaling-smoke`` runs this file in CI.
"""

import json

import pytest

from repro.exec import CampaignRunner, CampaignSpec
from repro.exec.pool import pool_stats, shutdown_pools

#: Small but branchy: exercises detection, hang, and SDC paths while
#: keeping the pipeline-golden cells fast enough for CI.
SOURCE = """
main:   li $t0, 6
        li $s0, 0
loop:   addu $s0, $s0, $t0
        addi $t0, $t0, -1
        bgtz $t0, loop
        move $a0, $s0
        li $v0, 1
        syscall
        li $v0, 10
        syscall
"""

SEED = 42
FAULT_COUNT = 24
CHUNK = 6  # 24 faults -> 4 shards
BACKENDS = ("full", "golden", "pipeline-golden")


def jsonl_records(path):
    """The record lines of a results file, sorted by fault index."""
    with open(path, encoding="utf-8") as handle:
        entries = [json.loads(line) for line in handle]
    records = [entry for entry in entries if entry["type"] == "record"]
    return sorted(records, key=lambda entry: entry["index"])


@pytest.fixture(scope="module", params=BACKENDS)
def rig(request, tmp_path_factory):
    """(spec, faults, reference JSONL records) for one backend."""
    spec = CampaignSpec(
        source=SOURCE, name="scaling-test", iht_size=4, backend=request.param
    )
    runner = CampaignRunner(spec, workers=1, chunk_size=CHUNK, batch_size=1)
    faults = runner.campaign.random_single_bit(FAULT_COUNT, seed=SEED)
    out = tmp_path_factory.mktemp("ref") / f"{request.param}.jsonl"
    result = runner.run(faults, seed=SEED, out=out)
    assert result.complete
    return spec, faults, jsonl_records(out)


class TestWorkerCountInvariance:
    @pytest.mark.parametrize("workers", (1, 2, 4))
    def test_identical_sorted_records(self, rig, workers, tmp_path):
        spec, faults, reference = rig
        out = tmp_path / f"w{workers}.jsonl"
        result = CampaignRunner(spec, workers=workers, chunk_size=CHUNK).run(
            faults, seed=SEED, out=out
        )
        assert result.complete
        assert jsonl_records(out) == reference


class TestBatchSizeInvariance:
    @pytest.mark.parametrize("batch_size", (1, 5, None))
    @pytest.mark.parametrize("workers", (1, 2))
    def test_identical_sorted_records(self, rig, workers, batch_size, tmp_path):
        spec, faults, reference = rig
        out = tmp_path / f"w{workers}-b{batch_size}.jsonl"
        result = CampaignRunner(
            spec, workers=workers, chunk_size=CHUNK, batch_size=batch_size
        ).run(faults, seed=SEED, out=out)
        assert result.complete
        assert jsonl_records(out) == reference

    def test_batched_dispatch_matches_per_item_kernel(self, rig):
        """The shard-level batch path equals running the backend's
        per-fault kernel directly — the per-item reference the batched
        kernels are allowed to optimize but never to change."""
        spec, faults, reference = rig
        runner = CampaignRunner(spec, workers=1, chunk_size=CHUNK)
        workspace = runner.workspace
        per_item = [workspace.run_fault(fault) for fault in faults]
        batched = workspace.run_batch(list(faults))
        for single, batch in zip(per_item, batched):
            assert (single.outcome, single.detail, single.latency) == (
                batch.outcome,
                batch.detail,
                batch.latency,
            )
        assert [entry["outcome"] for entry in reference] == [
            result.outcome.value for result in per_item
        ]


class TestPoolReuse:
    def test_reused_pool_records_identical(self, rig, tmp_path):
        """The second run on a warm pool reuses live workers (the run
        counter proves it) and produces byte-identical records."""
        spec, faults, reference = rig
        shutdown_pools()
        runner = CampaignRunner(spec, workers=2, chunk_size=CHUNK)
        first = tmp_path / "cold.jsonl"
        second = tmp_path / "warm.jsonl"
        runner.run(faults, seed=SEED, out=first)
        assert 1 in pool_stats().values()
        runner.run(faults, seed=SEED, out=second)
        assert 2 in pool_stats().values()
        assert jsonl_records(first) == jsonl_records(second) == reference

    def test_transient_pools_still_supported(self, rig, tmp_path):
        """``persistent=False`` keeps the old build-per-run pool path —
        and its records match the warm-pool ones exactly."""
        spec, faults, reference = rig
        out = tmp_path / "transient.jsonl"
        result = CampaignRunner(
            spec, workers=2, chunk_size=CHUNK, persistent=False
        ).run(faults, seed=SEED, out=out)
        assert result.complete
        assert jsonl_records(out) == reference


class TestKillResumeMidBatch:
    def test_resume_under_a_different_batch_plan(self, rig, tmp_path):
        """Kill after two shards dispatched as whole-shard batches, resume
        with batch-of-2 on two workers: the ``shard-done`` markers commit
        whole shards regardless of how the shard was batched, so the
        resumed file is identical to an uninterrupted run."""
        spec, faults, reference = rig
        out = tmp_path / "killed.jsonl"
        partial = CampaignRunner(
            spec, workers=1, chunk_size=CHUNK, batch_size=None
        ).run(faults, seed=SEED, out=out, stop_after_shards=2)
        assert not partial.complete
        assert len(partial.records) == 2 * CHUNK
        resumed = CampaignRunner(
            spec, workers=2, chunk_size=CHUNK, batch_size=2
        ).run(faults, seed=SEED, out=out, resume=True)
        assert resumed.complete
        assert jsonl_records(out) == reference

    def test_torn_batch_reruns_whole_shard(self, rig, tmp_path):
        """Tear off a shard's commit marker (simulating a kill mid-write
        of a batch's aggregated records): resume re-runs that shard, the
        orphan lines collapse under the loader's last-copy-wins rule, and
        the deduplicated records still match the reference."""
        spec, faults, reference = rig
        out = tmp_path / "torn.jsonl"
        CampaignRunner(spec, workers=1, chunk_size=CHUNK).run(
            faults, seed=SEED, out=out, stop_after_shards=2
        )
        lines = out.read_text().splitlines()
        assert json.loads(lines[-1])["type"] == "shard-done"
        out.write_text("\n".join(lines[:-1]) + "\n")
        resumed = CampaignRunner(spec, workers=1, chunk_size=CHUNK).run(
            faults, seed=SEED, out=out, resume=True
        )
        assert resumed.complete
        by_index = {entry["index"]: entry for entry in jsonl_records(out)}
        assert [by_index[index] for index in sorted(by_index)] == reference


class TestDseInvariance:
    @pytest.fixture(scope="class")
    def space(self):
        from repro.dse.space import ConfigSpace

        return ConfigSpace(
            hash_names=("xor",),
            iht_sizes=(4, 8),
            policy_names=("lru_half",),
            miss_penalties=(100,),
            workloads=("bitcount",),
            scale="tiny",
            per_class=2,
        )

    @pytest.fixture(scope="class")
    def reference_points(self, space):
        from repro.dse.engine import DseSweep

        result = DseSweep(space, seed=SEED, chunk_size=1).run()
        assert result.complete
        return [point.to_json() for point in result.ordered()]

    @pytest.mark.parametrize("workers", (1, 2))
    def test_worker_count_invariance(self, space, reference_points, workers):
        from repro.dse.engine import DseSweep

        result = DseSweep(space, seed=SEED, chunk_size=1, workers=workers).run()
        assert result.complete
        assert [point.to_json() for point in result.ordered()] == (
            reference_points
        )

    def test_batched_adversary_matches_full_backend(self, space, reference_points):
        """DSE detection objectives now run through ``run_batch``; the
        full backend's default (per-fault) batch loop must agree with the
        golden backend's batched kernel point for point."""
        from repro.dse.engine import DseSweep

        result = DseSweep(space, seed=SEED, chunk_size=1, backend="full").run()
        assert result.complete
        assert [point.to_json() for point in result.ordered()] == (
            reference_points
        )
