"""Wire-format tests: fault payloads, records, specs, shard seeds."""

import pytest

from repro.errors import ConfigurationError
from repro.exec.records import (
    FaultRecord,
    dump_line,
    fault_from_json,
    fault_to_json,
    load_lines,
)
from repro.exec.spec import CampaignSpec, shard_seed
from repro.faults.campaign import FaultResult, Outcome
from repro.faults.models import BitFlipFault, TransientFetchFault


class TestFaultSerialization:
    def test_bitflip_roundtrip(self):
        fault = BitFlipFault(0x0040_0010, (3, 17))
        assert fault_from_json(fault_to_json(fault)) == fault

    def test_transient_roundtrip(self):
        fault = TransientFetchFault(0x0040_0020, (5,), occurrence=2)
        restored = fault_from_json(fault_to_json(fault))
        assert restored.address == fault.address
        assert restored.bits == fault.bits
        assert restored.occurrence == fault.occurrence

    def test_multi_word_roundtrip(self):
        pair = (BitFlipFault(0x0040_0000, (1,)), BitFlipFault(0x0040_0004, (1,)))
        assert fault_from_json(fault_to_json(pair)) == pair

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            fault_from_json({"kind": "rowhammer"})


class TestFaultRecord:
    def test_roundtrip_via_json(self):
        result = FaultResult(
            BitFlipFault(0x0040_0000, (7,)), Outcome.DETECTED_CIC, "mismatch"
        )
        record = FaultRecord.from_result(12, 3, result)
        restored = FaultRecord.from_json(record.to_json())
        assert restored == record
        assert restored.to_result() == result

    def test_json_is_typed(self):
        record = FaultRecord(0, 0, BitFlipFault(4, (1,)), Outcome.BENIGN)
        data = record.to_json()
        assert data["type"] == "record"
        assert data["outcome"] == "benign"


class TestJsonlFile:
    def test_truncated_tail_skipped(self, tmp_path):
        path = tmp_path / "r.jsonl"
        path.write_text(dump_line({"type": "header"}) + '{"type": "rec')
        assert load_lines(path) == [{"type": "header"}]


class TestCampaignSpec:
    def test_requires_exactly_one_target(self):
        with pytest.raises(ConfigurationError):
            CampaignSpec()
        with pytest.raises(ConfigurationError):
            CampaignSpec(workload="sha", source="main: syscall")

    def test_roundtrip(self):
        spec = CampaignSpec(workload="sha", scale="tiny", inputs=(1, 2))
        assert CampaignSpec.from_json(spec.to_json()) == spec

    def test_fingerprint_distinguishes_configs(self):
        base = CampaignSpec(workload="sha", scale="tiny")
        assert base.fingerprint() == CampaignSpec(workload="sha", scale="tiny").fingerprint()
        assert base.fingerprint() != CampaignSpec(workload="sha", scale="small").fingerprint()
        assert base.fingerprint() != CampaignSpec(workload="sha", scale="tiny", iht_size=16).fingerprint()

    def test_label(self):
        assert CampaignSpec(workload="sha", scale="tiny").label == "sha-tiny"
        assert CampaignSpec(source="x", name="demo").label == "demo"


class TestShardSeed:
    def test_deterministic_and_distinct(self):
        assert shard_seed(42, 0) == shard_seed(42, 0)
        assert shard_seed(42, 0) != shard_seed(42, 1)
        assert shard_seed(42, 0) != shard_seed(43, 0)
