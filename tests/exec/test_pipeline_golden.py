"""Differential pinning of the cycle-level ``pipeline-golden`` backend.

The backend's contract: forking the recorded monitored pipeline at the
fault produces the **identical** verdict — outcome, detail, detection
latency, and measured cycle count — as booting a fresh
:class:`PipelineCPU` and replaying the whole injection from instruction
zero (:func:`repro.exec.pipeline_golden.run_one_pipeline`).  These tests
pin that equivalence on the smoke workload set (the DSE ``smoke``
preset's ``sha`` + ``bitcount`` at tiny scale) across every perturbation
shape: random single-/multi-bit persistent flips, transient fetch
faults, same-column pairs, and sampled attack scenarios.

They also pin the headline capability the backend exists for: the DSE's
``measured_cycle_overhead`` — monitored pipeline cycles under the
point's penalty model — equals the analytic Table-1 accounting exactly,
closing the loop on the tier-1 suite's ``monitored == base + penalty ×
misses`` claim with a measurement instead of a derivation.
"""

import pytest

from repro.attacks.corpus import AttackCorpus
from repro.exec import CampaignRunner, CampaignSpec
from repro.exec.pipeline_golden import (
    build_pipeline_golden_store,
    run_one_pipeline,
    run_one_pipeline_golden,
)
from repro.faults.campaign import (
    Outcome,
    WarmProcess,
    same_column_pairs,
)
from repro.faults.models import TransientFetchFault

#: The DSE smoke preset's workload set.
SMOKE_WORKLOADS = ("sha", "bitcount")
SEED = 13


def verdict(result):
    return (result.outcome, result.detail, result.latency, result.cycles)


@pytest.fixture(scope="module", params=SMOKE_WORKLOADS)
def rig(request):
    """(workload, campaign, store) for one smoke workload."""
    spec = CampaignSpec(
        workload=request.param, scale="tiny", backend="pipeline-golden"
    )
    campaign = CampaignRunner(spec).campaign
    warm = WarmProcess.from_context(campaign.context)
    store = build_pipeline_golden_store(campaign.context, warm)
    return request.param, campaign, store


def assert_equivalent(rig, fault):
    _name, campaign, store = rig
    forked = run_one_pipeline_golden(store, fault)
    full = run_one_pipeline(campaign.context, fault, store.warm)
    assert verdict(forked) == verdict(full), fault


class TestDifferential:
    def test_random_single_bit(self, rig):
        _name, campaign, _store = rig
        for fault in campaign.random_single_bit(24, seed=SEED):
            assert_equivalent(rig, fault)

    def test_random_multi_bit(self, rig):
        _name, campaign, _store = rig
        for fault in campaign.random_multi_bit(10, flips=2, seed=SEED + 1):
            assert_equivalent(rig, fault)

    def test_same_column_pairs(self, rig):
        from repro.eval.common import baseline_run

        name, _campaign, _store = rig
        trace = baseline_run(name, "tiny").block_trace
        for pair in same_column_pairs(trace, 8, SEED + 2):
            assert_equivalent(rig, pair)

    def test_transient_fetch_faults(self, rig):
        _name, campaign, _store = rig
        addresses = campaign.executed_addresses
        for offset, occurrence in ((0, 1), (3, 1), (5, 2), (9, 3)):
            fault = TransientFetchFault(
                addresses[offset % len(addresses)],
                (offset % 32,),
                occurrence=occurrence,
            )
            assert_equivalent(rig, fault)

    def test_attack_scenarios(self, rig):
        _name, campaign, _store = rig
        corpus = AttackCorpus.from_context(campaign.context)
        scenarios = corpus.build(
            ["branch-retarget", "nop-slide", "opcode-sub/transient"],
            per_class=3,
            seed=SEED,
        )
        assert scenarios
        for scenario in scenarios:
            assert_equivalent(rig, scenario)

    def test_never_delivered_fault_is_golden_run(self):
        # Needs code the pipeline never touches even *speculatively*: the
        # slot after a taken jump is wrong-path fetched, so the dead word
        # must sit at least two slots past every executed jump.
        source = """
        main:   li $a0, 7
                li $v0, 1
                syscall
                j exit
        pad:    nop
        dead:   addi $a0, $a0, 1
                addi $a0, $a0, 2
        exit:   li $v0, 10
                syscall
        """
        spec = CampaignSpec(source=source, name="dead-code",
                            backend="pipeline-golden")
        campaign = CampaignRunner(spec).campaign
        warm = WarmProcess.from_context(campaign.context)
        store = build_pipeline_golden_store(campaign.context, warm)
        from repro.faults.models import BitFlipFault

        dead = next(
            address
            for address in campaign.context.program.text_addresses()
            if address not in store.fetch_ordinals
            and address not in store.unsafe_words
        )
        result = run_one_pipeline_golden(store, BitFlipFault(dead, (5,)))
        assert result.outcome is Outcome.BENIGN
        # No simulation at all: the faulty run *is* the recorded pristine
        # run, measured cycles included.
        assert result.cycles == store.golden_cycles
        # The full replay agrees on the verdict (cycles too).
        full = run_one_pipeline(campaign.context, BitFlipFault(dead, (5,)), warm)
        assert verdict(full) == verdict(result)


class TestStoreInternals:
    def test_checkpoints_cover_the_run(self, rig):
        _name, _campaign, store = rig
        marks = [checkpoint.instructions for checkpoint in store.checkpoints]
        assert marks[0] == 0
        assert marks == sorted(marks)
        assert marks[-1] < store.golden_instructions
        fetch_marks = [checkpoint.fetches for checkpoint in store.checkpoints]
        assert fetch_marks == sorted(fetch_marks)

    def test_speculative_fetches_exceed_instructions(self, rig):
        # The pipeline fetches wrong-path slots the functional simulator
        # never sees; total recorded fetches must therefore be at least
        # the instruction count (strictly more on any branchy program).
        _name, _campaign, store = rig
        total = sum(len(o) for o in store.fetch_ordinals.values())
        assert total >= store.golden_instructions

    def test_golden_cycles_match_monitored_run(self, rig):
        # The recording *is* the measurement: same cycles as an
        # uncheckpointed monitored pipeline run of the pristine program.
        _name, campaign, store = rig
        warm = store.warm
        checker = warm.fresh_checker(campaign.context)
        from repro.pipeline.cpu import PipelineCPU

        cpu = PipelineCPU(
            campaign.context.program,
            monitor=checker,
            inputs=campaign.context.inputs,
            decode_cache=warm.decode_cache,
        )
        result = cpu.run()
        assert result.cycles == store.golden_cycles
        assert result.instructions == store.golden_instructions


class TestEngineIntegration:
    def test_campaign_runner_accepts_pipeline_golden(self):
        spec = CampaignSpec(
            workload="bitcount", scale="tiny", backend="pipeline-golden"
        )
        runner = CampaignRunner(spec, chunk_size=8)
        faults = runner.campaign.random_single_bit(16, seed=SEED)
        serial = runner.run(faults, seed=SEED)
        assert serial.complete
        pooled = CampaignRunner(spec, workers=2, chunk_size=8).run(
            faults, seed=SEED
        )
        assert pooled.summary() == serial.summary()

    def test_dse_measured_overhead_equals_accounting(self):
        """The tentpole claim: the DSE overhead objective is *measured*
        per penalty model on the pipeline, and the measurement equals
        the exact Table-1 accounting."""
        from repro.dse.engine import DseSweep
        from repro.dse.space import ConfigSpace

        space = ConfigSpace(
            hash_names=("xor",),
            iht_sizes=(4, 8),
            policy_names=("lru_half",),
            miss_penalties=(50, 100),
            workloads=SMOKE_WORKLOADS,
            scale="tiny",
            per_class=2,
        )
        result = DseSweep(space, seed=SEED, backend="pipeline-golden").run()
        assert result.complete
        for point in result.ordered():
            measured = point.objectives["measured_cycle_overhead"]
            assert measured == pytest.approx(
                point.objectives["cycle_overhead"], abs=1e-12
            )
            for workload in SMOKE_WORKLOADS:
                entry = point.per_workload[workload]
                assert entry["monitored_cycles"] > entry["base_cycles"]

    def test_resume_refuses_crossing_the_cycle_measuring_divide(
        self, tmp_path
    ):
        """A golden-backend sweep file resumed with pipeline-golden (or
        vice versa) would mix point record shapes — refused.  Functional
        backends keep resuming each other's files freely."""
        from repro.dse.engine import DseSweep
        from repro.dse.space import ConfigSpace
        from repro.errors import ConfigurationError

        space = ConfigSpace(
            hash_names=("xor",),
            iht_sizes=(4, 8),
            policy_names=("lru_half",),
            miss_penalties=(100,),
            workloads=("bitcount",),
            scale="tiny",
            adversary="none",
        )
        out = tmp_path / "sweep.jsonl"
        DseSweep(space, seed=SEED, chunk_size=1).run(
            out=out, stop_after_shards=1
        )
        with pytest.raises(ConfigurationError, match="cannot resume"):
            DseSweep(
                space, seed=SEED, chunk_size=1, backend="pipeline-golden"
            ).run(out=out, resume=True)
        # golden <-> full stays interchangeable (pinned identical points).
        resumed = DseSweep(
            space, seed=SEED, chunk_size=1, backend="full"
        ).run(out=out, resume=True)
        assert resumed.complete

    def test_functional_sweeps_omit_measured_objective(self):
        """Functional-backend points must not grow the new key — that is
        what keeps pre-redesign sweep artifacts byte-identical."""
        from repro.dse.engine import DseSweep
        from repro.dse.space import ConfigSpace

        space = ConfigSpace(
            hash_names=("xor",),
            iht_sizes=(4,),
            policy_names=("lru_half",),
            miss_penalties=(100,),
            workloads=("bitcount",),
            scale="tiny",
            adversary="none",
        )
        result = DseSweep(space, seed=SEED, backend="golden").run()
        for point in result.points:
            assert "measured_cycle_overhead" not in point.objectives
