"""Named presets, and the eval harnesses' parity as DSE presets."""

import pytest

from repro.cic.replay import replay_trace
from repro.dse.presets import PRESETS, get_preset
from repro.errors import ConfigurationError
from repro.eval.common import baseline_run, workload_fht
from repro.osmodel.policies import get_policy


class TestPresets:
    def test_all_valid_and_named(self):
        assert {"smoke", "paper", "penalty", "policies"} <= set(PRESETS)

    def test_smoke_is_small(self):
        assert get_preset("smoke").size <= 8

    def test_paper_meets_the_sweep_floor(self):
        space = get_preset("paper")
        assert space.size >= 48
        assert len(space.workloads) >= 3

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            get_preset("exhaustive")


class TestEvalParity:
    """The refactored harnesses must reproduce their pre-DSE numbers."""

    def test_fig6_equals_direct_replay(self):
        from repro.eval.fig6_miss_rate import run_fig6

        result = run_fig6(
            scale="tiny", sizes=(4, 8), workloads=("sha", "bitcount")
        )
        for workload in ("sha", "bitcount"):
            golden = baseline_run(workload, "tiny")
            fht = workload_fht(workload, "tiny")
            for size in (4, 8):
                stats = replay_trace(
                    golden.block_trace, fht, size, get_policy("lru_half")
                )
                assert result.miss_rate(workload, size) == stats.miss_rate
            row = next(
                row for row in result.rows if row.workload == workload
            )
            assert row.lookups == len(golden.block_trace)

    def test_policy_ablation_equals_direct_replay(self):
        from repro.eval.ablation_policies import run_policy_ablation

        result = run_policy_ablation(
            scale="tiny", sizes=(8,), workloads=("sha",),
            policies=("lru_half", "fifo"),
        )
        golden = baseline_run("sha", "tiny")
        fht = workload_fht("sha", "tiny")
        for policy in ("lru_half", "fifo"):
            stats = replay_trace(golden.block_trace, fht, 8, get_policy(policy))
            assert result.rows[0].rates[(policy, 8)] == stats.miss_rate

    def test_hash_ablation_equals_direct_campaign(self):
        """Same pairs, same kernel classification as the pre-DSE loop."""
        from repro.eval.ablation_hashes import run_hash_ablation
        from repro.faults.campaign import FaultCampaign, same_column_pairs
        from repro.workloads.suite import build, workload_inputs

        seed, pair_count, workload = 7, 12, "bitcount"
        result = run_hash_ablation(
            workload=workload, scale="tiny", pair_count=pair_count,
            seed=seed, hashes=("xor", "crc32"),
        )
        golden = baseline_run(workload, "tiny")
        pairs = same_column_pairs(golden.block_trace, pair_count, seed)
        for hash_name in ("xor", "crc32"):
            campaign = FaultCampaign(
                build(workload, "tiny"),
                iht_size=8,
                hash_name=hash_name,
                inputs=workload_inputs(workload, "tiny"),
            )
            report = campaign.run_campaign(pairs)
            assert result.row(hash_name).adversarial_coverage == (
                report.detection_rate
            )
