"""Sweep-engine guarantees: determinism, resume, worker invariance.

The sweep's promises mirror the campaign engine's: point records are a
pure function of ``(space, seed, index)``, so the records, the frontier,
and every index-ordered aggregate must be identical for any worker
count, either backend, and across kill/resume cycles (only the *line
order* of a multi-worker file follows shard completion order).
"""

import pytest

from repro.dse.engine import DseSweep, load_points
from repro.dse.space import ConfigSpace
from repro.errors import ConfigurationError

SEED = 11


@pytest.fixture(scope="module")
def space():
    # 2 hashes x 2 sizes = 4 points, 2 workloads, tiny adversary corpus:
    # small enough for the suite, rich enough to exercise every objective.
    return ConfigSpace(
        hash_names=("xor", "crc32"),
        iht_sizes=(4, 8),
        policy_names=("lru_half",),
        miss_penalties=(100,),
        workloads=("sha", "bitcount"),
        scale="tiny",
        per_class=2,
    )


@pytest.fixture(scope="module")
def reference(space):
    """The uninterrupted serial sweep every other run is compared to.

    ``chunk_size=1`` matches every comparison run in this module: shard
    ids are part of the point payload and depend on the chunk size.
    """
    return DseSweep(space, seed=SEED, chunk_size=1).run()


def point_payloads(points):
    return [point.to_json() for point in sorted(points, key=lambda p: p.index)]


class TestEvaluation:
    def test_every_objective_scored(self, space, reference):
        assert reference.complete
        for point in reference.points:
            objectives = point.objectives
            assert 0.0 <= objectives["miss_rate"] <= 1.0
            assert objectives["cycle_overhead"] >= 0.0
            assert 0.0 <= objectives["detection_rate"] <= 1.0
            assert objectives["area_overhead"] > 0.0
            assert objectives["min_period"] > 0.0
            assert set(point.per_workload) == set(space.workloads)

    def test_deterministic_rerun(self, space, reference):
        again = DseSweep(space, seed=SEED, chunk_size=1).run()
        assert point_payloads(again.points) == point_payloads(reference.points)

    def test_worker_count_invariant(self, space, reference):
        pooled = DseSweep(space, seed=SEED, workers=2, chunk_size=1).run()
        assert point_payloads(pooled.points) == point_payloads(
            reference.points
        )
        assert [p.index for p in pooled.frontier()] == [
            p.index for p in reference.frontier()
        ]

    def test_backend_differential(self, space, reference):
        full = DseSweep(space, seed=SEED, backend="full").run()
        for golden_point, full_point in zip(
            reference.ordered(), full.ordered()
        ):
            assert golden_point.objectives == full_point.objectives
            assert golden_point.per_workload == full_point.per_workload

    def test_penalty_axis_shares_measures(self, reference):
        # Same grid with an extra penalty value: the penalty-independent
        # numbers must be identical, and overheads must scale linearly.
        space = ConfigSpace(
            hash_names=("xor", "crc32"),
            iht_sizes=(4, 8),
            policy_names=("lru_half",),
            miss_penalties=(100, 50),
            workloads=("sha", "bitcount"),
            scale="tiny",
            per_class=2,
        )
        result = DseSweep(space, seed=SEED).run()
        by_key = {
            (p.config.hash_name, p.config.iht_size, p.config.miss_penalty): p
            for p in result.points
        }
        for reference_point in reference.points:
            config = reference_point.config
            hundred = by_key[(config.hash_name, config.iht_size, 100)]
            fifty = by_key[(config.hash_name, config.iht_size, 50)]
            assert hundred.objectives == reference_point.objectives
            assert fifty.objectives["miss_rate"] == pytest.approx(
                hundred.objectives["miss_rate"]
            )
            assert fifty.objectives["cycle_overhead"] == pytest.approx(
                hundred.objectives["cycle_overhead"] / 2
            )

    def test_cycle_overhead_matches_live_monitored_run(self, space, reference):
        """The penalty model *is* the Table-1 accounting: overhead computed
        from replayed misses equals a live monitored simulation's."""
        from repro.eval.common import baseline_run, monitored_run

        for point in reference.ordered():
            config = point.config
            for workload in space.workloads:
                base = baseline_run(workload, space.scale)
                live = monitored_run(
                    workload,
                    config.iht_size,
                    space.scale,
                    hash_name=config.hash_name,
                    miss_penalty=config.miss_penalty,
                )
                live_overhead = (live.cycles - base.cycles) / base.cycles
                assert point.per_workload[workload][
                    "cycle_overhead"
                ] == pytest.approx(live_overhead)


class TestResume:
    def test_kill_and_resume_reproduces_identical_records(
        self, space, reference, tmp_path
    ):
        out = tmp_path / "sweep.jsonl"
        sweep = DseSweep(space, seed=SEED, chunk_size=1)
        partial = sweep.run(out=out, stop_after_shards=2)
        assert not partial.complete
        assert len(partial.points) == 2
        resumed = DseSweep(space, seed=SEED, chunk_size=1).run(
            out=out, resume=True
        )
        assert resumed.complete
        assert point_payloads(resumed.points) == point_payloads(
            reference.points
        )
        # The file itself replays to the same records.
        _header, loaded = load_points(out)
        assert point_payloads(loaded) == point_payloads(reference.points)

    def test_resume_refuses_different_seed(self, space, tmp_path):
        out = tmp_path / "sweep.jsonl"
        DseSweep(space, seed=SEED, chunk_size=1).run(
            out=out, stop_after_shards=1
        )
        with pytest.raises(ConfigurationError, match="cannot resume"):
            DseSweep(space, seed=SEED + 1, chunk_size=1).run(
                out=out, resume=True
            )

    def test_resume_refuses_different_space(self, space, tmp_path):
        out = tmp_path / "sweep.jsonl"
        DseSweep(space, seed=SEED, chunk_size=1).run(
            out=out, stop_after_shards=1
        )
        other = ConfigSpace(
            hash_names=("xor",),
            iht_sizes=(4, 8),
            policy_names=("lru_half",),
            workloads=("sha", "bitcount"),
            scale="tiny",
            per_class=2,
        )
        with pytest.raises(ConfigurationError, match="cannot resume"):
            DseSweep(other, seed=SEED, chunk_size=1).run(out=out, resume=True)

    def test_resume_requires_out(self, space):
        with pytest.raises(ConfigurationError, match="resume"):
            DseSweep(space, seed=SEED).run(resume=True)

    def test_uncommitted_shard_is_rerun(self, space, reference, tmp_path):
        out = tmp_path / "sweep.jsonl"
        sweep = DseSweep(space, seed=SEED, chunk_size=1)
        sweep.run(out=out, stop_after_shards=2)
        # Drop the second shard's commit marker: its point must re-run.
        lines = out.read_text().splitlines(keepends=True)
        assert '"type":"shard-done"' in lines[-1]
        out.write_text("".join(lines[:-1]))
        resumed = DseSweep(space, seed=SEED, chunk_size=1).run(
            out=out, resume=True
        )
        assert resumed.complete
        assert point_payloads(resumed.points) == point_payloads(
            reference.points
        )


class TestSweepResult:
    def test_frontier_is_non_trivial(self, reference):
        frontier = reference.frontier()
        assert len(frontier) >= 2

    def test_table_renders(self, reference):
        text = reference.table().render()
        assert "DSE sweep" in text
        assert "xor/iht4/lru_half/p100" in text

    def test_report_table_renders(self, reference):
        text = reference.report().table().render()
        assert "Pareto frontier" in text

    def test_load_points_rejects_non_sweep_file(self, tmp_path):
        bogus = tmp_path / "bogus.jsonl"
        bogus.write_text('{"type":"record"}\n')
        with pytest.raises(ConfigurationError):
            load_points(bogus)
