"""Config-space enumeration, validation, and serialization."""

import pytest

from repro.dse.space import ConfigSpace, MonitorConfig
from repro.errors import ConfigurationError


class TestMonitorConfig:
    def test_defaults_are_the_paper_design(self):
        config = MonitorConfig()
        assert config.config_id == "xor/iht8/lru_half/p100"

    def test_json_round_trip(self):
        config = MonitorConfig("crc32", 16, "lru_one", 50)
        assert MonitorConfig.from_json(config.to_json()) == config

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"hash_name": "md5000"},
            {"policy_name": "mru"},
            {"iht_size": 0},
            {"miss_penalty": -1},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            MonitorConfig(**kwargs)


class TestConfigSpace:
    def test_canonical_enumeration_order(self):
        space = ConfigSpace(
            hash_names=("xor", "crc32"),
            iht_sizes=(4, 8),
            policy_names=("lru_half",),
            miss_penalties=(100, 50),
        )
        assert space.size == 8
        points = space.points()
        assert len(points) == 8
        # hash outermost, penalty innermost.
        assert points[0] == MonitorConfig("xor", 4, "lru_half", 100)
        assert points[1] == MonitorConfig("xor", 4, "lru_half", 50)
        assert points[2] == MonitorConfig("xor", 8, "lru_half", 100)
        assert points[4] == MonitorConfig("crc32", 4, "lru_half", 100)

    def test_json_round_trip(self):
        space = ConfigSpace(
            hash_names=("xor",),
            iht_sizes=(8,),
            workloads=("sha",),
            adversary="same-column",
            pair_count=7,
        )
        assert ConfigSpace.from_json(space.to_json()) == space

    def test_fingerprint_is_stable_and_sensitive(self):
        space = ConfigSpace(hash_names=("xor",), iht_sizes=(8,))
        twin = ConfigSpace(hash_names=("xor",), iht_sizes=(8,))
        other = ConfigSpace(hash_names=("xor",), iht_sizes=(16,))
        assert space.fingerprint() == twin.fingerprint()
        assert space.fingerprint() != other.fingerprint()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"hash_names": ()},
            {"iht_sizes": (8, 8)},
            {"workloads": ("nosuch",)},
            {"scale": "huge"},
            {"adversary": "fuzzer"},
            {"per_class": 0},
            {"pair_count": 0},
            {"hash_names": ("xor", "md5000")},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            ConfigSpace(**kwargs)
