"""Dominance and frontier semantics on synthetic points."""

import pytest

from repro.dse.engine import DsePoint
from repro.dse.objectives import OBJECTIVES, resolve_objectives
from repro.dse.pareto import FrontierReport, dominates, pareto_frontier
from repro.dse.space import MonitorConfig
from repro.errors import ConfigurationError


def point(index, **objectives):
    return DsePoint(
        index=index,
        shard=0,
        config=MonitorConfig(iht_size=index + 1),
        objectives=objectives,
        per_workload={},
    )


AREA_MISS = ("area_overhead", "miss_rate")


class TestObjectives:
    def test_registry_senses(self):
        assert OBJECTIVES["miss_rate"].sense == "min"
        assert OBJECTIVES["detection_rate"].sense == "max"

    def test_resolution_errors(self):
        with pytest.raises(ConfigurationError):
            resolve_objectives(("fidelity",))
        with pytest.raises(ConfigurationError):
            resolve_objectives(())
        with pytest.raises(ConfigurationError):
            resolve_objectives(("miss_rate", "miss_rate"))

    def test_max_sense_inverts_comparison(self):
        detection = OBJECTIVES["detection_rate"]
        assert detection.better(0.9, 0.5)
        assert not detection.better(0.5, 0.9)

    def test_none_always_loses(self):
        latency = OBJECTIVES["detection_latency"]
        assert latency.better(1e9, None)
        assert not latency.better(None, 1e9)


class TestDominance:
    def test_strictly_better_everywhere(self):
        assert dominates(
            point(0, area_overhead=1.0, miss_rate=0.1),
            point(1, area_overhead=2.0, miss_rate=0.2),
            resolve_objectives(AREA_MISS),
        )

    def test_trade_off_does_not_dominate(self):
        objectives = resolve_objectives(AREA_MISS)
        cheap = point(0, area_overhead=1.0, miss_rate=0.5)
        accurate = point(1, area_overhead=5.0, miss_rate=0.01)
        assert not dominates(cheap, accurate, objectives)
        assert not dominates(accurate, cheap, objectives)

    def test_equal_vectors_do_not_dominate(self):
        objectives = resolve_objectives(AREA_MISS)
        first = point(0, area_overhead=1.0, miss_rate=0.1)
        second = point(1, area_overhead=1.0, miss_rate=0.1)
        assert not dominates(first, second, objectives)
        assert not dominates(second, first, objectives)


class TestFrontier:
    def test_non_dominated_set(self):
        points = [
            point(0, area_overhead=1.0, miss_rate=0.5),   # frontier
            point(1, area_overhead=5.0, miss_rate=0.01),  # frontier
            point(2, area_overhead=6.0, miss_rate=0.02),  # dominated by 1
            point(3, area_overhead=1.0, miss_rate=0.6),   # dominated by 0
        ]
        frontier = pareto_frontier(points, AREA_MISS)
        assert [p.index for p in frontier] == [0, 1]

    def test_ties_all_stay(self):
        points = [
            point(0, area_overhead=1.0, miss_rate=0.1),
            point(1, area_overhead=1.0, miss_rate=0.1),
        ]
        assert len(pareto_frontier(points, AREA_MISS)) == 2

    def test_single_objective_collapses_to_minimum(self):
        points = [point(i, area_overhead=float(i)) for i in range(5)]
        frontier = pareto_frontier(points, ("area_overhead",))
        assert [p.index for p in frontier] == [0]

    def test_none_valued_point_loses(self):
        points = [
            point(0, area_overhead=1.0, detection_rate=None),
            point(1, area_overhead=1.0, detection_rate=0.5),
        ]
        frontier = pareto_frontier(
            points, ("area_overhead", "detection_rate")
        )
        assert [p.index for p in frontier] == [1]


class TestReport:
    def test_ranked_by_dominance_strength(self):
        points = [
            point(0, area_overhead=1.0, miss_rate=0.1),   # dominates 2, 3
            point(1, area_overhead=9.0, miss_rate=0.01),  # dominates none
            point(2, area_overhead=2.0, miss_rate=0.2),
            point(3, area_overhead=3.0, miss_rate=0.3),
        ]
        report = FrontierReport.build(points, AREA_MISS)
        ranked = report.ranked()
        assert [p.index for p in ranked] == [0, 1]
        assert report.dominated_counts[0] == 2
        assert report.dominated_counts[1] == 0

    def test_table_and_json_render(self):
        points = [
            point(0, area_overhead=1.0, miss_rate=0.1),
            point(1, area_overhead=2.0, miss_rate=0.05),
        ]
        report = FrontierReport.build(points, AREA_MISS)
        text = report.table().render()
        assert "Pareto frontier" in text
        data = report.to_json()
        assert data["swept_points"] == 2
        assert {entry["index"] for entry in data["frontier"]} == {0, 1}
