"""Shared test fixtures and helpers."""

from __future__ import annotations

import pytest

from repro.asm.assembler import assemble
from repro.pipeline.cpu import PipelineCPU
from repro.pipeline.funcsim import FuncSim


EXIT_SNIPPET = """
        li   $v0, 10
        syscall
"""


def assemble_with_exit(body: str, name: str = "test"):
    """Assemble *body* with a standard exit appended."""
    return assemble(body + EXIT_SNIPPET, name=name)


def run_both(program, **kwargs):
    """Run on both engines; assert architected equivalence; return results."""
    func_result = FuncSim(program, **kwargs).run()
    pipe_result = PipelineCPU(program, **kwargs).run()
    assert func_result.console == pipe_result.console
    assert func_result.exit_code == pipe_result.exit_code
    assert func_result.instructions == pipe_result.instructions
    assert func_result.cycles == pipe_result.cycles, (
        f"cycle mismatch: funcsim={func_result.cycles} "
        f"pipeline={pipe_result.cycles}"
    )
    return func_result, pipe_result


@pytest.fixture
def run_source():
    """Fixture: assemble a snippet (exit appended) and run on both engines."""

    def runner(body: str, **kwargs):
        program = assemble_with_exit(body)
        return run_both(program, **kwargs)[0]

    return runner
