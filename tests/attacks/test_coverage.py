"""Attack sweeps end to end: parity with the legacy hand-rolled attacks,
worker-count invariance, resume, and latency bounds."""

import json

import pytest

from repro.attacks import AttackCorpus
from repro.eval.attack_coverage import run_attack_coverage
from repro.exec.records import FaultRecord
from repro.exec.runner import CampaignRunner
from repro.exec.spec import CampaignSpec
from repro.faults.campaign import DETECTED, Outcome, run_one

#: The gatekeeper program of examples/tamper_detection.py — the target the
#: legacy hand-rolled attacks were written against.
GATEKEEPER = """
        .data
secret: .word 7351
        .text
main:   li   $v0, 5
        syscall
        move $t0, $v0
        lw   $t1, secret
check:  bne  $t0, $t1, deny
grant:  li   $a0, 1
        j    report
deny:   li   $a0, 0
report: li   $v0, 1
        syscall
        li   $v0, 10
        syscall
"""

#: Attack classes the legacy examples/tamper_detection.py scenarios
#: exercised (logic inversion, injected jump, fetch-path delivery).
LEGACY_CLASSES = (
    "logic-invert",
    "jump-splice",
    "logic-invert/transient",
    "jump-splice/transient",
)

SWEEP_KWARGS = dict(
    source=GATEKEEPER,
    name="gatekeeper",
    per_class=6,
    inputs=(1234,),
    seed=42,
)


@pytest.fixture(scope="module")
def matrix():
    return run_attack_coverage(**SWEEP_KWARGS)


class TestLegacyParity:
    """Acceptance: every attack class the legacy tamper_detection.py
    scenarios covered is detected at >= their (100%) rate."""

    def test_legacy_classes_fully_detected(self, matrix):
        for attack_class in LEGACY_CLASSES:
            cell = matrix.cell(attack_class, "xor")
            assert cell.total > 0
            assert cell.detection_rate == 1.0, attack_class

    def test_specific_legacy_instances_detected(self):
        """The three hand-rolled attacks, reconstructed from the corpus."""
        spec = CampaignSpec(
            source=GATEKEEPER, name="gatekeeper", iht_size=8, inputs=(1234,)
        )
        context = spec.build_context()
        corpus = AttackCorpus.from_context(context)
        program = context.program
        check = program.symbols["check"]
        deny = program.symbols["deny"]
        grant = program.symbols["grant"]
        wanted = {
            "logic-invert": f"bne->beq@{check:#x}",
            "jump-splice": f"{deny:#x}~>j:{grant:#x}",
            "logic-invert/transient": f"bne->beq@{check:#x}",
        }
        for attack_class, label in wanted.items():
            scenario = next(
                candidate
                for candidate in corpus.enumerate(attack_class)
                if candidate.label == label
            )
            result = run_one(context, scenario)
            assert result.outcome is Outcome.DETECTED_CIC, attack_class
            assert result.latency == 0


class TestLatency:
    def test_detected_latencies_within_block_bound(self, matrix):
        block_bound = 16  # longest gatekeeper block is far shorter
        for cell in matrix.cells:
            for latency in cell.report.detection_latencies():
                assert 0 <= latency <= block_bound

    def test_latency_recorded_only_for_detections(self, matrix):
        for cell in matrix.cells:
            for result in cell.report.results:
                if result.latency is not None:
                    assert result.outcome in DETECTED


class TestWorkerInvariance:
    def test_matrix_is_byte_identical_across_worker_counts(self, matrix):
        pooled = run_attack_coverage(workers=2, chunk_size=4, **SWEEP_KWARGS)
        assert pooled.render_json() == matrix.render_json()
        assert pooled.table().render() == matrix.table().render()


class TestStreamingAndResume:
    def test_sweep_streams_and_resumes_identically(self, matrix, tmp_path):
        out = tmp_path / "attacks.jsonl"
        first = run_attack_coverage(out=out, **SWEEP_KWARGS)
        assert first.render_json() == matrix.render_json()
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        records = [entry for entry in lines if entry["type"] == "record"]
        assert records and all(
            entry["fault"]["kind"] == "attack" for entry in records
        )
        # Latency round-trips through the wire format.
        reloaded = [FaultRecord.from_json(entry) for entry in records]
        assert any(record.latency is not None for record in reloaded)

        resumed = run_attack_coverage(out=out, resume=True, **SWEEP_KWARGS)
        assert resumed.render_json() == matrix.render_json()

    def test_multi_hash_sweep_uses_per_cell_files(self, tmp_path):
        out = tmp_path / "attacks.jsonl"
        result = run_attack_coverage(
            hash_names=("xor", "crc32"),
            classes=("logic-invert",),
            out=out,
            **SWEEP_KWARGS,
        )
        expected = [
            str(tmp_path / "attacks.xor.lru_half.jsonl"),
            str(tmp_path / "attacks.crc32.lru_half.jsonl"),
        ]
        assert result.out_files == expected
        for path in expected:
            assert json.loads(
                open(path).readline()
            )["type"] == "header"

    def test_resume_refuses_a_different_corpus(self, tmp_path):
        """The corpus identity (classes, per_class) is part of the resume
        contract even though the spec fingerprint cannot see it."""
        from repro.errors import ConfigurationError

        out = tmp_path / "attacks.jsonl"
        kwargs = dict(SWEEP_KWARGS, classes=("jump-splice",))
        run_attack_coverage(out=out, **kwargs)
        with pytest.raises(ConfigurationError, match="cannot resume"):
            run_attack_coverage(
                out=out, resume=True,
                **dict(kwargs, classes=("branch-retarget",)),
            )
        with pytest.raises(ConfigurationError, match="cannot resume"):
            run_attack_coverage(
                out=out, resume=True, **dict(kwargs, per_class=5)
            )

    def test_negative_per_class_rejected(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError, match=">= 0"):
            run_attack_coverage(**dict(SWEEP_KWARGS, per_class=-1))


class TestMixedSweeps:
    def test_faults_and_scenarios_share_the_runner(self, tmp_path):
        """Perturbation lists may mix fault models and attack scenarios."""
        spec = CampaignSpec(
            source=GATEKEEPER, name="gatekeeper", iht_size=8, inputs=(1234,)
        )
        runner = CampaignRunner(spec, chunk_size=4)
        corpus = AttackCorpus.from_context(runner.campaign.context)
        mixed = (
            corpus.sample("logic-invert", 2, seed=1)
            + runner.campaign.random_single_bit(4, seed=1)
            + corpus.sample("jump-splice/transient", 2, seed=1)
        )
        out = tmp_path / "mixed.jsonl"
        result = runner.run(mixed, seed=1, out=out)
        assert result.complete
        resumed = runner.run(mixed, seed=1, out=out, resume=True)
        assert resumed.report().summary() == result.report().summary()
        kinds = {
            entry["fault"]["kind"]
            for entry in map(json.loads, out.read_text().splitlines())
            if entry["type"] == "record"
        }
        assert kinds == {"attack", "bitflip"}
