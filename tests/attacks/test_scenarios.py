"""AttackScenario: Perturbation conformance, delivery modes, wire format."""

import pytest

from repro.attacks import AttackScenario, CodePatch, TRANSIENT_SUFFIX
from repro.errors import ConfigurationError
from repro.exec.records import fault_from_json, fault_to_json
from repro.faults.models import (
    BitFlipFault,
    FetchProbe,
    TransientFetchFault,
    is_transient,
    split_perturbation,
)


class FakeMemory:
    def __init__(self, words):
        self.words = dict(words)

    def read_word(self, address):
        return self.words[address]

    def write_word(self, address, value):
        self.words[address] = value


@pytest.fixture
def scenario():
    return AttackScenario(
        attack_class="jump-splice",
        label="0x400010~>j:0x400020",
        patches=(CodePatch(0x400010, 0x08100008), CodePatch(0x400014, 0x0)),
    )


class TestPersistentDelivery:
    def test_apply_to_memory_writes_every_patch(self, scenario):
        memory = FakeMemory({0x400010: 0x1234, 0x400014: 0x5678})
        scenario.apply_to_memory(memory)
        assert memory.words == {0x400010: 0x08100008, 0x400014: 0x0}

    def test_target_addresses(self, scenario):
        assert scenario.target_addresses() == (0x400010, 0x400014)

    def test_is_not_transient(self, scenario):
        assert not is_transient(scenario)


class TestTransientDelivery:
    def test_delivers_on_requested_fetch_only(self, scenario):
        transient = scenario.as_transient(occurrence=2)
        assert transient.transform(0x400010, 0xAAAA) == 0xAAAA  # fetch 1
        assert transient.transform(0x400010, 0xAAAA) == 0x08100008  # fetch 2
        assert transient.transform(0x400010, 0xAAAA) == 0xAAAA  # fetch 3
        # Other addresses untouched; per-address counters independent.
        assert transient.transform(0x999, 0x1) == 0x1
        assert transient.transform(0x400014, 0xBBBB) == 0xBBBB
        assert transient.transform(0x400014, 0xBBBB) == 0x0

    def test_reset_restarts_counters(self, scenario):
        transient = scenario.as_transient()
        assert transient.transform(0x400010, 0xAAAA) == 0x08100008
        transient.reset()
        assert transient.transform(0x400010, 0xAAAA) == 0x08100008

    def test_variant_class_name_and_flag(self, scenario):
        transient = scenario.as_transient()
        assert transient.attack_class == "jump-splice" + TRANSIENT_SUFFIX
        assert is_transient(transient)
        assert transient.patches == scenario.patches

    def test_apply_to_memory_refused(self, scenario):
        with pytest.raises(ConfigurationError, match="fetch path"):
            scenario.as_transient().apply_to_memory(FakeMemory({}))


class TestValidation:
    def test_empty_patch_list_rejected(self):
        with pytest.raises(ConfigurationError, match="no patches"):
            AttackScenario("x", "empty", ())

    def test_bad_occurrence_rejected(self, scenario):
        with pytest.raises(ConfigurationError, match="occurrence"):
            scenario.as_transient(occurrence=0)


class TestWireFormat:
    def test_json_round_trip(self, scenario):
        for candidate in (scenario, scenario.as_transient(occurrence=3)):
            clone = fault_from_json(fault_to_json(candidate))
            assert clone == candidate
            assert clone.describe() == candidate.describe()

    def test_round_trip_ignores_delivery_state(self, scenario):
        transient = scenario.as_transient()
        transient.transform(0x400010, 0xAAAA)  # consume the delivery
        assert fault_from_json(fault_to_json(transient)) == transient

    def test_mixed_tuple_round_trip(self, scenario):
        mixed = (scenario, TransientFetchFault(0x400020, (3,)))
        assert fault_from_json(fault_to_json(mixed)) == mixed


class TestSplitPerturbation:
    def test_mixed_tuple_splits_by_delivery(self, scenario):
        transient_parts = (
            scenario.as_transient(),
            TransientFetchFault(0x400020, (3,)),
        )
        persistents, transients = split_perturbation(
            (scenario, BitFlipFault(0x400000, (1,))) + transient_parts
        )
        assert persistents == [scenario, BitFlipFault(0x400000, (1,))]
        assert transients == list(transient_parts)


class TestFetchProbe:
    def test_latency_counts_instructions_since_corruption(self):
        probe = FetchProbe(tampered={0x8})
        probe(0x0, 0x1)
        assert probe.latency() is None  # clean fetch
        probe(0x8, 0x2)  # corrupted delivery (tampered address)
        probe(0xC, 0x3)
        probe(0x10, 0x4)
        assert probe.first_corrupt == 2
        assert probe.latency() == 2

    def test_transient_corruption_detected_by_rewrite(self):
        fault = TransientFetchFault(0x8, (0,), occurrence=1)
        probe = FetchProbe((), fault.transform)
        assert probe(0x4, 0x10) == 0x10
        assert probe(0x8, 0x10) == 0x11
        assert probe.latency() == 0
