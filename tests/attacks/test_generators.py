"""Generators: validity, semantics, and deterministic enumeration."""

import pytest

from repro.attacks import (
    ATTACK_CLASSES,
    AttackCorpus,
    MAX_SLIDE,
    NOP_WORD,
    PERSISTENT_CLASSES,
    resolve_classes,
)
from repro.errors import ConfigurationError
from repro.exec.spec import CampaignSpec
from repro.isa.encoding import decode
from repro.isa.properties import (
    BRANCHES,
    DIRECT_JUMPS,
    branch_target,
    is_control_flow,
    jump_target,
)


@pytest.fixture(scope="module")
def corpus():
    spec = CampaignSpec(workload="sha", scale="tiny", iht_size=8)
    return AttackCorpus.from_context(spec.build_context())


class TestValidity:
    """Every patch is an encoding-valid word that changes the program."""

    @pytest.mark.parametrize("attack_class", PERSISTENT_CLASSES)
    def test_patches_decode_and_differ(self, corpus, attack_class):
        executed = frozenset(corpus.executed)
        for scenario in corpus.enumerate(attack_class):
            for patch in scenario.patches:
                assert patch.address in executed
                original = corpus.program.text.word_at(patch.address)
                assert patch.word != original, scenario.label
                decode(patch.word, patch.address)  # must not raise


class TestSemantics:
    def test_branch_retarget_keeps_mnemonic_moves_target(self, corpus):
        for scenario in corpus.enumerate("branch-retarget"):
            (patch,) = scenario.patches
            original = decode(
                corpus.program.text.word_at(patch.address), patch.address
            )
            patched = decode(patch.word, patch.address)
            assert patched.mnemonic is original.mnemonic
            assert patched.mnemonic in BRANCHES
            assert branch_target(patched, patch.address) != branch_target(
                original, patch.address
            )

    def test_logic_invert_swaps_within_pairs(self, corpus):
        for scenario in corpus.enumerate("logic-invert"):
            (patch,) = scenario.patches
            original = decode(
                corpus.program.text.word_at(patch.address), patch.address
            )
            patched = decode(patch.word, patch.address)
            assert patched.mnemonic is not original.mnemonic
            # Only selector fields may change (opcode, funct, REGIMM rt);
            # register and immediate operands survive the inversion.
            selector_bits = (0x3F << 26) | (0x1F << 16) | 0x3F
            assert (patched.word ^ original.word) & ~selector_bits == 0

    def test_jump_splice_is_direct_jump_to_entry(self, corpus):
        for scenario in corpus.enumerate("jump-splice"):
            (patch,) = scenario.patches
            patched = decode(patch.word, patch.address)
            assert patched.mnemonic in DIRECT_JUMPS
            target = jump_target(patched, patch.address)
            assert corpus.program.text_start <= target < corpus.program.text_end
            assert target != patch.address

    def test_nop_slide_overwrites_straight_line_code(self, corpus):
        for scenario in corpus.enumerate("nop-slide"):
            assert 1 <= len(scenario.patches) <= MAX_SLIDE
            for patch in scenario.patches:
                assert patch.word == NOP_WORD
                original = decode(
                    corpus.program.text.word_at(patch.address), patch.address
                )
                assert not is_control_flow(original)


class TestDeterminism:
    def test_enumeration_is_reproducible(self, corpus):
        fresh = AttackCorpus(corpus.program, corpus.executed)
        for attack_class in ATTACK_CLASSES:
            assert corpus.enumerate(attack_class) == fresh.enumerate(attack_class)

    def test_sample_is_seeded_ordered_subset(self, corpus):
        full = corpus.enumerate("opcode-sub")
        sample = corpus.sample("opcode-sub", 10, seed=7)
        assert sample == corpus.sample("opcode-sub", 10, seed=7)
        assert len(sample) == 10
        positions = [full.index(scenario) for scenario in sample]
        assert positions == sorted(positions)
        assert corpus.sample("opcode-sub", 10, seed=8) != sample

    def test_sample_larger_than_enumeration_returns_all(self, corpus):
        everything = corpus.enumerate("logic-invert")
        assert corpus.sample("logic-invert", 10**6, seed=1) == everything

    def test_build_orders_classes_canonically(self, corpus):
        scenarios = corpus.build(("all",), per_class=3, seed=1)
        seen_classes = []
        for scenario in scenarios:
            if scenario.attack_class not in seen_classes:
                seen_classes.append(scenario.attack_class)
        assert seen_classes == list(ATTACK_CLASSES)

    def test_transient_enumeration_mirrors_persistent(self, corpus):
        persistent = corpus.enumerate("nop-slide")
        transient = corpus.enumerate("nop-slide/transient")
        assert [scenario.patches for scenario in transient] == [
            scenario.patches for scenario in persistent
        ]
        assert all(scenario.transient for scenario in transient)


class TestResolveClasses:
    def test_aliases(self):
        assert resolve_classes("all") == ATTACK_CLASSES
        assert resolve_classes(("persistent",)) == PERSISTENT_CLASSES
        transient = resolve_classes(("transient",))
        assert all(name.endswith("/transient") for name in transient)
        assert len(transient) == len(PERSISTENT_CLASSES)

    def test_order_is_canonical_regardless_of_request_order(self):
        assert resolve_classes(("nop-slide", "branch-retarget")) == (
            "branch-retarget",
            "nop-slide",
        )

    def test_unknown_class_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown attack class"):
            resolve_classes(("rowhammer",))
