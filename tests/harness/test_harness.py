"""Generic-engine guarantees, tested against a toy client.

The campaign and DSE suites exercise the harness through the real
clients; these tests pin the engine's contract in isolation — with a
work item that is just an integer and a record that is just a pair — so
a regression in sharding, commit markers, resume validation, or the
shared-payload path is attributable to the harness itself.
"""

import json
from dataclasses import dataclass

import pytest

from repro.errors import ConfigurationError
from repro.exec.harness import (
    HarnessRunner,
    Job,
    MeasureCache,
    WorkspaceFactory,
    validate_plan,
)
from repro.exec.sharing import publish, release

SEED = 9
ITEMS = list(range(23))  # chunk 5 -> shards of 5,5,5,5,3
CHUNK = 5


@dataclass(slots=True)
class ToyRecord:
    index: int
    shard: int
    value: int


@dataclass(slots=True)
class ToyFactory(WorkspaceFactory):
    """Squares its items; workspace is a dict so sharing is observable."""

    bias: int = 0

    record_type = "record"
    kind = "toy results"

    def build(self, shared=None):
        return {"bias": self.bias, "shared": shared is not None}

    def shared_payload(self, workspace):
        return {"bias": workspace["bias"]}

    def run_item(self, workspace, index, shard, item):
        return ToyRecord(index, shard, item * item + workspace["bias"])

    def encode(self, record):
        return {
            "type": "record",
            "index": record.index,
            "shard": record.shard,
            "value": record.value,
        }

    def decode(self, data):
        return ToyRecord(data["index"], data["shard"], data["value"])


def make_job(chunk_size=CHUNK, seed=SEED, items=None):
    return Job(
        factory=ToyFactory(),
        items=list(ITEMS) if items is None else items,
        seed=seed,
        version=7,
        payload={"fingerprint": "toy-fingerprint"},
        chunk_size=chunk_size,
    )


def payloads(records):
    return [
        (record.index, record.shard, record.value)
        for record in sorted(records, key=lambda r: r.index)
    ]


class TestExecution:
    def test_serial_complete(self):
        result = HarnessRunner(make_job()).run()
        assert result.complete
        assert payloads(result.records) == [
            (i, i // CHUNK, i * i) for i in ITEMS
        ]

    def test_worker_count_invariant(self):
        serial = HarnessRunner(make_job()).run()
        pooled = HarnessRunner(make_job(), workers=4).run()
        assert payloads(pooled.records) == payloads(serial.records)

    def test_shared_payload_reaches_workers(self):
        # The pool path publishes the parent workspace's payload; the
        # toy factory records whether build() saw it.
        job = make_job()
        runner = HarnessRunner(job, workers=2)
        result = runner.run()
        assert result.complete
        assert runner.workspace["shared"] is False  # parent built fresh

    def test_share_false_skips_publication(self):
        result = HarnessRunner(make_job(), workers=2, share=False).run()
        assert result.complete

    def test_ordered_is_index_sorted(self):
        result = HarnessRunner(make_job(), workers=4).run()
        assert [r.index for r in result.ordered()] == list(ITEMS)

    def test_workspace_supplier_wins(self):
        runner = HarnessRunner(
            make_job(), workspace_supplier=lambda: {"bias": 100, "shared": False}
        )
        assert payloads(runner.run().records) == [
            (i, i // CHUNK, i * i + 100) for i in ITEMS
        ]


class TestStreaming:
    def test_jsonl_layout(self, tmp_path):
        out = tmp_path / "toy.jsonl"
        HarnessRunner(make_job()).run(out=out)
        lines = [json.loads(line) for line in out.read_text().splitlines()]
        header, body = lines[0], lines[1:]
        assert header["type"] == "header"
        assert header["version"] == 7
        assert header["fingerprint"] == "toy-fingerprint"
        assert header["total"] == len(ITEMS)
        assert header["chunk_size"] == CHUNK
        records = [entry for entry in body if entry["type"] == "record"]
        markers = [entry for entry in body if entry["type"] == "shard-done"]
        assert len(records) == len(ITEMS)
        assert len(markers) == 5
        # Every shard's records precede its marker.
        seen_markers: set[int] = set()
        for entry in body:
            if entry["type"] == "shard-done":
                seen_markers.add(entry["shard"])
            else:
                assert entry["shard"] not in seen_markers


class TestResume:
    def test_kill_resume_completes(self, tmp_path):
        out = tmp_path / "toy.jsonl"
        partial = HarnessRunner(make_job()).run(out=out, stop_after_shards=2)
        assert not partial.complete
        assert len(partial.records) == 2 * CHUNK
        resumed = HarnessRunner(make_job()).run(out=out, resume=True)
        assert resumed.complete
        assert payloads(resumed.records) == payloads(
            HarnessRunner(make_job()).run().records
        )

    def test_resume_refuses_each_identity_key(self, tmp_path):
        out = tmp_path / "toy.jsonl"
        HarnessRunner(make_job()).run(out=out, stop_after_shards=1)
        variants = {
            "seed": make_job(seed=SEED + 1),
            "chunk_size": make_job(chunk_size=CHUNK + 1),
            "total": make_job(items=list(range(5))),
        }
        for key, job in variants.items():
            with pytest.raises(ConfigurationError, match="cannot resume"):
                HarnessRunner(job).run(out=out, resume=True)

    def test_resume_refuses_foreign_file(self, tmp_path):
        out = tmp_path / "bogus.jsonl"
        out.write_text('{"type":"record"}\n')
        with pytest.raises(ConfigurationError, match="not a toy results file"):
            HarnessRunner(make_job()).run(out=out, resume=True)

    def test_resume_requires_out(self):
        with pytest.raises(ConfigurationError, match="requires out"):
            HarnessRunner(make_job()).run(resume=True)

    def test_empty_file_starts_fresh(self, tmp_path):
        out = tmp_path / "empty.jsonl"
        out.write_text("")
        result = HarnessRunner(make_job()).run(out=out, resume=True)
        assert result.complete

    def test_uncommitted_records_rerun(self, tmp_path):
        out = tmp_path / "torn.jsonl"
        HarnessRunner(make_job()).run(out=out, stop_after_shards=2)
        lines = out.read_text().splitlines()
        assert json.loads(lines[-1])["type"] == "shard-done"
        out.write_text("\n".join(lines[:-1]) + "\n")
        resumed = HarnessRunner(make_job()).run(out=out, resume=True)
        assert resumed.complete
        assert sorted(r.index for r in resumed.records) == list(ITEMS)


class TestValidation:
    def test_bad_workers_and_chunks(self):
        with pytest.raises(ConfigurationError):
            HarnessRunner(make_job(), workers=0)
        with pytest.raises(ConfigurationError):
            make_job(chunk_size=0)
        with pytest.raises(ConfigurationError):
            validate_plan(workers=1, chunk_size=-3)


class TestMeasureCache:
    def test_builds_once(self):
        cache = MeasureCache()
        calls = []
        for _ in range(3):
            value = cache.get("key", lambda: calls.append(1) or 42)
        assert value == 42
        assert calls == [1]
        assert "key" in cache
        assert len(cache) == 1

    def test_seeding_short_circuits(self):
        cache = MeasureCache({"warm": "payload"})
        assert cache.get("warm", lambda: pytest.fail("rebuilt")) == "payload"

    def test_snapshot_is_a_copy(self):
        cache = MeasureCache()
        cache.get("a", lambda: 1)
        snap = cache.snapshot()
        snap["b"] = 2
        assert "b" not in cache


class TestSharing:
    def test_publish_attach_release_roundtrip(self):
        payload = {"numbers": list(range(1000)), "text": "golden"}
        ticket = publish(payload)
        try:
            assert ticket.attach() == payload
            assert ticket.attach() == payload  # attach is repeatable
        finally:
            release(ticket)
        release(ticket)  # double release is a no-op
