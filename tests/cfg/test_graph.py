"""CFG construction tests."""

from repro.asm.assembler import assemble
from repro.cfg.graph import control_flow_graph, reachable_blocks

SOURCE = """
main:   li $t0, 3
loop:   addi $t0, $t0, -1
        bgtz $t0, loop
        li $v0, 10
        syscall
"""


class TestControlFlowGraph:
    def test_nodes_are_partition_blocks(self):
        program = assemble(SOURCE)
        graph = control_flow_graph(program)
        starts = {node[0] for node in graph.nodes}
        assert program.entry in starts
        assert program.symbols["loop"] in starts

    def test_loop_edge_exists(self):
        program = assemble(SOURCE)
        graph = control_flow_graph(program)
        loop_block = next(n for n in graph.nodes if n[0] == program.symbols["loop"])
        assert graph.has_edge(loop_block, loop_block) or any(
            successor[0] == program.symbols["loop"]
            for successor in graph.successors(loop_block)
        )

    def test_branch_has_two_successors(self):
        program = assemble(SOURCE)
        graph = control_flow_graph(program)
        loop_block = next(n for n in graph.nodes if n[0] == program.symbols["loop"])
        assert graph.out_degree(loop_block) == 2

    def test_reachability_covers_live_code(self):
        program = assemble(SOURCE)
        reachable = reachable_blocks(program)
        starts = {key[0] for key in reachable}
        assert program.entry in starts
        assert program.symbols["loop"] in starts

    def test_dead_code_unreachable(self):
        program = assemble("""
main:   j end
dead:   li $t0, 1
        nop
end:    li $v0, 10
        syscall
        """)
        reachable = reachable_blocks(program)
        starts = {key[0] for key in reachable}
        assert program.symbols["dead"] not in starts
