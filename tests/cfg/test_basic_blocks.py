"""Basic-block enumeration tests, including the FHT-coverage invariant."""

import pytest

from repro.asm.assembler import assemble
from repro.cfg.basic_blocks import (
    entry_points,
    enumerate_monitored_blocks,
    partition_blocks,
)
from repro.isa.encoding import decode
from repro.isa.properties import is_control_flow
from repro.pipeline.funcsim import FuncSim
from repro.workloads.suite import WORKLOAD_NAMES, build, workload_inputs

SOURCE = """
main:   li $t0, 3
loop:   addi $t0, $t0, -1
        bgtz $t0, loop
        beq $t0, $zero, out
        nop
out:    li $v0, 10
        syscall
"""


class TestEntryPoints:
    def test_includes_entry_targets_and_fallthroughs(self):
        program = assemble(SOURCE)
        points = entry_points(program)
        assert program.entry in points
        assert program.symbols["loop"] in points
        assert program.symbols["out"] in points
        # fall-through of bgtz
        assert program.symbols["loop"] + 8 in points

    def test_text_symbols_included(self):
        program = assemble("""
main:   la $t0, helper
        jalr $t0
        li $v0, 10
        syscall
helper: jr $ra
        """)
        assert program.symbols["helper"] in entry_points(program)


class TestMonitoredBlocks:
    def test_blocks_end_at_control_flow(self):
        program = assemble(SOURCE)
        for block in enumerate_monitored_blocks(program):
            assert is_control_flow(decode(block.words[-1]))
            assert block.end - block.start == 4 * (len(block.words) - 1)

    def test_overlapping_suffixes_allowed(self):
        program = assemble(SOURCE)
        blocks = enumerate_monitored_blocks(program)
        ends = [block.end for block in blocks]
        assert len(ends) != len(set(ends))  # some blocks share a terminator

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_every_dynamic_block_statically_enumerated(self, name):
        """THE coverage invariant: no legitimate execution can raise a
        hash-miss the OS cannot verify against the FHT."""
        program = build(name, "tiny")
        static_keys = {
            block.key for block in enumerate_monitored_blocks(program)
        }
        result = FuncSim(
            program, collect_trace=True, inputs=workload_inputs(name, "tiny")
        ).run()
        dynamic_keys = result.block_trace.unique_blocks()
        assert dynamic_keys <= static_keys


class TestPartition:
    def test_partition_is_disjoint(self):
        program = assemble(SOURCE)
        blocks = partition_blocks(program)
        covered: set[int] = set()
        for block in blocks:
            addresses = set(range(block.start, block.end + 4, 4))
            assert not (covered & addresses)
            covered |= addresses

    def test_partition_starts_at_leaders(self):
        program = assemble(SOURCE)
        leader_set = entry_points(program)
        for block in partition_blocks(program):
            assert block.start in leader_set
