"""Test package."""
