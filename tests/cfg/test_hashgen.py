"""Expected-hash generation tests."""

import pytest

from repro.asm.assembler import assemble
from repro.cfg.basic_blocks import enumerate_monitored_blocks
from repro.cfg.hashgen import build_fht
from repro.cic.hashes import get_hash, block_hash
from repro.osmodel.loader import load_process
from repro.pipeline.funcsim import FuncSim
from repro.workloads.suite import WORKLOAD_NAMES, build, workload_inputs

SOURCE = """
main:   li $t0, 3
loop:   addi $t0, $t0, -1
        bgtz $t0, loop
        li $v0, 10
        syscall
"""


class TestBuildFht:
    def test_one_record_per_monitored_block(self):
        program = assemble(SOURCE)
        fht = build_fht(program, get_hash("xor"))
        blocks = enumerate_monitored_blocks(program)
        assert len(fht) == len(blocks)
        for block in blocks:
            assert fht.get(block.start, block.end) == block_hash(
                get_hash("xor"), block.words
            )

    def test_hash_changes_with_word(self):
        program = assemble(SOURCE)
        before = build_fht(program, get_hash("xor"))
        program.text.set_word(program.entry, program.word_at(program.entry) ^ 4)
        after = build_fht(program, get_hash("xor"))
        changed = [
            key for key, value in after.items()
            if before.get(*key) != value
        ]
        assert changed  # every block containing the word re-hashes

    @pytest.mark.parametrize("hash_name", ["xor", "crc32", "sha1"])
    def test_untampered_run_never_mismatches(self, hash_name):
        program = assemble(SOURCE)
        process = load_process(program, iht_size=2, hash_name=hash_name)
        result = FuncSim(program, monitor=process.monitor).run()
        assert result.monitor_stats.mismatches == 0


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_workloads_never_mismatch_untampered(name):
    program = build(name, "tiny")
    process = load_process(program, iht_size=8)
    result = FuncSim(
        program, monitor=process.monitor, inputs=workload_inputs(name, "tiny")
    ).run()
    assert result.monitor_stats.mismatches == 0
    assert result.monitor_stats.lookups > 0
