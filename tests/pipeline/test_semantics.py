"""Architected semantics tests (shared by both simulators)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.pipeline import semantics
from repro.isa.encoding import decode, encode_fields
from repro.isa.opcodes import Mnemonic
from repro.utils.bitops import MASK32, to_signed32

words = st.integers(min_value=0, max_value=MASK32)


def _make(mnemonic, **kwargs):
    return decode(encode_fields(mnemonic, **kwargs))


class TestAlu:
    @given(a=words, b=words)
    def test_addu_wraps(self, a, b):
        result = semantics.alu_result(_make(Mnemonic.ADDU), a, b)
        assert result == (a + b) & MASK32

    @given(a=words, b=words)
    def test_subu_wraps(self, a, b):
        result = semantics.alu_result(_make(Mnemonic.SUBU), a, b)
        assert result == (a - b) & MASK32

    @given(a=words, b=words)
    def test_logic_ops(self, a, b):
        assert semantics.alu_result(_make(Mnemonic.AND), a, b) == a & b
        assert semantics.alu_result(_make(Mnemonic.OR), a, b) == a | b
        assert semantics.alu_result(_make(Mnemonic.XOR), a, b) == a ^ b
        assert semantics.alu_result(_make(Mnemonic.NOR), a, b) == ~(a | b) & MASK32

    @given(a=words, b=words)
    def test_slt_signed(self, a, b):
        result = semantics.alu_result(_make(Mnemonic.SLT), a, b)
        assert result == int(to_signed32(a) < to_signed32(b))

    @given(a=words, b=words)
    def test_sltu_unsigned(self, a, b):
        assert semantics.alu_result(_make(Mnemonic.SLTU), a, b) == int(a < b)

    @given(value=words, shamt=st.integers(min_value=0, max_value=31))
    def test_shifts(self, value, shamt):
        sll = semantics.alu_result(_make(Mnemonic.SLL, shamt=shamt), 0, value)
        srl = semantics.alu_result(_make(Mnemonic.SRL, shamt=shamt), 0, value)
        sra = semantics.alu_result(_make(Mnemonic.SRA, shamt=shamt), 0, value)
        assert sll == (value << shamt) & MASK32
        assert srl == value >> shamt
        assert sra == (to_signed32(value) >> shamt) & MASK32

    @given(value=words, amount=words)
    def test_variable_shifts_use_low_5_bits(self, value, amount):
        sllv = semantics.alu_result(_make(Mnemonic.SLLV), amount, value)
        assert sllv == (value << (amount & 31)) & MASK32

    def test_lui(self):
        assert semantics.alu_result(_make(Mnemonic.LUI, imm=0x1234), 0, 0) == 0x12340000

    def test_sra_sign_fill(self):
        result = semantics.alu_result(_make(Mnemonic.SRA, shamt=4), 0, 0x80000000)
        assert result == 0xF8000000

    def test_non_alu_returns_none(self):
        assert semantics.alu_result(_make(Mnemonic.SYSCALL), 0, 0) is None


class TestMulDiv:
    @given(a=words, b=words)
    def test_multu(self, a, b):
        hi, lo = semantics.muldiv_result(_make(Mnemonic.MULTU), a, b)
        assert (hi << 32) | lo == a * b

    @given(a=words, b=words)
    def test_mult_signed(self, a, b):
        hi, lo = semantics.muldiv_result(_make(Mnemonic.MULT), a, b)
        product = to_signed32(a) * to_signed32(b)
        assert ((hi << 32) | lo) == product & ((1 << 64) - 1)

    def test_div_truncates_toward_zero(self):
        instruction = _make(Mnemonic.DIV)
        hi, lo = semantics.muldiv_result(instruction, (-7) & MASK32, 2)
        assert to_signed32(lo) == -3  # C-style, not Python floor
        assert to_signed32(hi) == -1

    @given(a=words, b=st.integers(min_value=1, max_value=MASK32))
    def test_divu(self, a, b):
        hi, lo = semantics.muldiv_result(_make(Mnemonic.DIVU), a, b)
        assert lo == a // b
        assert hi == a % b

    def test_div_by_zero_defined(self):
        assert semantics.muldiv_result(_make(Mnemonic.DIV), 5, 0) == (0, 0)
        assert semantics.muldiv_result(_make(Mnemonic.DIVU), 5, 0) == (0, 0)

    @given(a=words, b=st.integers(min_value=1, max_value=MASK32).map(lambda v: v | 1))
    def test_div_identity(self, a, b):
        hi, lo = semantics.muldiv_result(_make(Mnemonic.DIV), a, b)
        quotient, remainder = to_signed32(lo), to_signed32(hi)
        sa, sb = to_signed32(a), to_signed32(b)
        assert quotient * sb + remainder == sa


class TestBranches:
    @given(a=words, b=words)
    def test_beq_bne(self, a, b):
        assert semantics.branch_taken(_make(Mnemonic.BEQ), a, b) == (a == b)
        assert semantics.branch_taken(_make(Mnemonic.BNE), a, b) == (a != b)

    @given(a=words)
    def test_zero_compares(self, a):
        signed = to_signed32(a)
        assert semantics.branch_taken(_make(Mnemonic.BLEZ), a, 0) == (signed <= 0)
        assert semantics.branch_taken(_make(Mnemonic.BGTZ), a, 0) == (signed > 0)
        assert semantics.branch_taken(_make(Mnemonic.BLTZ), a, 0) == (signed < 0)
        assert semantics.branch_taken(_make(Mnemonic.BGEZ), a, 0) == (signed >= 0)

    def test_non_branch_rejected(self):
        with pytest.raises(ValueError):
            semantics.branch_taken(_make(Mnemonic.ADD), 0, 0)


class TestControlTargets:
    def test_branch_target(self):
        instruction = _make(Mnemonic.BEQ, imm=-1)
        assert semantics.control_target(instruction, 0x400004, 0) == 0x400004

    def test_jr_target_is_register(self):
        instruction = _make(Mnemonic.JR, rs=31)
        assert semantics.control_target(instruction, 0x400000, 0x1234) == 0x1234

    def test_trap_has_no_target(self):
        assert semantics.control_target(_make(Mnemonic.SYSCALL), 0x400000, 0) is None

    def test_link_value(self):
        assert semantics.link_value(0x400000) == 0x400004
