"""Differential tests: FuncSim vs PipelineCPU on a program corpus.

The functional simulator's scoreboard and the stage-latch pipeline must
agree on cycles, console, instruction counts, block traces, architected
registers, and memory effects — for handcrafted corner programs, for
hypothesis-generated ALU programs, and (in test_workloads_differential)
for every workload.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm.assembler import assemble
from repro.pipeline.cpu import PipelineCPU
from repro.pipeline.funcsim import FuncSim

from tests.conftest import run_both

CORPUS = {
    "dependent-chain": """
        li $t0, 1
        addi $t1, $t0, 2
        add $t2, $t1, $t0
        sub $t3, $t2, $t1
        xor $a0, $t3, $t2
        li $v0, 1
        syscall
    """,
    "load-use-chains": """
        .data
    arr: .word 3, 1, 4, 1, 5
        .text
        la $t9, arr
        lw $t0, 0($t9)
        lw $t1, 4($t9)
        addu $t2, $t0, $t1
        lw $t3, 8($t9)
        addu $t2, $t2, $t3
        sw $t2, 16($t9)
        lw $a0, 16($t9)
        li $v0, 1
        syscall
    """,
    "branch-dance": """
        li $t0, 0
        li $t1, 6
    top:
        andi $t2, $t1, 1
        beqz $t2, even
        addi $t0, $t0, 100
        j next
    even:
        addi $t0, $t0, 1
    next:
        addi $t1, $t1, -1
        bgtz $t1, top
        move $a0, $t0
        li $v0, 1
        syscall
    """,
    "muldiv-pressure": """
        li $t0, 123456
        li $t1, 789
        div $t2, $t0, $t1
        rem $t3, $t0, $t1
        mul $t4, $t2, $t1
        addu $t4, $t4, $t3
        move $a0, $t4
        li $v0, 1
        syscall
    """,
    "call-tree": """
        li $a0, 4
        jal fib
        move $a0, $v0
        li $v0, 1
        syscall
        j end
    fib:
        li $v0, 1
        li $t0, 2
        blt $a0, $t0, fib_ret
        addi $sp, $sp, -12
        sw $ra, 0($sp)
        sw $a0, 4($sp)
        addi $a0, $a0, -1
        jal fib
        sw $v0, 8($sp)
        lw $a0, 4($sp)
        addi $a0, $a0, -2
        jal fib
        lw $t1, 8($sp)
        addu $v0, $v0, $t1
        lw $ra, 0($sp)
        addi $sp, $sp, 12
    fib_ret:
        jr $ra
    end:
    """,
    "store-forward-mix": """
        .data
    buf: .space 16
        .text
        la $t9, buf
        li $t0, 0x11
        sw $t0, 0($t9)
        lw $t1, 0($t9)
        sw $t1, 4($t9)
        lb $t2, 4($t9)
        sb $t2, 8($t9)
        lw $a0, 8($t9)
        li $v0, 1
        syscall
    """,
    "jr-through-table": """
        .data
    table: .word f1, f2
        .text
        la $t9, table
        lw $t0, 0($t9)
        jalr $t0
        move $s0, $v0
        lw $t0, 4($t9)
        jalr $t0
        addu $a0, $s0, $v0
        li $v0, 1
        syscall
        j end
    f1: li $v0, 10
        jr $ra
    f2: li $v0, 32
        jr $ra
    end:
    """,
}


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_corpus_program_equivalence(name):
    program = assemble(CORPUS[name] + "\nli $v0, 10\nsyscall\n", name=name)
    func_result, pipe_result = run_both(program, collect_trace=True)
    assert [e.key for e in func_result.block_trace] == [
        e.key for e in pipe_result.block_trace
    ]


@pytest.mark.parametrize("name", sorted(CORPUS))
def test_corpus_final_state_equivalence(name):
    program = assemble(CORPUS[name] + "\nli $v0, 10\nsyscall\n", name=name)
    func_sim = FuncSim(program)
    pipe_sim = PipelineCPU(program)
    func_sim.run()
    pipe_sim.run()
    assert func_sim.state.regs == pipe_sim.state.regs
    assert func_sim.state.hi == pipe_sim.state.hi
    assert func_sim.state.lo == pipe_sim.state.lo


_ALU_OPS = ["addu", "subu", "and", "or", "xor", "nor", "slt", "sltu"]
_IMM_OPS = ["addiu", "andi", "ori", "xori", "slti"]


@st.composite
def alu_programs(draw):
    """Random straight-line ALU programs over $t0-$t7."""
    lines = ["        li $t0, %d" % draw(st.integers(-1000, 1000))]
    for register in range(1, 8):
        lines.append(
            "        li $t%d, %d" % (register, draw(st.integers(-1000, 1000)))
        )
    count = draw(st.integers(min_value=3, max_value=25))
    for _ in range(count):
        if draw(st.booleans()):
            op = draw(st.sampled_from(_ALU_OPS))
            rd, rs, rt = (draw(st.integers(0, 7)) for _ in range(3))
            lines.append(f"        {op} $t{rd}, $t{rs}, $t{rt}")
        else:
            op = draw(st.sampled_from(_IMM_OPS))
            rt, rs = draw(st.integers(0, 7)), draw(st.integers(0, 7))
            imm = draw(st.integers(0, 255))
            lines.append(f"        {op} $t{rt}, $t{rs}, {imm}")
    lines.append("        move $a0, $t%d" % draw(st.integers(0, 7)))
    lines.append("        li $v0, 1")
    lines.append("        syscall")
    lines.append("        li $v0, 10")
    lines.append("        syscall")
    return "\n".join(lines)


@settings(max_examples=30, deadline=None)
@given(source=alu_programs())
def test_random_alu_programs_equivalent(source):
    program = assemble(source)
    run_both(program)
