"""ArchState and BlockTrace unit tests."""

from repro.asm.assembler import assemble
from repro.asm.program import STACK_TOP
from repro.pipeline.state import ArchState
from repro.pipeline.trace import BlockEvent, BlockTrace
from repro.isa.registers import SP


class TestArchState:
    def test_boot_layout(self):
        program = assemble("main: nop\n.data\nv: .word 9")
        state = ArchState.boot(program)
        assert state.pc == program.entry
        assert state.read_reg(SP) == STACK_TOP
        assert state.memory.read_word(program.symbols["v"]) == 9

    def test_register_zero_hardwired(self):
        state = ArchState()
        state.write_reg(0, 123)
        assert state.read_reg(0) == 0

    def test_writes_masked_to_32_bits(self):
        state = ArchState()
        state.write_reg(5, 1 << 40 | 7)
        assert state.read_reg(5) == 7

    def test_snapshot(self):
        state = ArchState()
        state.write_reg(3, 9)
        state.hi = 1
        snapshot = state.snapshot_regs()
        assert snapshot[3] == 9
        assert snapshot[32] == 1  # hi after the 32 GPRs


class TestBlockTrace:
    def test_event_length(self):
        event = BlockEvent(0x400000, 0x400010)
        assert event.length == 5
        assert event.key == (0x400000, 0x400010)

    def test_counts_and_uniques(self):
        trace = BlockTrace()
        trace.append(0x100, 0x10C)
        trace.append(0x100, 0x10C)
        trace.append(0x200, 0x20C)
        assert len(trace) == 3
        assert trace.unique_blocks() == {(0x100, 0x10C), (0x200, 0x20C)}
        assert trace.execution_counts()[(0x100, 0x10C)] == 2

    def test_summary(self):
        trace = BlockTrace()
        trace.append(0x100, 0x10C)
        assert "1 block executions" in trace.summary()
        assert "1 distinct" in trace.summary()

    def test_iteration_order(self):
        trace = BlockTrace()
        trace.append(0x100, 0x10C)
        trace.append(0x200, 0x20C)
        assert [event.start for event in trace] == [0x100, 0x200]
