"""Syscall handler unit tests."""

import pytest

from repro.errors import SimulationError
from repro.pipeline.state import ArchState
from repro.pipeline.syscalls import SyscallHandler
from repro.isa.registers import A0, V0


def _state(number, argument=0):
    state = ArchState()
    state.write_reg(V0, number)
    state.write_reg(A0, argument)
    return state


class TestPrinting:
    def test_print_int_signed(self):
        handler = SyscallHandler()
        handler.execute(_state(1, 0xFFFFFFFF))
        assert handler.console_text == "-1"

    def test_print_char(self):
        handler = SyscallHandler()
        handler.execute(_state(11, ord("A")))
        assert handler.console_text == "A"

    def test_print_string(self):
        handler = SyscallHandler()
        state = _state(4, 0x1000)
        state.memory.load_bytes(0x1000, b"ok\x00")
        handler.execute(state)
        assert handler.console_text == "ok"

    def test_console_accumulates(self):
        handler = SyscallHandler()
        handler.execute(_state(1, 1))
        handler.execute(_state(11, ord(",")))
        handler.execute(_state(1, 2))
        assert handler.console_text == "1,2"


class TestExit:
    def test_exit_zero(self):
        result = SyscallHandler().execute(_state(10, 99))
        assert result.exited and result.exit_code == 0

    def test_exit2_code(self):
        result = SyscallHandler().execute(_state(17, 0xFFFFFFFE))
        assert result.exited and result.exit_code == -2

    def test_print_does_not_exit(self):
        assert not SyscallHandler().execute(_state(1, 5)).exited


class TestReadInt:
    def test_pops_queue_into_v0(self):
        handler = SyscallHandler()
        handler.inputs.extend([10, 20])
        state = _state(5)
        handler.execute(state)
        assert state.read_reg(V0) == 10
        state.write_reg(V0, 5)  # request another read
        handler.execute(state)
        assert state.read_reg(V0) == 20

    def test_empty_queue_raises(self):
        with pytest.raises(SimulationError):
            SyscallHandler().execute(_state(5))

    def test_negative_input_wraps(self):
        handler = SyscallHandler()
        handler.inputs.append(-3)
        state = _state(5)
        handler.execute(state)
        assert state.read_reg(V0) == 0xFFFFFFFD


def test_unknown_syscall_rejected():
    with pytest.raises(SimulationError, match="unknown syscall"):
        SyscallHandler().execute(_state(99))
