"""Test package."""
