"""Functional simulator tests: architected behaviour of whole programs."""

import pytest

from repro.errors import SimulationError
from repro.asm.assembler import assemble
from repro.pipeline.funcsim import FuncSim

from tests.conftest import assemble_with_exit


def _run(body, **kwargs):
    return FuncSim(assemble_with_exit(body), **kwargs)


class TestArithmetic:
    def test_register_arithmetic(self):
        sim = _run("""
        li $t0, 21
        li $t1, 2
        mul $t2, $t0, $t1
        move $a0, $t2
        li $v0, 1
        syscall
        """)
        assert sim.run().console == "42"

    def test_wraparound(self):
        sim = _run("""
        li $t0, 0x7FFFFFFF
        addi $t0, $t0, 1
        move $a0, $t0
        li $v0, 1
        syscall
        """)
        assert sim.run().console == str(-(1 << 31))

    def test_hi_lo(self):
        sim = _run("""
        li $t0, 100000
        li $t1, 100000
        multu $t0, $t1
        mfhi $a0
        li $v0, 1
        syscall
        li $a0, ' '
        li $v0, 11
        syscall
        mflo $a0
        li $v0, 1
        syscall
        """)
        hi, lo = divmod(100000 * 100000, 1 << 32)
        result = sim.run()
        from repro.utils.bitops import to_signed32
        assert result.console == f"{hi} {to_signed32(lo)}"


class TestControlFlow:
    def test_loop_sum(self):
        sim = _run("""
        li $t0, 10
        li $s0, 0
    loop:
        addu $s0, $s0, $t0
        addi $t0, $t0, -1
        bgtz $t0, loop
        move $a0, $s0
        li $v0, 1
        syscall
        """)
        assert sim.run().console == "55"

    def test_function_call(self):
        sim = _run("""
        li $a0, 5
        jal double
        move $a0, $v0
        li $v0, 1
        syscall
        j done
    double:
        sll $v0, $a0, 1
        jr $ra
    done:
        """)
        assert sim.run().console == "10"

    def test_nested_calls_with_stack(self):
        sim = _run("""
        li $a0, 6
        jal fact
        move $a0, $v0
        li $v0, 1
        syscall
        j done
    fact:
        li $v0, 1
        blez $a0, fact_end
        addi $sp, $sp, -8
        sw $ra, 0($sp)
        sw $a0, 4($sp)
        addi $a0, $a0, -1
        jal fact
        lw $a0, 4($sp)
        lw $ra, 0($sp)
        addi $sp, $sp, 8
        mul $v0, $v0, $a0
    fact_end:
        jr $ra
    done:
        """)
        assert sim.run().console == "720"


class TestMemoryOps:
    def test_store_load_bytes_halves(self):
        sim = _run("""
        .data
    buf: .space 8
        .text
        la $t0, buf
        li $t1, 0xAB
        sb $t1, 0($t0)
        li $t1, 0x1234
        sh $t1, 2($t0)
        lbu $a0, 0($t0)
        li $v0, 1
        syscall
        li $a0, ' '
        li $v0, 11
        syscall
        lh $a0, 2($t0)
        li $v0, 1
        syscall
        """)
        assert sim.run().console == "171 4660"

    def test_sign_extending_load(self):
        sim = _run("""
        .data
    v: .byte 0xFF
        .text
        la $t0, v
        lb $a0, 0($t0)
        li $v0, 1
        syscall
        """)
        assert sim.run().console == "-1"


class TestSyscalls:
    def test_print_string(self):
        sim = _run("""
        .data
    msg: .asciiz "hi there"
        .text
        la $a0, msg
        li $v0, 4
        syscall
        """)
        assert sim.run().console == "hi there"

    def test_read_int(self):
        sim = _run("""
        li $v0, 5
        syscall
        move $a0, $v0
        li $v0, 1
        syscall
        """, inputs=[1234])
        assert sim.run().console == "1234"

    def test_exit_code(self):
        program = assemble("""
        li $a0, 7
        li $v0, 17
        syscall
        """)
        assert FuncSim(program).run().exit_code == 7

    def test_read_int_empty_queue_errors(self):
        sim = _run("""
        li $v0, 5
        syscall
        """)
        with pytest.raises(SimulationError):
            sim.run()


class TestLimitsAndHooks:
    def test_instruction_limit(self):
        program = assemble("spin: j spin")
        with pytest.raises(SimulationError, match="instruction limit"):
            FuncSim(program, max_instructions=100).run()

    def test_fetch_hook_sees_every_word(self):
        seen = []
        program = assemble_with_exit("nop\nnop")

        def hook(address, word):
            seen.append(address)
            return word

        FuncSim(program, fetch_hook=hook).run()
        assert seen[0] == program.entry
        assert len(seen) == 4  # 2 nops + li + syscall

    def test_block_trace_partitions_execution(self):
        program = assemble_with_exit("""
        li $t0, 3
    loop:
        addi $t0, $t0, -1
        bgtz $t0, loop
        """)
        result = FuncSim(program, collect_trace=True).run()
        total = sum(event.length for event in result.block_trace)
        assert total == result.instructions

    def test_trace_blocks_end_at_control_flow(self):
        from repro.isa.encoding import decode
        from repro.isa.properties import is_control_flow

        program = assemble_with_exit("""
        li $t0, 2
    loop:
        addi $t0, $t0, -1
        bgtz $t0, loop
        """)
        sim = FuncSim(program, collect_trace=True)
        result = sim.run()
        for event in result.block_trace:
            word = sim.state.memory.read_word(event.end)
            assert is_control_flow(decode(word))
