"""Hypothesis-generated programs with branches, loads, and stores.

Extends the ALU-only random differential testing to the hazard-bearing
instruction classes: random dependency patterns around loads, stores,
conditional branches (always forward, so programs terminate), and
multiply/divide — the cases where the scoreboard and the stage machine
could plausibly diverge.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm.assembler import assemble

from tests.conftest import run_both


@st.composite
def hazard_programs(draw):
    """Straight-line-with-forward-branches programs over $t0-$t5."""
    lines = [
        "        .data",
        "    buf: .word " + ", ".join(
            str(draw(st.integers(0, 1000))) for _ in range(8)
        ),
        "        .text",
        "        la $t9, buf",
    ]
    for register in range(6):
        lines.append(f"        li $t{register}, {draw(st.integers(0, 200))}")
    block_count = draw(st.integers(min_value=2, max_value=6))
    for block in range(block_count):
        lines.append(f"    blk{block}:")
        for _ in range(draw(st.integers(min_value=1, max_value=6))):
            choice = draw(st.integers(0, 5))
            rd = draw(st.integers(0, 5))
            rs = draw(st.integers(0, 5))
            rt = draw(st.integers(0, 5))
            if choice == 0:
                offset = draw(st.integers(0, 7)) * 4
                lines.append(f"        lw $t{rd}, {offset}($t9)")
            elif choice == 1:
                offset = draw(st.integers(0, 7)) * 4
                lines.append(f"        sw $t{rs}, {offset}($t9)")
            elif choice == 2:
                lines.append(f"        addu $t{rd}, $t{rs}, $t{rt}")
            elif choice == 3:
                lines.append(f"        mul $t{rd}, $t{rs}, $t{rt}")
            elif choice == 4:
                lines.append(
                    f"        addiu $t{rd}, $t{rs}, {draw(st.integers(0, 99))}"
                )
            else:
                lines.append(f"        slt $t{rd}, $t{rs}, $t{rt}")
        # Forward branch: either taken or not, target is the next block.
        condition = draw(st.sampled_from(["beq", "bne"]))
        lines.append(
            f"        {condition} $t{draw(st.integers(0, 5))}, "
            f"$t{draw(st.integers(0, 5))}, blk{block + 1}"
        )
    lines.append(f"    blk{block_count}:")
    # Print a digest of the registers so state differences become visible.
    lines.append("        addu $a0, $t0, $t1")
    lines.append("        addu $a0, $a0, $t2")
    lines.append("        addu $a0, $a0, $t3")
    lines.append("        li $v0, 1")
    lines.append("        syscall")
    lines.append("        li $v0, 10")
    lines.append("        syscall")
    return "\n".join(lines)


@settings(max_examples=40, deadline=None)
@given(source=hazard_programs())
def test_random_hazard_programs_equivalent(source):
    program = assemble(source)
    func_result, pipe_result = run_both(program, collect_trace=True)
    assert [e.key for e in func_result.block_trace] == [
        e.key for e in pipe_result.block_trace
    ]


@settings(max_examples=15, deadline=None)
@given(source=hazard_programs())
def test_random_programs_monitored_equivalence(source):
    """Same corpus, with the integrity monitor attached to both engines."""
    from repro.osmodel.loader import load_process
    from repro.pipeline.cpu import PipelineCPU
    from repro.pipeline.funcsim import FuncSim

    program = assemble(source)
    func_sim = FuncSim(program, monitor=load_process(program, iht_size=4).monitor)
    pipe_sim = PipelineCPU(
        program, monitor=load_process(program, iht_size=4).monitor
    )
    func_result = func_sim.run()
    pipe_result = pipe_sim.run()
    assert func_result.cycles == pipe_result.cycles
    assert func_result.monitor_stats.misses == pipe_result.monitor_stats.misses
    assert func_result.monitor_stats.hits == pipe_result.monitor_stats.hits
