"""Exact cycle-count tests for every hazard rule, on both engines.

The expected numbers are derived from the ID-issue timeline documented in
``repro.pipeline.hazards``: a program of N dependency-free instructions
(including the final exit syscall pair) costs ``N + depth - 1`` cycles
fully pipelined, plus the serialization window of the exit trap; each case
below adds exactly one hazard and checks the delta.
"""

import pytest

from repro.asm.assembler import assemble
from repro.pipeline.cpu import PipelineCPU
from repro.pipeline.funcsim import FuncSim
from repro.pipeline.hazards import CycleModel

from tests.conftest import run_both


def _cycles(body: str, **kwargs) -> int:
    program = assemble(body + "\n        li $v0, 10\n        syscall\n")
    func_result, _ = run_both(program, **kwargs)
    return func_result.cycles


# Baseline: K independent instructions + li + syscall.
def _baseline(k: int) -> str:
    return "\n".join(f"        li $t{i % 8}, {i}" for i in range(k))


class TestBasePipeline:
    def test_single_instruction_program_fills_pipeline(self):
        # just li+syscall: li ID at 2, syscall ID at 3, WB at 6... with
        # trap serialization the syscall still retires depth-2 after its ID.
        cycles = _cycles("")
        assert cycles == 6  # li@2, syscall@3 (+3 to WB)

    def test_independent_instructions_pipeline_fully(self):
        base = _cycles(_baseline(4))
        longer = _cycles(_baseline(8))
        assert longer - base == 4  # one cycle per added instruction


class TestForwarding:
    def test_alu_to_alu_no_stall(self):
        dependent = _cycles("""
        li $t0, 5
        addi $t1, $t0, 1
        addi $t2, $t1, 1
        addi $t3, $t2, 1
        """)
        independent = _cycles(_baseline(4))
        assert dependent == independent

    def test_alu_result_correct_through_bypass(self):
        program = assemble("""
        li $t0, 5
        addi $t1, $t0, 1
        addi $t2, $t1, 1
        move $a0, $t2
        li $v0, 1
        syscall
        li $v0, 10
        syscall
        """)
        func_result, _ = run_both(program)
        assert func_result.console == "7"


class TestLoadUse:
    def test_load_use_stalls_one(self):
        with_hazard = _cycles("""
        .data
    v: .word 9
        .text
        la $t8, v
        lw $t0, 0($t8)
        addi $t1, $t0, 1
        """)
        without = _cycles("""
        .data
    v: .word 9
        .text
        la $t8, v
        lw $t0, 0($t8)
        addi $t1, $t7, 1
        """)
        assert with_hazard - without == 1

    def test_load_then_gap_then_use_no_stall(self):
        spaced = _cycles("""
        .data
    v: .word 9
        .text
        la $t8, v
        lw $t0, 0($t8)
        li $t5, 0
        addi $t1, $t0, 1
        """)
        independent = _cycles("""
        .data
    v: .word 9
        .text
        la $t8, v
        lw $t0, 0($t8)
        li $t5, 0
        addi $t1, $t6, 1
        """)
        assert spaced == independent

    def test_load_to_store_data_no_stall(self):
        # Store data is needed only at MEM: no interlock.
        load_store = _cycles("""
        .data
    v: .word 9
        .text
        la $t8, v
        lw $t0, 0($t8)
        sw $t0, 4($t8)
        """)
        independent = _cycles("""
        .data
    v: .word 9
        .text
        la $t8, v
        lw $t0, 0($t8)
        sw $t7, 4($t8)
        """)
        assert load_store == independent

    def test_load_to_store_address_stalls(self):
        dependent = _cycles("""
        .data
    v: .word 0x10010000
        .text
        la $t8, v
        lw $t0, 0($t8)
        sw $zero, 0($t0)
        """)
        independent = _cycles("""
        .data
    v: .word 0x10010000
        .text
        la $t8, v
        lw $t0, 0($t8)
        sw $zero, 0($t8)
        """)
        assert dependent - independent == 1


class TestBranchHazards:
    def test_taken_branch_costs_one_bubble(self):
        # Branch to the fall-through: both paths execute identical
        # instructions, so the only difference is the redirect bubble.
        taken = _cycles("""
        li $t0, 1
        li $t1, 1
        beq $t0, $t1, target
    target:
        nop
        """)
        not_taken = _cycles("""
        li $t0, 1
        li $t1, 2
        beq $t0, $t1, target
    target:
        nop
        """)
        assert taken - not_taken == 1

    def test_branch_after_alu_stalls_one(self):
        # $t6 is set far ahead in both variants so the control variant has
        # no hazard; neither branch is taken (t0 = 2, t6 = 3).
        dependent = _cycles("""
        li $t6, 3
        li $t1, 1
        addi $t0, $t1, 1
        beq $t0, $zero, skip
    skip:
        """)
        independent = _cycles("""
        li $t6, 3
        li $t1, 1
        addi $t0, $t1, 1
        beq $t6, $zero, skip
    skip:
        """)
        assert dependent - independent == 1

    def test_branch_after_load_stalls_two(self):
        # v holds 3, so neither branch is taken.
        dependent = _cycles("""
        .data
    v: .word 3
        .text
        li $t6, 3
        la $t8, v
        lw $t0, 0($t8)
        beq $t0, $zero, skip
    skip:
        """)
        independent = _cycles("""
        .data
    v: .word 3
        .text
        li $t6, 3
        la $t8, v
        lw $t0, 0($t8)
        beq $t6, $zero, skip
    skip:
        """)
        assert dependent - independent == 2

    def test_branch_two_after_alu_no_stall(self):
        spaced = _cycles("""
        li $t6, 3
        li $t1, 1
        addi $t0, $t1, 1
        li $t5, 9
        beq $t0, $zero, skip
    skip:
        """)
        independent = _cycles("""
        li $t6, 3
        li $t1, 1
        addi $t0, $t1, 1
        li $t5, 9
        beq $t6, $zero, skip
    skip:
        """)
        assert spaced == independent

    def test_jr_after_alu_stalls_one(self):
        # la expands to lui+ori; the ori result feeds jr in ID.
        dependent = _cycles("""
        la $t0, target
        jr $t0
    target:
        """)
        spaced = _cycles("""
        la $t0, target
        nop
        jr $t0
    target:
        """)
        # spaced adds one instruction (+1) but removes the stall (-1)
        assert dependent == spaced


class TestMulDiv:
    def test_mult_occupies_ex(self):
        model = CycleModel()
        with_mult = _cycles("""
        li $t0, 3
        li $t1, 4
        mult $t0, $t1
        li $t2, 0
        """)
        without = _cycles("""
        li $t0, 3
        li $t1, 4
        and $t3, $t0, $t1
        li $t2, 0
        """)
        assert with_mult - without == model.mult_latency

    def test_div_latency_larger(self):
        model = CycleModel()
        with_div = _cycles("""
        li $t0, 30
        li $t1, 4
        div $t2, $t0, $t1
        """)
        with_mult = _cycles("""
        li $t0, 30
        li $t1, 4
        mul $t2, $t0, $t1
        """)
        assert with_div - with_mult == model.div_latency - model.mult_latency

    def test_mflo_interlocked_value_correct(self):
        program = assemble("""
        li $t0, 6
        li $t1, 7
        mult $t0, $t1
        mflo $a0
        li $v0, 1
        syscall
        li $v0, 10
        syscall
        """)
        func_result, _ = run_both(program)
        assert func_result.console == "42"

    def test_zero_latency_model(self):
        program = assemble("""
        li $t0, 6
        li $t1, 7
        mult $t0, $t1
        mflo $a0
        li $v0, 1
        syscall
        li $v0, 10
        syscall
        """)
        model = CycleModel(mult_latency=0, div_latency=0)
        func_result, _ = run_both(program, cycle_model=model)
        assert func_result.console == "42"


class TestTrapSerialization:
    def test_syscall_serializes(self):
        two_prints = _cycles("""
        li $a0, 1
        li $v0, 1
        syscall
        li $a0, 2
        li $v0, 1
        syscall
        """)
        # Each non-final syscall costs depth-2 ID-to-next-ID instead of 1.
        model = CycleModel()
        flat = _cycles(_baseline(6))
        assert two_prints - flat == 2 * (model.depth - 3)

    def test_read_int_feeds_next_instruction(self):
        program = assemble("""
        li $v0, 5
        syscall
        addi $a0, $v0, 1
        li $v0, 1
        syscall
        li $v0, 10
        syscall
        """)
        func_result, _ = run_both(program, inputs=[41])
        assert func_result.console == "42"


@pytest.mark.parametrize("depth", [5, 6])
def test_pipeline_depth_parameter(depth):
    model = CycleModel(depth=depth)
    program = assemble("li $v0, 10\nsyscall")
    func_result, pipe_result = (
        FuncSim(program, cycle_model=model).run(),
        PipelineCPU(program, cycle_model=model).run(),
    )
    # li ID at 2, syscall ID at 3, retiring depth-2 cycles later.
    assert func_result.cycles == depth + 1
    # The stage simulator models 5 stages; compare only at depth 5.
    if depth == 5:
        assert pipe_result.cycles == func_result.cycles
