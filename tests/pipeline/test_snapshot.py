"""Snapshot/restore round-trip properties for both simulators.

The contract the golden-trace campaign backend rests on: pause a run at
*any* instruction boundary k, snapshot, restore into a **fresh** simulator,
run to completion — the final result (console, exit code, instruction
count, cycle count, block trace) is identical to an uninterrupted run.
Checked for the functional simulator and the cycle-level pipeline, with
and without a monitor attached, at hypothesis-chosen pause points.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.asm.assembler import assemble
from repro.osmodel.loader import load_process
from repro.pipeline.cpu import PipelineCPU
from repro.pipeline.funcsim import FuncSim
from repro.workloads.suite import build, workload_inputs

PROGRAM_SOURCE = """
        .data
arr:    .word 9, 4, 7, 1, 8
        .text
main:   li   $t0, 0          # index
        li   $t3, 0          # running sum
        la   $t9, arr
loop:   sll  $t1, $t0, 2
        addu $t1, $t1, $t9
        lw   $t2, 0($t1)
        addu $t3, $t3, $t2
        mult $t3, $t2
        mflo $t4
        addi $t0, $t0, 1
        li   $t5, 5
        bne  $t0, $t5, loop
        move $a0, $t3
        li   $v0, 1
        syscall              # print sum
        li   $a0, 10
        li   $v0, 11
        syscall              # newline
        move $a0, $t4
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
"""


def result_key(result):
    return (
        result.console,
        result.exit_code,
        result.instructions,
        result.cycles,
        result.finished,
        tuple(event.key for event in result.block_trace or ()),
    )


def roundtrip(engine, k: int, monitored: bool = False):
    """Run PROGRAM_SOURCE paused at k + resumed in a fresh simulator."""
    program = assemble(PROGRAM_SOURCE, name="snapshot-corpus")

    def make(monitor):
        return engine(program, monitor=monitor, collect_trace=True)

    def monitor():
        return load_process(program, iht_size=4).monitor if monitored else None

    reference = make(monitor()).run()

    first = make(monitor())
    paused = first.run(until=k)
    if not paused.finished:
        assert paused.instructions == k
    checker = first.monitor
    second = make(checker)
    if checker is not None:
        # The monitor snapshot travels separately, into the same checker
        # (restored below) or an equivalent fresh one.
        checker_state = checker.snapshot()
        handler_state = checker.handler.snapshot()
        checker.restore(checker_state)
        checker.handler.restore(handler_state)
    second.restore(first.snapshot())
    resumed = second.run()
    assert result_key(resumed) == result_key(reference)


@settings(max_examples=20, deadline=None)
@given(k=st.integers(min_value=0, max_value=120))
def test_funcsim_roundtrip_unmonitored(k):
    roundtrip(FuncSim, k)


@settings(max_examples=20, deadline=None)
@given(k=st.integers(min_value=0, max_value=120))
def test_funcsim_roundtrip_monitored(k):
    """Mid-block pauses included: STA/RHASH travel with the snapshot."""
    roundtrip(FuncSim, k, monitored=True)


@settings(max_examples=15, deadline=None)
@given(k=st.integers(min_value=0, max_value=120))
def test_pipeline_roundtrip_unmonitored(k):
    roundtrip(PipelineCPU, k)


@settings(max_examples=15, deadline=None)
@given(k=st.integers(min_value=0, max_value=120))
def test_pipeline_roundtrip_monitored(k):
    roundtrip(PipelineCPU, k, monitored=True)


@pytest.mark.parametrize("engine", [FuncSim, PipelineCPU])
def test_run_until_is_idempotent_at_exit(engine):
    """run() after the program finished returns the same final result."""
    program = assemble(PROGRAM_SOURCE, name="snapshot-corpus")
    simulator = engine(program)
    final = simulator.run()
    assert final.finished
    again = simulator.run()
    assert result_key(again) == result_key(final)


@pytest.mark.parametrize("engine", [FuncSim, PipelineCPU])
def test_incremental_stepping_equals_one_shot(engine):
    """Many small run(until=...) slices compose to the uninterrupted run."""
    program = assemble(PROGRAM_SOURCE, name="snapshot-corpus")
    reference = engine(program, collect_trace=True).run()
    stepped = engine(program, collect_trace=True)
    mark = 7
    while True:
        result = stepped.run(until=mark)
        if result.finished:
            break
        mark += 7
    assert result_key(result) == result_key(reference)


def test_workload_checkpoint_roundtrip():
    """A real workload pauses/restores mid-run with monitor attached."""
    program = build("sha", "tiny")
    inputs = workload_inputs("sha", "tiny")

    def monitored():
        return FuncSim(
            program, monitor=load_process(program, iht_size=8).monitor,
            inputs=inputs,
        )

    reference = monitored().run()
    first = monitored()
    paused = first.run(until=reference.instructions // 2)
    assert not paused.finished
    second = monitored()
    second.monitor.restore(first.monitor.snapshot())
    second.monitor.handler.restore(first.monitor.handler.snapshot())
    second.restore(first.snapshot())
    resumed = second.run()
    assert resumed.console == reference.console
    assert resumed.instructions == reference.instructions
    assert resumed.cycles == reference.cycles
    assert resumed.monitor_stats.misses == reference.monitor_stats.misses
    assert resumed.monitor_stats.os_cycles == reference.monitor_stats.os_cycles
