"""Paged memory tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MemoryAccessError
from repro.pipeline.memory import PAGE_SIZE, Memory


class TestWordAccess:
    def test_roundtrip(self):
        memory = Memory()
        memory.write_word(0x1000, 0xDEADBEEF)
        assert memory.read_word(0x1000) == 0xDEADBEEF

    def test_little_endian(self):
        memory = Memory()
        memory.write_word(0, 0x12345678)
        assert memory.read_byte(0) == 0x78
        assert memory.read_byte(3) == 0x12

    def test_misaligned_word_rejected(self):
        memory = Memory()
        with pytest.raises(MemoryAccessError):
            memory.read_word(2)
        with pytest.raises(MemoryAccessError):
            memory.write_word(1, 0)

    def test_unmapped_reads_zero(self):
        assert Memory().read_word(0x7FFF0000) == 0

    @given(
        address=st.integers(min_value=0, max_value=1 << 30).map(lambda a: a & ~3),
        value=st.integers(min_value=0, max_value=0xFFFFFFFF),
    )
    def test_word_roundtrip_anywhere(self, address, value):
        memory = Memory()
        memory.write_word(address, value)
        assert memory.read_word(address) == value


class TestSubWordAccess:
    def test_half_roundtrip_signed(self):
        memory = Memory()
        memory.write_half(0x10, 0x8001)
        assert memory.read_half(0x10) == 0x8001
        assert memory.read_half(0x10, signed=True) == -32767

    def test_misaligned_half_rejected(self):
        with pytest.raises(MemoryAccessError):
            Memory().read_half(1)

    def test_byte_signed(self):
        memory = Memory()
        memory.write_byte(5, 0xFF)
        assert memory.read_byte(5) == 0xFF
        assert memory.read_byte(5, signed=True) == -1


class TestBulk:
    def test_cross_page_copy(self):
        memory = Memory()
        data = bytes(range(256)) * 20  # > one page
        base = PAGE_SIZE - 100
        memory.load_bytes(base, data)
        assert memory.read_bytes(base, len(data)) == data

    def test_cstring(self):
        memory = Memory()
        memory.load_bytes(0x100, b"hello\x00tail")
        assert memory.read_cstring(0x100) == "hello"

    def test_unterminated_cstring_rejected(self):
        memory = Memory()
        memory.load_bytes(0, b"\x01" * 64)
        with pytest.raises(MemoryAccessError):
            memory.read_cstring(0, limit=16)


class TestFaultSupport:
    def test_flip_bit(self):
        memory = Memory()
        memory.write_word(0x40, 0b1000)
        memory.flip_bit(0x40, 3)
        assert memory.read_word(0x40) == 0
        memory.flip_bit(0x40, 31)
        assert memory.read_word(0x40) == 0x80000000

    def test_flip_bit_range_checked(self):
        with pytest.raises(ValueError):
            Memory().flip_bit(0, 32)

    def test_snapshot_restore(self):
        memory = Memory()
        memory.write_word(0x40, 111)
        snapshot = memory.snapshot_pages()
        memory.write_word(0x40, 222)
        memory.write_word(0x123400, 9)
        memory.restore_pages(snapshot)
        assert memory.read_word(0x40) == 111
        assert memory.read_word(0x123400) == 0
