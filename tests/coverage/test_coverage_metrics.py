"""Coverage runs emit the same observability siblings as campaigns.

``run_coverage(..., out=...)`` with telemetry enabled writes an
aggregated, schema-valid ``<out>.metrics.json`` beside the coverage
artifact — telemetry merged across every inner campaign, shards
renumbered into one sequence, a manifest carrying the corpus identity —
while the coverage artifact itself stays byte-identical with the switch
on or off, and ``repro coverage check DIR`` never mistakes the sibling
for a matrix.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.cli import main
from repro.coverage import CoverageSpec, run_coverage
from repro.exec.pool import shutdown_pools
from repro.obs import core as obs
from repro.obs.metrics import load_metrics, metrics_path
from repro.obs.schema import validate_metrics

TOY_SOURCE = """
main:   li $t0, 6
        li $s0, 0
loop:   addu $s0, $s0, $t0
        addi $t0, $t0, -1
        bgtz $t0, loop
        move $a0, $s0
        li $v0, 1
        syscall
        li $v0, 10
        syscall
"""

TOY_SPEC = CoverageSpec(
    name="toy",
    kind="pairs",
    source=TOY_SOURCE,
    source_name="toy.s",
    hash_names=("xor", "crc32"),
    policy_names=("lru_half",),
)


@pytest.fixture(autouse=True)
def fresh_pools():
    shutdown_pools()
    # Trailing coverage counters from other tests live in the ambient
    # telemetry until some harness run drains them; start clean so the
    # aggregate below reconciles exactly.
    obs.local().clear()
    yield
    shutdown_pools()


def run_toy(out, *, telemetry):
    with obs.scoped(telemetry):
        return run_coverage(TOY_SPEC, out=out)


class TestMetricsSibling:
    def test_schema_valid_aggregate(self, tmp_path):
        out = tmp_path / "toy.json"
        payload = run_toy(out, telemetry=True)
        sibling = metrics_path(out)
        assert os.path.exists(sibling)
        metrics = load_metrics(sibling)
        assert validate_metrics(metrics) == []
        manifest = metrics["manifest"]
        assert manifest["kind"] == "coverage results"
        assert manifest["corpus"] == "toy"
        assert manifest["total"] == (
            payload["manifest"]["total_injections"]
        )
        assert manifest["fingerprint"] == (
            payload["manifest"]["fingerprint"]
        )
        # One renumbered shard sequence across every inner campaign.
        shard_ids = [entry["shard"] for entry in metrics["shards"]]
        assert shard_ids == list(range(len(shard_ids)))
        assert sum(entry["records"] for entry in metrics["shards"]) == (
            manifest["total"]
        )
        # Merged telemetry saw every inner campaign.
        counters = metrics["telemetry"]["counters"]
        assert counters["coverage.injections"] == manifest["total"]

    def test_switch_off_suppresses_sibling_only(self, tmp_path):
        on = tmp_path / "on.json"
        off = tmp_path / "off.json"
        run_toy(on, telemetry=True)
        shutdown_pools()
        run_toy(off, telemetry=False)
        # Observer neutrality: identical payloads up to the wall-clock
        # stamps (which differ run to run regardless of the switch).
        payloads = []
        for path in (on, off):
            payload = json.loads(path.read_text())
            payload["manifest"].pop("wall_seconds")
            payload["manifest"].pop("created")
            payloads.append(payload)
        assert payloads[0] == payloads[1]
        assert os.path.exists(metrics_path(on))
        assert not os.path.exists(metrics_path(off))


class TestCheckScanSkipsSiblings:
    def test_directory_with_sibling_still_sound(self, tmp_path, capsys):
        out = tmp_path / "toy.json"
        run_toy(out, telemetry=True)
        assert os.path.exists(metrics_path(out))
        assert main(["coverage", "check", str(tmp_path)]) == 0
        err = capsys.readouterr().err
        assert "sound" in err
        assert "metrics" not in err
