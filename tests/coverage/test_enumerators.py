"""The FaultEnumerator protocol: completeness, canonical order, subsets.

Property tier for :mod:`repro.faults.enumerators`: every registered
enumerator's ``enumerate`` must equal an independent brute force over the
same space (complete AND duplicate-free), its order must be a pure
function of the context, and ``sample`` must be an order-preserving
subset.  Campaign-level determinism — identical records for any worker
count and batch plan — is pinned on a toy program at the bottom.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.faults.campaign import CampaignContext, build_context
from repro.faults.enumerators import (
    ENUMERATORS,
    AttackPlacement,
    ExhaustiveSameColumnPairs,
    ExhaustiveSingleBit,
    FaultEnumerator,
    get_enumerator,
    seeded_same_column_pairs,
)
from tests.conftest import assemble_with_exit

TOY_BODY = """
main:   li $t0, 6
        li $s0, 0
loop:   addu $s0, $s0, $t0
        addi $t0, $t0, -1
        bgtz $t0, loop
        move $a0, $s0
        li $v0, 1
        syscall
"""


def synthetic_context(blocks, addresses=()):
    """A hand-built context carrying only what bit-flip enumerators read."""
    return CampaignContext(
        program=None,
        executed_addresses=tuple(addresses),
        executed_blocks=tuple(blocks),
    )


#: Random block layouts: word-aligned starts, 1..6 instructions each,
#: overlaps allowed (two dynamic blocks may share a start).
block_strategy = st.lists(
    st.tuples(st.integers(0, 40), st.integers(1, 6)).map(
        lambda t: (0x400000 + 4 * t[0], 0x400000 + 4 * (t[0] + t[1] - 1))
    ),
    min_size=1,
    max_size=8,
).map(lambda blocks: tuple(sorted(set(blocks))))


def brute_force_pair_keys(blocks):
    """Independent recomputation of the same-column pair space as a set."""
    keys = set()
    for start, end in blocks:
        addresses = range(start, end + 4, 4)
        for first in addresses:
            for second in addresses:
                if first < second:
                    for bit in range(32):
                        keys.add((first, second, bit))
    return keys


def pair_key(pair):
    first, second = pair
    return (first.address, second.address, first.bits[0])


class TestExhaustiveSameColumnPairs:
    @settings(max_examples=50, deadline=None)
    @given(blocks=block_strategy)
    def test_complete_and_duplicate_free(self, blocks):
        enumerated = ExhaustiveSameColumnPairs().enumerate(
            synthetic_context(blocks)
        )
        keys = [pair_key(pair) for pair in enumerated]
        assert len(keys) == len(set(keys)), "duplicate pair enumerated"
        assert set(keys) == brute_force_pair_keys(blocks)

    @settings(max_examples=25, deadline=None)
    @given(blocks=block_strategy)
    def test_order_is_deterministic(self, blocks):
        context = synthetic_context(blocks)
        enumerator = ExhaustiveSameColumnPairs()
        assert enumerator.enumerate(context) == enumerator.enumerate(context)

    @settings(max_examples=25, deadline=None)
    @given(blocks=block_strategy, seed=st.integers(0, 2**16))
    def test_sample_is_order_preserving_subset(self, blocks, seed):
        context = synthetic_context(blocks)
        enumerator = ExhaustiveSameColumnPairs()
        full = enumerator.enumerate(context)
        sampled = enumerator.sample(context, min(7, len(full)), seed)
        positions = [full.index(pair) for pair in sampled]
        assert positions == sorted(positions)
        assert len(set(positions)) == len(positions)

    def test_both_flips_share_the_bit_column(self):
        blocks = ((0x400000, 0x40000C),)
        for first, second in ExhaustiveSameColumnPairs().enumerate(
            synthetic_context(blocks)
        ):
            assert first.bits == second.bits
            assert len(first.bits) == 1
            assert first.address < second.address

    def test_single_word_block_enumerates_nothing(self):
        context = synthetic_context(((0x400000, 0x400000),))
        assert ExhaustiveSameColumnPairs().enumerate(context) == []

    def test_missing_executed_blocks_is_configuration_error(self):
        with pytest.raises(ConfigurationError):
            ExhaustiveSameColumnPairs().enumerate(
                synthetic_context((), addresses=(0x400000,))
            )


class TestExhaustiveSingleBit:
    @settings(max_examples=50, deadline=None)
    @given(
        addresses=st.lists(
            st.integers(0, 60).map(lambda n: 0x400000 + 4 * n),
            min_size=1,
            max_size=12,
            unique=True,
        )
    )
    def test_complete_and_duplicate_free(self, addresses):
        enumerated = ExhaustiveSingleBit().enumerate(
            synthetic_context((), addresses=addresses)
        )
        keys = [(fault.address, fault.bits) for fault in enumerated]
        assert len(keys) == len(set(keys))
        assert set(keys) == {
            (address, (bit,)) for address in addresses for bit in range(32)
        }

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 2**16))
    def test_sample_is_order_preserving_subset(self, seed):
        context = synthetic_context((), addresses=(0x400000, 0x400004))
        enumerator = ExhaustiveSingleBit()
        full = enumerator.enumerate(context)
        sampled = enumerator.sample(context, 9, seed)
        positions = [full.index(fault) for fault in sampled]
        assert positions == sorted(positions)


class TestSeededSamplerContainment:
    """The legacy with-replacement sampler stays inside the exhaustive
    space (same blocks, same-column, intra-block pairs)."""

    @settings(max_examples=25, deadline=None)
    @given(blocks=block_strategy, seed=st.integers(0, 2**16))
    def test_draws_are_contained_in_exhaustive_space(self, blocks, seed):
        eligible = [b for b in blocks if b[1] - b[0] >= 4]
        if not eligible:
            return
        exhaustive = brute_force_pair_keys(blocks)
        for first, second in seeded_same_column_pairs(blocks, 25, seed):
            low, high = sorted((first.address, second.address))
            assert (low, high, first.bits[0]) in exhaustive

    def test_draw_sequence_is_deterministic(self):
        blocks = ((0x400000, 0x400010), (0x400020, 0x400028))
        assert seeded_same_column_pairs(blocks, 12, 7) == (
            seeded_same_column_pairs(blocks, 12, 7)
        )


class TestRegistry:
    def test_every_registered_enumerator_satisfies_the_protocol(self):
        for name, enumerator in ENUMERATORS.items():
            assert isinstance(enumerator, FaultEnumerator)
            assert enumerator.name == name

    def test_registry_names(self):
        assert set(ENUMERATORS) == {
            "single-bit", "same-column-pair", "attack-placement"
        }

    def test_get_enumerator(self):
        assert get_enumerator("single-bit") is ENUMERATORS["single-bit"]
        with pytest.raises(ConfigurationError):
            get_enumerator("no-such-space")


@pytest.fixture(scope="module")
def toy_context():
    return build_context(assemble_with_exit(TOY_BODY, name="toy"))


class TestOnRealContext:
    """Enumerators over a genuinely executed program agree with the same
    brute force, and build_context feeds them canonical blocks."""

    def test_context_blocks_are_sorted_canonical(self, toy_context):
        assert list(toy_context.executed_blocks) == sorted(
            set(toy_context.executed_blocks)
        )

    def test_pairs_match_brute_force_over_context(self, toy_context):
        enumerated = ExhaustiveSameColumnPairs().enumerate(toy_context)
        keys = {pair_key(pair) for pair in enumerated}
        assert keys == brute_force_pair_keys(toy_context.executed_blocks)
        assert len(enumerated) == len(keys)

    def test_attack_placement_concatenates_full_enumerations(
        self, toy_context
    ):
        from repro.attacks.corpus import AttackCorpus, resolve_classes

        placement = AttackPlacement()
        scenarios = placement.enumerate(toy_context)
        corpus = AttackCorpus.from_context(toy_context)
        expected = []
        for attack_class in resolve_classes(("all",)):
            expected.extend(corpus.enumerate(attack_class))
        assert scenarios == expected
        labels = [(s.attack_class, s.label, s.occurrence) for s in scenarios]
        assert len(labels) == len(set(labels))

    def test_attack_sample_is_per_class_subset(self, toy_context):
        placement = AttackPlacement()
        full = placement.enumerate(toy_context)
        sampled = placement.sample(toy_context, 3, seed=42)
        assert all(scenario in full for scenario in sampled)
        by_class = {}
        for scenario in sampled:
            by_class.setdefault(scenario.attack_class, []).append(scenario)
        for attack_class, group in by_class.items():
            assert len(group) <= 3


class TestCampaignDeterminism:
    """Exhaustive enumerations run identically across worker counts and
    batch plans — the property that makes coverage matrices re-derivable
    on any host."""

    @pytest.fixture(scope="class")
    def rig(self):
        from repro.exec.runner import CampaignRunner
        from repro.exec.spec import CampaignSpec

        source = TOY_BODY + "        li $v0, 10\n        syscall\n"
        spec = CampaignSpec(source=source, name="toy", backend="golden")
        context = spec.build_context()
        items = ExhaustiveSameColumnPairs().enumerate(context)[:96]
        baseline = CampaignRunner(spec, workers=1, chunk_size=16).run(
            items, seed=3
        )
        return spec, items, self.verdicts(baseline)

    @staticmethod
    def verdicts(result):
        return [
            (r.index, r.outcome, r.detail, r.latency)
            for r in sorted(result.records, key=lambda r: r.index)
        ]

    @pytest.mark.parametrize(
        "workers,batch_size", [(2, None), (1, 5), (2, 7)]
    )
    def test_records_invariant(self, rig, workers, batch_size):
        from repro.exec.runner import CampaignRunner

        spec, items, baseline = rig
        variant = CampaignRunner(
            spec, workers=workers, chunk_size=11, batch_size=batch_size
        ).run(items, seed=3)
        assert self.verdicts(variant) == baseline
