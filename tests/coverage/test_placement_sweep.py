"""Exhaustive attack placement: golden backend ≡ full replay.

The committed attack matrices are generated on the golden
(fork-at-checkpoint) backend; this differential pins every scenario of
the exhaustive placement — all ten attack classes, every eligible CFG
site — to the full-replay backend on outcome, detail, AND latency, so
the fast backend cannot drift from ground truth unnoticed.
"""

from __future__ import annotations

import pytest

from repro.attacks.generators import ATTACK_CLASSES
from repro.exec.runner import CampaignRunner
from repro.exec.spec import CampaignSpec
from repro.faults.enumerators import AttackPlacement

#: Branches, a loop, straight-line arithmetic, and an input-dependent
#: compare: every generator finds at least one eligible site here.
SOURCE = """
        .data
secret: .word 7351
        .text
main:   li   $v0, 5
        syscall
        move $t0, $v0
        lw   $t1, secret
        li   $t2, 3
acc:    addu $t3, $t3, $t2
        addi $t2, $t2, -1
        bgtz $t2, acc
check:  bne  $t0, $t1, deny
grant:  li   $a0, 1
        j    report
deny:   li   $a0, 0
report: li   $v0, 1
        syscall
        li   $v0, 10
        syscall
"""


def spec_for(backend: str) -> CampaignSpec:
    return CampaignSpec(
        source=SOURCE, name="gatekeeper", inputs=(7351,), backend=backend
    )


@pytest.fixture(scope="module")
def sweep():
    """Exhaustive placement run on both backends over one shared context."""
    full_spec = spec_for("full")
    context = full_spec.build_context()
    scenarios = AttackPlacement().enumerate(context)
    results = {}
    for backend in ("full", "golden"):
        runner = CampaignRunner(spec_for(backend), chunk_size=32)
        results[backend] = sorted(
            runner.run(scenarios, seed=42).records,
            key=lambda record: record.index,
        )
    return scenarios, results


class TestGoldenEqualsFull:
    def test_every_class_is_exercised(self, sweep):
        scenarios, _results = sweep
        assert {s.attack_class for s in scenarios} == set(ATTACK_CLASSES)

    def test_outcome_detail_latency_identical(self, sweep):
        scenarios, results = sweep
        assert len(results["full"]) == len(scenarios)
        for full, golden in zip(results["full"], results["golden"]):
            coordinate = (full.index, full.fault.attack_class, full.fault.label)
            assert full.index == golden.index
            assert full.outcome == golden.outcome, coordinate
            assert full.detail == golden.detail, coordinate
            assert full.latency == golden.latency, coordinate


class TestSampleContainment:
    """The seeded per-class samples the attack matrix sweeps are built
    from are subsets of the exhaustive placement, index for index."""

    @pytest.mark.parametrize("per_class", [1, 3, 8])
    def test_sample_subset_of_enumeration(self, sweep, per_class):
        scenarios, _results = sweep
        context = spec_for("full").build_context()
        placement = AttackPlacement()
        sampled = placement.sample(context, per_class, seed=42)
        positions = [scenarios.index(s) for s in sampled]
        assert len(positions) == len(set(positions))
        # Within one class, canonical order is preserved.
        by_class: dict[str, list[int]] = {}
        for scenario, position in zip(sampled, positions):
            by_class.setdefault(scenario.attack_class, []).append(position)
        for attack_class, group in by_class.items():
            assert group == sorted(group), attack_class
            assert len(group) <= per_class
