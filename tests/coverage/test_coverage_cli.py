"""``repro coverage run|diff|check``: happy paths and the negative gate.

The negative tier is the acceptance criterion of the diff gate: mutate
one committed matrix cell, one escape-list entry, and one manifest
field, and in each case the tooling must exit non-zero with a report
naming the exact coordinate — never just a fingerprint mismatch.
"""

from __future__ import annotations

import copy
import json

import pytest

from repro.cli import COVERAGE_CORPUS_CHOICES, main
from repro.coverage import (
    CORPORA,
    CoverageSpec,
    render_payload,
    run_coverage,
)

TOY_SOURCE = """
main:   li $t0, 6
        li $s0, 0
loop:   addu $s0, $s0, $t0
        addi $t0, $t0, -1
        bgtz $t0, loop
        move $a0, $s0
        li $v0, 1
        syscall
        li $v0, 10
        syscall
"""

TOY_SPEC = CoverageSpec(
    name="toy",
    kind="pairs",
    source=TOY_SOURCE,
    source_name="toy.s",
    hash_names=("xor",),
    policy_names=("lru_half",),
)


@pytest.fixture(scope="module")
def toy_payload():
    return run_coverage(TOY_SPEC)


@pytest.fixture
def artifact(tmp_path, toy_payload):
    path = tmp_path / "toy.json"
    path.write_text(render_payload(toy_payload), encoding="utf-8")
    return path


def write_mutant(tmp_path, payload, mutate):
    """Write a mutated copy WITHOUT refreshing the fingerprint."""
    mutant = copy.deepcopy(payload)
    mutate(mutant)
    path = tmp_path / "mutant.json"
    path.write_text(
        json.dumps(mutant, indent=1, sort_keys=True) + "\n", encoding="utf-8"
    )
    return path


class TestChoicesMirror:
    def test_corpus_choices_match_registry(self):
        assert COVERAGE_CORPUS_CHOICES == tuple(CORPORA)


class TestCheck:
    def test_sound_artifact_passes(self, artifact, capsys):
        assert main(["coverage", "check", str(artifact)]) == 0
        assert "sound" in capsys.readouterr().err

    def test_directory_scan(self, artifact, capsys):
        assert main(["coverage", "check", str(artifact.parent)]) == 0

    def test_mutated_cell_fails_with_named_cell(
        self, tmp_path, toy_payload, capsys
    ):
        def bump_detected(payload):
            payload["cells"][0]["outcomes"]["detected-cic"] += 1

        path = write_mutant(tmp_path, toy_payload, bump_detected)
        assert main(["coverage", "check", str(path)]) != 0
        err = capsys.readouterr().err
        assert "toy.s/same-column-pair/xor/lru_half" in err

    def test_mutated_manifest_fingerprint_fails(
        self, tmp_path, toy_payload, capsys
    ):
        def corrupt_fingerprint(payload):
            payload["manifest"]["fingerprint"] = "0" * 16

        path = write_mutant(tmp_path, toy_payload, corrupt_fingerprint)
        assert main(["coverage", "check", str(path)]) != 0
        assert "fingerprint" in capsys.readouterr().err

    def test_schema_violation_fails(self, tmp_path, toy_payload, capsys):
        def drop_required(payload):
            del payload["cells"][0]["escapes"]

        path = write_mutant(tmp_path, toy_payload, drop_required)
        assert main(["coverage", "check", str(path)]) != 0
        assert "escapes" in capsys.readouterr().err

    def test_empty_directory_fails(self, tmp_path, capsys):
        assert main(["coverage", "check", str(tmp_path)]) == 1
        assert "no coverage artifacts" in capsys.readouterr().err


class TestDiffAgainst:
    """--against compares two files without re-deriving anything."""

    def test_identical_files_diff_clean(self, artifact, capsys):
        assert main(
            ["coverage", "diff", str(artifact), "--against", str(artifact)]
        ) == 0
        assert "identical" in capsys.readouterr().out

    def test_mutated_cell_names_exact_cell(
        self, tmp_path, artifact, toy_payload, capsys
    ):
        def flip_outcome(payload):
            cell = payload["cells"][0]
            cell["outcomes"]["detected-cic"] -= 1
            cell["outcomes"]["silent-corruption"] += 1

        mutant = write_mutant(tmp_path, toy_payload, flip_outcome)
        assert main(
            ["coverage", "diff", str(artifact), "--against", str(mutant)]
        ) == 1
        out = capsys.readouterr().out
        assert "toy.s/same-column-pair/xor/lru_half" in out
        assert "outcomes[detected-cic]" in out
        assert "outcomes[silent-corruption]" in out

    def test_mutated_escape_entry_is_reported_verbatim(
        self, tmp_path, artifact, toy_payload, capsys
    ):
        original = toy_payload["cells"][0]["escapes"][0]
        forged = original.replace("silent-corruption", "hang")

        def swap_escape(payload):
            payload["cells"][0]["escapes"][0] = forged

        mutant = write_mutant(tmp_path, toy_payload, swap_escape)
        assert main(
            ["coverage", "diff", str(artifact), "--against", str(mutant)]
        ) == 1
        out = capsys.readouterr().out
        assert original in out
        assert forged in out

    def test_missing_cell_reported(
        self, tmp_path, artifact, toy_payload, capsys
    ):
        def drop_cell(payload):
            payload["cells"] = []

        mutant = write_mutant(tmp_path, toy_payload, drop_cell)
        assert main(
            ["coverage", "diff", str(artifact), "--against", str(mutant)]
        ) == 1
        out = capsys.readouterr().out
        assert "toy.s/same-column-pair/xor/lru_half" in out
        assert "absent" in out

    def test_spec_change_reported(
        self, tmp_path, artifact, toy_payload, capsys
    ):
        def change_seed(payload):
            payload["spec"]["seed"] = 99

        mutant = write_mutant(tmp_path, toy_payload, change_seed)
        assert main(
            ["coverage", "diff", str(artifact), "--against", str(mutant)]
        ) == 1
        assert "<spec>" in capsys.readouterr().out


class TestDiffRederive:
    """Without --against the matrix is re-derived from the embedded spec."""

    def test_committed_toy_artifact_diffs_clean(self, artifact, capsys):
        assert main(["coverage", "diff", str(artifact)]) == 0
        assert "identical" in capsys.readouterr().out

    def test_rederive_catches_a_mutated_cell(
        self, tmp_path, toy_payload, capsys
    ):
        def nudge_rate(payload):
            payload["cells"][0]["detection_rate"] += 0.25

        mutant = write_mutant(tmp_path, toy_payload, nudge_rate)
        assert main(["coverage", "diff", str(mutant)]) == 1
        out = capsys.readouterr().out
        assert "toy.s/same-column-pair/xor/lru_half" in out
        assert "detection_rate" in out

    def test_unknown_workload_restriction_rejected(self, artifact, capsys):
        assert main(
            ["coverage", "diff", str(artifact), "--workload", "nonesuch"]
        ) == 1
        assert "nonesuch" in capsys.readouterr().err

    def test_workload_restriction_diffs_clean(self, artifact, capsys):
        assert main(
            ["coverage", "diff", str(artifact), "--workload", "toy.s"]
        ) == 0
        assert "identical" in capsys.readouterr().out
