"""Matrix reduction, fingerprints, round-trips, and the committed corpora.

The committed ground-truth files under ``results/coverage/`` are
first-class test subjects here: every one must be schema-valid,
fingerprint-intact, internally consistent, and generated from a spec
that still matches the live :data:`repro.coverage.CORPORA` registry —
so editing a corpus definition without regenerating its artifact fails
loudly.
"""

from __future__ import annotations

import copy
import glob
import json
import os

import pytest

from repro.coverage import (
    CORPORA,
    CoverageCell,
    CoverageSpec,
    build_payload,
    check_payload,
    default_artifact_path,
    diff_payloads,
    fault_label,
    fingerprint,
    get_corpus,
    load_payload,
    reduce_cell,
    render_payload,
    run_coverage,
)
from repro.coverage.matrix import sort_cells
from repro.errors import ConfigurationError
from repro.exec.records import FaultRecord
from repro.faults.campaign import Outcome
from repro.faults.models import BitFlipFault, TransientFetchFault

RESULTS_DIR = os.path.join(
    os.path.dirname(__file__), "..", "..", "results", "coverage"
)

TOY_SOURCE = """
main:   li $t0, 6
        li $s0, 0
loop:   addu $s0, $s0, $t0
        addi $t0, $t0, -1
        bgtz $t0, loop
        move $a0, $s0
        li $v0, 1
        syscall
        li $v0, 10
        syscall
"""


def toy_spec(**overrides) -> CoverageSpec:
    fields = dict(
        name="toy",
        kind="pairs",
        source=TOY_SOURCE,
        source_name="toy.s",
        hash_names=("xor",),
        policy_names=("lru_half",),
    )
    fields.update(overrides)
    return CoverageSpec(**fields)


def record(index, fault, outcome, latency=None):
    return FaultRecord(
        index=index, shard=0, fault=fault, outcome=outcome, latency=latency
    )


class TestFaultLabels:
    def test_bitflip(self):
        assert fault_label(BitFlipFault(0x400010, (7,))) == "bitflip@0x400010:b7"

    def test_pair(self):
        pair = (BitFlipFault(0x400000, (3,)), BitFlipFault(0x400008, (3,)))
        assert fault_label(pair) == (
            "bitflip@0x400000:b3+bitflip@0x400008:b3"
        )

    def test_transient(self):
        fault = TransientFetchFault(0x400004, (1, 2), occurrence=3)
        assert fault_label(fault) == "transient@0x400004:b1,2:n3"

    def test_unlabelable_rejected(self):
        with pytest.raises(ConfigurationError):
            fault_label(object())


class TestReduceCell:
    def test_counts_rate_histogram_escapes(self):
        flip = BitFlipFault(0x400000, (0,))
        records = [
            record(0, flip, Outcome.DETECTED_CIC, latency=2),
            record(1, flip, Outcome.DETECTED_CIC, latency=2),
            record(2, flip, Outcome.DETECTED_BASELINE, latency=0),
            record(3, flip, Outcome.SDC),
            record(4, flip, Outcome.HANG),
            record(5, flip, Outcome.BENIGN),
        ]
        cell = reduce_cell("toy", "subject", "xor", "lru_half", records)
        assert cell.total == 6
        assert cell.outcomes == {
            "detected-cic": 2,
            "detected-baseline": 1,
            "silent-corruption": 1,
            "hang": 1,
            "benign": 1,
            "crashed": 0,
        }
        assert cell.detection_rate == round(3 / 6, 6)
        assert cell.latency_histogram == {"2": 2, "0": 1}
        assert cell.escapes == [
            "3|bitflip@0x400000:b0|silent-corruption",
            "4|bitflip@0x400000:b0|hang",
        ]

    def test_reduction_is_order_sensitive_fold_of_sorted_records(self):
        """Same multiset of records → same cell (the runner sorts first)."""
        flip = BitFlipFault(0x400000, (0,))
        records = [
            record(0, flip, Outcome.SDC),
            record(1, flip, Outcome.DETECTED_CIC, latency=1),
        ]
        cell_a = reduce_cell("t", "s", "xor", "lru_half", records)
        cell_b = reduce_cell("t", "s", "xor", "lru_half", list(records))
        assert cell_a.to_json() == cell_b.to_json()

    def test_empty_cell(self):
        cell = reduce_cell("t", "s", "xor", "lru_half", [])
        assert cell.total == 0
        assert cell.detection_rate == 0.0
        assert cell.escapes == []


class TestCellAndSpecRoundTrip:
    def test_cell_round_trip(self):
        cell = CoverageCell(
            workload="toy",
            subject="same-column-pair",
            hash_name="xor",
            policy_name="lru_half",
            total=3,
            outcomes={"detected-cic": 3},
            detection_rate=1.0,
            latency_histogram={"0": 3},
            escapes=[],
        )
        assert CoverageCell.from_json(cell.to_json()).to_json() == cell.to_json()

    def test_spec_round_trip(self):
        for spec in CORPORA.values():
            assert CoverageSpec.from_json(spec.to_json()) == spec

    def test_sort_cells_canonical(self):
        cells = [
            CoverageCell("b", "s", "xor", "lru_half"),
            CoverageCell("a", "t", "xor", "lru_half"),
            CoverageCell("a", "s", "crc32", "lru_half"),
            CoverageCell("a", "s", "xor", "lru_half"),
        ]
        assert [cell.key for cell in sort_cells(cells)] == sorted(
            cell.key for cell in cells
        )

    def test_spec_validation(self):
        with pytest.raises(ConfigurationError):
            CoverageSpec(name="bad", kind="no-such-kind", workloads=("sha",))
        with pytest.raises(ConfigurationError):
            CoverageSpec(name="bad", kind="pairs")  # neither source
        with pytest.raises(ConfigurationError):
            CoverageSpec(
                name="bad", kind="pairs", workloads=("sha",), source="x"
            )
        with pytest.raises(ConfigurationError):
            get_corpus("no-such-corpus")


class TestFingerprint:
    def test_depends_on_cells_not_manifest(self):
        spec = toy_spec()
        cell = reduce_cell("toy.s", "same-column-pair", "xor", "lru_half", [])
        payload_a = build_payload(spec, [cell], 0, 1.0, workers=1)
        payload_b = build_payload(spec, [cell], 0, 99.0, workers=4)
        assert (
            payload_a["manifest"]["fingerprint"]
            == payload_b["manifest"]["fingerprint"]
        )
        assert payload_a["manifest"]["wall_seconds"] != (
            payload_b["manifest"]["wall_seconds"]
        )

    def test_sensitive_to_any_cell_change(self):
        spec_json = toy_spec().to_json()
        cells = [
            reduce_cell(
                "toy.s",
                "same-column-pair",
                "xor",
                "lru_half",
                [record(0, BitFlipFault(0x400000, (0,)), Outcome.DETECTED_CIC, 1)],
            ).to_json()
        ]
        base = fingerprint(spec_json, cells)
        mutated = copy.deepcopy(cells)
        mutated[0]["outcomes"]["detected-cic"] = 0
        assert fingerprint(spec_json, mutated) != base


class TestToyPayloadEndToEnd:
    @pytest.fixture(scope="class")
    def payload(self):
        return run_coverage(toy_spec())

    def test_sound_and_self_identical(self, payload):
        assert check_payload(payload) == []
        assert diff_payloads(payload, payload) == []

    def test_render_load_round_trip(self, payload, tmp_path):
        path = tmp_path / "toy.json"
        path.write_text(render_payload(payload), encoding="utf-8")
        assert load_payload(path) == payload
        assert check_payload(load_payload(path)) == []

    def test_rerun_is_fingerprint_identical(self, payload):
        again = run_coverage(toy_spec())
        assert (
            again["manifest"]["fingerprint"]
            == payload["manifest"]["fingerprint"]
        )
        assert again["cells"] == payload["cells"]

    def test_worker_and_batch_invariance(self, payload):
        variant = run_coverage(toy_spec(), workers=2, chunk_size=9, batch_size=5)
        assert variant["cells"] == payload["cells"]
        assert (
            variant["manifest"]["fingerprint"]
            == payload["manifest"]["fingerprint"]
        )

    def test_check_catches_internal_inconsistency(self, payload):
        broken = copy.deepcopy(payload)
        broken["cells"][0]["total"] += 1
        errors = check_payload(broken)
        assert errors
        assert any("outcomes sum" in error for error in errors)

    def test_load_rejects_non_coverage_json(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"type": "metrics"}), encoding="utf-8")
        with pytest.raises(ConfigurationError):
            load_payload(path)


def committed_artifacts() -> list[str]:
    return sorted(glob.glob(os.path.join(RESULTS_DIR, "*.json")))


class TestCommittedGroundTruth:
    def test_all_three_corpora_are_committed(self):
        committed = {os.path.basename(path) for path in committed_artifacts()}
        expected = {
            os.path.basename(default_artifact_path(name)) for name in CORPORA
        }
        assert expected <= committed

    @pytest.mark.parametrize(
        "path", committed_artifacts(), ids=os.path.basename
    )
    def test_committed_matrix_is_sound(self, path):
        payload = load_payload(path)
        assert check_payload(payload) == []

    @pytest.mark.parametrize(
        "path", committed_artifacts(), ids=os.path.basename
    )
    def test_committed_spec_matches_registry(self, path):
        """A corpus definition change without regeneration fails here."""
        payload = load_payload(path)
        spec = CoverageSpec.from_json(payload["spec"])
        assert spec == CORPORA[spec.name]

    def test_artifact_serialization_is_stable(self):
        for path in committed_artifacts():
            payload = load_payload(path)
            with open(path, encoding="utf-8") as handle:
                assert handle.read() == render_payload(payload)
