"""OS loader tests."""

import pytest

from repro.errors import MonitorViolation
from repro.asm.assembler import assemble
from repro.cfg.hashgen import build_fht
from repro.cic.hashes import get_hash
from repro.osmodel.loader import load_process
from repro.pipeline.funcsim import FuncSim

SOURCE = """
main:   li $t0, 4
loop:   addi $t0, $t0, -1
        bgtz $t0, loop
        li $v0, 10
        syscall
"""


class TestLoadProcess:
    def test_wiring(self):
        program = assemble(SOURCE)
        process = load_process(program, iht_size=4)
        assert process.iht.size == 4
        assert len(process.fht) > 0
        assert process.checker.iht is process.iht
        assert process.handler.fht is process.fht

    def test_monitored_run_succeeds(self):
        program = assemble(SOURCE)
        process = load_process(program, iht_size=4)
        result = FuncSim(program, monitor=process.monitor).run()
        assert result.monitor_stats.mismatches == 0
        assert result.monitor_stats.lookups > 0

    def test_fht_blob_path(self):
        """Expected hashes attached to the binary, not recomputed."""
        program = assemble(SOURCE)
        blob = build_fht(program, get_hash("xor")).to_bytes()
        process = load_process(program, iht_size=4, fht_blob=blob)
        result = FuncSim(program, monitor=process.monitor).run()
        assert result.monitor_stats.mismatches == 0

    def test_stale_fht_blob_detects_update(self):
        """A binary changed after its FHT was produced must be rejected."""
        program = assemble(SOURCE)
        blob = build_fht(program, get_hash("xor")).to_bytes()
        patched = assemble(SOURCE.replace("li $t0, 4", "li $t0, 5"))
        process = load_process(patched, iht_size=4, fht_blob=blob)
        with pytest.raises(MonitorViolation):
            FuncSim(patched, monitor=process.monitor).run()

    def test_hash_and_policy_selection(self):
        program = assemble(SOURCE)
        process = load_process(
            program, iht_size=2, hash_name="crc32", policy_name="fifo"
        )
        assert process.algorithm.name == "crc32"
        assert process.policy.name == "fifo"
        result = FuncSim(program, monitor=process.monitor).run()
        assert result.monitor_stats.mismatches == 0
