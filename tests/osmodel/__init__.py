"""Test package."""
