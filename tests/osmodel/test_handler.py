"""OS exception handler tests."""

import pytest

from repro.errors import MonitorViolation
from repro.cic.fht import FullHashTable
from repro.cic.iht import InternalHashTable
from repro.osmodel.handler import OSExceptionHandler
from repro.osmodel.policies import get_policy


def _handler(records, size=4, penalty=100):
    fht = FullHashTable(records)
    iht = InternalHashTable(size)
    return (
        OSExceptionHandler(
            fht=fht, iht=iht, policy=get_policy("lru_half"), miss_penalty=penalty
        ),
        iht,
    )


class TestMiss:
    def test_verified_miss_refills_and_charges(self):
        handler, iht = _handler({(0x100, 0x10C): 0xAB})
        assert handler.on_miss(0x100, 0x10C, 0xAB) == 100
        assert iht.probe(0x100, 0x10C) is not None
        assert handler.stats.miss_exceptions == 1
        assert handler.stats.refills == 1
        assert handler.stats.cycles == 100

    def test_unknown_block_terminates(self):
        handler, _ = _handler({})
        with pytest.raises(MonitorViolation) as excinfo:
            handler.on_miss(0x100, 0x10C, 0xAB)
        assert excinfo.value.expected is None

    def test_wrong_hash_terminates(self):
        handler, _ = _handler({(0x100, 0x10C): 0xAB})
        with pytest.raises(MonitorViolation) as excinfo:
            handler.on_miss(0x100, 0x10C, 0xCD)
        assert excinfo.value.expected == 0xAB
        assert excinfo.value.observed == 0xCD

    def test_custom_penalty(self):
        handler, _ = _handler({(0x100, 0x10C): 0xAB}, penalty=42)
        assert handler.on_miss(0x100, 0x10C, 0xAB) == 42


class TestMismatch:
    def test_always_terminates_with_iht_expectation(self):
        handler, iht = _handler({(0x100, 0x10C): 0xAB})
        iht.insert(0x100, 0x10C, 0xAB)
        with pytest.raises(MonitorViolation) as excinfo:
            handler.on_mismatch(0x100, 0x10C, 0xEE)
        assert excinfo.value.expected == 0xAB

    def test_violation_message_readable(self):
        handler, _ = _handler({(0x100, 0x10C): 0xAB})
        with pytest.raises(MonitorViolation, match="0x000000cd"):
            handler.on_miss(0x100, 0x10C, 0xCD)
