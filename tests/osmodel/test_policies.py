"""Replacement policy tests."""

import pytest

from repro.errors import ConfigurationError
from repro.cic.fht import FullHashTable
from repro.cic.iht import InternalHashTable
from repro.osmodel.policies import (
    POLICIES,
    FifoPolicy,
    LruHalfPolicy,
    LruOnePolicy,
    RandomPolicy,
    get_policy,
)


def _fht(count=12):
    return FullHashTable(
        {(0x100 + 16 * i, 0x10C + 16 * i): i for i in range(count)}
    )


def _key(i):
    return (0x100 + 16 * i, 0x10C + 16 * i)


class TestLruHalf:
    def test_refill_loads_half_the_table(self):
        iht = InternalHashTable(8)
        LruHalfPolicy().refill(iht, _fht(), _key(0))
        assert len(iht.valid_entries()) == 4  # size // 2 records loaded

    def test_missing_key_always_present_after_refill(self):
        iht = InternalHashTable(8)
        policy = LruHalfPolicy()
        for i in (0, 5, 11, 3, 7):
            policy.refill(iht, _fht(), _key(i))
            assert iht.probe(*_key(i)) is not None

    def test_evicts_least_recently_used(self):
        iht = InternalHashTable(4)
        policy = LruHalfPolicy()
        for i in range(4):
            iht.insert(*_key(i), i)
        # touch keys 2 and 3 so 0 and 1 become LRU
        iht.lookup(*_key(2), 2)
        iht.lookup(*_key(3), 3)
        policy.refill(iht, _fht(), _key(8))
        cached = {entry[:2] for entry in iht.contents()}
        assert _key(0) not in cached
        assert _key(2) in cached
        assert _key(3) in cached

    def test_prefetches_sequential_fht_records(self):
        iht = InternalHashTable(8)
        LruHalfPolicy().refill(iht, _fht(), _key(2))
        cached = {entry[:2] for entry in iht.contents()}
        assert cached == {_key(2), _key(3), _key(4), _key(5)}

    def test_size_one_table(self):
        iht = InternalHashTable(1)
        policy = LruHalfPolicy()
        policy.refill(iht, _fht(), _key(0))
        assert iht.probe(*_key(0)) is not None
        policy.refill(iht, _fht(), _key(1))
        assert iht.probe(*_key(1)) is not None
        assert iht.probe(*_key(0)) is None


class TestLruOne:
    def test_loads_only_missed_record(self):
        iht = InternalHashTable(8)
        LruOnePolicy().refill(iht, _fht(), _key(0))
        assert len(iht.valid_entries()) == 1

    def test_evicts_single_lru(self):
        iht = InternalHashTable(2)
        policy = LruOnePolicy()
        policy.refill(iht, _fht(), _key(0))
        policy.refill(iht, _fht(), _key(1))
        iht.lookup(*_key(0), 0)  # make key 1 the LRU
        policy.refill(iht, _fht(), _key(2))
        cached = {entry[:2] for entry in iht.contents()}
        assert cached == {_key(0), _key(2)}


class TestFifo:
    def test_evicts_oldest_inserted(self):
        iht = InternalHashTable(4)
        policy = FifoPolicy()
        for i in range(4):
            iht.insert(*_key(i), i)
        # recency refresh must NOT save key 0 under FIFO
        iht.lookup(*_key(0), 0)
        policy.refill(iht, _fht(), _key(9))
        cached = {entry[:2] for entry in iht.contents()}
        assert _key(0) not in cached
        assert _key(1) not in cached


class TestRandom:
    def test_deterministic_with_seed(self):
        def run(seed):
            iht = InternalHashTable(4)
            policy = RandomPolicy(seed=seed)
            for i in range(4):
                iht.insert(*_key(i), i)
            policy.refill(iht, _fht(), _key(9))
            return {entry[:2] for entry in iht.contents()}

        assert run(1) == run(1)

    def test_missing_key_present(self):
        iht = InternalHashTable(2)
        policy = RandomPolicy(seed=3)
        for i in (0, 1, 2, 3, 4):
            policy.refill(iht, _fht(), _key(i))
            assert iht.probe(*_key(i)) is not None


class TestRegistry:
    def test_all_policies_registered(self):
        assert set(POLICIES) == {"lru_half", "lru_one", "fifo", "random"}

    def test_get_policy(self):
        assert isinstance(get_policy("fifo"), FifoPolicy)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            get_policy("mru")

    @pytest.mark.parametrize("name", sorted(POLICIES))
    def test_refill_never_overfills(self, name):
        iht = InternalHashTable(4)
        policy = get_policy(name)
        for i in range(12):
            policy.refill(iht, _fht(), _key(i))
            assert len(iht.valid_entries()) <= 4

    def test_small_fht_fits_entirely(self):
        iht = InternalHashTable(8)
        fht = _fht(2)
        policy = get_policy("lru_half")
        policy.refill(iht, fht, _key(0))
        assert len(iht.valid_entries()) <= 2
