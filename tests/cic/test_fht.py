"""Full hash table tests: ordering, prefetch iteration, serialization."""

import pytest

from repro.errors import LinkError
from repro.cic.fht import FullHashTable


def _sample() -> FullHashTable:
    return FullHashTable(
        {
            (0x100, 0x10C): 0xA,
            (0x110, 0x11C): 0xB,
            (0x200, 0x20C): 0xC,
        }
    )


class TestBasics:
    def test_get(self):
        fht = _sample()
        assert fht.get(0x100, 0x10C) == 0xA
        assert fht.get(0x999, 0x99C) is None

    def test_contains_and_len(self):
        fht = _sample()
        assert (0x110, 0x11C) in fht
        assert len(fht) == 3

    def test_add_keeps_sorted(self):
        fht = _sample()
        fht.add(0x000, 0x00C, 0xD)
        assert fht.keys_sorted()[0] == (0x000, 0x00C)


class TestPrefetchIteration:
    def test_starts_at_missing_key(self):
        records = list(_sample().records_from((0x110, 0x11C), 2))
        assert records[0] == (0x110, 0x11C, 0xB)
        assert records[1] == (0x200, 0x20C, 0xC)

    def test_wraps_around(self):
        records = list(_sample().records_from((0x200, 0x20C), 3))
        assert [record[2] for record in records] == [0xC, 0xA, 0xB]

    def test_count_capped_at_size(self):
        assert len(list(_sample().records_from((0x100, 0x10C), 10))) == 3

    def test_unknown_key_rejected(self):
        with pytest.raises(LinkError):
            list(_sample().records_from((0xDEAD, 0xBEEF), 1))


class TestSerialization:
    def test_roundtrip(self):
        fht = _sample()
        restored = FullHashTable.from_bytes(fht.to_bytes())
        assert dict(restored.items()) == dict(fht.items())

    def test_bad_magic_rejected(self):
        with pytest.raises(LinkError):
            FullHashTable.from_bytes(b"\x00" * 16)

    def test_truncated_rejected(self):
        blob = _sample().to_bytes()
        with pytest.raises(LinkError):
            FullHashTable.from_bytes(blob[:-4])

    def test_empty_table(self):
        restored = FullHashTable.from_bytes(FullHashTable().to_bytes())
        assert len(restored) == 0
