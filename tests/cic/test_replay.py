"""Trace-driven replay tests: replay must equal live monitored simulation."""

import pytest

from repro.cic.replay import replay_trace
from repro.osmodel.loader import load_process
from repro.osmodel.policies import get_policy
from repro.cfg.hashgen import build_fht
from repro.cic.fht import FullHashTable
from repro.cic.hashes import get_hash
from repro.pipeline.funcsim import FuncSim
from repro.pipeline.trace import BlockTrace
from repro.workloads.suite import build, workload_inputs


@pytest.mark.parametrize("name", ["bitcount", "stringsearch", "patricia"])
@pytest.mark.parametrize("size", [1, 4, 8])
def test_replay_equals_live_monitoring(name, size):
    program = build(name, "tiny")
    inputs = workload_inputs(name, "tiny")
    golden = FuncSim(program, collect_trace=True, inputs=inputs).run()
    fht = build_fht(program, get_hash("xor"))
    replayed = replay_trace(
        golden.block_trace, fht, size, get_policy("lru_half")
    )
    process = load_process(program, iht_size=size)
    live = FuncSim(program, monitor=process.monitor, inputs=inputs).run()
    assert replayed.lookups == live.monitor_stats.lookups
    assert replayed.misses == live.monitor_stats.misses
    assert replayed.hits == live.monitor_stats.hits


def test_replay_rejects_block_missing_from_fht():
    trace = BlockTrace()
    trace.append(0x400000, 0x400008)
    with pytest.raises(ValueError, match="missing from FHT"):
        replay_trace(trace, FullHashTable(), 4, get_policy("lru_half"))


def test_replay_rejects_corrupt_fht():
    trace = BlockTrace()
    trace.append(0x400000, 0x400008)
    trace.append(0x400000, 0x400008)
    fht = FullHashTable({(0x400000, 0x400008): 0xAA})

    class _TamperPolicy:
        def refill(self, iht, table, key):
            iht.insert(key[0], key[1], 0xBB)  # plant a wrong hash

    with pytest.raises(ValueError, match="mismatch"):
        replay_trace(trace, fht, 4, _TamperPolicy())
