"""Test package."""
