"""Hash algorithm tests: correctness vectors and error-model properties."""

import binascii
import hashlib
import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.cic.hashes import (
    HASH_ALGORITHMS,
    AddChecksum,
    Crc32,
    Fletcher32,
    RotXorChecksum,
    Sha1Trunc,
    XorChecksum,
    block_hash,
    get_hash,
)
from repro.utils.bitops import MASK32, flip_bit

words = st.integers(min_value=0, max_value=MASK32)
word_lists = st.lists(words, min_size=1, max_size=24)


class TestRegistry:
    def test_all_registered(self):
        assert set(HASH_ALGORITHMS) == {
            "xor", "add", "rotxor", "fletcher", "crc32", "sha1",
        }

    def test_get_hash(self):
        assert isinstance(get_hash("xor"), XorChecksum)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigurationError):
            get_hash("md5000")

    @pytest.mark.parametrize("name", sorted(HASH_ALGORITHMS))
    def test_deterministic(self, name):
        algorithm = get_hash(name)
        stream = [0x123, 0xABC, 0xDEF0]
        assert block_hash(algorithm, stream) == block_hash(algorithm, stream)

    @pytest.mark.parametrize("name", sorted(HASH_ALGORITHMS))
    @given(stream=word_lists)
    def test_finalize_is_32_bit(self, name, stream):
        value = block_hash(get_hash(name), stream)
        assert 0 <= value <= MASK32


class TestXor:
    @given(stream=word_lists)
    def test_equals_reduce_xor(self, stream):
        expected = 0
        for word in stream:
            expected ^= word
        assert block_hash(XorChecksum(), stream) == expected

    @given(stream=word_lists, index=st.integers(0, 23), bit=st.integers(0, 31))
    def test_detects_every_single_bit_flip(self, stream, index, bit):
        """The paper's claim: any odd number of flipped bits is detected."""
        index %= len(stream)
        tampered = list(stream)
        tampered[index] = flip_bit(tampered[index], bit)
        assert block_hash(XorChecksum(), tampered) != block_hash(
            XorChecksum(), stream
        )

    @given(stream=st.lists(words, min_size=2, max_size=24), bit=st.integers(0, 31))
    def test_misses_same_column_pairs(self, stream, bit):
        """...and the known blind spot: even flips in one column."""
        tampered = list(stream)
        tampered[0] = flip_bit(tampered[0], bit)
        tampered[1] = flip_bit(tampered[1], bit)
        assert block_hash(XorChecksum(), tampered) == block_hash(
            XorChecksum(), stream
        )

    @given(stream=st.lists(words, min_size=2, max_size=8))
    def test_order_independent(self, stream):
        assert block_hash(XorChecksum(), stream) == block_hash(
            XorChecksum(), list(reversed(stream))
        )


class TestRotXor:
    def test_usually_order_dependent(self):
        # "Usually" is a statistical property: crafted collisions exist
        # (e.g. [0, 0xFFFFFFFF] — all-ones is a fixed point of rotl), so
        # hypothesis would eventually find one.  A seeded sample bounds
        # the collision frequency instead.
        import random

        rng = random.Random(20260728)
        collisions = 0
        trials = 200
        for _ in range(trials):
            stream = [rng.randrange(1 << 32) for _ in range(rng.randrange(2, 9))]
            if stream == list(reversed(stream)):
                continue
            forward = block_hash(RotXorChecksum(), stream)
            backward = block_hash(RotXorChecksum(), list(reversed(stream)))
            collisions += forward == backward
        assert collisions <= trials // 50  # >= 98% order-sensitive

    def test_order_dependent_example(self):
        stream = [0x12345678, 0x9ABCDEF0, 0x0F1E2D3C]
        assert block_hash(RotXorChecksum(), stream) != block_hash(
            RotXorChecksum(), list(reversed(stream))
        )

    def test_known_reversal_collision(self):
        # The documented blind spot the statistical test tolerates: words
        # invariant under rotation carry no position information.
        stream = [0, MASK32]
        assert block_hash(RotXorChecksum(), stream) == block_hash(
            RotXorChecksum(), list(reversed(stream))
        )

    @given(stream=st.lists(words, min_size=2, max_size=20), bit=st.integers(0, 31))
    def test_detects_same_column_adjacent_pair(self, stream, bit):
        tampered = list(stream)
        tampered[0] = flip_bit(tampered[0], bit)
        tampered[1] = flip_bit(tampered[1], bit)
        assert block_hash(RotXorChecksum(), tampered) != block_hash(
            RotXorChecksum(), stream
        )


class TestAdd:
    @given(stream=word_lists)
    def test_equals_modular_sum(self, stream):
        assert block_hash(AddChecksum(), stream) == sum(stream) & MASK32

    @given(stream=st.lists(words, min_size=2, max_size=20))
    def test_misses_compensating_pair(self, stream):
        tampered = list(stream)
        tampered[0] = (tampered[0] + 1) & MASK32
        tampered[1] = (tampered[1] - 1) & MASK32
        assert block_hash(AddChecksum(), tampered) == block_hash(
            AddChecksum(), stream
        )


class TestCrc32:
    @given(stream=word_lists)
    def test_matches_binascii(self, stream):
        blob = b"".join(struct.pack("<I", word) for word in stream)
        assert block_hash(Crc32(), stream) == binascii.crc32(blob) & MASK32

    @given(stream=word_lists, index=st.integers(0, 23), bit=st.integers(0, 31))
    def test_detects_single_flip(self, stream, index, bit):
        index %= len(stream)
        tampered = list(stream)
        tampered[index] = flip_bit(tampered[index], bit)
        assert block_hash(Crc32(), tampered) != block_hash(Crc32(), stream)


class TestSha1:
    @given(stream=word_lists)
    def test_matches_hashlib_prefix(self, stream):
        blob = b"".join(struct.pack("<I", word) for word in stream)
        expected = struct.unpack(">I", hashlib.sha1(blob).digest()[:4])[0]
        assert block_hash(Sha1Trunc(), stream) == expected

    def test_streaming_across_chunk_boundary(self):
        stream = list(range(40))  # 160 bytes: crosses two 64-byte chunks
        blob = b"".join(struct.pack("<I", word) for word in stream)
        expected = struct.unpack(">I", hashlib.sha1(blob).digest()[:4])[0]
        assert block_hash(Sha1Trunc(), stream) == expected


class TestFletcher:
    def test_known_structure(self):
        value = block_hash(Fletcher32(), [0x00010001])
        # two halves of 1: sum1 = 2, sum2 = 1 + 2 = 3
        assert value == (3 << 16) | 2

    @given(stream=word_lists, index=st.integers(0, 23), bit=st.integers(0, 30))
    def test_detects_single_flip_low_bits(self, stream, index, bit):
        index %= len(stream)
        tampered = list(stream)
        tampered[index] = flip_bit(tampered[index], bit)
        if tampered[index] % 65535 == stream[index] % 65535 or any(
            half == 0xFFFF or half == 0
            for half in (tampered[index] & 0xFFFF, tampered[index] >> 16)
        ):
            return  # mod-65535 aliasing: 0x0000 and 0xFFFF coincide
        assert block_hash(Fletcher32(), tampered) != block_hash(
            Fletcher32(), stream
        )
