"""Internal hash table (CAM) tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.cic.iht import InternalHashTable


class TestLookup:
    def test_empty_table_misses(self):
        iht = InternalHashTable(4)
        assert iht.lookup(0x100, 0x10C, 1) == (False, False)
        assert iht.stats.misses == 1

    def test_hit(self):
        iht = InternalHashTable(4)
        iht.insert(0x100, 0x10C, 0xAB)
        assert iht.lookup(0x100, 0x10C, 0xAB) == (True, True)
        assert iht.stats.hits == 1

    def test_mismatch(self):
        iht = InternalHashTable(4)
        iht.insert(0x100, 0x10C, 0xAB)
        assert iht.lookup(0x100, 0x10C, 0xCD) == (True, False)
        assert iht.stats.mismatches == 1

    def test_tag_is_start_and_end(self):
        iht = InternalHashTable(4)
        iht.insert(0x100, 0x10C, 0xAB)
        assert iht.lookup(0x100, 0x110, 0xAB) == (False, False)
        assert iht.lookup(0x104, 0x10C, 0xAB) == (False, False)

    def test_miss_rate(self):
        iht = InternalHashTable(1)
        iht.insert(0x100, 0x10C, 1)
        iht.lookup(0x100, 0x10C, 1)  # hit
        iht.lookup(0x200, 0x20C, 1)  # miss
        assert iht.stats.miss_rate == pytest.approx(0.5)

    def test_empty_stats(self):
        assert InternalHashTable(2).stats.miss_rate == 0.0


class TestLruBookkeeping:
    def test_hit_refreshes_recency(self):
        iht = InternalHashTable(2)
        iht.insert(0x100, 0x10C, 1)
        iht.insert(0x200, 0x20C, 2)
        iht.lookup(0x100, 0x10C, 1)  # refresh the older entry
        contents = iht.contents()
        assert contents[0][:2] == (0x200, 0x20C)  # now LRU-oldest
        assert contents[-1][:2] == (0x100, 0x10C)

    def test_insert_updates_existing(self):
        iht = InternalHashTable(2)
        iht.insert(0x100, 0x10C, 1)
        iht.insert(0x100, 0x10C, 9)
        assert len(iht.valid_entries()) == 1
        assert iht.lookup(0x100, 0x10C, 9) == (True, True)


class TestCapacity:
    def test_insert_into_full_rejected(self):
        iht = InternalHashTable(1)
        iht.insert(0x100, 0x10C, 1)
        with pytest.raises(ConfigurationError):
            iht.insert(0x200, 0x20C, 2)

    def test_evict_then_insert(self):
        iht = InternalHashTable(1)
        iht.insert(0x100, 0x10C, 1)
        iht.evict(iht.valid_entries())
        iht.insert(0x200, 0x20C, 2)
        assert iht.lookup(0x200, 0x20C, 2) == (True, True)
        assert iht.lookup(0x100, 0x10C, 1) == (False, False)

    def test_free_slots(self):
        iht = InternalHashTable(3)
        assert iht.free_slots() == 3
        iht.insert(1 * 16, 1 * 16 + 4, 0)
        assert iht.free_slots() == 2

    def test_clear(self):
        iht = InternalHashTable(2)
        iht.insert(0x100, 0x10C, 1)
        iht.clear()
        assert iht.free_slots() == 2

    def test_zero_size_rejected(self):
        with pytest.raises(ConfigurationError):
            InternalHashTable(0)


@given(
    operations=st.lists(
        st.tuples(
            st.sampled_from(["lookup", "insert"]),
            st.integers(min_value=0, max_value=7),
        ),
        max_size=60,
    ),
    size=st.integers(min_value=1, max_value=4),
)
def test_model_based_against_dict(operations, size):
    """The CAM behaves like a bounded dict with explicit eviction."""
    iht = InternalHashTable(size)
    model: dict[tuple[int, int], int] = {}
    for operation, block in operations:
        key = (block * 16, block * 16 + 12)
        if operation == "insert":
            if key not in model and len(model) == size:
                victim = iht.valid_entries()[0]
                iht.evict([victim])
                del model[(victim.start, victim.end)]
            iht.insert(*key, block)
            model[key] = block
        else:
            found, match = iht.lookup(*key, block)
            assert found == (key in model)
            if found:
                assert match == (model[key] == block)
    assert {(s, e) for s, e, _ in iht.contents()} == set(model)
