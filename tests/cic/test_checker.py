"""Behavioural Code Integrity Checker tests."""

import pytest

from repro.errors import MonitorViolation
from repro.cic.checker import CodeIntegrityChecker
from repro.cic.fht import FullHashTable
from repro.cic.hashes import XorChecksum, block_hash
from repro.cic.iht import InternalHashTable
from repro.osmodel.handler import OSExceptionHandler
from repro.osmodel.policies import get_policy

BLOCK = [0x11111111, 0x22222222, 0x08000000]  # ends with j 0


def _checker(fht_records, iht_size=4, miss_penalty=100):
    fht = FullHashTable(fht_records)
    iht = InternalHashTable(iht_size)
    handler = OSExceptionHandler(
        fht=fht, iht=iht, policy=get_policy("lru_half"), miss_penalty=miss_penalty
    )
    return CodeIntegrityChecker(iht, handler, XorChecksum()), iht, handler


def _feed_block(checker, base=0x400000, words=BLOCK):
    for index, word in enumerate(words):
        checker.on_instruction(base + 4 * index, word)
    return base + 4 * (len(words) - 1)


class TestBlockAccumulation:
    def test_sta_latches_first_address(self):
        checker, _, _ = _checker({})
        checker.on_instruction(0x400010, 1)
        checker.on_instruction(0x400014, 2)
        assert checker.sta == 0x400010

    def test_rhash_accumulates(self):
        checker, _, _ = _checker({})
        _feed_block(checker)
        assert checker.rhash_value == block_hash(XorChecksum(), BLOCK)


class TestBlockEnd:
    def test_cold_miss_costs_penalty_then_hits(self):
        expected = block_hash(XorChecksum(), BLOCK)
        checker, iht, handler = _checker({(0x400000, 0x400008): expected})
        end = _feed_block(checker)
        assert checker.on_block_end(end) == 100
        # The OS refilled the IHT: a re-execution hits for free.
        end = _feed_block(checker)
        assert checker.on_block_end(end) == 0
        assert checker.stats.hits == 1
        assert checker.stats.misses == 1
        assert handler.stats.refills == 1

    def test_state_resets_between_blocks(self):
        expected = block_hash(XorChecksum(), BLOCK)
        checker, _, _ = _checker({(0x400000, 0x400008): expected})
        end = _feed_block(checker)
        checker.on_block_end(end)
        assert checker.sta is None
        assert checker.rhash_value == XorChecksum().finalize(XorChecksum().initial())

    def test_mismatch_terminates(self):
        checker, iht, _ = _checker({(0x400000, 0x400008): 0xBAD})
        iht.insert(0x400000, 0x400008, 0xBAD)
        end = _feed_block(checker)
        with pytest.raises(MonitorViolation) as excinfo:
            checker.on_block_end(end)
        assert excinfo.value.start == 0x400000
        assert excinfo.value.expected == 0xBAD

    def test_unknown_block_terminates_via_fht_search(self):
        checker, _, _ = _checker({})  # FHT empty
        end = _feed_block(checker)
        with pytest.raises(MonitorViolation) as excinfo:
            checker.on_block_end(end)
        assert excinfo.value.expected is None

    def test_fht_hash_disagreement_terminates(self):
        checker, _, _ = _checker({(0x400000, 0x400008): 0xBAD})
        end = _feed_block(checker)
        with pytest.raises(MonitorViolation):
            checker.on_block_end(end)

    def test_custom_penalty(self):
        expected = block_hash(XorChecksum(), BLOCK)
        checker, _, _ = _checker(
            {(0x400000, 0x400008): expected}, miss_penalty=250
        )
        end = _feed_block(checker)
        assert checker.on_block_end(end) == 250
        assert checker.stats.os_cycles == 250


class TestStats:
    def test_blocks_hashed_counted(self):
        expected = block_hash(XorChecksum(), BLOCK)
        checker, _, _ = _checker({(0x400000, 0x400008): expected})
        for _ in range(3):
            end = _feed_block(checker)
            checker.on_block_end(end)
        assert checker.stats.blocks_hashed == 3
        assert checker.stats.lookups == 3
