"""MicroMonitor unit tests (deeper than the integration equivalence)."""

import pytest

from repro.errors import MonitorViolation
from repro.asm.assembler import assemble
from repro.cfg.hashgen import build_fht
from repro.cic.hashes import get_hash
from repro.cic.iht import InternalHashTable
from repro.cic.micromonitor import HashFunctionalUnit, MicroMonitor
from repro.micro.parser import parse_microprogram
from repro.osmodel.handler import OSExceptionHandler
from repro.osmodel.policies import get_policy
from repro.pipeline.funcsim import FuncSim

SOURCE = """
main:   li $t0, 3
loop:   addi $t0, $t0, -1
        bgtz $t0, loop
        li $v0, 10
        syscall
"""


def _monitor(program, hash_name="xor", size=4, **kwargs):
    algorithm = get_hash(hash_name)
    fht = build_fht(program, algorithm)
    iht = InternalHashTable(size)
    handler = OSExceptionHandler(fht=fht, iht=iht, policy=get_policy("lru_half"))
    return MicroMonitor(iht, handler, algorithm, **kwargs)


class TestDefaults:
    def test_clean_run(self):
        program = assemble(SOURCE)
        monitor = _monitor(program)
        result = FuncSim(program, monitor=monitor).run()
        assert result.monitor_stats.mismatches == 0
        assert result.monitor_stats.blocks_hashed == result.monitor_stats.lookups

    def test_describe_contains_figures(self):
        program = assemble(SOURCE)
        text = _monitor(program).describe()
        assert "IF stage extension" in text
        assert "IHTbb.lookup" in text

    def test_tamper_detected_through_microops(self):
        program = assemble(SOURCE)
        monitor = _monitor(program)
        simulator = FuncSim(program, monitor=monitor)
        simulator.state.memory.flip_bit(program.symbols["loop"], 5)
        with pytest.raises(MonitorViolation):
            simulator.run()

    @pytest.mark.parametrize("hash_name", ["xor", "crc32", "sha1"])
    def test_finalizing_hashes_work_through_fin_op(self, hash_name):
        """crc32/sha1 have non-identity finalize: exercised by HASHFU.fin."""
        program = assemble(SOURCE)
        monitor = _monitor(program, hash_name=hash_name)
        result = FuncSim(program, monitor=monitor).run()
        assert result.monitor_stats.mismatches == 0


class TestCustomPrograms:
    def test_custom_if_program_must_bind_rhash(self):
        """A monitoring spec that never updates RHASH misses everything —
        demonstrating the spec is genuinely live, not decorative."""
        program = assemble(SOURCE)
        broken_if = parse_microprogram(
            """
            start = STA.read();
            null = [start==0]STA.write(current_pc);
            """,
            "broken",
        )
        monitor = _monitor(program, if_program=broken_if)
        simulator = FuncSim(program, monitor=monitor)
        # RHASH never accumulates: first block's hash is the initial value,
        # which disagrees with the FHT: violation on the first block end.
        with pytest.raises(MonitorViolation):
            simulator.run()


class TestHashFunctionalUnit:
    def test_ope_and_fin(self):
        algorithm = get_hash("crc32")
        unit = HashFunctionalUnit("HASHFU", algorithm)
        state = algorithm.initial()
        state = unit.op_ope(state, 0x12345678)
        assert unit.op_fin(state) == algorithm.finalize(state)
