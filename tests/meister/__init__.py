"""Test package."""
