"""Resource library, ISA spec, and monitor spec tests."""

import pytest

from repro.errors import ConfigurationError
from repro.meister.isa_spec import IFETCH_TEXT, default_isa_spec
from repro.meister.monitor_spec import MonitorSpec
from repro.meister.resource_library import default_library
from repro.micro.parser import parse_microprogram
from repro.isa.opcodes import Mnemonic


class TestResourceLibrary:
    def test_base_and_monitor_entries(self):
        library = default_library()
        for name in ("CPC", "PPC", "IReg", "IMAU", "DMAU", "GPR", "ALU"):
            assert name in library
        assert set(library.monitoring_names()) == {
            "STA", "RHASH", "HASHFU", "IHTbb", "COMP",
        }

    def test_validate_operation_accepts_legal(self):
        library = default_library()
        library.validate_operation("GPR", "read", "ID")
        library.validate_operation("IHTbb", "lookup", "ID")

    def test_validate_rejects_unknown_resource(self):
        with pytest.raises(ConfigurationError):
            default_library().validate_operation("FPU", "ope", "EX")

    def test_validate_rejects_unknown_operation(self):
        with pytest.raises(ConfigurationError):
            default_library().validate_operation("GPR", "lookup", "ID")

    def test_validate_rejects_wrong_stage(self):
        with pytest.raises(ConfigurationError):
            default_library().validate_operation("IHTbb", "lookup", "EX")

    def test_entry_metadata(self):
        library = default_library()
        assert library["IHTbb"].kind == "cam"
        assert library["STA"].monitoring


class TestIsaSpec:
    def test_all_mnemonics_covered(self):
        spec = default_isa_spec()
        assert len(spec.instructions) == len(tuple(Mnemonic))

    def test_every_instruction_has_fetch_stage(self):
        spec = default_isa_spec()
        for instruction in spec.instructions.values():
            assert instruction.stage_programs["IF"].strip() == IFETCH_TEXT.strip()

    def test_control_flow_flags(self):
        spec = default_isa_spec()
        assert spec[Mnemonic.BEQ].control_flow
        assert spec[Mnemonic.SYSCALL].control_flow
        assert not spec[Mnemonic.ADD].control_flow
        assert set(spec.control_flow_instructions()) == {
            Mnemonic.BEQ, Mnemonic.BNE, Mnemonic.BLEZ, Mnemonic.BGTZ,
            Mnemonic.BLTZ, Mnemonic.BGEZ, Mnemonic.J, Mnemonic.JAL,
            Mnemonic.JR, Mnemonic.JALR, Mnemonic.SYSCALL, Mnemonic.BREAK,
        }

    def test_all_stage_programs_parse(self):
        spec = default_isa_spec()
        for instruction in spec.instructions.values():
            for text in instruction.stage_programs.values():
                parse_microprogram(text)  # must not raise

    def test_load_touches_dmau(self):
        spec = default_isa_spec()
        lw_text = spec[Mnemonic.LW].stage_programs["MEM"]
        assert "DMAU.read" in lw_text

    def test_listing_renders(self):
        listing = default_isa_spec()[Mnemonic.LW].listing()
        assert "[MEM]" in listing
        assert "lw" in listing


class TestMonitorSpec:
    def test_defaults_are_the_paper_config(self):
        spec = MonitorSpec()
        assert spec.hash_name == "xor"
        assert spec.iht_entries == 8
        assert spec.policy_name == "lru_half"
        assert spec.miss_penalty == 100
        spec.validate()

    def test_programs_parse(self):
        spec = MonitorSpec()
        assert len(spec.if_program()) == 5
        assert len(spec.id_program()) == 9

    def test_describe(self):
        assert "IHT=16" in MonitorSpec(iht_entries=16).describe()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"hash_name": "bogus"},
            {"policy_name": "bogus"},
            {"iht_entries": 0},
            {"miss_penalty": -1},
            {"id_extension_text": "not microops at all"},
        ],
    )
    def test_invalid_specs_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            MonitorSpec(**kwargs).validate()

    def test_frozen(self):
        spec = MonitorSpec()
        with pytest.raises(AttributeError):
            spec.iht_entries = 32
