"""ASIP Meister design-flow tests."""

import pytest

from repro.errors import ConfigurationError
from repro.asm.assembler import assemble
from repro.meister.generator import AsipMeister
from repro.meister.isa_spec import default_isa_spec
from repro.meister.monitor_spec import MonitorSpec
from repro.isa.opcodes import Mnemonic

PROGRAM = """
main:   li $t0, 4
loop:   addi $t0, $t0, -1
        bgtz $t0, loop
        li $v0, 10
        syscall
"""


@pytest.fixture(scope="module")
def flow():
    return AsipMeister()


class TestGeneration:
    def test_baseline_processor(self, flow):
        cpu = flow.generate()
        assert cpu.monitor_spec is None
        assert "baseline" in cpu.describe()

    def test_monitored_processor_runs(self, flow):
        cpu = flow.generate(monitor_spec=MonitorSpec(iht_entries=4))
        result = cpu.run(assemble(PROGRAM), engine="func")
        assert result.monitor_stats.lookups > 0
        assert result.monitor_stats.mismatches == 0

    def test_pipeline_engine_with_micro_monitor(self, flow):
        cpu = flow.generate(monitor_spec=MonitorSpec(iht_entries=4))
        program = assemble(PROGRAM)
        fast = cpu.run(program, engine="func", monitor_kind="fast")
        micro = cpu.run(program, engine="pipeline", monitor_kind="micro")
        assert fast.cycles == micro.cycles
        assert fast.monitor_stats.misses == micro.monitor_stats.misses

    def test_unknown_engine_rejected(self, flow):
        cpu = flow.generate()
        with pytest.raises(ConfigurationError):
            cpu.make_simulator(assemble(PROGRAM), engine="rtl")

    def test_unknown_monitor_kind_rejected(self, flow):
        cpu = flow.generate(monitor_spec=MonitorSpec())
        with pytest.raises(ConfigurationError):
            cpu.make_monitor(assemble(PROGRAM), kind="magic")


class TestValidation:
    def test_isa_spec_validates_against_library(self, flow):
        spec = default_isa_spec()
        flow.generate(isa_spec=spec)  # no error

    def test_monitor_op_in_wrong_stage_rejected(self, flow):
        bad = MonitorSpec(
            if_extension_text="<f,m> = IHTbb.lookup(<a,b,c>);"  # CAM not in IF
        )
        with pytest.raises(ConfigurationError, match="IHTbb"):
            flow.generate(monitor_spec=bad)

    def test_unknown_resource_rejected(self, flow):
        bad = MonitorSpec(if_extension_text="x = TURBO.read();")
        with pytest.raises(ConfigurationError, match="TURBO"):
            flow.generate(monitor_spec=bad)

    def test_bad_hash_rejected(self, flow):
        with pytest.raises(ConfigurationError):
            flow.generate(monitor_spec=MonitorSpec(hash_name="md5000"))

    def test_bad_policy_rejected(self, flow):
        with pytest.raises(ConfigurationError):
            flow.generate(monitor_spec=MonitorSpec(policy_name="mru"))

    def test_bad_iht_size_rejected(self, flow):
        with pytest.raises(ConfigurationError):
            flow.generate(monitor_spec=MonitorSpec(iht_entries=0))


class TestDocumentationOutputs:
    def test_augmented_listing_reproduces_figures(self, flow):
        cpu = flow.generate(monitor_spec=MonitorSpec())
        listing = cpu.augmented_listing(Mnemonic.JR)
        # Figure 3(b) lines in IF:
        assert "null = [start==0]STA.write(current_pc);" in listing
        assert "nhashv = HASHFU.ope(ohashv, instr);" in listing
        # Figure 4 lines in ID:
        assert "<found,match> = IHTbb.lookup(<start,end,hashv>);" in listing
        assert "exception1 = [found==1 & match==0] '1';" in listing
        # Base jr semantics retained:
        assert "target = GPR.read(rs);" in listing

    def test_non_control_flow_gets_only_if_extension(self, flow):
        cpu = flow.generate(monitor_spec=MonitorSpec())
        listing = cpu.augmented_listing(Mnemonic.ADD)
        assert "STA.write" in listing
        assert "IHTbb" not in listing

    def test_synthesize_matches_area_model(self, flow):
        from repro.area.synthesis import synthesize

        cpu = flow.generate(monitor_spec=MonitorSpec(iht_entries=16))
        assert cpu.synthesize().cell_area == synthesize(16).cell_area

    def test_isa_spec_listings_parse_and_validate(self, flow):
        spec = default_isa_spec()
        assert len(spec.instructions) == 52
        used = spec.resources_used()
        assert {"CPC", "IMAU", "GPR", "ALU"} <= used
        jr_spec = spec[Mnemonic.JR]
        assert jr_spec.control_flow
        assert "[IF]" in jr_spec.listing()
