"""CLI tests."""

import json
import types

import pytest

from repro import __version__, cli
from repro.cli import main
from repro.errors import MonitorViolation

SOURCE = """
main:   li $t0, 3
loop:   addi $t0, $t0, -1
        bgtz $t0, loop
        li $a0, 42
        li $v0, 1
        syscall
        li $v0, 10
        syscall
"""


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "prog.s"
    path.write_text(SOURCE)
    return str(path)


class TestAsm:
    def test_listing_printed(self, program_file, capsys):
        assert main(["asm", program_file]) == 0
        out = capsys.readouterr().out
        assert "0x00400000" in out
        assert "addi" in out

    def test_missing_file(self, capsys):
        assert main(["asm", "/nonexistent.s"]) == 1
        assert "error" in capsys.readouterr().err

    def test_assembler_error_reported(self, tmp_path, capsys):
        path = tmp_path / "bad.s"
        path.write_text("frobnicate $t0")
        assert main(["asm", str(path)]) == 1
        assert "frobnicate" in capsys.readouterr().err


class TestRun:
    def test_run_prints_console(self, program_file, capsys):
        assert main(["run", program_file]) == 0
        captured = capsys.readouterr()
        assert captured.out.strip() == "42"
        assert "cycles" in captured.err

    def test_pipeline_engine(self, program_file, capsys):
        assert main(["run", program_file, "--engine", "pipeline"]) == 0
        assert capsys.readouterr().out.strip() == "42"

    def test_input_queue(self, tmp_path, capsys):
        path = tmp_path / "echo.s"
        path.write_text("""
        li $v0, 5
        syscall
        move $a0, $v0
        li $v0, 1
        syscall
        li $v0, 10
        syscall
        """)
        assert main(["run", str(path), "--input", "7"]) == 0
        assert capsys.readouterr().out.strip() == "7"


class TestMonitor:
    def test_clean_run_reports_stats(self, program_file, capsys):
        assert main(["monitor", program_file, "--iht", "4"]) == 0
        captured = capsys.readouterr()
        assert "lookups" in captured.err
        assert "miss rate" in captured.err

    def test_flip_detected(self, program_file, capsys):
        assert main(
            ["monitor", program_file, "--flip", "0x400004:3"]
        ) == 2
        assert "VIOLATION" in capsys.readouterr().err

    def test_hash_selection(self, program_file):
        assert main(["monitor", program_file, "--hash", "crc32"]) == 0


class TestCampaign:
    def test_campaign_on_source_file(self, program_file, capsys, tmp_path):
        out = tmp_path / "campaign.jsonl"
        assert main(
            ["campaign", program_file, "--faults", "10", "--seed", "7",
             "--workers", "1", "--out", str(out)]
        ) == 0
        captured = capsys.readouterr()
        assert "10 faults" in captured.out
        assert "coverage" in captured.out
        assert "complete results" in captured.err
        assert out.exists()

    def test_campaign_resume_is_identical(self, program_file, capsys, tmp_path):
        out = tmp_path / "campaign.jsonl"
        argv = ["campaign", program_file, "--faults", "10", "--seed", "7",
                "--out", str(out)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv + ["--resume"]) == 0
        assert capsys.readouterr().out == first

    def test_campaign_worker_count_does_not_change_stats(self, program_file, capsys):
        assert main(["campaign", program_file, "--faults", "12",
                     "--chunk", "4", "--workers", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(["campaign", program_file, "--faults", "12",
                     "--chunk", "4", "--workers", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_campaign_unknown_target(self, capsys):
        assert main(["campaign", "no-such-workload"]) == 1
        assert "unknown target" in capsys.readouterr().err


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert f"repro {__version__}" in capsys.readouterr().out


class TestExitCodes:
    def test_violation_maps_to_exit_2_from_any_command(self, monkeypatch, capsys):
        def explode(args):
            raise MonitorViolation(0x400000, 0x400004, 0x1, 0x2)

        arguments = types.SimpleNamespace(handler=explode)
        parser = types.SimpleNamespace(parse_args=lambda argv=None: arguments)
        monkeypatch.setattr(cli, "build_parser", lambda: parser)
        assert cli.main([]) == 2
        assert "VIOLATION" in capsys.readouterr().err

    def test_assembly_error_maps_to_exit_1(self, tmp_path, capsys):
        path = tmp_path / "bad.s"
        path.write_text("jr $t0, $t1, $t2")
        assert main(["monitor", str(path)]) == 1
        assert "error" in capsys.readouterr().err


class TestAttack:
    def test_attack_prints_detection_matrix(self, program_file, capsys):
        assert main(
            ["attack", program_file, "--per-class", "2", "--seed", "7"]
        ) == 0
        out = capsys.readouterr().out
        assert "Attack coverage" in out
        assert "logic-invert" in out
        assert "jump-splice/transient" in out

    def test_attack_worker_count_does_not_change_matrix(
        self, program_file, capsys
    ):
        argv = ["attack", program_file, "--per-class", "2", "--seed", "7",
                "--chunk", "3"]
        assert main(argv + ["--workers", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(argv + ["--workers", "2"]) == 0
        assert capsys.readouterr().out == serial

    def test_attack_json_and_resume(self, program_file, capsys, tmp_path):
        out = tmp_path / "attacks.jsonl"
        matrix = tmp_path / "matrix.json"
        argv = ["attack", program_file, "--per-class", "2", "--seed", "7",
                "--out", str(out), "--json", str(matrix)]
        assert main(argv) == 0
        first = capsys.readouterr().out
        payload = json.loads(matrix.read_text())
        assert payload["matrix"]
        assert out.exists()
        assert main(argv + ["--resume"]) == 0
        assert capsys.readouterr().out == first

    def test_attack_unknown_target(self, capsys):
        assert main(["attack", "no-such-workload"]) == 1
        assert "unknown target" in capsys.readouterr().err

    def test_attack_unknown_class(self, program_file, capsys):
        assert main(["attack", program_file, "--class", "rowhammer"]) == 1
        assert "unknown attack class" in capsys.readouterr().err


class TestDse:
    ARGS = [
        "dse", "sweep", "--hash", "xor", "--iht", "4", "--iht", "8",
        "--workload", "sha", "--per-class", "2", "--seed", "5",
    ]

    def test_sweep_prints_points(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "DSE sweep" in out
        assert "xor/iht4/lru_half/p100" in out
        assert "xor/iht8/lru_half/p100" in out

    def test_sweep_frontier_report_round_trip(self, capsys, tmp_path):
        points = tmp_path / "points.jsonl"
        frontier_json = tmp_path / "frontier.json"
        assert main(self.ARGS + ["--out", str(points)]) == 0
        capsys.readouterr()
        assert main(
            ["dse", "frontier", str(points), "--json", str(frontier_json)]
        ) == 0
        out = capsys.readouterr().out
        assert "Pareto frontier" in out
        data = json.loads(frontier_json.read_text())
        assert data["swept_points"] == 2
        assert len(data["frontier"]) >= 1
        assert main(["dse", "report", str(points)]) == 0
        out = capsys.readouterr().out
        assert "Per-objective champions" in out

    def test_sweep_resume_through_cli(self, capsys, tmp_path):
        points = tmp_path / "points.jsonl"
        assert main(self.ARGS + ["--out", str(points)]) == 0
        first = points.read_text()
        assert main(self.ARGS + ["--out", str(points), "--resume"]) == 0
        assert points.read_text() == first

    def test_sweep_preset(self, capsys):
        assert main(
            ["dse", "sweep", "--preset", "smoke", "--per-class", "2"]
        ) == 0
        assert "DSE sweep" in capsys.readouterr().out

    def test_explicit_flags_override_preset(self, capsys):
        assert main(
            [
                "dse", "sweep", "--preset", "smoke",
                "--workload", "bitcount", "--iht", "4",
                "--adversary", "none",
            ]
        ) == 0
        out = capsys.readouterr().out
        # Overridden: one workload, one size, no adversary; kept from the
        # preset: both hash axis values.
        assert "1 workloads (bitcount)" in out
        assert "adversary=none" in out
        assert "xor/iht4/lru_half/p100" in out
        assert "crc32/iht4/lru_half/p100" in out
        assert "iht8" not in out

    def test_unknown_preset(self, capsys):
        assert main(["dse", "sweep", "--preset", "nosuch"]) == 1
        assert "unknown preset" in capsys.readouterr().err

    def test_unknown_objective(self, capsys, tmp_path):
        points = tmp_path / "points.jsonl"
        assert main(self.ARGS + ["--out", str(points)]) == 0
        capsys.readouterr()
        assert main(
            ["dse", "frontier", str(points), "--objective", "vibes"]
        ) == 1
        assert "unknown objective" in capsys.readouterr().err


class TestWorkload:
    def test_runs_bitcount(self, capsys):
        assert main(["workload", "bitcount", "--scale", "tiny"]) == 0
        captured = capsys.readouterr()
        assert "bitcount[tiny]" in captured.err

    def test_unknown_workload(self, capsys):
        assert main(["workload", "quicksort"]) == 1
        assert "unknown workload" in capsys.readouterr().err


class TestChoiceMirrors:
    """The parser's literal choice tuples (kept literal so build_parser
    stays free of the repro.exec import stack) must track the live
    registries."""

    def test_backend_choices_match_registry(self):
        from repro.cli import BACKEND_CHOICES
        from repro.exec.backends import backend_names

        assert BACKEND_CHOICES == backend_names()

    def test_campaign_preset_choices_match_registry(self):
        from repro.cli import CAMPAIGN_PRESET_CHOICES
        from repro.exec.presets import PRESETS

        assert CAMPAIGN_PRESET_CHOICES == tuple(PRESETS)
