"""Test package."""
