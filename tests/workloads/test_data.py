"""Workload data-generation tests."""

from hypothesis import given
from hypothesis import strategies as st

from repro.utils.bitops import MASK32
from repro.workloads.data import (
    LCG_INCREMENT,
    LCG_MULTIPLIER,
    lcg_next,
    lcg_sequence,
    words_directive,
)


class TestLcg:
    def test_known_constants(self):
        assert LCG_MULTIPLIER == 1103515245
        assert LCG_INCREMENT == 12345

    @given(st.integers(min_value=0, max_value=MASK32))
    def test_step_matches_formula(self, state):
        assert lcg_next(state) == (state * LCG_MULTIPLIER + LCG_INCREMENT) & MASK32

    def test_sequence_chains(self):
        seed = 7
        values = lcg_sequence(seed, 3)
        assert values[0] == lcg_next(seed)
        assert values[1] == lcg_next(values[0])
        assert values[2] == lcg_next(values[1])

    def test_sequence_excludes_seed(self):
        assert lcg_sequence(7, 1) != [7]

    def test_matches_assembly_implementation(self):
        """The bitcount workload steps the same LCG in assembly; its first
        value must match (this is what makes references exact)."""
        from repro.asm.assembler import assemble
        from repro.pipeline.funcsim import FuncSim

        program = assemble(f"""
        li   $s2, 7
        li   $t0, {LCG_MULTIPLIER}
        multu $s2, $t0
        mflo $s2
        addiu $s2, $s2, {LCG_INCREMENT}
        move $a0, $s2
        li   $v0, 1
        syscall
        li   $v0, 10
        syscall
        """)
        result = FuncSim(program).run()
        from repro.utils.bitops import to_signed32

        assert result.console == str(to_signed32(lcg_next(7)))


class TestWordsDirective:
    def test_renders_label_and_rows(self):
        text = words_directive("tbl", list(range(10)), per_line=4)
        lines = text.splitlines()
        assert lines[0] == "tbl:"
        assert len(lines) == 4  # 3 data rows for 10 values at 4/line
        assert ".word" in lines[1]

    def test_values_assemble_back(self):
        from repro.asm.assembler import assemble

        values = [0, 1, 0xFFFFFFFF, 0x80000000]
        program = assemble(
            ".data\n" + words_directive("tbl", values) + "\n.text\nnop"
        )
        base = program.symbols["tbl"]
        for index, value in enumerate(values):
            assert program.data.word_at(base + 4 * index) == value
