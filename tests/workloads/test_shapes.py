"""Workload shape tests: the control-flow signatures Figure 6 depends on.

These run at the ``small`` scale (fast) and assert the *relative* locality
properties the paper reports, which the default-scale evaluation harness
then reproduces quantitatively.
"""

import pytest

from repro.cfg.basic_blocks import partition_blocks
from repro.cic.replay import replay_trace
from repro.osmodel.policies import get_policy
from repro.pipeline.funcsim import FuncSim
from repro.workloads.suite import WORKLOAD_NAMES, build, workload_inputs


@pytest.fixture(scope="module")
def traces():
    out = {}
    for name in WORKLOAD_NAMES:
        program = build(name, "small")
        result = FuncSim(
            program, collect_trace=True, inputs=workload_inputs(name, "small")
        ).run()
        from repro.cfg.hashgen import build_fht
        from repro.cic.hashes import get_hash

        out[name] = (result.block_trace, build_fht(program, get_hash("xor")))
    return out


def _miss(traces, name, size):
    trace, fht = traces[name]
    return replay_trace(trace, fht, size, get_policy("lru_half")).miss_rate


class TestLocalitySignatures:
    def test_bitcount_near_zero_at_8(self, traces):
        assert _miss(traces, "bitcount", 8) < 0.02

    def test_susan_near_zero_at_8(self, traces):
        assert _miss(traces, "susan", 8) < 0.02

    def test_stringsearch_worst_at_16(self, traces):
        stringsearch = _miss(traces, "stringsearch", 16)
        for other in WORKLOAD_NAMES:
            if other not in ("stringsearch", "blowfish"):
                assert stringsearch > _miss(traces, other, 16)

    def test_blowfish_persists_at_16(self, traces):
        assert _miss(traces, "blowfish", 16) > 0.1

    def test_dijkstra_collapses_at_8(self, traces):
        assert _miss(traces, "dijkstra", 1) > 0.5
        assert _miss(traces, "dijkstra", 8) < 0.15

    def test_rijndael_gone_by_16(self, traces):
        assert _miss(traces, "rijndael", 8) > 0.01
        assert _miss(traces, "rijndael", 16) < 0.01

    def test_sha_gone_by_16(self, traces):
        assert _miss(traces, "sha", 16) < 0.02

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_monotone_in_table_size(self, traces, name):
        rates = [_miss(traces, name, size) for size in (1, 8, 16, 32)]
        assert all(a >= b - 0.01 for a, b in zip(rates, rates[1:]))

    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_everything_reduced_at_32(self, traces, name):
        assert _miss(traces, name, 32) < 0.25


class TestStaticShape:
    def test_block_counts_in_realistic_range(self):
        for name in WORKLOAD_NAMES:
            blocks = partition_blocks(build(name, "small"))
            assert 10 <= len(blocks) <= 200, name
