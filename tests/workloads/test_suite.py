"""Workload suite tests: every program computes what its reference says."""

import pytest

from repro.pipeline.funcsim import FuncSim
from repro.workloads.suite import (
    WORKLOAD_NAMES,
    build,
    expected_console,
    verify,
    workload_inputs,
)


class TestRegistry:
    def test_nine_workloads(self):
        assert len(WORKLOAD_NAMES) == 9

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            build("quicksort")

    def test_build_cached(self):
        assert build("bitcount", "tiny") is build("bitcount", "tiny")


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
class TestVerification:
    def test_tiny_scale_matches_reference(self, name):
        assert verify(name, "tiny")

    def test_small_scale_matches_reference(self, name):
        assert verify(name, "small")

    def test_console_output_nonempty(self, name):
        assert expected_console(name, "tiny").strip()

    def test_deterministic(self, name):
        program = build(name, "tiny")
        first = FuncSim(program, inputs=workload_inputs(name, "tiny")).run()
        second = FuncSim(program, inputs=workload_inputs(name, "tiny")).run()
        assert first.console == second.console
        assert first.cycles == second.cycles


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
def test_workload_exits_cleanly(name):
    program = build(name, "tiny")
    result = FuncSim(program, inputs=workload_inputs(name, "tiny")).run()
    assert result.exit_code == 0
    assert result.instructions > 100
