"""Seeded-random assembler↔disassembler round-trip over every opcode class.

For every machine mnemonic in the ISA, generates seeded-random valid
operand fields, encodes the instruction, renders it with the disassembler
(anchored at the text base so control-flow targets print as absolute
addresses), re-assembles the rendered text as a one-instruction program,
and requires the identical 32-bit word back.  This pins the toolchain's
core contract — canonical text is a lossless encoding of every valid word
— across *all* opcode classes, not just the hand-picked cases of
``tests/asm/test_disassembler.py``.
"""

import random

import pytest

from repro.asm.assembler import assemble
from repro.asm.disassembler import disassemble_word
from repro.asm.program import TEXT_BASE
from repro.isa.opcodes import ALL_MNEMONICS, Mnemonic

SEED = 20260728
CASES_PER_MNEMONIC = 25

THREE_REG = {
    Mnemonic.ADD, Mnemonic.ADDU, Mnemonic.SUB, Mnemonic.SUBU,
    Mnemonic.AND, Mnemonic.OR, Mnemonic.XOR, Mnemonic.NOR,
    Mnemonic.SLT, Mnemonic.SLTU,
}
SHIFT_IMM = {Mnemonic.SLL, Mnemonic.SRL, Mnemonic.SRA}
SHIFT_VAR = {Mnemonic.SLLV, Mnemonic.SRLV, Mnemonic.SRAV}
MULDIV = {Mnemonic.MULT, Mnemonic.MULTU, Mnemonic.DIV, Mnemonic.DIVU}
IMM_SIGNED = {Mnemonic.ADDI, Mnemonic.ADDIU, Mnemonic.SLTI, Mnemonic.SLTIU}
IMM_LOGICAL = {Mnemonic.ANDI, Mnemonic.ORI, Mnemonic.XORI}
MEM = {
    Mnemonic.LB, Mnemonic.LH, Mnemonic.LW, Mnemonic.LBU, Mnemonic.LHU,
    Mnemonic.SB, Mnemonic.SH, Mnemonic.SW,
}
BRANCH_TWO_REG = {Mnemonic.BEQ, Mnemonic.BNE}
BRANCH_ONE_REG = {Mnemonic.BLEZ, Mnemonic.BGTZ, Mnemonic.BLTZ, Mnemonic.BGEZ}
JUMPS = {Mnemonic.J, Mnemonic.JAL}


def random_fields(rng: random.Random, mnemonic: Mnemonic) -> dict:
    """Valid random operand fields for one mnemonic's encoding class."""
    reg = lambda: rng.randrange(32)
    if mnemonic in THREE_REG:
        return {"rs": reg(), "rt": reg(), "rd": reg()}
    if mnemonic in SHIFT_IMM:
        return {"rt": reg(), "rd": reg(), "shamt": rng.randrange(32)}
    if mnemonic in SHIFT_VAR:
        return {"rs": reg(), "rt": reg(), "rd": reg()}
    if mnemonic in MULDIV:
        return {"rs": reg(), "rt": reg()}
    if mnemonic in (Mnemonic.MFHI, Mnemonic.MFLO):
        return {"rd": reg()}
    if mnemonic in (Mnemonic.MTHI, Mnemonic.MTLO):
        return {"rs": reg()}
    if mnemonic is Mnemonic.JR:
        return {"rs": reg()}
    if mnemonic is Mnemonic.JALR:
        return {"rs": reg(), "rd": reg()}
    if mnemonic in (Mnemonic.SYSCALL, Mnemonic.BREAK):
        return {"code": rng.randrange(1 << 20)}
    if mnemonic in IMM_SIGNED:
        return {"rs": reg(), "rt": reg(), "imm": rng.randint(-32768, 32767)}
    if mnemonic in IMM_LOGICAL or mnemonic is Mnemonic.LUI:
        fields = {"rt": reg(), "imm": rng.randrange(1 << 16)}
        if mnemonic is not Mnemonic.LUI:
            fields["rs"] = reg()
        return fields
    if mnemonic in MEM:
        return {"rs": reg(), "rt": reg(), "imm": rng.randint(-32768, 32767)}
    if mnemonic in BRANCH_TWO_REG:
        return {"rs": reg(), "rt": reg(), "imm": rng.randint(-32768, 32767)}
    if mnemonic in BRANCH_ONE_REG:
        return {"rs": reg(), "imm": rng.randint(-32768, 32767)}
    if mnemonic in JUMPS:
        return {"target": rng.randrange(1 << 26)}
    raise AssertionError(f"no field model for {mnemonic}")  # pragma: no cover


def reassemble(text: str) -> int:
    return assemble(text).text.word_at(TEXT_BASE)


@pytest.mark.parametrize("mnemonic", ALL_MNEMONICS, ids=lambda m: m.value)
def test_seeded_roundtrip_every_opcode_class(mnemonic):
    from repro.isa.encoding import decode, encode_fields

    rng = random.Random(f"{SEED}:{mnemonic.value}")
    for _ in range(CASES_PER_MNEMONIC):
        word = encode_fields(mnemonic, **random_fields(rng, mnemonic))
        # The word the generator built must itself be decodable...
        assert decode(word, TEXT_BASE).mnemonic is mnemonic
        # ...and its canonical rendering must assemble back to the same
        # word when placed at the address it was rendered for.
        text = disassemble_word(word, TEXT_BASE)
        assert reassemble(text) == word, (mnemonic, text, hex(word))
