"""Encode/decode round-trip and validation tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DecodingError, EncodingError
from repro.isa import opcodes
from repro.isa.encoding import decode, encode_fields
from repro.isa.opcodes import Format, Mnemonic

regs = st.integers(min_value=0, max_value=31)
imm16 = st.integers(min_value=-32768, max_value=32767)
target26 = st.integers(min_value=0, max_value=(1 << 26) - 1)

R_THREE = [Mnemonic.ADD, Mnemonic.ADDU, Mnemonic.SUB, Mnemonic.SUBU,
           Mnemonic.AND, Mnemonic.OR, Mnemonic.XOR, Mnemonic.NOR,
           Mnemonic.SLT, Mnemonic.SLTU, Mnemonic.SLLV, Mnemonic.SRLV,
           Mnemonic.SRAV]
I_ALU = [Mnemonic.ADDI, Mnemonic.ADDIU, Mnemonic.SLTI, Mnemonic.SLTIU]
I_LOGICAL = [Mnemonic.ANDI, Mnemonic.ORI, Mnemonic.XORI]
MEM = [Mnemonic.LB, Mnemonic.LH, Mnemonic.LW, Mnemonic.LBU, Mnemonic.LHU,
       Mnemonic.SB, Mnemonic.SH, Mnemonic.SW]


class TestRoundTrip:
    @pytest.mark.parametrize("mnemonic", R_THREE)
    @given(rs=regs, rt=regs, rd=regs)
    def test_r_type(self, mnemonic, rs, rt, rd):
        word = encode_fields(mnemonic, rs=rs, rt=rt, rd=rd)
        instruction = decode(word)
        assert instruction.mnemonic is mnemonic
        assert (instruction.rs, instruction.rt, instruction.rd) == (rs, rt, rd)

    @pytest.mark.parametrize(
        "mnemonic", [Mnemonic.SLL, Mnemonic.SRL, Mnemonic.SRA]
    )
    @given(rt=regs, rd=regs, shamt=st.integers(min_value=0, max_value=31))
    def test_shifts(self, mnemonic, rt, rd, shamt):
        word = encode_fields(mnemonic, rt=rt, rd=rd, shamt=shamt)
        instruction = decode(word)
        assert instruction.mnemonic is mnemonic
        assert (instruction.rt, instruction.rd, instruction.shamt) == (rt, rd, shamt)

    @pytest.mark.parametrize("mnemonic", I_ALU + MEM)
    @given(rs=regs, rt=regs, imm=imm16)
    def test_i_type_signed(self, mnemonic, rs, rt, imm):
        word = encode_fields(mnemonic, rs=rs, rt=rt, imm=imm)
        instruction = decode(word)
        assert instruction.mnemonic is mnemonic
        assert instruction.imm == imm

    @pytest.mark.parametrize("mnemonic", I_LOGICAL)
    @given(rs=regs, rt=regs, imm=st.integers(min_value=0, max_value=0xFFFF))
    def test_i_type_logical_zero_extends(self, mnemonic, rs, rt, imm):
        word = encode_fields(mnemonic, rs=rs, rt=rt, imm=imm)
        assert decode(word).imm == imm

    @pytest.mark.parametrize("mnemonic", [Mnemonic.J, Mnemonic.JAL])
    @given(target=target26)
    def test_j_type(self, mnemonic, target):
        word = encode_fields(mnemonic, target=target)
        instruction = decode(word)
        assert instruction.mnemonic is mnemonic
        assert instruction.target == target

    @pytest.mark.parametrize("mnemonic", [Mnemonic.BLTZ, Mnemonic.BGEZ])
    @given(rs=regs, imm=imm16)
    def test_regimm(self, mnemonic, rs, imm):
        word = encode_fields(mnemonic, rs=rs, imm=imm)
        instruction = decode(word)
        assert instruction.mnemonic is mnemonic
        assert instruction.rs == rs
        assert instruction.imm == imm

    @given(code=st.integers(min_value=0, max_value=(1 << 20) - 1))
    def test_syscall_code_field(self, code):
        word = encode_fields(Mnemonic.SYSCALL, code=code)
        instruction = decode(word)
        assert instruction.mnemonic is Mnemonic.SYSCALL
        assert instruction.code == code

    def test_every_mnemonic_roundtrips_with_zero_fields(self):
        for mnemonic in opcodes.ALL_MNEMONICS:
            kwargs = {}
            if mnemonic in (Mnemonic.JALR,):
                kwargs = {"rd": 31}
            word = encode_fields(mnemonic, **kwargs)
            assert decode(word).mnemonic is mnemonic


class TestEncodingValidation:
    def test_register_field_range(self):
        with pytest.raises(EncodingError):
            encode_fields(Mnemonic.ADD, rd=32)

    def test_immediate_range(self):
        with pytest.raises(EncodingError):
            encode_fields(Mnemonic.ADDI, imm=0x10000)
        with pytest.raises(EncodingError):
            encode_fields(Mnemonic.ADDI, imm=-32769)

    def test_target_range(self):
        with pytest.raises(EncodingError):
            encode_fields(Mnemonic.J, target=1 << 26)


class TestDecodingValidation:
    def test_invalid_opcode(self):
        with pytest.raises(DecodingError):
            decode(0xFC00_0000)  # opcode 63

    def test_invalid_funct(self):
        with pytest.raises(DecodingError):
            decode(0x0000_003F)  # SPECIAL with funct 63

    def test_invalid_regimm_selector(self):
        with pytest.raises(DecodingError):
            decode((1 << 26) | (31 << 16))

    def test_nonzero_shamt_on_add_rejected(self):
        word = encode_fields(Mnemonic.ADD, rs=1, rt=2, rd=3) | (5 << 6)
        with pytest.raises(DecodingError):
            decode(word)

    def test_nonzero_rs_on_sll_rejected(self):
        word = encode_fields(Mnemonic.SLL, rt=2, rd=3, shamt=4) | (7 << 21)
        with pytest.raises(DecodingError):
            decode(word)

    def test_jr_with_rd_rejected(self):
        word = encode_fields(Mnemonic.JR, rs=31) | (5 << 11)
        with pytest.raises(DecodingError):
            decode(word)

    def test_error_carries_address(self):
        with pytest.raises(DecodingError) as excinfo:
            decode(0xFC00_0000, address=0x400010)
        assert excinfo.value.address == 0x400010

    def test_word_zero_is_nop(self):
        instruction = decode(0)
        assert instruction.mnemonic is Mnemonic.SLL
        assert instruction.destination_register() is None
