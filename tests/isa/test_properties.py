"""Instruction classification and static successor tests."""

import pytest

from repro.isa.encoding import decode, encode_fields
from repro.isa.opcodes import Mnemonic
from repro.isa.properties import (
    CONTROL_FLOW,
    branch_target,
    is_branch,
    is_call,
    is_control_flow,
    is_jump,
    jump_target,
    static_successors,
)


def _make(mnemonic, **kwargs):
    return decode(encode_fields(mnemonic, **kwargs))


class TestClassification:
    @pytest.mark.parametrize(
        "mnemonic",
        [Mnemonic.BEQ, Mnemonic.BNE, Mnemonic.BLEZ, Mnemonic.BGTZ,
         Mnemonic.BLTZ, Mnemonic.BGEZ],
    )
    def test_branches(self, mnemonic):
        instruction = _make(mnemonic)
        assert is_branch(instruction)
        assert is_control_flow(instruction)
        assert not is_jump(instruction)

    @pytest.mark.parametrize(
        "mnemonic", [Mnemonic.J, Mnemonic.JAL, Mnemonic.JR, Mnemonic.JALR]
    )
    def test_jumps(self, mnemonic):
        kwargs = {"rd": 31} if mnemonic is Mnemonic.JALR else {}
        instruction = _make(mnemonic, **kwargs)
        assert is_jump(instruction)
        assert is_control_flow(instruction)

    def test_traps_are_control_flow(self):
        assert is_control_flow(_make(Mnemonic.SYSCALL))
        assert is_control_flow(_make(Mnemonic.BREAK))

    def test_calls(self):
        assert is_call(_make(Mnemonic.JAL))
        assert is_call(_make(Mnemonic.JALR, rd=31))
        assert not is_call(_make(Mnemonic.JR, rs=31))

    def test_alu_not_control_flow(self):
        assert not is_control_flow(_make(Mnemonic.ADD))
        assert not is_control_flow(_make(Mnemonic.LW))

    def test_control_flow_set_complete(self):
        names = {m.value for m in CONTROL_FLOW}
        assert names == {
            "beq", "bne", "blez", "bgtz", "bltz", "bgez",
            "j", "jal", "jr", "jalr", "syscall", "break",
        }


class TestTargets:
    def test_branch_target_forward(self):
        instruction = _make(Mnemonic.BEQ, imm=3)
        assert branch_target(instruction, 0x400000) == 0x400010

    def test_branch_target_backward(self):
        instruction = _make(Mnemonic.BNE, imm=-2)
        assert branch_target(instruction, 0x400010) == 0x40000C

    def test_jump_target_keeps_high_bits(self):
        instruction = _make(Mnemonic.J, target=0x100)
        assert jump_target(instruction, 0x10400000) == 0x10000400

    def test_branch_target_rejects_non_branch(self):
        with pytest.raises(ValueError):
            branch_target(_make(Mnemonic.ADD), 0)


class TestStaticSuccessors:
    def test_branch_has_two(self):
        instruction = _make(Mnemonic.BEQ, imm=4)
        successors = static_successors(instruction, 0x400000)
        assert set(successors) == {0x400014, 0x400004}

    def test_direct_jump_has_one(self):
        instruction = _make(Mnemonic.J, target=0x400100 >> 2)
        assert static_successors(instruction, 0x400000) == (0x400100,)

    def test_indirect_jump_has_none(self):
        assert static_successors(_make(Mnemonic.JR, rs=31), 0x400000) == ()

    def test_trap_has_none(self):
        assert static_successors(_make(Mnemonic.SYSCALL), 0x400000) == ()

    def test_plain_instruction_falls_through(self):
        assert static_successors(_make(Mnemonic.ADD), 0x400000) == (0x400004,)


class TestOperandQueries:
    def test_add_sources_and_dest(self):
        instruction = _make(Mnemonic.ADD, rs=1, rt=2, rd=3)
        assert instruction.source_registers() == (1, 2)
        assert instruction.destination_register() == 3

    def test_write_to_zero_is_none(self):
        instruction = _make(Mnemonic.ADD, rs=1, rt=2, rd=0)
        assert instruction.destination_register() is None

    def test_load_reads_base_writes_rt(self):
        instruction = _make(Mnemonic.LW, rs=4, rt=5, imm=8)
        assert instruction.source_registers() == (4,)
        assert instruction.destination_register() == 5

    def test_store_reads_base_and_data(self):
        instruction = _make(Mnemonic.SW, rs=4, rt=5, imm=8)
        assert instruction.source_registers() == (4, 5)
        assert instruction.destination_register() is None

    def test_jal_writes_ra(self):
        assert _make(Mnemonic.JAL).destination_register() == 31

    def test_shift_immediate_reads_rt_only(self):
        instruction = _make(Mnemonic.SLL, rt=7, rd=8, shamt=2)
        assert instruction.source_registers() == (7,)

    def test_mult_reads_both_writes_none(self):
        instruction = _make(Mnemonic.MULT, rs=1, rt=2)
        assert instruction.source_registers() == (1, 2)
        assert instruction.destination_register() is None

    def test_mfhi_writes_rd(self):
        assert _make(Mnemonic.MFHI, rd=9).destination_register() == 9
