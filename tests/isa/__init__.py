"""Test package."""
