"""Register naming tests."""

import pytest

from repro.errors import EncodingError
from repro.isa.registers import (
    NUM_REGISTERS,
    REGISTER_NAMES,
    register_name,
    register_number,
)


class TestRegisterNumber:
    @pytest.mark.parametrize(
        "name,number",
        [("$zero", 0), ("$at", 1), ("$v0", 2), ("$a0", 4), ("$t0", 8),
         ("$s0", 16), ("$t8", 24), ("$sp", 29), ("$fp", 30), ("$ra", 31)],
    )
    def test_abi_names(self, name, number):
        assert register_number(name) == number

    def test_numeric_and_r_spellings(self):
        assert register_number("$5") == 5
        assert register_number("r17") == 17
        assert register_number("31") == 31

    def test_s8_alias_for_fp(self):
        assert register_number("$s8") == 30

    def test_case_insensitive(self):
        assert register_number("$T3") == 11

    def test_unknown_rejected(self):
        with pytest.raises(EncodingError):
            register_number("$bogus")

    def test_all_names_roundtrip(self):
        for number in range(NUM_REGISTERS):
            assert register_number(register_name(number)) == number


class TestRegisterName:
    def test_canonical_spelling(self):
        assert register_name(0) == "$zero"
        assert register_name(29) == "$sp"

    def test_out_of_range(self):
        with pytest.raises(EncodingError):
            register_name(32)
        with pytest.raises(EncodingError):
            register_name(-1)

    def test_unique_names(self):
        assert len(set(REGISTER_NAMES)) == NUM_REGISTERS
