"""Area/timing model tests: Table 2's structure and calibration."""

import pytest

from repro.errors import ConfigurationError
from repro.area.cells import DEFAULT_LIBRARY, CellLibrary
from repro.area.components import (
    baseline_inventory,
    cic_inventory,
    hashfu_area,
    hashfu_delay,
    iht_entry_area,
)
from repro.area.synthesis import iht_scaling_limit, synthesize


class TestBaselineCalibration:
    def test_baseline_matches_paper(self):
        report = synthesize(None)
        assert report.cell_area == pytest.approx(2_136_594, abs=1)
        assert report.min_period == pytest.approx(37.90)

    def test_critical_stage_is_ex(self):
        assert synthesize(None).critical_stage == "EX"


class TestCicArea:
    def test_area_linear_in_entries(self):
        baseline = synthesize(None)
        deltas = []
        previous = baseline.cell_area
        for entries in (1, 2, 3, 4):
            area = synthesize(entries).cell_area
            deltas.append(area - previous)
            previous = area
        per_entry = deltas[1:]
        assert max(per_entry) - min(per_entry) < 1e-6  # exactly linear
        assert per_entry[0] == pytest.approx(iht_entry_area())

    @pytest.mark.parametrize(
        "entries,paper_overhead,tolerance",
        [(1, 2.7, 0.1), (8, 16.5, 2.0), (16, 28.8, 0.2)],
    )
    def test_overheads_near_paper(self, entries, paper_overhead, tolerance):
        baseline = synthesize(None)
        report = synthesize(entries)
        assert report.area_overhead(baseline) == pytest.approx(
            paper_overhead, abs=tolerance
        )

    def test_inventory_components_present(self):
        inventory = cic_inventory(8)
        assert "sta_register" in inventory
        assert "rhash_register" in inventory
        assert "hashfu_xor" in inventory
        assert "iht_8_entries" in inventory

    def test_zero_entries_rejected(self):
        with pytest.raises(ConfigurationError):
            cic_inventory(0)


class TestTiming:
    def test_period_flat_across_paper_sizes(self):
        baseline = synthesize(None)
        for entries in (1, 8, 16, 32, 64):
            report = synthesize(entries)
            assert report.min_period == baseline.min_period
            assert report.period_overhead(baseline) == 0.0

    def test_monitoring_never_critical_for_realistic_sizes(self):
        limit = iht_scaling_limit()
        assert limit >= 1024  # orders beyond the paper's 16 entries

    def test_sha1_blows_the_if_stage(self):
        report = synthesize(8, hash_name="sha1")
        assert report.stage_delays["IF"] > synthesize(None).stage_delays["IF"]
        assert report.critical_stage == "IF"


class TestHashfuModels:
    def test_ordering_by_complexity(self):
        assert hashfu_area("xor") < hashfu_area("add") < hashfu_area("sha1")

    def test_delay_ordering(self):
        assert hashfu_delay("xor") < hashfu_delay("crc32") < hashfu_delay("sha1")

    def test_unknown_hash_rejected(self):
        with pytest.raises(ConfigurationError):
            hashfu_area("md5000")
        with pytest.raises(ConfigurationError):
            hashfu_delay("md5000")


class TestLibraryScaling:
    def test_baseline_tracks_gate_size(self):
        bigger = CellLibrary(nand2=20.0)
        assert sum(baseline_inventory(bigger).values()) == pytest.approx(
            2 * sum(baseline_inventory(DEFAULT_LIBRARY).values())
        )
