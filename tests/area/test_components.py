"""Component-level area model tests."""

import pytest

from repro.area.cells import DEFAULT_LIBRARY
from repro.area.components import (
    IHT_ENTRY_BITS,
    LRU_BITS,
    baseline_inventory,
    cic_inventory,
    iht_entry_area,
)


class TestBaselineInventory:
    def test_sums_to_paper_baseline(self):
        assert sum(baseline_inventory().values()) == pytest.approx(2_136_594)

    def test_muldiv_is_largest_datapath_block(self):
        inventory = baseline_inventory()
        assert inventory["muldiv_unit"] > inventory["alu_32"]
        assert inventory["muldiv_unit"] > inventory["register_file_32x32"]

    def test_all_positive(self):
        assert all(value > 0 for value in baseline_inventory().values())


class TestCicInventory:
    def test_entry_width_covers_tuple(self):
        # Addst + Addend + Hash + valid
        assert IHT_ENTRY_BITS == 32 + 32 + 32 + 1
        assert LRU_BITS > 0

    def test_entry_area_composition(self):
        area = iht_entry_area()
        cam = IHT_ENTRY_BITS * DEFAULT_LIBRARY.cam_bit
        assert area > cam  # LRU counter + control on top

    def test_iht_dominates_for_large_tables(self):
        inventory = cic_inventory(16)
        iht = inventory["iht_16_entries"]
        fixed = sum(v for k, v in inventory.items() if not k.startswith("iht"))
        assert iht > 10 * fixed

    def test_fixed_part_independent_of_entries(self):
        small = cic_inventory(1)
        large = cic_inventory(16)
        for key in small:
            if not key.startswith("iht"):
                assert small[key] == large[key]

    @pytest.mark.parametrize("hash_name", ["xor", "add", "crc32", "sha1"])
    def test_hashfu_named_per_algorithm(self, hash_name):
        assert f"hashfu_{hash_name}" in cic_inventory(4, hash_name)
