"""Test package."""
