"""Service-tier throughput: sustained jobs/s and submit-to-first-record p99.

Spins up one in-process :class:`repro.service.server.ReproService` (real
unix socket, real harness execution) and drives it with four concurrent
submitter threads — distinct tenants, each pushing a stream of identical
``sha-tiny`` campaigns through its own blocking :class:`ServiceClient`.
Identical specs are the point: every tenant after the first must lease
the published checkpoint store (content-addressed by spec fingerprint)
instead of re-recording it, so the measured throughput is the *warm*
multi-tenant regime the service exists for.

Per job, the watch stream timestamps the first committed record line —
submit-to-first-record is the latency a tenant actually feels.  The
artifact lands in ``results/BENCH_bench_service.json`` (schema-pinned by
``tests/obs/test_schema.py`` like every committed BENCH file).
"""

import asyncio
import json
import os
import threading
import time

import pytest

from repro.obs.schema import validate_bench
from repro.service.client import ServiceClient
from repro.service.server import ReproService, ServiceConfig

SUBMITTERS = 4
JOBS_PER_SUBMITTER = 4
FAULTS = 16
CHUNK = 8
SEED = 42

JOB = {
    "kind": "campaign",
    "spec": {
        "workload": "sha",
        "scale": "tiny",
        "iht_size": 8,
        "backend": "golden",
    },
    "faults": FAULTS,
    "seed": SEED,
    "chunk_size": CHUNK,
}


class ServerThread:
    """The service on a background event-loop thread, as tests run it."""

    def __init__(self, state_dir):
        self.config = ServiceConfig(
            state_dir=str(state_dir),
            max_jobs=SUBMITTERS,
            per_client=1,
            step_shards=4,
            poll=0.005,
        )
        self.service = ReproService(self.config)
        self.thread = threading.Thread(
            target=lambda: asyncio.run(self.service.main()), daemon=True
        )

    def __enter__(self):
        self.thread.start()
        deadline = time.monotonic() + 15
        while not os.path.exists(self.config.resolved_socket()):
            if time.monotonic() > deadline:  # pragma: no cover
                raise RuntimeError("server socket never appeared")
            time.sleep(0.01)
        return self

    def client(self, name):
        return ServiceClient(
            socket_path=self.config.resolved_socket(), client=name
        )

    def __exit__(self, *exc_info):
        try:
            self.client("teardown").shutdown()
        except Exception:  # pragma: no cover - teardown safety net
            pass
        self.thread.join(timeout=60)


def submit_stream(handle, tenant, latencies, failures):
    """One tenant: submit, watch to first record, drain, repeat."""
    client = handle.client(tenant)
    for _ in range(JOBS_PER_SUBMITTER):
        submitted_at = time.perf_counter()
        job = client.submit(dict(JOB))
        first_record = None
        final = None
        for line in client.watch(job["id"]):
            stream = line.get("stream")
            if (
                first_record is None
                and stream == "record"
                and line["data"].get("type") == "record"
            ):
                first_record = time.perf_counter() - submitted_at
            elif stream == "end":
                final = line["job"]
        if final is None or final["state"] != "done" or first_record is None:
            failures.append((tenant, job["id"], final))
            return
        latencies.append(first_record)


def percentile(values, fraction):
    ordered = sorted(values)
    return ordered[min(len(ordered) - 1, int(fraction * len(ordered)))]


def test_sustained_multi_tenant_throughput(tmp_path, record_bench):
    latencies: list[float] = []
    failures: list = []
    with ServerThread(tmp_path / "svc") as handle:
        # Warm-up: the first job pays the one-time checkpoint recording;
        # steady state is what the service sustains after it.
        warm = handle.client("warmup")
        job = warm.submit(dict(JOB))
        assert warm.wait(job["id"], timeout=300)["state"] == "done"

        started = time.perf_counter()
        submitters = [
            threading.Thread(
                target=submit_stream,
                args=(handle, f"tenant-{index}", latencies, failures),
            )
            for index in range(SUBMITTERS)
        ]
        for thread in submitters:
            thread.start()
        for thread in submitters:
            thread.join(timeout=600)
        elapsed = time.perf_counter() - started
        stats = handle.client("stats").stats()

    assert not failures, failures
    total_jobs = SUBMITTERS * JOBS_PER_SUBMITTER
    assert len(latencies) == total_jobs
    cache = stats["cache"]
    assert cache["misses"] == 1, (
        "every tenant after the first must attach to the published store"
    )
    assert cache["hits"] >= total_jobs

    record_bench(
        submitters=SUBMITTERS,
        jobs=total_jobs,
        faults_per_job=FAULTS,
        jobs_per_second=round(total_jobs / elapsed, 3),
        p50_submit_to_first_record_ms=round(
            percentile(latencies, 0.50) * 1e3, 2
        ),
        p99_submit_to_first_record_ms=round(
            percentile(latencies, 0.99) * 1e3, 2
        ),
        cache_hits=cache["hits"],
        cache_misses=cache["misses"],
    )

    # The artifact this run merges into must be schema-valid once the
    # session timer adds its ``seconds`` key — validate the same payload
    # shape here so a schema break fails the benchmark, not a later
    # tier-1 run over the committed file.
    artifact = os.path.join(
        os.path.dirname(__file__), "..", "results", "BENCH_bench_service.json"
    )
    payload = json.loads(open(artifact, encoding="utf-8").read())
    for entry in payload["results"].values():
        entry.setdefault("seconds", 0.0)  # the autouse timer's key
    assert validate_bench(payload) == []
