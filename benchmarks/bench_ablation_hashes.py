"""Ablation A2 benchmark: HASHFU algorithms (coverage / area / delay)."""

from repro.eval.ablation_hashes import run_hash_ablation


def test_hash_ablation(benchmark, save_result, record_bench):
    result = benchmark.pedantic(
        run_hash_ablation,
        kwargs={"workload": "dijkstra", "scale": "small", "pair_count": 40},
        rounds=1,
        iterations=1,
    )
    save_result("ablation_hashes", result.table().render())
    record_bench(
        adversarial_coverage={
            row.hash_name: round(row.adversarial_coverage, 4)
            for row in result.rows
        }
    )
    # Position-dependent hashes catch what XOR cannot...
    assert result.row("crc32").adversarial_coverage == 1.0
    assert result.row("rotxor").adversarial_coverage == 1.0
    assert result.row("xor").adversarial_coverage < 1.0
    # ...and the cryptographic option cannot keep up with the pipeline
    # (the paper's argument for checksums).
    assert not result.row("sha1").fits_if_stage
    assert result.row("xor").fits_if_stage
