"""Benchmark support.

Every harness writes its rendered table under ``results/`` so the
regenerated paper artifacts are inspectable files, and every benchmark
module accumulates a machine-readable ``results/BENCH_<module>.json`` —
wall-clock seconds per test (recorded automatically) plus whatever key
stats the test adds via ``record_bench`` — so the performance trajectory
is trackable across PRs with ``git diff``-able artifacts.

Every BENCH file carries a ``manifest`` block (host, effective cores,
Python — :func:`repro.obs.metrics.environment`) so a committed number is
never divorced from the machine that produced it, and conforms to
:data:`repro.obs.schema.BENCH_SCHEMA` (pinned for every committed file
by ``tests/obs/test_schema.py``).
"""

from __future__ import annotations

import json
import pathlib
import time

import pytest

from repro.obs.log import log
from repro.obs.metrics import environment

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"

#: One manifest per session: the numbers in a file were measured together.
MANIFEST = environment()


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_result(results_dir):
    """Write a rendered table to results/<name>.txt (and echo it)."""

    def writer(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}")
        log.info(f"saved {name} table", path=str(path))

    return writer


@pytest.fixture(scope="session")
def _bench_json_reset() -> set:
    """Paths already rewritten this session (stale entries dropped once)."""
    return set()


@pytest.fixture
def record_bench(results_dir, request, _bench_json_reset):
    """Merge stats for this test into results/BENCH_<module>.json.

    Call as ``record_bench(faults_per_second=123.4, ...)``; values must be
    JSON-serializable.  Repeated calls merge keys.  The autouse timer
    below contributes the ``seconds`` key for every benchmark test, so
    modules that have nothing extra to report still emit their file.

    Each module's file starts fresh on its first write of a session, so
    renamed or deleted tests cannot leave stale entries behind, and a
    truncated file from a killed run is simply overwritten.
    """
    module = request.module.__name__
    path = results_dir / f"BENCH_{module}.json"

    def recorder(**stats) -> None:
        payload = {"benchmark": module, "results": {}}
        if path in _bench_json_reset and path.exists():
            try:
                payload = json.loads(path.read_text())
            except json.JSONDecodeError:
                pass  # torn file from an interrupted run: start fresh
        elif path.exists():
            # First write of the session overwrites the committed
            # numbers; stash them so `make bench-gate` can diff the
            # fresh file against them (`repro stats diff`).  PREV_ files
            # stay untracked: the BENCH_ gitignore negation skips them.
            (results_dir / f"PREV_{path.name}").write_text(path.read_text())
        _bench_json_reset.add(path)
        # Provenance: which host measured the numbers in this file.
        payload["manifest"] = MANIFEST
        entry = payload["results"].setdefault(request.node.name, {})
        entry.update(stats)
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    return recorder


@pytest.fixture(autouse=True)
def _record_bench_seconds(record_bench):
    """Record every benchmark test's wall-clock duration."""
    start = time.perf_counter()
    yield
    record_bench(seconds=round(time.perf_counter() - start, 4))
