"""Benchmark support: every harness writes its rendered table under
``results/`` so the regenerated paper artifacts are inspectable files."""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_result(results_dir):
    """Write a rendered table to results/<name>.txt (and echo it)."""

    def writer(name: str, text: str) -> None:
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[saved to {path}]")

    return writer
