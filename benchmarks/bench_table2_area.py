"""Table 2 benchmark: synthesis (area/timing model) of every configuration."""

from repro.area.synthesis import synthesize
from repro.eval.table2_area import run_table2


def test_table2_synthesis(benchmark, save_result, record_bench):
    result = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    save_result("table2_area", result.table().render())
    record_bench(
        area_overhead_percent={
            str(entries): round(result.row(entries).area_overhead, 2)
            for entries in (1, 8, 16)
        }
    )
    baseline = result.row(None)
    assert baseline.report.cell_area == 2_136_594
    assert abs(result.row(1).area_overhead - 2.7) < 0.1
    assert abs(result.row(16).area_overhead - 28.8) < 0.1
    for entries in (1, 8, 16):
        assert result.row(entries).period_overhead == 0.0


def test_synthesis_throughput(benchmark):
    report = benchmark(synthesize, 16)
    assert report.critical_stage == "EX"
