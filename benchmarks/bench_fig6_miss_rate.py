"""Figure 6 benchmark: IHT miss rate vs table size, all nine workloads.

Regenerates the paper's Figure 6 series at an *extended* grid — the
paper's 1/8/16/32 ladder densified to 1/2/4/8/16/32/64 — at default
scale, through the DSE preset the harness now is.  A second benchmark
measures raw IHT replay throughput, the kernel the sweep is built on.
"""

from repro.cic.replay import replay_trace
from repro.eval.common import baseline_run, workload_fht
from repro.eval.fig6_miss_rate import run_fig6
from repro.osmodel.policies import get_policy

#: The ROADMAP's "bigger IHT grids": every power of two through 64.
GRID = (1, 2, 4, 8, 16, 32, 64)


def test_fig6_full_grid(benchmark, save_result, record_bench):
    result = benchmark.pedantic(
        run_fig6, kwargs={"sizes": GRID}, rounds=1, iterations=1
    )
    save_result("fig6_miss_rate", result.table().render())
    record_bench(
        miss_rates={
            row.workload: {
                str(size): round(rate, 5)
                for size, rate in row.miss_rates.items()
            }
            for row in result.rows
        }
    )
    # Sanity: the paper's headline orderings hold at full scale.
    assert result.miss_rate("stringsearch", 16) > result.miss_rate("bitcount", 16)
    assert result.miss_rate("bitcount", 8) < 0.01
    for row in result.rows:
        assert row.miss_rates[32] <= row.miss_rates[1]
        assert row.miss_rates[64] <= row.miss_rates[2]


def test_iht_replay_throughput(benchmark):
    trace = baseline_run("dijkstra", "default").block_trace
    fht = workload_fht("dijkstra", "default")

    def replay():
        return replay_trace(trace, fht, 8, get_policy("lru_half"))

    stats = benchmark(replay)
    assert stats.lookups == len(trace)
