"""Simulator and component micro-benchmarks.

Not a paper artifact — these track the performance of the substrate itself
(instructions/second of each engine, hash/CAM kernel throughput), which is
what bounds how large an evaluation sweep can get.
"""

from repro.cic.hashes import get_hash
from repro.cic.iht import InternalHashTable
from repro.isa.encoding import decode
from repro.pipeline.cpu import PipelineCPU
from repro.pipeline.funcsim import FuncSim
from repro.workloads.suite import build, workload_inputs


def test_funcsim_throughput(benchmark, record_bench):
    program = build("sha", "tiny")

    def run():
        return FuncSim(program, inputs=workload_inputs("sha", "tiny")).run()

    result = benchmark(run)
    benchmark.extra_info["instructions"] = result.instructions
    record_bench(instructions=result.instructions)
    assert result.exit_code == 0


def test_pipeline_throughput(benchmark, record_bench):
    program = build("sha", "tiny")

    def run():
        return PipelineCPU(program, inputs=workload_inputs("sha", "tiny")).run()

    result = benchmark(run)
    benchmark.extra_info["cycles"] = result.cycles
    record_bench(cycles=result.cycles)
    assert result.exit_code == 0


def test_decode_throughput(benchmark, record_bench):
    program = build("rijndael", "tiny")
    words = [program.text.word_at(a) for a in program.text_addresses()]

    def decode_all():
        return [decode(word) for word in words]

    decoded = benchmark(decode_all)
    record_bench(words=len(words))
    assert len(decoded) == len(words)


def test_xor_hash_throughput(benchmark):
    algorithm = get_hash("xor")
    words = list(range(0, 4000))

    def fold():
        state = algorithm.initial()
        for word in words:
            state = algorithm.update(state, word)
        return algorithm.finalize(state)

    benchmark(fold)


def test_sha1_hash_throughput(benchmark):
    algorithm = get_hash("sha1")
    words = list(range(0, 400))

    def fold():
        state = algorithm.initial()
        for word in words:
            state = algorithm.update(state, word)
        return algorithm.finalize(state)

    benchmark(fold)


def test_iht_lookup_throughput(benchmark):
    iht = InternalHashTable(16)
    for index in range(16):
        iht.insert(index * 16, index * 16 + 12, index)

    def lookups():
        for index in range(16):
            iht.lookup(index * 16, index * 16 + 12, index)

    benchmark(lookups)
