"""Design-space-explorer benchmark: throughput and frontier stability.

Sweeps the ``paper`` preset — 48 monitor configurations (4 hashes × 6 IHT
sizes × 2 LRU variants) scored on three workloads against the full attack
corpus — on the golden backend, and pins:

* the sweep completes and its Pareto frontier is non-trivial (≥ 2
  non-dominated points over area vs detection latency vs miss rate);
* the frontier is *stable*: a re-sweep under the same seed with a
  different worker count reproduces byte-identical point records;
* the golden backend beats the full-replay backend on the detection
  objectives (the whole reason the sweep is affordable).

Throughput tables land in ``results/`` next to the other paper artifacts.
"""

import time

from repro.dse import ConfigSpace, DseSweep, get_preset

SEED = 42


def test_dse_paper_sweep(save_result, record_bench):
    space = get_preset("paper")
    assert space.size >= 48
    assert len(space.workloads) >= 3

    start = time.perf_counter()
    result = DseSweep(space, seed=SEED, workers=2).run()
    elapsed = time.perf_counter() - start
    assert result.complete

    report = result.report()  # area_overhead x detection_latency x miss_rate
    assert len(report.frontier) >= 2
    save_result(
        "dse_paper",
        result.table().render() + "\n\n" + report.table().render(),
    )
    record_bench(
        configurations=result.total,
        workloads=list(space.workloads),
        seconds_sweep=round(elapsed, 4),
        points_per_second=round(result.total / elapsed, 2),
        frontier=[point.config.config_id for point in report.ranked()],
    )

    # Stability: same seed, different worker count — identical records,
    # identical frontier.
    again = DseSweep(space, seed=SEED, workers=4).run()
    assert [point.to_json() for point in again.ordered()] == [
        point.to_json() for point in result.ordered()
    ]
    assert [point.index for point in again.frontier()] == [
        point.index for point in result.frontier()
    ]

    # The frontier spans the trade-off: it is not one configuration
    # repeated, and its extremes disagree on area vs miss rate.
    frontier = report.ranked()
    areas = [point.objectives["area_overhead"] for point in frontier]
    rates = [point.objectives["miss_rate"] for point in frontier]
    assert min(areas) < max(areas)
    assert min(rates) < max(rates)


def test_dse_checkpoint_store_sharing(record_bench):
    """Checkpoint-store sharing: the parent records the per-workload
    golden runs and adversary corpora once and ships them to the pool
    through shared memory, instead of every worker re-deriving them in
    its initializer.  Records must be identical either way; the saved
    per-worker warm-up is recorded (and sharing must not cost more than
    a small constant, even on loaded CI machines)."""
    space = ConfigSpace(
        hash_names=("xor", "crc32"),
        iht_sizes=(4, 8, 16),
        workloads=("sha", "dijkstra", "bitcount"),
        scale="tiny",
        per_class=4,
    )
    timings = {}
    points = {}
    for share in (True, False):
        start = time.perf_counter()
        result = DseSweep(space, seed=SEED, workers=4, share=share).run()
        timings[share] = time.perf_counter() - start
        assert result.complete
        points[share] = [point.to_json() for point in result.ordered()]
    assert points[True] == points[False]
    warmup_cut = timings[False] - timings[True]
    record_bench(
        configurations=len(points[True]),
        workers=4,
        seconds_shared=round(timings[True], 4),
        seconds_unshared=round(timings[False], 4),
        warmup_seconds_cut=round(warmup_cut, 4),
    )
    # Sharing replaces per-worker re-derivation with one shm unpickle;
    # it must never make the sweep meaningfully slower.
    assert timings[True] <= timings[False] * 1.25, timings


def test_dse_golden_backend_speedup(record_bench):
    subset = ConfigSpace(
        hash_names=("xor",),
        iht_sizes=(4, 8),
        workloads=("sha",),
        scale="tiny",
        per_class=6,
    )
    timings = {}
    points = {}
    for backend in ("golden", "full"):
        start = time.perf_counter()
        result = DseSweep(subset, seed=SEED, backend=backend).run()
        timings[backend] = time.perf_counter() - start
        points[backend] = [point.to_json() for point in result.ordered()]
    assert points["golden"] == points["full"]
    speedup = timings["full"] / timings["golden"]
    record_bench(
        seconds_golden=round(timings["golden"], 4),
        seconds_full=round(timings["full"], 4),
        golden_speedup=round(speedup, 2),
    )
    # The checkpointed backend must clearly beat full replay (measured
    # ~6x here; 2x leaves headroom for loaded CI machines).
    assert speedup >= 2.0
