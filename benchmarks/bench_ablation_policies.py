"""Ablation A1 benchmark: replacement policies across the suite."""

from repro.eval.ablation_policies import run_policy_ablation


def test_policy_ablation(benchmark, save_result, record_bench):
    result = benchmark.pedantic(run_policy_ablation, rounds=1, iterations=1)
    save_result("ablation_policies", result.table().render())
    record_bench(
        average_miss_rate={
            policy: {
                str(size): round(result.average(policy, size), 5)
                for size in result.sizes
            }
            for policy in result.policies
        }
    )
    # Sanity: every (policy, size) average is a valid rate, and growing the
    # table never hurts under any policy.
    for policy in result.policies:
        for size in result.sizes:
            assert 0.0 <= result.average(policy, size) <= 1.0
        assert result.average(policy, 16) <= result.average(policy, 8) + 0.01
