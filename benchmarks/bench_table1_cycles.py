"""Table 1 benchmark: monitored-execution cycle overheads.

Runs every workload unmonitored and with 8/16-entry IHTs on the functional
ISS (cross-validated against the cycle-level pipeline by the integration
tests) and regenerates the paper's Table 1 rows.
"""

from repro.eval.table1_cycles import run_table1


def test_table1_cycle_overheads(benchmark, save_result, record_bench):
    result = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    save_result("table1_cycles", result.table().render())
    record_bench(
        normalized_overhead_iht8={
            row.workload: round(row.normalized_overhead(8), 4)
            for row in result.rows
        }
    )
    # Paper shape: overhead shrinks (weakly) from 8 to 16 entries...
    for row in result.rows:
        assert row.overhead(16) <= row.overhead(8) + 1e-9
    # ...bitcount and susan are negligible, stringsearch is the worst.
    assert result.row("bitcount").normalized_overhead(8) < 1.0
    assert result.row("susan").normalized_overhead(8) < 1.0
    worst = max(result.rows, key=lambda row: row.normalized_overhead(16))
    assert worst.workload in ("stringsearch", "blowfish")
