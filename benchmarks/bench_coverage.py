"""Coverage-corpus benchmark: exhaustive attack placement throughput.

Re-derives the ``attacks-tiny`` ground-truth corpus — every attack
generator at every eligible CFG site on the trio, both hashes — and
asserts it is *fingerprint-identical* to the committed matrix, so the
benchmark doubles as a full regeneration of one corpus per run.  The
committed pair corpora are far larger (hundreds of thousands of
injections); their stats are recorded from the committed artifacts
rather than re-run here — ``repro coverage diff`` is their gate.
"""

import pathlib

from repro.coverage import get_corpus, load_payload, run_coverage

RESULTS = pathlib.Path(__file__).resolve().parent.parent / "results"


def test_attacks_tiny_corpus(benchmark, record_bench):
    spec = get_corpus("attacks-tiny")
    payload = benchmark.pedantic(
        run_coverage, args=(spec,), rounds=1, iterations=1
    )
    committed = load_payload(RESULTS / "coverage" / "attacks_tiny.json")

    total = payload["manifest"]["total_injections"]
    seconds = payload["manifest"]["wall_seconds"]
    corpus_sizes = {}
    for name in ("pairs_tiny", "pairs_small", "attacks_tiny"):
        artifact = load_payload(RESULTS / "coverage" / f"{name}.json")
        corpus_sizes[name] = artifact["manifest"]["total_injections"]
    record_bench(
        injections=total,
        injections_per_second=round(total / seconds, 1),
        cells=len(payload["cells"]),
        fingerprint=payload["manifest"]["fingerprint"],
        corpus_sizes=corpus_sizes,
    )

    # The re-derived matrix IS the committed ground truth.
    assert (
        payload["manifest"]["fingerprint"]
        == committed["manifest"]["fingerprint"]
    )
    assert payload["cells"] == committed["cells"]

    # The CRC-32 ablation detects the entire exhaustive placement space;
    # under XOR the only escapes in the whole ground truth are the known
    # structural weakness — column-cancelling NOP slides on sha.
    for cell in payload["cells"]:
        if cell["hash"] == "crc32":
            assert cell["detection_rate"] == 1.0, cell
            assert cell["escapes"] == []
        elif cell["escapes"]:
            assert cell["workload"] == "sha", cell
            assert cell["subject"].startswith("nop-slide"), cell
            assert all("nop-slide" in entry for entry in cell["escapes"])
