"""Section 6.3 benchmark: fault-injection detection coverage."""

from repro.eval.fault_analysis import run_fault_analysis


def test_fault_analysis_xor(benchmark, save_result, record_bench):
    result = benchmark.pedantic(
        run_fault_analysis,
        kwargs={
            "workload": "dijkstra",
            "scale": "small",
            "single_bit_count": 150,
            "multi_bit_count": 60,
        },
        rounds=1,
        iterations=1,
    )
    save_result("fault_analysis_xor", result.table().render())
    record_bench(
        coverage={
            scenario.label: round(scenario.coverage, 4)
            for scenario in result.scenarios
        },
        faults=sum(scenario.report.total for scenario in result.scenarios),
    )
    # Paper §6.3: every single-bit flip in executed code is detected.
    assert result.scenario("single-bit (executed code)").coverage == 1.0
    # The adversarial same-column pattern escapes the XOR checksum.
    assert result.scenario("2-bit, same column, same block").coverage < 1.0
