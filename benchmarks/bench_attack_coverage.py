"""Adversarial-coverage benchmark: the attack detection matrix.

Sweeps the full attack corpus (all classes, persistent + transient)
against ``sha-tiny`` under the XOR checksum and the CRC-32 ablation, and
pins the headline adversarial results:

* every attack class the legacy hand-rolled scenarios covered (logic
  inversion, jump splicing, fetch-path delivery) is detected at 100%;
* the XOR checksum's structural weakness is *reachable by a semantic
  adversary* — NOP-sliding a run of structurally regular words whose XOR
  cancels escapes detection — and the CRC-32 ablation closes it;
* detection latency stays within the monitored-block bound.
"""

from repro.eval.attack_coverage import run_attack_coverage

WORKLOAD = "sha"
SCALE = "tiny"
PER_CLASS = 10
SEED = 42

#: Attack classes the legacy examples/tamper_detection.py scenarios
#: exercised; the subsystem must never detect these below 100%.
LEGACY_CLASSES = (
    "logic-invert",
    "jump-splice",
    "logic-invert/transient",
    "jump-splice/transient",
)


def test_attack_coverage_matrix(benchmark, save_result, record_bench):
    result = benchmark.pedantic(
        run_attack_coverage,
        kwargs={
            "workload": WORKLOAD,
            "scale": SCALE,
            "per_class": PER_CLASS,
            "hash_names": ("xor", "crc32"),
            "seed": SEED,
        },
        rounds=1,
        iterations=1,
    )
    save_result("attack_coverage", result.table().render())
    record_bench(
        matrix=result.to_json()["matrix"],
        scenarios=sum(cell.total for cell in result.cells),
    )

    # Legacy-scenario parity: the classes the hand-rolled attacks covered
    # stay fully detected under the paper's XOR configuration.
    for attack_class in LEGACY_CLASSES:
        assert result.cell(attack_class, "xor").detection_rate == 1.0

    # The stronger hash dominates the checksum on every class...
    for cell in result.cells:
        if cell.hash_name == "xor":
            crc = result.cell(cell.attack_class, "crc32")
            assert crc.detection_rate >= cell.detection_rate
    # ...and closes every adversarial escape outright.
    for cell in result.cells:
        if cell.hash_name == "crc32":
            assert cell.detection_rate == 1.0

    # Detection latency is bounded by the block-granularity guarantee:
    # violations fire at the first block end after the corrupted fetch.
    for cell in result.cells:
        for latency in cell.report.detection_latencies():
            assert 0 <= latency < 64


def test_attack_coverage_default_scale_golden(save_result, record_bench):
    """The §6.3 matrix at *default* workload scale on the golden backend.

    The ROADMAP's "scale the experiments onto the fast substrate" item:
    the checkpointed backend makes the default-scale corpus affordable —
    each scenario forks near its first corrupted fetch instead of
    replaying the full run — and the matrix must tell the same story the
    tiny-scale sweep does.
    """
    import time

    start = time.perf_counter()
    result = run_attack_coverage(
        workload=WORKLOAD,
        scale="default",
        per_class=PER_CLASS,
        hash_names=("xor",),
        seed=SEED,
        backend="golden",
    )
    elapsed = time.perf_counter() - start
    save_result("attack_coverage_default", result.table().render())
    scenarios = sum(cell.total for cell in result.cells)
    record_bench(
        matrix=result.to_json()["matrix"],
        scenarios=scenarios,
        seconds_golden=round(elapsed, 4),
        scenarios_per_second=round(scenarios / elapsed, 2),
    )
    for attack_class in LEGACY_CLASSES:
        assert result.cell(attack_class, "xor").detection_rate == 1.0
    for cell in result.cells:
        for latency in cell.report.detection_latencies():
            assert 0 <= latency < 64
