"""Campaign-engine scaling: faults/second per backend × worker count.

Runs the same seeded 200-fault single-bit campaign against ``sha-tiny`` on
every registered execution backend (``full`` re-simulates every injection
from instruction zero; ``golden`` forks the recorded golden run at the
nearest checkpoint before the fault; ``pipeline-golden`` does the same on
the cycle-level pipeline) at 1, 2, and 4 workers, records the
throughput table under ``results/``, and asserts the engine's guarantees:

* aggregate statistics are byte-identical across backends *and* worker
  counts (the cycle-level backend included — outcomes are architectural);
* the golden backend is at least 3× faster than full at 1 worker (each
  measurement pays its own warm-up: golden run, FHT build, and — golden
  backend — the checkpoint store);
* with enough cores, 4 workers deliver at least 2× the 1-worker
  throughput (per-worker warm caches make workers scale; the check is
  reported but not enforced on hosts without the cores to scale onto).

``docs/PERFORMANCE.md`` explains the model behind these numbers.
"""

import os
import time

from repro.exec import BACKENDS, CampaignRunner, CampaignSpec
from repro.utils.tables import TextTable

WORKLOAD = "sha"
SCALE = "tiny"
FAULT_COUNT = 200
SEED = 42
WORKER_COUNTS = (1, 2, 4)
MAX_WORKERS = WORKER_COUNTS[-1]

#: Enforced single-worker advantage of golden over full (measured ~16×).
GOLDEN_MIN_SPEEDUP = 3.0


def _time_campaign(spec, faults, workers):
    # A fresh runner per measurement so every cell pays its own startup
    # inside the timed region: the parent builds one workspace (golden
    # run + warm caches + checkpoint store for the golden backends);
    # pooled cells additionally pay shipping it through shared memory
    # and each worker's attach/unpickle (repro.exec.sharing).
    runner = CampaignRunner(spec, workers=workers)
    start = time.perf_counter()
    result = runner.run(faults, seed=SEED)
    elapsed = time.perf_counter() - start
    return result, elapsed


def test_campaign_scaling(save_result, record_bench):
    cores = os.cpu_count() or 1
    table = TextTable(
        ["backend", "workers", "seconds", "faults/s", "speedup", "summary"],
        title=(
            f"Campaign scaling — {WORKLOAD}-{SCALE}, {FAULT_COUNT} "
            f"single-bit faults, seed {SEED} ({cores} cores available; "
            "speedup vs full @ 1 worker)"
        ),
    )
    faults = None
    summaries = []
    throughputs: dict[str, dict[int, float]] = {}
    baseline = None
    for backend in BACKENDS:
        spec = CampaignSpec(
            workload=WORKLOAD, scale=SCALE, iht_size=8, backend=backend
        )
        if faults is None:
            faults = CampaignRunner(spec).campaign.random_single_bit(
                FAULT_COUNT, seed=SEED
            )
        throughputs[backend] = {}
        for workers in WORKER_COUNTS:
            result, elapsed = _time_campaign(spec, faults, workers)
            summaries.append(result.summary())
            throughput = FAULT_COUNT / elapsed
            throughputs[backend][workers] = throughput
            baseline = baseline or elapsed
            table.add_row(
                [
                    backend,
                    workers,
                    f"{elapsed:.2f}",
                    f"{throughput:.1f}",
                    f"{baseline / elapsed:.2f}x",
                    result.summary(),
                ]
            )
    save_result("campaign_scaling", table.render())
    record_bench(
        cores=cores,
        faults=FAULT_COUNT,
        faults_per_second={
            backend: {
                str(workers): round(value, 2)
                for workers, value in per_backend.items()
            }
            for backend, per_backend in throughputs.items()
        },
        golden_speedup_1w=round(
            throughputs["golden"][1] / throughputs["full"][1], 2
        ),
        summary=summaries[0],
    )

    # Core guarantee: neither worker count nor backend changes statistics.
    assert len(set(summaries)) == 1, summaries
    # The checkpointed backend must actually pay off, everywhere.
    assert (
        throughputs["golden"][1] >= GOLDEN_MIN_SPEEDUP * throughputs["full"][1]
    ), throughputs
    # Throughput must scale with workers where the hardware allows it.
    # Enforced on the full backend, whose per-injection work dominates
    # its warm-up; the golden backends' fixed warm-up (the parent's
    # recording plus per-worker shared-store attach) dominates at this
    # fault count, so their scaling is reported but not gated — raise
    # FAULT_COUNT to see it scale.
    if cores >= MAX_WORKERS:
        assert (
            throughputs["full"][MAX_WORKERS] >= 2.0 * throughputs["full"][1]
        ), throughputs
