"""Campaign-engine scaling: faults/second at 1, 2, and N workers.

Runs the same seeded 200-fault single-bit campaign against ``sha-tiny`` at
increasing worker counts, records the throughput table under ``results/``,
and asserts the engine's core guarantee: aggregate statistics are
byte-identical regardless of worker count.  The speedup assertion only
applies where the host actually has the cores to scale onto — on a
single-core container the pool can't beat the serial path, so the check is
reported but not enforced there.
"""

import os
import time

from repro.exec import CampaignRunner, CampaignSpec
from repro.utils.tables import TextTable

WORKLOAD = "sha"
SCALE = "tiny"
FAULT_COUNT = 200
SEED = 42
MAX_WORKERS = 4


def _time_campaign(spec, faults, workers):
    # A fresh runner per measurement so every worker count pays its own
    # golden-run startup inside the timed region: the serial path builds
    # one context, each pool worker builds its own in its initializer.
    runner = CampaignRunner(spec, workers=workers)
    start = time.perf_counter()
    result = runner.run(faults, seed=SEED)
    elapsed = time.perf_counter() - start
    return result, elapsed


def test_campaign_scaling(save_result, record_bench):
    spec = CampaignSpec(workload=WORKLOAD, scale=SCALE, iht_size=8)
    faults = CampaignRunner(spec).campaign.random_single_bit(
        FAULT_COUNT, seed=SEED
    )
    cores = os.cpu_count() or 1
    table = TextTable(
        ["workers", "seconds", "faults/s", "speedup", "summary"],
        title=(
            f"Campaign scaling — {WORKLOAD}-{SCALE}, {FAULT_COUNT} "
            f"single-bit faults, seed {SEED} ({cores} cores available)"
        ),
    )
    summaries = []
    baseline = None
    throughputs = {}
    for workers in (1, 2, MAX_WORKERS):
        result, elapsed = _time_campaign(spec, faults, workers)
        summaries.append(result.summary())
        throughput = FAULT_COUNT / elapsed
        throughputs[workers] = throughput
        baseline = baseline or elapsed
        table.add_row(
            [
                workers,
                f"{elapsed:.2f}",
                f"{throughput:.1f}",
                f"{baseline / elapsed:.2f}x",
                result.summary(),
            ]
        )
    save_result("campaign_scaling", table.render())
    record_bench(
        cores=cores,
        faults=FAULT_COUNT,
        faults_per_second={
            str(workers): round(value, 2)
            for workers, value in throughputs.items()
        },
        summary=summaries[0],
    )

    # Core guarantee: worker count never changes the statistics.
    assert len(set(summaries)) == 1, summaries
    # Throughput must actually scale where the hardware allows it.
    if cores >= MAX_WORKERS:
        assert throughputs[MAX_WORKERS] > 1.5 * throughputs[1], throughputs
