"""Campaign-engine scaling: faults/second per backend × worker count.

Runs the same seeded 200-fault single-bit campaign against ``sha-tiny`` on
every registered execution backend (``full`` re-simulates every injection
from instruction zero; ``golden`` forks the recorded golden run at the
nearest checkpoint before the fault; ``pipeline-golden`` does the same on
the cycle-level pipeline) at 1, 2, and 4 workers, records the throughput
table inside ``results/BENCH_bench_campaign_scaling.json`` (one
schema-checked artifact per benchmark — no stray ``.txt`` sibling), and
asserts the engine's guarantees:

* aggregate statistics are byte-identical across backends, worker
  counts, *and* batch plans (outcomes are architectural);
* the golden backend is at least 3× faster than full at 1 worker;
* batched replay (``run_batch_golden`` sharing the pristine prefix
  across a shard) beats per-fault dispatch by ≥ 1.3× at 1 worker — the
  single-core win, asserted on every host;
* on hosts with ≥ 4 effective cores, 4 workers deliver ≥ 2× the
  1-worker throughput for the golden backends and throughput never
  inverts as workers are added.  On smaller hosts that assertion is
  **skipped** — visibly, not trivially passed — because a 1-core
  container genuinely cannot scale onto cores it does not have (the
  pre-pool version of this file recorded exactly such an inversion and
  the recorded ``cores: 1`` went unnoticed).

Measurements are steady-state: every cell warms up first (workspace
recording, warm-pool spin-up — one-time costs the persistent pools of
:mod:`repro.exec.pool` amortize across a process's campaigns), then
times a full campaign on the warm engine.  ``docs/PERFORMANCE.md``
explains the model behind these numbers.
"""

import os
import time

import pytest

from repro.exec import BACKENDS, CampaignRunner, CampaignSpec
from repro.exec.pool import shutdown_pools
from repro.utils.tables import TextTable

WORKLOAD = "sha"
SCALE = "tiny"
FAULT_COUNT = 200
SEED = 42
WORKER_COUNTS = (1, 2, 4)
MAX_WORKERS = WORKER_COUNTS[-1]

#: Enforced single-worker advantage of golden over full (measured ~16×).
GOLDEN_MIN_SPEEDUP = 3.0
#: Enforced advantage of whole-shard batched replay over per-fault
#: dispatch at 1 worker on the golden backend (measured ~2-4×).
BATCH_MIN_SPEEDUP = 1.3
#: Enforced 4-worker speedup on hosts with the cores to scale onto.
SCALING_MIN_SPEEDUP = 2.0
#: Monotonicity tolerance: adding workers may cost at most 5% (noise).
NOISE = 0.95


def effective_cores() -> int:
    """Cores this process may actually run on — honest, affinity-aware."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _spec(backend: str) -> CampaignSpec:
    return CampaignSpec(
        workload=WORKLOAD, scale=SCALE, iht_size=8, backend=backend
    )


def _time_campaign(spec, faults, workers, batch_size=None):
    """Steady-state faults/s: warm up the engine, then time one campaign."""
    runner = CampaignRunner(spec, workers=workers, batch_size=batch_size)
    warmup = runner.run(faults, seed=SEED)
    start = time.perf_counter()
    result = runner.run(faults, seed=SEED)
    elapsed = time.perf_counter() - start
    assert result.summary() == warmup.summary()
    return result, FAULT_COUNT / elapsed


@pytest.fixture(scope="module")
def measurements():
    """One shared measurement pass: every (backend × workers) cell plus
    the per-fault (batch-of-1) single-worker cells."""
    shutdown_pools()
    faults = None
    summaries = []
    throughputs: dict[str, dict[int, float]] = {}
    unbatched: dict[str, float] = {}
    for backend in BACKENDS:
        spec = _spec(backend)
        if faults is None:
            faults = CampaignRunner(spec).campaign.random_single_bit(
                FAULT_COUNT, seed=SEED
            )
        throughputs[backend] = {}
        for workers in WORKER_COUNTS:
            result, throughput = _time_campaign(spec, faults, workers)
            summaries.append(result.summary())
            throughputs[backend][workers] = throughput
        result, throughput = _time_campaign(spec, faults, 1, batch_size=1)
        summaries.append(result.summary())
        unbatched[backend] = throughput
    shutdown_pools()
    return {
        "throughputs": throughputs,
        "unbatched": unbatched,
        "summaries": summaries,
    }


def test_campaign_scaling(measurements, record_bench):
    cores = effective_cores()
    throughputs = measurements["throughputs"]
    unbatched = measurements["unbatched"]
    table = TextTable(
        ["backend", "workers", "batch", "faults/s", "speedup"],
        title=(
            f"Campaign scaling — {WORKLOAD}-{SCALE}, {FAULT_COUNT} "
            f"single-bit faults, seed {SEED} ({cores} effective cores; "
            "steady-state warm pools; speedup vs full @ 1 worker)"
        ),
    )
    baseline = throughputs["full"][1]
    for backend in BACKENDS:
        table.add_row(
            [
                backend,
                1,
                "per-fault",
                f"{unbatched[backend]:.1f}",
                f"{unbatched[backend] / baseline:.2f}x",
            ]
        )
        for workers in WORKER_COUNTS:
            value = throughputs[backend][workers]
            table.add_row(
                [backend, workers, "shard", f"{value:.1f}",
                 f"{value / baseline:.2f}x"]
            )
    # The rendered table rides inside the BENCH record (one artifact per
    # benchmark, schema-checked) instead of a stray results/*.txt sibling.
    record_bench(
        table=table.render().splitlines(),
        cores=os.cpu_count() or 1,
        effective_cores=cores,
        faults=FAULT_COUNT,
        faults_per_second={
            backend: {
                str(workers): round(value, 2)
                for workers, value in per_backend.items()
            }
            for backend, per_backend in throughputs.items()
        },
        per_fault_dispatch_1w={
            backend: round(value, 2) for backend, value in unbatched.items()
        },
        golden_speedup_1w=round(
            throughputs["golden"][1] / throughputs["full"][1], 2
        ),
        golden_batch_speedup_1w=round(
            throughputs["golden"][1] / unbatched["golden"], 2
        ),
        summary=measurements["summaries"][0],
    )

    # Core guarantee: neither worker count, backend, nor batch plan
    # changes a campaign's statistics.
    assert len(set(measurements["summaries"])) == 1, measurements["summaries"]
    # The checkpointed backend must actually pay off, everywhere.
    assert (
        throughputs["golden"][1] >= GOLDEN_MIN_SPEEDUP * unbatched["full"]
    ), throughputs
    # Batched fork-at-checkpoint replay must beat per-fault dispatch at a
    # single worker — the host-independent half of the scaling story.
    assert (
        throughputs["golden"][1] >= BATCH_MIN_SPEEDUP * unbatched["golden"]
    ), (throughputs["golden"][1], unbatched["golden"])


def test_scaling_gate(measurements, record_bench):
    """4 workers ≥ 2 × 1 worker, and no inversion anywhere — on hosts
    with the cores to scale onto.  Skipped (never trivially passed) on
    smaller hosts, with the honest core count in the skip reason."""
    cores = effective_cores()
    record_bench(effective_cores=cores, gate_enforced=cores >= MAX_WORKERS)
    if cores < MAX_WORKERS:
        pytest.skip(
            f"scaling gate needs >= {MAX_WORKERS} effective cores, host has "
            f"{cores}: a single campaign cannot scale onto cores that do "
            "not exist (throughputs recorded for inspection regardless)"
        )
    throughputs = measurements["throughputs"]
    for backend in ("golden", "pipeline-golden"):
        per_worker = throughputs[backend]
        assert per_worker[MAX_WORKERS] >= (
            SCALING_MIN_SPEEDUP * per_worker[1]
        ), (backend, per_worker)
    for backend in BACKENDS:
        per_worker = throughputs[backend]
        for lower, higher in zip(WORKER_COUNTS, WORKER_COUNTS[1:]):
            assert per_worker[higher] >= NOISE * per_worker[lower], (
                backend,
                per_worker,
            )


def test_two_worker_micro_scaling(record_bench):
    """The ``make scaling-smoke`` cell: a small golden campaign at 1 vs 2
    workers on warm pools.  Statistics must match everywhere; the
    throughput ratio is asserted only when a second core exists."""
    cores = effective_cores()
    shutdown_pools()
    spec = _spec("golden")
    faults = CampaignRunner(spec).campaign.random_single_bit(96, seed=SEED)
    results = {}
    ratios = {}
    for workers in (1, 2):
        runner = CampaignRunner(spec, workers=workers)
        warmup = runner.run(faults, seed=SEED)
        start = time.perf_counter()
        result = runner.run(faults, seed=SEED)
        ratios[workers] = len(faults) / (time.perf_counter() - start)
        results[workers] = result.summary()
        assert result.summary() == warmup.summary()
    shutdown_pools()
    record_bench(
        effective_cores=cores,
        micro_faults_per_second={
            str(workers): round(value, 2) for workers, value in ratios.items()
        },
    )
    assert results[1] == results[2]
    if cores >= 2:
        assert ratios[2] >= NOISE * ratios[1], ratios
