"""Exhaustive single-bit coverage at ``default`` scale — no sampling.

The paper's §6.3 argument is absolute: *every* single-bit modification
of an executed instruction word flips the XOR checksum (odd-weight error
patterns always do), so coverage over executed code is 100% by
construction.  Until the golden backend and the hang early-exit detector
landed, measuring that claim without sampling was an overnight job —
every one of ``32 × executed_words`` injections re-simulated the whole
workload, and hang outcomes burned a 20× instruction budget each.  On
the forked golden substrate the **entire** exhaustive campaign runs in
seconds, so this benchmark commits the unsampled coverage numbers:

* every single-bit flip of every executed word, per workload, at
  ``default`` scale, via the ``exhaustive-single-bit`` campaign preset
  (``repro campaign <w> --preset exhaustive-single-bit``);
* the §6.3 claim asserted exactly: **zero** silent corruptions and zero
  benign outcomes — every injection is detected (CIC or baseline
  machine check);
* throughput (faults/second), recorded into
  ``results/BENCH_bench_exhaustive_campaign.json`` for trend tracking.
"""

import time

from repro.exec import CampaignRunner, CampaignSpec, get_campaign_preset
from repro.faults.campaign import Outcome
from repro.utils.tables import TextTable

PRESET = get_campaign_preset("exhaustive-single-bit")
WORKLOADS = ("bitcount", "dijkstra", "sha")
SEED = 42
WORKERS = 2


def test_exhaustive_single_bit_default_scale(save_result, record_bench):
    assert PRESET.scale == "default"
    assert PRESET.backend == "golden"
    table = TextTable(
        [
            "workload", "executed words", "faults", "cic", "baseline",
            "hang", "silent", "benign", "coverage %", "seconds", "faults/s",
        ],
        title=(
            "Exhaustive single-bit campaigns — every flip of every executed "
            f"word @ default scale, golden backend, {WORKERS} workers"
        ),
    )
    stats = {}
    for workload in WORKLOADS:
        spec = CampaignSpec(
            workload=workload, scale=PRESET.scale, backend=PRESET.backend
        )
        runner = CampaignRunner(spec, workers=WORKERS, chunk_size=256)
        faults = PRESET.faults(runner.campaign, seed=SEED)
        executed = len(runner.campaign.executed_addresses)
        assert len(faults) == 32 * executed

        start = time.perf_counter()
        result = runner.run(faults, seed=SEED)
        elapsed = time.perf_counter() - start
        assert result.complete

        report = result.report()
        counts = report.counts()
        # The §6.3 claim, unsampled: single-bit faults in executed code
        # never escape — no silent corruption, nothing benign.
        assert counts[Outcome.SDC] == 0, (workload, counts)
        assert counts[Outcome.BENIGN] == 0, (workload, counts)
        assert report.detection_rate == 1.0, (workload, counts)

        table.add_row(
            [
                workload,
                executed,
                report.total,
                counts[Outcome.DETECTED_CIC],
                counts[Outcome.DETECTED_BASELINE],
                counts[Outcome.HANG],
                counts[Outcome.SDC],
                counts[Outcome.BENIGN],
                f"{100 * report.detection_rate:.1f}",
                f"{elapsed:.2f}",
                f"{report.total / elapsed:.0f}",
            ]
        )
        stats[workload] = {
            "executed_words": executed,
            "faults": report.total,
            "detected_cic": counts[Outcome.DETECTED_CIC],
            "detected_baseline": counts[Outcome.DETECTED_BASELINE],
            "hang": counts[Outcome.HANG],
            "coverage": report.detection_rate,
            "seconds": round(elapsed, 4),
            "faults_per_second": round(report.total / elapsed, 2),
        }
    save_result("exhaustive_single_bit", table.render())
    record_bench(
        preset=PRESET.name,
        scale=PRESET.scale,
        backend=PRESET.backend,
        workers=WORKERS,
        per_workload=stats,
        total_faults=sum(entry["faults"] for entry in stats.values()),
    )
