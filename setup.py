"""Setup shim: this environment lacks the `wheel` package, so PEP-517
editable installs fail; the legacy setup.py path works offline."""

from setuptools import setup

setup()
