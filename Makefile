# Entry points for the tier-1 suite, the benchmarks, and campaign smokes.
# Everything runs from the source tree: no install step needed.

PYTHON ?= python
export PYTHONPATH := src$(if $(PYTHONPATH),:$(PYTHONPATH))

.PHONY: test bench bench-smoke perf-smoke campaign-smoke attack-smoke \
	dse-smoke harness-smoke scaling-smoke obs-smoke coverage-smoke \
	trace-smoke service-smoke bench-gate clean

# Regression threshold (percent) for `make bench-gate`.
BENCH_GATE ?= 25

test:  ## tier-1: the whole unit/integration suite, fail fast
	$(PYTHON) -m pytest -x -q

bench:  ## every paper-artifact benchmark; tables land in results/
	# Explicit file list: pytest's default python_files (test_*.py) skips
	# bench_*.py when collecting the directory, but not named files.
	$(PYTHON) -m pytest benchmarks/bench_*.py -q

bench-smoke:  ## the two fastest benchmarks: engine scaling + §6.3 coverage
	$(PYTHON) -m pytest benchmarks/bench_campaign_scaling.py \
	    benchmarks/bench_fault_analysis.py -q

# perf-smoke fails unless the golden backend beats full by >= 3x at one
# worker; throughput tables land in results/ (see docs/PERFORMANCE.md).
perf-smoke:  ## both campaign backends on a tiny corpus, speedup enforced
	$(PYTHON) -m pytest benchmarks/bench_campaign_scaling.py -q

campaign-smoke:  ## tiny 2-worker campaign through the CLI, with resume
	$(PYTHON) -m repro campaign sha --scale tiny --faults 32 --workers 2 \
	    --seed 42 --out results/campaign_smoke.jsonl
	$(PYTHON) -m repro campaign sha --scale tiny --faults 32 --workers 2 \
	    --seed 42 --out results/campaign_smoke.jsonl --resume

attack-smoke:  ## tiny 2-worker attack sweep through the CLI, with resume
	$(PYTHON) -m repro attack sha --scale tiny --class all --per-class 4 \
	    --workers 2 --seed 42 --out results/attack_smoke.jsonl \
	    --json results/attack_smoke.json
	$(PYTHON) -m repro attack sha --scale tiny --class all --per-class 4 \
	    --workers 2 --seed 42 --out results/attack_smoke.jsonl --resume \
	    --json results/attack_smoke.json

# scaling-smoke is the CI face of the parallel-scaling work: the full
# invariance tier (worker count / batch plan / pool reuse / kill-resume
# never change a byte of the results) plus a 2-worker micro-scaling
# check on warm pools.  The 4-worker >= 2x gate itself lives in
# bench_campaign_scaling.py::test_scaling_gate and skips - visibly,
# never trivially passes - on hosts with < 4 effective cores.
scaling-smoke:  ## scaling invariance tier + 2-worker micro-scaling check
	$(PYTHON) -m pytest tests/exec/test_scaling_invariants.py \
	    "benchmarks/bench_campaign_scaling.py::test_two_worker_micro_scaling" \
	    -q

# harness-smoke exercises the one execution harness through BOTH of its
# clients: a campaign and a DSE sweep are each killed after their first
# shard(s) (--stop-after-shards) and then resumed to completion from the
# JSONL commit markers, on the golden backend with 2 workers.
harness-smoke:  ## kill -> resume on both harness clients (campaign + DSE)
	$(PYTHON) -m repro campaign sha --preset smoke --workers 2 --seed 42 \
	    --out results/harness_smoke_campaign.jsonl --stop-after-shards 1
	$(PYTHON) -m repro campaign sha --preset smoke --workers 2 --seed 42 \
	    --out results/harness_smoke_campaign.jsonl --resume
	$(PYTHON) -m repro dse sweep --preset smoke --workers 2 --seed 42 \
	    --out results/harness_smoke_dse.jsonl --stop-after-shards 1
	$(PYTHON) -m repro dse sweep --preset smoke --workers 2 --seed 42 \
	    --out results/harness_smoke_dse.jsonl --resume

dse-smoke:  ## tiny 2-worker DSE sweep through the CLI, with resume + frontier
	$(PYTHON) -m repro dse sweep --preset smoke --workers 2 \
	    --seed 42 --out results/dse_smoke.jsonl
	$(PYTHON) -m repro dse sweep --preset smoke --workers 2 \
	    --seed 42 --out results/dse_smoke.jsonl --resume
	$(PYTHON) -m repro dse frontier results/dse_smoke.jsonl \
	    --json results/dse_smoke_frontier.json
	$(PYTHON) -m repro dse report results/dse_smoke.jsonl \
	    --out results/dse_smoke_report.txt

# obs-smoke proves the telemetry pipeline end to end: a tiny golden
# campaign leaves results/obs_smoke.metrics.json beside its JSONL
# (manifest + merged spans/counters + per-shard stats), then
# `repro stats --check` renders it and validates it against the metrics
# schema — exiting 1 if the file is missing or malformed.
obs-smoke:  ## tiny campaign -> metrics.json present, schema-valid, rendered
	$(PYTHON) -m repro campaign bitcount --scale tiny --backend golden \
	    --faults 24 --chunk 6 --seed 42 --out results/obs_smoke.jsonl
	$(PYTHON) -m repro stats results/obs_smoke.metrics.json --check

# coverage-smoke is the ground-truth gate (docs/COVERAGE.md): every
# committed matrix under results/coverage/ must be schema-valid with an
# intact fingerprint, and two corpora are re-derived and diffed cell by
# cell against their committed ground truth.  The attack corpus re-runs
# whole; the pair corpus re-runs its cheapest workload (--workload
# bitcount) so the gate stays minutes, not hours — `repro coverage diff`
# with no restriction re-derives everything.
coverage-smoke:  ## committed coverage matrices: check + cell-by-cell diff
	$(PYTHON) -m repro coverage check results/coverage
	$(PYTHON) -m repro coverage diff results/coverage/attacks_tiny.json
	$(PYTHON) -m repro coverage diff results/coverage/pairs_tiny.json \
	    --workload bitcount
	# A fresh run also leaves an aggregated, schema-valid telemetry
	# sibling beside its artifact (parity with campaign/DSE --out).
	$(PYTHON) -m repro coverage run attacks-tiny \
	    --out results/coverage_smoke.json
	$(PYTHON) -m repro stats results/coverage_smoke.metrics.json --check

# trace-smoke proves the live half of the observability stack end to
# end: a tiny campaign runs in the background while `repro top` tails
# its event log to completion, then the run is exported as a
# Chrome/Perfetto trace (schema-checked by the exporter) and its metrics
# artifact is self-diffed under a gate — which must report +0.0% and
# exit 0.
trace-smoke:  ## background campaign -> live follow -> trace export -> self-diff
	rm -f results/trace_smoke.jsonl results/trace_smoke.events.jsonl \
	    results/trace_smoke.metrics.json results/trace_smoke.trace.json
	$(PYTHON) -m repro campaign bitcount --scale tiny --backend golden \
	    --faults 48 --chunk 8 --seed 42 \
	    --out results/trace_smoke.jsonl & \
	$(PYTHON) -m repro top results/trace_smoke.jsonl --timeout 120; \
	status=$$?; wait; test $$status -eq 0
	$(PYTHON) -m repro stats results/trace_smoke.jsonl \
	    --export-trace results/trace_smoke.trace.json
	$(PYTHON) -m repro stats diff results/trace_smoke.metrics.json \
	    results/trace_smoke.metrics.json --gate 5

# service-smoke is the CI face of the repro.service tier, driven
# entirely through subprocesses: a `repro serve` instance takes two
# overlapping campaign submissions from separate tenants (the second
# must lease the first's published checkpoint store — cache hit
# asserted from `stats`), is killed with SIGKILL mid-job, and a
# restarted server over the same state dir resumes both jobs from the
# journal to results byte-identical to an uninterrupted serial
# `repro campaign` run.  See docs/SERVICE.md.
service-smoke:  ## serve -> two tenants -> cache hit -> kill -9 -> resume, byte-identical
	$(PYTHON) -m pytest tests/service/test_smoke_cli.py -q

# bench-gate compares every committed BENCH_*.json against the
# PREV_BENCH_*.json stash the benchmark harness leaves behind when it
# overwrites one (benchmarks/conftest.py), failing on any >= BENCH_GATE
# percent regression.  Opt-in rather than CI-wired: wall-clock numbers
# on shared runners are too noisy to gate merges on.
bench-gate:  ## diff fresh BENCH_*.json against PREV_ stashes, gate regressions
	@found=0; \
	for current in results/BENCH_*.json; do \
	    prev="results/PREV_$$(basename $$current)"; \
	    [ -f "$$current" ] && [ -f "$$prev" ] || continue; \
	    found=1; \
	    $(PYTHON) -m repro stats diff "$$prev" "$$current" \
	        --gate $(BENCH_GATE) || exit 1; \
	done; \
	[ $$found -eq 1 ] || echo "bench-gate: no PREV_BENCH_*.json stashes yet (run make bench twice)"

clean:
	rm -rf results .pytest_cache
	find . -name __pycache__ -type d -exec rm -rf {} +
