"""Named campaign presets: the fault campaigns people actually run.

The DSE layer has had named spaces since it existed
(:mod:`repro.dse.presets`); this is the campaign client's counterpart on
the shared execution harness.  A preset bundles the scale/backend choice
with a fault *plan* — how the injection list is generated from the
campaign's golden run — so a multi-thousand-injection experiment is one
CLI flag (``repro campaign sha --preset exhaustive-single-bit``) instead
of a recipe.

``exhaustive-single-bit`` is the §6.3 coverage claim measured without
sampling: **every** single-bit flip of **every** executed word (32 ×
executed words injections) at ``default`` scale.  It rides the golden
backend plus the hang early-exit detector — the two changes that turned
exhaustive campaigns from an overnight job into seconds
(``benchmarks/bench_exhaustive_campaign.py`` commits the coverage
numbers and throughput).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.faults.campaign import FaultCampaign


@dataclass(frozen=True, slots=True)
class CampaignPreset:
    """One named campaign shape: scale/backend defaults + fault plan."""

    name: str
    description: str
    scale: str = "small"
    backend: str = "full"
    #: ``True``: every single-bit flip over executed words (the §6.3
    #: claim, unsampled).  ``False``: *fault_count* seeded random flips.
    exhaustive: bool = False
    fault_count: int = 200
    #: The workload set the preset is built for.  Empty means "any one
    #: workload" (the classic presets); a non-empty tuple lets the CLI
    #: target ``all`` to sweep the whole set, and gives tests/benchmarks
    #: a named roster to iterate.
    workloads: tuple[str, ...] = ()

    def faults(self, campaign: FaultCampaign, seed: int) -> list:
        """The preset's injection list over *campaign*'s golden run."""
        if self.exhaustive:
            return campaign.exhaustive_single_bit()
        return campaign.random_single_bit(self.fault_count, seed=seed)


PRESETS: dict[str, CampaignPreset] = {
    preset.name: preset
    for preset in (
        CampaignPreset(
            name="exhaustive-single-bit",
            description=(
                "every single-bit flip of every executed word at default "
                "scale on the golden backend (the unsampled §6.3 coverage)"
            ),
            scale="default",
            backend="golden",
            exhaustive=True,
        ),
        CampaignPreset(
            name="smoke",
            description=(
                "32 seeded random single-bit flips at tiny scale on the "
                "golden backend (CI kill/resume exercise)"
            ),
            scale="tiny",
            backend="golden",
            fault_count=32,
        ),
        CampaignPreset(
            name="mibench-tiny",
            description=(
                "24 seeded random single-bit flips per workload at tiny "
                "scale on the golden backend, over the five MiBench-class "
                "workloads beyond the bitcount/dijkstra/sha trio "
                "(rijndael, susan, patricia, blowfish, basicmath)"
            ),
            scale="tiny",
            backend="golden",
            fault_count=24,
            workloads=("rijndael", "susan", "patricia", "blowfish", "basicmath"),
        ),
    )
}


def get_campaign_preset(name: str) -> CampaignPreset:
    preset = PRESETS.get(name)
    if preset is None:
        raise ConfigurationError(
            f"unknown campaign preset {name!r}; available: {', '.join(PRESETS)}"
        )
    return preset
