"""Golden-trace differential replay: the checkpointed campaign backend.

The full backend re-executes the entire workload for every injection, even
though a fault at address *A* cannot influence anything before the first
fetch of *A* — every instruction up to that point replays the pristine
("golden") run exactly.  This backend records the golden run **once** per
worker and forks each injection at the fault instead:

1. :func:`build_golden_store` executes the *monitored* pristine run,
   pausing every ``interval`` instructions to snapshot the simulator
   (:meth:`FuncSim.snapshot`) and the monitor (CIC registers, IHT rows,
   handler counters, policy state).  The same run records, per text
   address, the instruction ordinals of its fetches, plus the set of text
   words the program ever reads as *data*.
2. :func:`run_one_golden` plans one injection: the first fetch ordinal at
   which the perturbation can corrupt the pipeline (``F``) follows
   directly from the recorded ordinals.  The run is forked from the last
   checkpoint strictly before ``F``, transient fetch counters are
   :meth:`seek`-ed to the checkpoint, and execution proceeds live through
   the shared :func:`~repro.faults.campaign.classify_run` tail.
3. A perturbation that can never deliver — targets never fetched, never
   read as data — is classified ``BENIGN`` with no simulation at all: the
   faulty run *is* the golden run.

Soundness notes
    * Checkpoints are taken at instruction boundaries; the monitor's
      mid-block ``STA``/``RHASH`` state travels with them, so forking
      inside a basic block is exact.
    * Detection latency is a *difference* of fetch ordinals, so starting
      the probe at a checkpoint leaves it unchanged.
    * A persistent fault whose target the program reads as data — or
      stores to, overwriting the boot-time patch — could diverge before
      the first fetch; such targets (recorded in ``unsafe_words``) fork
      at checkpoint 0 — the full behaviour, with the warm-cache savings
      only.
    * ``HANG`` uses the same absolute instruction budget: the restored
      simulator keeps counting from the checkpoint's instruction number.

The differential test ``tests/exec/test_golden_backend.py`` pins
``golden ≡ full`` on outcome, detail, and latency for every fault model
and every attack class.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.obs import core as obs
from repro.faults.campaign import (
    CampaignContext,
    FaultResult,
    Outcome,
    WarmProcess,
    classify_run,
    make_probe,
    split_perturbation,
)
from repro.pipeline.funcsim import FuncSim, FuncSimSnapshot
from repro.pipeline.memory import Memory
from repro.pipeline.trace import BlockTrace

#: Aim for this many checkpoints over the golden run by default.
DEFAULT_CHECKPOINT_COUNT = 64

#: Floor on the checkpoint interval (snapshots cost memory and copies).
MIN_CHECKPOINT_INTERVAL = 32


@dataclass(frozen=True, slots=True)
class Checkpoint:
    """One restore point: the simulator and the monitor, in lock step."""

    instructions: int
    sim: FuncSimSnapshot
    checker: tuple
    handler: tuple


class _FetchRecorder:
    """Fetch hook for the recording run: ordinal list per text address."""

    __slots__ = ("ordinals", "fetches")

    def __init__(self) -> None:
        self.ordinals: dict[int, list[int]] = {}
        self.fetches = 0

    def __call__(self, address: int, word: int) -> int:
        self.fetches += 1
        self.ordinals.setdefault(address, []).append(self.fetches)
        return word


class _ReadRecordingMemory(Memory):
    """Memory that records data accesses landing inside the text segment.

    Word-read counts in excess of the fetch count, and any half/byte
    read, identify text words the program consumes as *data* — a
    persistent fault there can act before its first fetch.  Text words
    the program *stores to* are recorded too: a store between instruction
    zero and the fork point would overwrite a patch the full backend
    applied at boot, so such targets must fork at checkpoint 0.
    """

    def __init__(self, base: Memory, text_start: int, text_end: int) -> None:
        super().__init__()
        self._pages = base._pages
        self._lo = text_start
        self._hi = text_end
        self.word_reads: dict[int, int] = {}
        self.touched_words: set[int] = set()

    def read_word(self, address: int) -> int:
        if self._lo <= address < self._hi:
            self.word_reads[address] = self.word_reads.get(address, 0) + 1
        return super().read_word(address)

    def read_half(self, address: int, signed: bool = False) -> int:
        if self._lo <= address < self._hi:
            self.touched_words.add(address & ~3)
        return super().read_half(address, signed)

    def read_byte(self, address: int, signed: bool = False) -> int:
        if self._lo <= address < self._hi:
            self.touched_words.add(address & ~3)
        return super().read_byte(address, signed)

    def read_bytes(self, address: int, length: int) -> bytes:
        first = max(self._lo, address & ~3)
        last = min(self._hi, address + length)
        for word in range(first, last, 4):
            self.touched_words.add(word)
        return super().read_bytes(address, length)

    def write_word(self, address: int, value: int) -> None:
        if self._lo <= address < self._hi:
            self.touched_words.add(address)
        super().write_word(address, value)

    def write_half(self, address: int, value: int) -> None:
        if self._lo <= address < self._hi:
            self.touched_words.add(address & ~3)
        super().write_half(address, value)

    def write_byte(self, address: int, value: int) -> None:
        if self._lo <= address < self._hi:
            self.touched_words.add(address & ~3)
        super().write_byte(address, value)


@dataclass(slots=True)
class GoldenStore:
    """Everything one worker needs to fork injections at the fault."""

    context: CampaignContext
    warm: WarmProcess
    checkpoints: list[Checkpoint]
    #: 1-based instruction ordinals at which each address was fetched.
    fetch_ordinals: dict[int, tuple[int, ...]]
    #: Text words the golden run reads as data or stores to — persistent
    #: faults on these fork at checkpoint 0 (full behaviour).
    unsafe_words: frozenset[int]
    golden_instructions: int
    interval: int
    #: The golden run's dynamic basic-block trace — the same record the
    #: Figure-6 replay consumes (:func:`repro.cic.replay.replay_trace`).
    trace: BlockTrace | None = None
    #: Instruction counts of ``checkpoints``, for bisection.
    _marks: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._marks = [checkpoint.instructions for checkpoint in self.checkpoints]

    def checkpoint_before(self, ordinal: int) -> Checkpoint:
        """The latest checkpoint strictly before fetch *ordinal* fires."""
        index = bisect_right(self._marks, ordinal - 1) - 1
        return self.checkpoints[max(index, 0)]

    def fetch_counts_at(self, instructions: int, addresses) -> dict[int, int]:
        """Golden fetches of each address in the first *instructions*."""
        counts: dict[int, int] = {}
        for address in addresses:
            ordinals = self.fetch_ordinals.get(address)
            if ordinals:
                counts[address] = bisect_right(ordinals, instructions)
        return counts


def checkpoint_interval(golden_instructions: int) -> int:
    """Default spacing: ~:data:`DEFAULT_CHECKPOINT_COUNT` checkpoints."""
    return max(
        MIN_CHECKPOINT_INTERVAL,
        golden_instructions // DEFAULT_CHECKPOINT_COUNT,
    )


def build_golden_store(
    context: CampaignContext,
    warm: WarmProcess | None = None,
    interval: int | None = None,
) -> GoldenStore:
    """Record the monitored golden run with periodic checkpoints.

    Costs roughly one monitored run plus the snapshot copies; every
    injection of the campaign then starts from a checkpoint instead of
    instruction zero.
    """
    warm = warm or WarmProcess.from_context(context)
    if interval is None:
        interval = checkpoint_interval(context.golden_instructions)
    if interval < 1:
        raise ConfigurationError(f"checkpoint interval must be >= 1: {interval}")
    with obs.span("golden.record"):
        return _record_golden_store(context, warm, interval)


def _record_golden_store(
    context: CampaignContext, warm: WarmProcess, interval: int
) -> GoldenStore:
    checker = warm.fresh_checker(context)
    recorder = _FetchRecorder()
    simulator = FuncSim(
        context.program,
        monitor=checker,
        fetch_hook=recorder,
        inputs=context.inputs,
        max_instructions=context.instruction_budget,
        decode_cache=warm.decode_cache,
        collect_trace=True,
    )
    memory = _ReadRecordingMemory(
        simulator.state.memory,
        context.program.text_start,
        context.program.text_end,
    )
    simulator.state.memory = memory
    handler = checker.handler
    checkpoints = [
        Checkpoint(0, simulator.snapshot(), checker.snapshot(), handler.snapshot())
    ]
    mark = interval
    while True:
        result = simulator.run(until=mark)
        if result.finished:
            break
        checkpoints.append(
            Checkpoint(
                result.instructions,
                simulator.snapshot(),
                checker.snapshot(),
                handler.snapshot(),
            )
        )
        mark += interval
    if (
        result.console != context.golden_console
        or result.exit_code != context.golden_exit
    ):  # pragma: no cover - invariant
        raise ConfigurationError(
            "monitored golden run diverged from the recorded reference"
        )
    fetch_counts = {
        address: len(ordinals) for address, ordinals in recorder.ordinals.items()
    }
    unsafe = set(memory.touched_words)
    for address, reads in memory.word_reads.items():
        if reads > fetch_counts.get(address, 0):
            unsafe.add(address)
    obs.count("golden.stores_recorded")
    obs.count("golden.checkpoints", len(checkpoints))
    return GoldenStore(
        context=context,
        warm=warm,
        checkpoints=checkpoints,
        fetch_ordinals={
            address: tuple(ordinals)
            for address, ordinals in recorder.ordinals.items()
        },
        unsafe_words=frozenset(unsafe),
        golden_instructions=result.instructions,
        interval=interval,
        trace=result.block_trace,
    )


def _delivery_ordinal(store: GoldenStore, persistents, transients) -> int | None:
    """First golden fetch ordinal at which any part corrupts the pipeline.

    ``None`` means no part can ever deliver: the faulty run replays the
    golden run to completion.  Until the returned ordinal, the faulty run
    and the golden run are identical by construction, so ordinals read off
    the golden recording are exact for the faulty run too.
    """
    earliest: int | None = None

    def consider(ordinal: int) -> None:
        nonlocal earliest
        if earliest is None or ordinal < earliest:
            earliest = ordinal

    for part in persistents:
        for address in part.target_addresses():
            ordinals = store.fetch_ordinals.get(address)
            if ordinals:
                consider(ordinals[0])
    for part in transients:
        occurrence = getattr(part, "occurrence", 1)
        for address in part.target_addresses():
            ordinals = store.fetch_ordinals.get(address, ())
            if len(ordinals) >= occurrence:
                consider(ordinals[occurrence - 1])
    return earliest


def _apply_transient_position(store, transients, fork_instructions: int) -> None:
    """Put transient fetch counters where the golden run left them.

    At *fork_instructions* the faulty run is still pristine, so the golden
    recording's per-address fetch counts are exact for it.
    """
    if fork_instructions == 0:
        for part in transients:
            reset = getattr(part, "reset", None)
            if reset is not None:
                reset()
        return
    counts = store.fetch_counts_at(
        fork_instructions,
        [address for part in transients for address in part.target_addresses()],
    )
    for part in transients:
        part.seek(counts)


def run_one_golden(store: GoldenStore, fault) -> FaultResult:
    """Classify one injection by forking the golden run at the fault.

    Produces the identical :class:`FaultResult` (outcome, detail, and
    detection latency) as ``run_one(store.context, fault)`` — asserted by
    the differential tests — while executing only the instructions after
    the nearest checkpoint.
    """
    context = store.context
    persistents, transients = split_perturbation(fault)
    unsafe = any(
        address in store.unsafe_words
        for part in persistents
        for address in part.target_addresses()
    )
    delivery = _delivery_ordinal(store, persistents, transients)
    if delivery is None and not unsafe:
        # No fetch ever delivers the corruption and no data read sees it:
        # the faulty run is the golden run, byte for byte.
        obs.count("golden.benign_free")
        return FaultResult(fault, Outcome.BENIGN, "")
    seekable = all(hasattr(part, "seek") for part in transients)
    obs.count("golden.fork")
    if unsafe or not seekable:
        obs.count("golden.fork_at_zero")
        checkpoint = store.checkpoints[0]
    else:
        checkpoint = store.checkpoint_before(delivery)
    checker = store.warm.fresh_checker(context)
    checker.restore(checkpoint.checker)
    checker.handler.restore(checkpoint.handler)
    probe = make_probe(persistents, transients)
    simulator = FuncSim(
        context.program,
        monitor=checker,
        fetch_hook=probe,
        max_instructions=context.instruction_budget,
        decode_cache=store.warm.decode_cache,
        hang_detector=context.golden_instructions,
    )
    simulator.restore(checkpoint.sim)
    _apply_transient_position(store, transients, checkpoint.instructions)
    for part in persistents:
        part.apply_to_memory(simulator.state.memory)
    return classify_run(context, fault, simulator, probe)


def run_batch_golden(store: GoldenStore, faults) -> list[FaultResult]:
    """Classify a batch of injections, amortizing the pristine prefix.

    Semantically ``[run_one_golden(store, f) for f in faults]`` — the
    differential tests pin outcome, detail, and latency per element — but
    built for throughput:

    * **Prefix sharing.**  Faults are planned (delivery ordinal, unsafe
      flag) and executed in delivery order.  One *advancer* simulator
      replays the monitored pristine run forward, jumping via the nearest
      store checkpoint whenever that is ahead of its position, and parks
      exactly one instruction before each fault's first corrupted fetch.
      Faults delivered at the same ordinal share one micro-snapshot, and
      nearby fork points reuse the advanced prefix instead of re-running
      it from the last coarse checkpoint (the dominant cost of
      :func:`run_one_golden` at small checkpoint budgets).
    * **Object reuse.**  One runner simulator and one checker serve the
      whole batch; per fault they are restored from the micro-snapshot
      (restores are complete by construction — see
      ``tests/pipeline/test_snapshot.py``), so per-injection allocation
      drops out of the hot loop.

    Soundness: until the delivery ordinal the faulty run *is* the golden
    run, so parking the fork at ``delivery - 1`` changes nothing the
    classification can observe; detection latency is a fetch-ordinal
    difference and is fork-point invariant.  Unsafe targets (text read as
    data / stored to) and non-seekable transients take the
    :func:`run_one_golden` path unchanged.
    """
    context = store.context
    results: list[FaultResult | None] = [None] * len(faults)
    planned: list[tuple[int, object, tuple, tuple, int]] = []
    for index, fault in enumerate(faults):
        persistents, transients = split_perturbation(fault)
        unsafe = any(
            address in store.unsafe_words
            for part in persistents
            for address in part.target_addresses()
        )
        delivery = _delivery_ordinal(store, persistents, transients)
        if delivery is None and not unsafe:
            obs.count("golden.benign_free")
            results[index] = FaultResult(fault, Outcome.BENIGN, "")
        elif unsafe or not all(hasattr(part, "seek") for part in transients):
            obs.count("golden.batch.fallback")
            results[index] = run_one_golden(store, fault)
        else:
            planned.append((index, fault, persistents, transients, delivery))
    if not planned:
        return results
    planned.sort(key=lambda plan: plan[4])

    advancer_checker = store.warm.fresh_checker(context)
    advancer = FuncSim(
        context.program,
        monitor=advancer_checker,
        max_instructions=context.instruction_budget,
        decode_cache=store.warm.decode_cache,
    )
    advancer_position: int | None = None  # None until first restore

    runner_checker = store.warm.fresh_checker(context)
    runner = FuncSim(
        context.program,
        monitor=runner_checker,
        max_instructions=context.instruction_budget,
        decode_cache=store.warm.decode_cache,
        hang_detector=context.golden_instructions,
    )

    micro_at: int | None = None
    micro: tuple | None = None
    for index, fault, persistents, transients, delivery in planned:
        obs.count("golden.batch.fork")
        fork = delivery - 1
        if micro_at != fork:
            checkpoint = store.checkpoint_before(delivery)
            # Prefix accounting: per-fault forking would replay from the
            # coarse checkpoint every time; the advancer replays only the
            # gap from wherever it already stands.
            naive_prefix = max(fork - checkpoint.instructions, 0)
            if advancer_position is None or advancer_position > fork:
                # First use, or a fallback run_one_golden interleaved a
                # rewind: jump back via the coarse checkpoint.
                advancer.restore(checkpoint.sim)
                advancer_checker.restore(checkpoint.checker)
                advancer_checker.handler.restore(checkpoint.handler)
                advancer_position = checkpoint.instructions
            elif checkpoint.instructions > advancer_position:
                # A coarse checkpoint is ahead of the advancer: jumping
                # beats replaying, and keeps the batch no slower than
                # per-fault forking.
                advancer.restore(checkpoint.sim)
                advancer_checker.restore(checkpoint.checker)
                advancer_checker.handler.restore(checkpoint.handler)
                advancer_position = checkpoint.instructions
            replayed = max(fork - advancer_position, 0)
            if fork > advancer_position:
                advancer.run(until=fork)
                advancer_position = fork
            obs.count("golden.batch.micro_snapshots")
            obs.count("golden.batch.prefix_replayed", replayed)
            obs.count("golden.batch.prefix_saved", naive_prefix - replayed)
            micro = (
                advancer.snapshot(),
                advancer_checker.snapshot(),
                advancer_checker.handler.snapshot(),
            )
            micro_at = fork
        else:
            obs.count("golden.batch.micro_reuse")
        probe = make_probe(persistents, transients)
        runner.fetch_hook = probe
        runner.restore(micro[0])
        runner_checker.restore(micro[1])
        runner_checker.handler.restore(micro[2])
        _apply_transient_position(store, transients, fork)
        for part in persistents:
            part.apply_to_memory(runner.state.memory)
        results[index] = classify_run(context, fault, runner, probe)
    return results
