"""One execution harness: sharded, streamed, resumable evaluation runs.

The paper's evaluation is a single shape repeated at different
granularities — *run a monitored program under a perturbation and score
the outcome* — and every experiment that scales it (fault campaigns,
attack sweeps, whole design-space sweeps) needs the same machinery:
shard a work list into fixed chunks, evaluate shards on a worker pool
with warm per-worker state, stream records to a JSONL file with commit
markers, and resume an interrupted run from the last committed shard.
This module is that machinery, written **once**:

* :class:`Job` — what to run: the item list in canonical index order,
  the seed, the JSONL schema version and header payload (the client's
  identity: spec/space + fingerprint), and the shard plan (chunk size);
* :class:`WorkspaceFactory` — how to run it: a picklable recipe that
  builds one warm workspace per worker, executes one item against it,
  and encodes/decodes the client's record type for the wire;
* :class:`HarnessRunner` — the engine: serial and pooled execution,
  JSONL streaming, ``shard-done`` commit markers, kill/resume, and the
  worker-count-invariance guarantees;
* :class:`MeasureCache` — the workspace-layer memo for measures shared
  across the items a worker evaluates.

:class:`~repro.exec.runner.CampaignRunner` (items = perturbations,
records = :class:`~repro.exec.records.FaultRecord`) and
:class:`~repro.dse.engine.DseSweep` (items = monitor configurations,
records = :class:`~repro.dse.engine.DsePoint`) are thin clients; the two
resume protocols are one protocol and cannot diverge.  The on-disk JSONL
formats are exactly the pre-harness ones — files written before the
redesign load and resume byte-identically
(``tests/harness/test_artifact_compat.py``).

Guarantees (inherited by every client)
    * **Determinism** — shard boundaries depend only on the item list
      and ``chunk_size``; each shard's seed derives from ``(seed,
      shard_id)``; aggregates ordered by item index are identical for
      any ``workers`` value.
    * **Durability** — a shard's records only count once its
      ``shard-done`` marker is on disk; torn lines, orphaned records,
      and duplicate lines from interrupted runs are all resolved in the
      committed shard's favour on resume.
    * **Identity** — resume refuses a file whose header fingerprint,
      seed, total, chunk size, or schema version disagree with the job.

Checkpoint-store sharing
    With ``workers > 1`` the parent offers the factory's
    :meth:`~WorkspaceFactory.shared_payload` to the pool through
    :mod:`multiprocessing.shared_memory` (:mod:`repro.exec.sharing`):
    golden runs and checkpoint stores are recorded once and attached by
    every worker instead of re-recorded per worker.  Results are
    identical either way; ``share=False`` opts a runner out (the
    benchmarks measure both paths).

Telemetry
    Every run is observed through :mod:`repro.obs`: workers accumulate
    counters and spans process-locally and drain them per shard, the
    parent merges each delta at shard commit (riding the same seam the
    JSONL records cross), and a ``<out>.metrics.json`` manifest +
    metrics artifact lands beside the results file.  Runs with an
    ``out`` also stream a live ``<out>.events.jsonl`` event log at the
    same commit seam (:mod:`repro.obs.events`): run-started /
    shard-committed / worker-heartbeat / resume / run-finished lines
    that ``repro stats --follow`` tails in flight.  Strictly an
    observer — results files are byte-identical with telemetry on, off,
    or at any verbosity (``tests/obs/test_neutrality.py`` pins this).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ConfigurationError
from repro.obs import core as obs
from repro.obs.events import EventWriter, events_path
from repro.obs.metrics import (
    build_payload,
    environment,
    metrics_path,
    write_metrics,
)
from repro.exec.records import dump_line, load_lines, truncate_uncommitted
from repro.exec.sharing import SharedPayload, publish, release
from repro.exec.spec import shard_seed

#: Items per shard when a job does not choose: the unit of work
#: distribution *and* of resume.
DEFAULT_CHUNK_SIZE = 16

#: Header keys resume validates against the requesting job.
RESUME_KEYS = ("fingerprint", "seed", "total", "chunk_size", "version")

#: A shard task: (shard_id, first index, items, derived seed).
ShardTask = tuple[int, int, list, int]


def validate_plan(workers: int, chunk_size: int) -> None:
    """Constructor-time validation shared by the harness and its clients."""
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    if chunk_size < 1:
        raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")


class WorkspaceFactory:
    """Picklable recipe for per-worker state and per-item execution.

    Instances cross process boundaries (pool initializers receive them),
    so subclasses must stay plain data — everything heavyweight is built
    inside :meth:`build`, once per worker.
    """

    #: JSONL line type of this client's records (``"record"``/``"point"``).
    record_type: str = "record"
    #: Human label for diagnostics ("campaign results", "DSE sweep").
    kind: str = "results"

    def build(self, shared=None):
        """Materialize one worker's warm workspace.

        *shared* is the attached :meth:`shared_payload` value when the
        parent published one, else ``None``; a factory that supports
        sharing should seed its workspace from it instead of re-deriving.
        """
        raise NotImplementedError

    def shared_payload(self, workspace):
        """The picklable once-recorded state to ship to pool workers.

        Called on the parent's workspace before the pool starts; return
        ``None`` (the default) to disable sharing for this factory.
        """
        return None

    def run_item(self, workspace, index: int, shard: int, item):
        """Execute one item; return the client's record (with
        ``.index``/``.shard`` set to the given coordinates)."""
        raise NotImplementedError

    def run_items(self, workspace, start: int, shard: int, items: list) -> list:
        """Execute one shard's items; return their records in item order.

        The default runs :meth:`run_item` per item.  Clients whose
        backends have a *batched* kernel (e.g. the campaign factory
        grouping golden-backend injections that fork from the same
        checkpoint) override this to hand the kernel whole batches —
        the records must be exactly what the per-item path produces,
        which the scaling-invariance tier pins.
        """
        return [
            self.run_item(workspace, start + offset, shard, item)
            for offset, item in enumerate(items)
        ]

    def encode(self, record) -> dict:
        """Record -> its JSONL dict (``{"type": record_type, ...}``)."""
        raise NotImplementedError

    def decode(self, data: dict):
        """JSONL dict -> record (inverse of :meth:`encode`)."""
        raise NotImplementedError

    def check_resume_header(self, header: dict, out: str) -> None:
        """Client-specific resume validation beyond :data:`RESUME_KEYS`.

        Called after the generic identity checks pass; raise
        :class:`~repro.errors.ConfigurationError` to refuse the file
        (e.g. a DSE sweep refusing to mix record shapes from a
        cycle-measuring backend with functional-backend points).  The
        default accepts everything the generic checks accepted.
        """

    def describe(self) -> dict:
        """Client-specific manifest fields for the run's metrics artifact.

        Merged verbatim into the ``manifest`` of the ``.metrics.json``
        written beside the results file (backend, batch plan, workload
        set, ...).  Provenance only — nothing here may influence
        execution or the results artifact.  The default adds nothing.
        """
        return {}


@dataclass(slots=True)
class Job:
    """One harness run: items, identity, and the shard plan.

    ``payload`` carries the client's header identity — for campaigns the
    serialized spec and its fingerprint, for DSE sweeps the space, its
    fingerprint, and the informational backend — and is merged verbatim
    into the JSONL header, so the wire format is exactly what each
    client wrote before the harness existed.
    """

    factory: WorkspaceFactory
    items: list
    seed: int
    version: int
    payload: dict = field(default_factory=dict)
    chunk_size: int = DEFAULT_CHUNK_SIZE

    def __post_init__(self) -> None:
        validate_plan(workers=1, chunk_size=self.chunk_size)

    @property
    def total(self) -> int:
        return len(self.items)

    def header(self) -> dict:
        """The JSONL header line (first line of every results file)."""
        return {
            "type": "header",
            "version": self.version,
            "seed": self.seed,
            "total": self.total,
            "chunk_size": self.chunk_size,
            **self.payload,
        }

    def shards(self) -> list[ShardTask]:
        """The shard plan: chunked items with derived per-shard seeds.

        Boundaries depend only on the item list and ``chunk_size`` —
        never on worker count or completion order — which is what makes
        every aggregate worker-count invariant.
        """
        return [
            (
                shard_id,
                start,
                self.items[start : start + self.chunk_size],
                shard_seed(self.seed, shard_id),
            )
            for shard_id, start in enumerate(
                range(0, len(self.items), self.chunk_size)
            )
        ]


@dataclass(slots=True)
class HarnessResult:
    """Outcome of one :meth:`HarnessRunner.run` call.

    ``telemetry`` and ``shard_stats`` carry the run-level observation
    (the merged :class:`~repro.obs.core.Telemetry` snapshot and the
    per-shard commit metadata) when telemetry was enabled — the same
    material the ``.metrics.json`` artifact is built from, exposed so
    in-process clients (e.g. :func:`repro.coverage.runner.run_coverage`)
    can aggregate runs that never named an ``out`` file.  Both are empty
    with telemetry off; neither influences the records.
    """

    job: Job
    records: list = field(default_factory=list)
    out: str | None = None
    telemetry: dict | None = None
    shard_stats: list = field(default_factory=list)

    @property
    def total(self) -> int:
        return self.job.total

    @property
    def complete(self) -> bool:
        return len(self.records) == self.total

    def ordered(self) -> list:
        """Records by canonical item index — identical for any worker
        count and shard completion order."""
        return sorted(self.records, key=lambda record: record.index)


class MeasureCache:
    """Per-worker keyed memo: measure once, reuse across items.

    The workspace-layer cache the DSE engine's measures made necessary,
    hoisted into the harness so every client's workspace shares one
    implementation: measures keyed by whatever subset of an item's
    configuration they depend on are computed on first request and
    replayed for every later item that agrees on the key.  A cache can
    be seeded from a shared payload (:meth:`WorkspaceFactory.
    shared_payload`), so once-recorded parent state short-circuits the
    first request too.
    """

    __slots__ = ("_data",)

    def __init__(self, seed: dict | None = None):
        self._data: dict = dict(seed) if seed else {}

    def get(self, key, build: Callable):
        """The cached value for *key*, computing it via *build()* once."""
        try:
            value = self._data[key]
        except KeyError:
            obs.count("measure_cache.miss")
            value = build()
            self._data[key] = value
            return value
        obs.count("measure_cache.hit")
        return value

    def __contains__(self, key) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def snapshot(self) -> dict:
        """A shallow copy suitable for seeding another cache."""
        return dict(self._data)


# ----------------------------------------------------------------------
# Pool workers (module-level so they pickle under any start method)
# ----------------------------------------------------------------------

_WORKER_FACTORY: WorkspaceFactory | None = None
_WORKER_WORKSPACE = None


def _pool_init(factory: WorkspaceFactory, ticket: SharedPayload | None) -> None:
    """Pool initializer: materialize this worker's workspace once —
    from the parent's shared payload when one was published, otherwise
    from scratch out of the picklable factory."""
    global _WORKER_FACTORY, _WORKER_WORKSPACE
    # Under fork the worker inherits the parent's accumulated telemetry;
    # clear it so the first shard's drained delta holds only what this
    # worker measured itself (parent-side counts are merged parent-side).
    obs.local().clear()
    _WORKER_FACTORY = factory
    shared = ticket.attach() if ticket is not None else None
    _WORKER_WORKSPACE = factory.build(shared=shared)


def _run_shard(
    factory: WorkspaceFactory, workspace, task: ShardTask
) -> tuple[int, list, dict]:
    """Execute one shard; return ``(shard_id, records, meta)``.

    ``meta`` is the execution-side observation the parent folds in at
    shard commit: which worker ran the shard, its wall seconds and record
    count, and — when telemetry is enabled — the worker's drained
    :class:`~repro.obs.core.Telemetry` delta (kernel counters and spans
    accumulated since the previous drain; a worker's warm-up counters
    ride along with its first shard).  Draining per shard is what keeps
    persistent pool workers from leaking telemetry across runs.
    """
    shard_id, start, items, _seed = task
    telemetry = obs.local()
    started = time.perf_counter()
    with telemetry.span("shard"):
        records = factory.run_items(workspace, start, shard_id, items)
    meta = {
        "shard": shard_id,
        "worker": os.getpid(),
        "seconds": time.perf_counter() - started,
        "records": len(records),
    }
    if telemetry.enabled:
        meta["telemetry"] = telemetry.drain()
    return shard_id, records, meta


def _pool_shard(task: ShardTask) -> tuple[int, list, dict]:
    assert _WORKER_WORKSPACE is not None, "pool worker used before _pool_init"
    return _run_shard(_WORKER_FACTORY, _WORKER_WORKSPACE, task)


# ----------------------------------------------------------------------
# The runner
# ----------------------------------------------------------------------


class HarnessRunner:
    """Execute one :class:`Job`: shard, stream, commit, resume.

    The single implementation of the execution contract every client
    inherits — see the module docstring for the guarantees.
    """

    def __init__(
        self,
        job: Job,
        workers: int = 1,
        workspace_supplier: Callable | None = None,
        share: bool = True,
        persistent: bool = True,
    ):
        validate_plan(workers=workers, chunk_size=job.chunk_size)
        self.job = job
        self.workers = workers
        self.share = share
        # Persistent runs draw workers from the process-wide warm pool
        # registry (repro.exec.pool): the pool for this job's factory is
        # built once and reused across shards, runs, and campaigns.
        # persistent=False keeps the old build-and-tear-down pool per
        # run (the invariance tests compare both paths).
        self.persistent = persistent
        # An optional supplier lets the client hand over a parent-side
        # workspace it can build more cheaply than the factory (e.g.
        # around a prebuilt campaign context) — still lazily, so runs
        # that touch no workspace never pay for one.
        self._supplier = workspace_supplier
        self._workspace = None

    @property
    def workspace(self):
        """Parent-side workspace (lazy): the serial execution path and
        the source of the pool's shared payload."""
        if self._workspace is None:
            build = self._supplier or self.job.factory.build
            self._workspace = build()
        return self._workspace

    # ------------------------------------------------------------------

    def _load_resume(self, out: str) -> tuple[set[int], list] | None:
        """Committed shards and their records from a previous run's file.

        Returns ``None`` for an empty file (a run that died before the
        header flushed): the job simply starts fresh.  A shard only
        counts as committed if its marker is present *and* exactly its
        expected item indexes decode — a shard with corrupted or
        orphaned record lines is re-run, and duplicate lines (from an
        earlier run interrupted mid-shard and later re-run) collapse to
        the last committed copy.
        """
        factory = self.job.factory
        entries = load_lines(out)
        if not entries:
            return None
        if entries[0].get("type") != "header":
            raise ConfigurationError(f"{out}: not a {factory.kind} file")
        header = entries[0]
        expected = self.job.header()
        for key in RESUME_KEYS:
            if header.get(key) != expected[key]:
                raise ConfigurationError(
                    f"{out}: cannot resume — {key} is {header.get(key)!r}, "
                    f"this {factory.kind} has {expected[key]!r}"
                )
        factory.check_resume_header(header, out)
        marked = {
            entry["shard"]
            for entry in entries
            if entry.get("type") == "shard-done"
        }
        by_shard: dict[int, dict[int, object]] = {}
        for entry in entries:
            if entry.get("type") == factory.record_type and entry["shard"] in marked:
                record = factory.decode(entry)
                by_shard.setdefault(record.shard, {})[record.index] = record
        done: set[int] = set()
        records: list = []
        total = self.job.total
        for shard_id in marked:
            start = shard_id * self.job.chunk_size
            expected_indexes = set(
                range(start, min(start + self.job.chunk_size, total))
            )
            found = by_shard.get(shard_id, {})
            if set(found) == expected_indexes:
                done.add(shard_id)
                records.extend(found.values())
        return done, records

    # ------------------------------------------------------------------

    def run(
        self,
        out: str | os.PathLike | None = None,
        resume: bool = False,
        stop_after_shards: int | None = None,
    ) -> HarnessResult:
        """Execute the job; return the (possibly partial) result.

        Parameters
        ----------
        out:
            JSONL results path.  Required for ``resume``.
        resume:
            Replay committed shards from *out* and run only the rest.
        stop_after_shards:
            Execute at most this many new shards, then return a partial
            result — the test/CLI hook for simulating interruption.
        """
        job = self.job
        out_path = os.fspath(out) if out is not None else None
        if resume and out_path is None:
            raise ConfigurationError("resume=True requires out=")

        # Run-level telemetry is a dedicated instance: parent spans live
        # here, worker deltas merge in at shard commit, and the process-
        # local accumulator is drained around the run so client-side setup
        # (contexts, corpora) and parent-side counters (pool reuse, shm
        # publishes) are folded in without leaking across runs.  Pure
        # observation: the results artifact is byte-identical either way.
        collect = obs.enabled()
        telem = obs.Telemetry(enabled=collect)
        shard_stats: list[dict] = []
        executed = 0
        if collect:
            telem.merge(obs.local().drain())

        done_shards: set[int] = set()
        records: list = []
        resuming = resume and out_path is not None and os.path.exists(out_path)
        with telem.span("run"):
            if resuming:
                with telem.span("resume"):
                    truncate_uncommitted(out_path)
                    loaded = self._load_resume(out_path)
                if loaded is None:
                    resuming = False  # empty file: died before the header
                else:
                    done_shards, records = loaded
                    telem.count("harness.resume.shards", len(done_shards))
                    telem.count("harness.resume.records", len(records))

            plan = job.shards()
            pending = [task for task in plan if task[0] not in done_shards]
            if stop_after_shards is not None:
                pending = pending[:stop_after_shards]

            # The event log rides the same switch as the rest of the
            # telemetry (pure observer; repro.obs.events) and the same
            # lifecycle as the results file: fresh runs truncate, resumed
            # sessions append after the committed prefix — terminating a
            # tail torn by a mid-append kill.
            events = None
            if out_path is not None and collect:
                with telem.span("events"):
                    events = EventWriter(
                        events_path(out_path), fresh=not resuming
                    )

            handle = None
            if out_path is not None:
                handle = open(
                    out_path, "a" if resuming else "w", encoding="utf-8"
                )
                if not resuming:
                    handle.write(dump_line(job.header()))
                    handle.flush()

            progress = {
                "shards_done": len(done_shards),
                "total": job.total,
                "cache_hits": 0,
                "cache_misses": 0,
                "workers": {},
            }
            exec_started = time.perf_counter()
            if events is not None:
                with telem.span("events"):
                    events.emit(
                        "run-started",
                        kind=job.factory.kind,
                        seed=job.seed,
                        total=job.total,
                        chunk_size=job.chunk_size,
                        workers=self.workers,
                        shards_total=len(plan),
                        shards_pending=len(pending),
                        records_done=len(records),
                        resumed=resuming,
                    )
                    if resuming:
                        events.emit(
                            "resume",
                            shards_done=len(done_shards),
                            records_done=len(records),
                        )

            def commit(shard_id: int, shard_records: list, meta: dict) -> None:
                nonlocal executed
                records.extend(shard_records)
                executed += len(shard_records)
                telem.count("harness.shards.executed")
                telem.count("harness.records.executed", len(shard_records))
                if collect:
                    telem.merge(meta.get("telemetry"))
                    shard_stats.append(meta)
                if handle is not None:
                    for record in shard_records:
                        handle.write(dump_line(job.factory.encode(record)))
                    handle.write(
                        dump_line(
                            {
                                "type": "shard-done",
                                "shard": shard_id,
                                "seed": shard_seed(job.seed, shard_id),
                            }
                        )
                    )
                    handle.flush()
                if events is not None:
                    self._emit_commit(
                        events, progress, meta, shard_id,
                        len(shard_records), len(records), len(plan),
                        executed, time.perf_counter() - exec_started,
                    )

            try:
                with telem.span("execute"):
                    if self.workers == 1 or len(pending) <= 1:
                        workspace = self.workspace
                        for task in pending:
                            commit(*_run_shard(job.factory, workspace, task))
                    else:
                        self._run_pool(pending, commit)
                if events is not None:
                    wall = time.perf_counter() - exec_started
                    with telem.span("events"):
                        events.emit(
                            "run-finished",
                            records_done=len(records),
                            total=job.total,
                            complete=len(records) == job.total,
                            shards_done=progress["shards_done"],
                            shards_total=len(plan),
                            wall_seconds=round(wall, 6),
                            throughput=(
                                round(executed / wall, 3) if wall > 0 else 0.0
                            ),
                        )
            finally:
                if handle is not None:
                    handle.close()
                if events is not None:
                    events.close()

        if collect:
            telem.merge(obs.local().drain())
            execute = telem.spans.get("run/execute")
            if executed and execute and execute["seconds"] > 0:
                telem.gauge(
                    "run.records_per_second", executed / execute["seconds"]
                )
            if out_path is not None:
                self._write_metrics(out_path, telem, shard_stats, resuming)

        return HarnessResult(
            job=job,
            records=records,
            out=out_path,
            telemetry=telem.snapshot() if collect else None,
            shard_stats=shard_stats,
        )

    @staticmethod
    def _emit_commit(
        events: EventWriter,
        progress: dict,
        meta: dict,
        shard_id: int,
        shard_records: int,
        records_done: int,
        shards_total: int,
        executed: int,
        elapsed: float,
    ) -> None:
        """Emit the ``shard-committed`` + ``worker-heartbeat`` pair.

        Throughput counts only *this session's* records over its own
        elapsed time (resumed records were free), so the ETA is honest
        for resumed runs too.
        """
        progress["shards_done"] += 1
        counters = (meta.get("telemetry") or {}).get("counters", {})
        progress["cache_hits"] += counters.get("measure_cache.hit", 0)
        progress["cache_misses"] += counters.get("measure_cache.miss", 0)
        rate = executed / elapsed if elapsed > 0 else 0.0
        total = progress.get("total")
        events.emit(
            "shard-committed",
            shard=shard_id,
            worker=meta["worker"],
            seconds=round(meta["seconds"], 6),
            records=shard_records,
            records_done=records_done,
            total=total,
            shards_done=progress["shards_done"],
            shards_total=shards_total,
            throughput=round(rate, 3),
            eta_seconds=(
                round((total - records_done) / rate, 3)
                if rate > 0 and total is not None
                else None
            ),
            cache_hits=progress["cache_hits"],
            cache_misses=progress["cache_misses"],
        )
        worker = progress["workers"].setdefault(
            meta["worker"], {"shards": 0, "records": 0, "seconds": 0.0}
        )
        worker["shards"] += 1
        worker["records"] += shard_records
        worker["seconds"] += meta["seconds"]
        events.emit(
            "worker-heartbeat",
            worker=meta["worker"],
            shards=worker["shards"],
            records=worker["records"],
            seconds=round(worker["seconds"], 6),
            throughput=(
                round(worker["records"] / worker["seconds"], 3)
                if worker["seconds"] > 0
                else 0.0
            ),
        )

    def _write_metrics(
        self, out_path: str, telem, shard_stats: list[dict], resumed: bool
    ) -> None:
        """Emit the ``.metrics.json`` sibling of a finished run's file."""
        job = self.job
        manifest = {
            **environment(),
            "kind": job.factory.kind,
            "seed": job.seed,
            "total": job.total,
            "chunk_size": job.chunk_size,
            "version": job.version,
            "fingerprint": job.payload.get("fingerprint"),
            "workers": self.workers,
            "share": self.share,
            "persistent": self.persistent,
            "resumed": bool(resumed),
            "out": os.path.basename(out_path),
            **job.factory.describe(),
        }
        write_metrics(
            metrics_path(out_path),
            build_payload(manifest, telem, shard_stats),
        )

    def _shared_payload(self):
        return self.job.factory.shared_payload(self.workspace)

    def _run_pool(self, pending: list[ShardTask], commit) -> None:
        if self.persistent:
            from repro.exec.pool import acquire

            # Full worker count on purpose: a persistent pool outlives
            # this run, so it is sized for the job family, not for the
            # pending remainder of one resume.
            pool = acquire(
                self.job.factory,
                self.workers,
                self.share,
                self._shared_payload if self.share else lambda: None,
            )
            for shard_id, shard_records, meta in pool.imap_shards(pending):
                commit(shard_id, shard_records, meta)
            return
        import multiprocessing

        method = (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        context = multiprocessing.get_context(method)
        workers = min(self.workers, len(pending))
        ticket = None
        if self.share:
            payload = self._shared_payload()
            if payload is not None:
                ticket = publish(payload)
        try:
            with context.Pool(
                processes=workers,
                initializer=_pool_init,
                initargs=(self.job.factory, ticket),
            ) as pool:
                for shard_id, shard_records, meta in pool.imap_unordered(
                    _pool_shard, pending
                ):
                    commit(shard_id, shard_records, meta)
        finally:
            release(ticket)
