"""Pluggable injection-execution backends and their registry.

A *backend* decides **how** one classified injection is executed — never
*what* the answer is.  Every backend consumes the same inputs (a
:class:`~repro.faults.campaign.CampaignContext` plus a per-worker
:class:`~repro.faults.campaign.WarmProcess`) and produces a
:class:`~repro.faults.campaign.FaultResult`; the functional pair is
differentially pinned to identical results, the cycle-level pair to each
other, so swapping backends is purely a throughput / fidelity knob:

==================  =====================================================
name                execution strategy
==================  =====================================================
``full``            re-simulate every injection from instruction zero on
                    :class:`~repro.pipeline.funcsim.FuncSim`
``golden``          fork the recorded functional golden run at the
                    nearest checkpoint before the first corrupted fetch
                    (:mod:`repro.exec.golden`)
``pipeline-golden`` the same fork-at-fault design on the cycle-level
                    :class:`~repro.pipeline.cpu.PipelineCPU`
                    (:mod:`repro.exec.pipeline_golden`) — slower than
                    the functional backends but every verdict and the
                    pristine run carry **measured cycles**, which is what
                    lets the DSE score overhead per penalty model by
                    measurement
==================  =====================================================

Backends self-describe through two small hooks the execution harness
calls: :meth:`Backend.prepare` builds the per-worker state once (e.g.
record the golden run and its checkpoints), :meth:`Backend.run` executes
one injection against it.  Registering a new backend is one
:func:`register_backend` call; every consumer — ``CampaignSpec``
validation, the harness workspaces, the DSE engine, the CLI ``--backend``
choices — resolves names through this registry.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.faults.campaign import CampaignContext, FaultResult, WarmProcess, run_one
from repro.exec.golden import build_golden_store, run_batch_golden, run_one_golden
from repro.exec.pipeline_golden import (
    build_pipeline_golden_store,
    run_batch_pipeline_golden,
    run_one_pipeline_golden,
)


class Backend:
    """One injection-execution strategy (see the module table)."""

    #: Registry key, CLI value, and the ``backend`` field of specs/headers.
    name: str = ""
    #: One-line description surfaced in ``--help`` and docs.
    description: str = ""
    #: Whether :meth:`run` fills :attr:`FaultResult.cycles` with measured
    #: cycle counts (the cycle-level backends).
    measures_cycles: bool = False

    def prepare(self, context: CampaignContext, warm: WarmProcess):
        """Build the per-worker execution state for *context* once."""
        raise NotImplementedError

    def run(self, state, fault) -> FaultResult:
        """Execute and classify one injection against prepared *state*."""
        raise NotImplementedError

    def run_batch(self, state, faults) -> list[FaultResult]:
        """Execute a batch of injections against prepared *state*.

        Semantically ``[self.run(state, f) for f in faults]`` — and that
        is the default — but backends with a batched kernel override this
        to amortize per-injection setup (object construction, pristine
        prefix replay) across the batch.  The scaling-invariance tier
        pins batched ≡ unbatched per element.
        """
        return [self.run(state, fault) for fault in faults]


@dataclass(frozen=True)
class FullBackend(Backend):
    name = "full"
    description = "re-simulate every injection from instruction zero"

    def prepare(self, context, warm):
        return (context, warm)

    def run(self, state, fault):
        context, warm = state
        return run_one(context, fault, warm=warm)


@dataclass(frozen=True)
class GoldenBackend(Backend):
    name = "golden"
    description = "fork the recorded functional golden run at the fault"

    def prepare(self, context, warm):
        return build_golden_store(context, warm)

    def run(self, state, fault):
        return run_one_golden(state, fault)

    def run_batch(self, state, faults):
        return run_batch_golden(state, faults)


@dataclass(frozen=True)
class PipelineGoldenBackend(Backend):
    name = "pipeline-golden"
    description = "fork the cycle-level pipeline at the fault (measured cycles)"
    measures_cycles = True

    def prepare(self, context, warm):
        return build_pipeline_golden_store(context, warm)

    def run(self, state, fault):
        return run_one_pipeline_golden(state, fault)

    def run_batch(self, state, faults):
        return run_batch_pipeline_golden(state, faults)


_REGISTRY: dict[str, Backend] = {}


def register_backend(backend: Backend) -> Backend:
    """Add *backend* to the registry (name collisions are refused)."""
    if not backend.name:
        raise ConfigurationError("backend needs a non-empty name")
    if backend.name in _REGISTRY:
        raise ConfigurationError(f"backend {backend.name!r} already registered")
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> Backend:
    """Resolve a backend by registry name."""
    backend = _REGISTRY.get(name)
    if backend is None:
        raise ConfigurationError(
            f"unknown backend {name!r}; choose from: {', '.join(_REGISTRY)}"
        )
    return backend


def backend_names() -> tuple[str, ...]:
    """Registered backend names, in registration order."""
    return tuple(_REGISTRY)


register_backend(FullBackend())
register_backend(GoldenBackend())
register_backend(PipelineGoldenBackend())

#: Historical alias: modules used to import the valid-name tuple from
#: :mod:`repro.exec.spec`.  Frozen at import time on purpose — the three
#: built-ins are always registered above before anyone reads it; late
#: registrations should query :func:`backend_names` instead.
BACKENDS = backend_names()
