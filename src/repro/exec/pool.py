"""Persistent warm worker pools: spin up once, reuse everywhere.

Before this module, every :meth:`HarnessRunner.run` call that went
parallel built a fresh :class:`multiprocessing.Pool`, re-published the
parent's shared payload, had every worker re-attach and re-materialize
its warm workspace, and tore the whole thing down when the run finished.
For the checkpointed backends that warm state *is* the campaign's fixed
cost — golden run, FHT, decode cache, checkpoint store — so benchmarks
that ran one campaign per cell measured pool spin-up, not execution, and
adding workers made throughput **fall**
(``results/BENCH_bench_campaign_scaling.json`` before this change:
golden 1071 → 671 faults/s from 1 to 4 workers).

A :class:`WarmPool` is created once per ``(factory, workers, share)``
identity and kept for the life of the process:

* workers materialize their workspace exactly once, in the pool
  initializer — from the parent's shared-memory payload when one is
  published (:mod:`repro.exec.sharing`), else from the picklable factory;
* every later harness run whose job carries an *equal* factory (same
  pickle) reuses the live pool: no fork/spawn, no re-publish, no
  re-attach, no golden-run re-recording — shards go straight to warm
  workers;
* campaigns and DSE sweeps share the mechanism because identity is the
  factory itself, not the client type.

Identity is the factory's pickle: two runners whose specs/spaces are
equal reuse one pool; any difference (another workload, another backend,
another batch plan) transparently gets its own.  The registry holds at
most :data:`MAX_POOLS` pools and evicts least-recently-used beyond that,
so long pytest sessions cannot accumulate worker processes.  All pools
are torn down at interpreter exit (and by :func:`shutdown_pools`, which
tests call to assert reuse from a clean slate).

Correctness is unaffected by reuse: workspaces are read-only recipes for
per-item execution (per-injection state is rebuilt or restored inside
the kernels), and the scaling/invariance tier pins that a reused pool
produces byte-identical records to a cold one.
"""

from __future__ import annotations

import atexit
import pickle
from typing import Callable

from repro.obs import core as obs
from repro.exec.sharing import SharedPayload, publish, release

#: Live pools kept before least-recently-used eviction kicks in.  Four
#: pools of at most a few workers each bounds stray processes while
#: letting a bench sweep (three backends) plus a test file coexist.
MAX_POOLS = 4


def _factory_key(factory, workers: int, share: bool) -> tuple:
    """Pool identity: the factory's pickled value plus the pool shape.

    Pickle equality is conservative — a spurious mismatch only costs a
    fresh pool, never a wrong reuse.
    """
    return (
        type(factory).__qualname__,
        pickle.dumps(factory, protocol=pickle.HIGHEST_PROTOCOL),
        workers,
        share,
    )


class WarmPool:
    """One persistent pool of workers warmed for one factory."""

    def __init__(self, key: tuple, factory, workers: int, ticket: SharedPayload | None):
        import multiprocessing

        from repro.exec.harness import _pool_init

        method = (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        context = multiprocessing.get_context(method)
        self.key = key
        self.workers = workers
        #: Harness runs served (1 = just built): tests and benchmarks
        #: read this to assert a pool was actually reused.
        self.runs = 0
        self._ticket = ticket
        self._pool = context.Pool(
            processes=workers,
            initializer=_pool_init,
            initargs=(factory, ticket),
        )

    def imap_shards(self, tasks):
        """Dispatch shard tasks to the warm workers, unordered."""
        from repro.exec.harness import _pool_shard

        self.runs += 1
        return self._pool.imap_unordered(_pool_shard, tasks)

    def close(self) -> None:
        """Tear the pool down and release its shared payload."""
        self._pool.terminate()
        self._pool.join()
        release(self._ticket)
        self._ticket = None


#: Insertion-ordered registry; order doubles as the LRU list.
_POOLS: dict[tuple, WarmPool] = {}


def acquire(
    factory,
    workers: int,
    share: bool,
    payload_supplier: Callable[[], object | None],
) -> WarmPool:
    """The warm pool for *factory*, creating (and caching) it on first use.

    *payload_supplier* is only invoked when a pool is actually built and
    ``share`` is set — reusing a pool never touches the parent workspace,
    which is what makes repeat campaigns skip the recording entirely.
    """
    key = _factory_key(factory, workers, share)
    pool = _POOLS.pop(key, None)
    if pool is None:
        obs.count("pool.build")
        ticket = None
        if share:
            payload = payload_supplier()
            if payload is not None:
                ticket = publish(payload)
        pool = WarmPool(key, factory, workers, ticket)
        while len(_POOLS) >= MAX_POOLS:
            obs.count("pool.evict")
            _POOLS.pop(next(iter(_POOLS))).close()
    else:
        obs.count("pool.reuse")
    _POOLS[key] = pool  # (re)append: most recently used sits last
    return pool


def pool_stats() -> dict[tuple, int]:
    """Live pools and their run counts (introspection for tests/benchmarks)."""
    return {key: pool.runs for key, pool in _POOLS.items()}


def shutdown_pools() -> None:
    """Close every live pool (idempotent; also runs at interpreter exit)."""
    while _POOLS:
        _, pool = _POOLS.popitem()
        pool.close()


atexit.register(shutdown_pools)
