"""Picklable campaign specification.

Simulators, monitors, and assembled :class:`~repro.asm.program.Program`
images never cross a process boundary: a :class:`CampaignSpec` carries only
plain data — a workload name (or raw assembly source) plus the monitor
configuration — and every worker process *re-derives* its own program,
golden run, and :class:`~repro.faults.campaign.CampaignContext` from it.
Because the derivation is deterministic, a context built in any process is
equivalent, and campaign results are reproducible regardless of how many
workers the pool uses.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass

from repro.asm.assembler import assemble
from repro.asm.program import Program
from repro.errors import ConfigurationError
from repro.exec.backends import BACKENDS, get_backend
from repro.faults.campaign import CampaignContext, FaultCampaign, build_context
from repro.utils.seeds import derive_seed

#: Schema version stamped into headers; bump on incompatible changes.
#: v2: the spec gained ``backend`` (full-replay vs golden-trace fork).
#: v3: HANG record details are canonical (``instruction limit N
#: exceeded``, no pc suffix) — files from earlier versions would mix
#: formats on resume, so the handshake refuses them.  The harness
#: redesign (one ``HarnessRunner`` behind both clients) kept the format
#: bit-for-bit: v3 files written before it resume unchanged.
SPEC_VERSION = 3

__all__ = ["BACKENDS", "CampaignSpec", "SPEC_VERSION", "shard_seed"]


@dataclass(frozen=True, slots=True)
class CampaignSpec:
    """Self-contained, picklable description of one fault campaign.

    Exactly one of *workload* (a name from
    :data:`repro.workloads.suite.WORKLOAD_NAMES`, built at *scale*) or
    *source* (raw assembly text) selects the program under test.  The
    remaining fields configure the monitor and the hang budget, mirroring
    :class:`~repro.faults.campaign.FaultCampaign`.

    *backend* names a registered execution backend
    (:mod:`repro.exec.backends`) — ``"full"`` re-simulates from
    instruction zero, ``"golden"`` forks the recorded golden run at the
    nearest checkpoint before the fault (:mod:`repro.exec.golden`), and
    ``"pipeline-golden"`` does the same on the cycle-level pipeline with
    measured cycle counts.  The functional pair produces identical
    :class:`~repro.faults.campaign.FaultResult`\\ s; the choice is a
    throughput / fidelity knob and is recorded in results-file headers.
    """

    workload: str | None = None
    scale: str = "small"
    source: str | None = None
    name: str | None = None
    iht_size: int = 8
    hash_name: str = "xor"
    policy_name: str = "lru_half"
    inputs: tuple[int, ...] | None = None
    instruction_budget_factor: int = 20
    backend: str = "full"

    def __post_init__(self) -> None:
        if (self.workload is None) == (self.source is None):
            raise ConfigurationError(
                "CampaignSpec needs exactly one of workload= or source="
            )
        get_backend(self.backend)  # raises on unknown names

    # ------------------------------------------------------------------
    # Derivation (runs identically in the parent and in every worker)
    # ------------------------------------------------------------------

    @property
    def label(self) -> str:
        """Human-readable campaign target, e.g. ``sha-tiny``."""
        if self.workload is not None:
            return f"{self.workload}-{self.scale}"
        return self.name or "inline-source"

    def build_program(self) -> Program:
        if self.workload is not None:
            from repro.workloads.suite import build

            return build(self.workload, self.scale)
        return assemble(self.source, name=self.label)

    def resolved_inputs(self) -> list[int] | None:
        """Explicit inputs, else the workload's registered input queue."""
        if self.inputs is not None:
            return list(self.inputs)
        if self.workload is not None:
            from repro.workloads.suite import workload_inputs

            return workload_inputs(self.workload, self.scale)
        return None

    def build_context(self) -> CampaignContext:
        """Assemble the program and run the golden reference simulation."""
        return build_context(
            self.build_program(),
            iht_size=self.iht_size,
            hash_name=self.hash_name,
            policy_name=self.policy_name,
            inputs=self.resolved_inputs(),
            instruction_budget_factor=self.instruction_budget_factor,
        )

    def build_campaign(self) -> FaultCampaign:
        """A full :class:`FaultCampaign` (context + fault generators)."""
        return FaultCampaign.from_context(self.build_context())

    # ------------------------------------------------------------------
    # Serialization (JSONL headers, resume validation)
    # ------------------------------------------------------------------

    def to_json(self) -> dict:
        data = asdict(self)
        if data["inputs"] is not None:
            data["inputs"] = list(data["inputs"])
        return data

    @classmethod
    def from_json(cls, data: dict) -> "CampaignSpec":
        fields = dict(data)
        if fields.get("inputs") is not None:
            fields["inputs"] = tuple(fields["inputs"])
        return cls(**fields)

    def fingerprint(self) -> str:
        """Stable digest used to refuse resuming onto a different spec."""
        canonical = json.dumps(self.to_json(), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def shard_seed(campaign_seed: int, shard_id: int) -> int:
    """Deterministic per-shard seed, independent of worker count.

    Derived by hashing ``(campaign_seed, shard_id)`` so it depends only on
    the campaign seed and the shard's position in the fault list — never
    on which worker ran it or in what order shards completed.  Today's
    :func:`~repro.faults.campaign.run_one` kernel is fully determined by
    ``(spec, fault)`` and consumes no randomness; the per-shard seed is
    derived and recorded in ``shard-done`` markers so that future
    *stochastic* fault models (e.g. randomized transient timing) stay
    reproducible under any pool layout without a schema change.
    """
    return derive_seed(f"{campaign_seed}:{shard_id}")
