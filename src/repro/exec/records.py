"""Campaign result records and their JSONL wire format.

A campaign results file is JSON Lines: one JSON object per line, written
append-only so an interrupted campaign loses at most the shard in flight.
Three line types exist, discriminated by ``"type"``:

``header`` (first line of the file)
    ``{"type": "header", "version": 1, "spec": {...}, "fingerprint": str,
    "seed": int, "total": int, "chunk_size": int}`` — the campaign's
    identity.  Resume refuses a file whose fingerprint, seed, total, or
    chunk size differ from the requested campaign.

``record`` (one per completed injection)
    ``{"type": "record", "index": int, "shard": int, "fault": {...},
    "outcome": str, "detail": str, "latency": int|null}`` — *index* is the
    perturbation's position in the campaign's list (the global ordering
    key), *shard* the chunk it was executed in, *outcome* one of the
    :class:`Outcome` values (``detected-cic``, ``detected-baseline``,
    ``crashed``, ``hang``, ``silent-corruption``, ``benign``), *latency*
    the detection latency in instructions (``null`` when not detected; the
    key is absent in files written before it existed).

``shard-done`` (one per completed shard)
    ``{"type": "shard-done", "shard": int, "seed": int}`` — the commit
    marker resume trusts: records from a shard without its marker are
    discarded and the shard re-runs.

Perturbation payloads serialize the two fault models, attack scenarios,
and multi-part tuples::

    {"kind": "bitflip", "address": int, "bits": [int, ...]}
    {"kind": "transient", "address": int, "bits": [...], "occurrence": int}
    {"kind": "attack", "class": str, "label": str,
     "patches": [{"address": int, "word": int}, ...],
     "transient": bool, "occurrence": int}
    {"kind": "multi", "parts": [{...}, {...}]}
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.obs import core as obs
from repro.attacks.scenario import AttackScenario
from repro.errors import ConfigurationError
from repro.faults.campaign import FaultResult, Outcome
from repro.faults.models import BitFlipFault, TransientFetchFault


def fault_to_json(fault) -> dict:
    """Serialize a perturbation (or tuple of them) to its wire dict."""
    if isinstance(fault, tuple):
        return {"kind": "multi", "parts": [fault_to_json(part) for part in fault]}
    if isinstance(fault, BitFlipFault):
        return {
            "kind": "bitflip",
            "address": fault.address,
            "bits": list(fault.bits),
        }
    if isinstance(fault, TransientFetchFault):
        return {
            "kind": "transient",
            "address": fault.address,
            "bits": list(fault.bits),
            "occurrence": fault.occurrence,
        }
    if isinstance(fault, AttackScenario):
        return fault.to_json()
    raise ConfigurationError(f"unserializable perturbation {fault!r}")


def fault_from_json(data: dict):
    """Inverse of :func:`fault_to_json`."""
    kind = data["kind"]
    if kind == "multi":
        return tuple(fault_from_json(part) for part in data["parts"])
    if kind == "bitflip":
        return BitFlipFault(data["address"], tuple(data["bits"]))
    if kind == "transient":
        return TransientFetchFault(
            data["address"], tuple(data["bits"]), occurrence=data["occurrence"]
        )
    if kind == "attack":
        return AttackScenario.from_json(data)
    raise ConfigurationError(f"unknown perturbation kind {kind!r}")


@dataclass(slots=True)
class FaultRecord:
    """One classified injection, positioned inside its campaign."""

    index: int
    shard: int
    fault: object
    outcome: Outcome
    detail: str = ""
    latency: int | None = None

    @classmethod
    def from_result(
        cls, index: int, shard: int, result: FaultResult
    ) -> "FaultRecord":
        return cls(
            index=index,
            shard=shard,
            fault=result.fault,
            outcome=result.outcome,
            detail=result.detail,
            latency=result.latency,
        )

    def to_result(self) -> FaultResult:
        return FaultResult(self.fault, self.outcome, self.detail, self.latency)

    def to_json(self) -> dict:
        return {
            "type": "record",
            "index": self.index,
            "shard": self.shard,
            "fault": fault_to_json(self.fault),
            "outcome": self.outcome.value,
            "detail": self.detail,
            "latency": self.latency,
        }

    @classmethod
    def from_json(cls, data: dict) -> "FaultRecord":
        return cls(
            index=data["index"],
            shard=data["shard"],
            fault=fault_from_json(data["fault"]),
            outcome=Outcome(data["outcome"]),
            detail=data.get("detail", ""),
            latency=data.get("latency"),
        )


def dump_line(data: dict) -> str:
    """One canonical JSONL line (sorted keys, no trailing spaces)."""
    return json.dumps(data, sort_keys=True, separators=(",", ":")) + "\n"


def truncate_uncommitted(path) -> int:
    """Trim a results file back to its last committed line; return bytes cut.

    The harness appends on resume, so anything after the final ``header``
    or ``shard-done`` line — orphan records from a shard killed mid-write,
    or a torn half-line — would otherwise survive into the resumed file
    and break byte-identity with an uninterrupted run.  Single-writer
    appends mean such debris can only live in the tail, so truncating to
    the last commit marker is always safe.  A file with no recognizable
    committed prefix is left untouched for resume validation to reject.
    """
    with open(path, "rb") as handle:
        content = handle.read()
    keep = 0
    offset = 0
    for raw in content.splitlines(keepends=True):
        offset += len(raw)
        if not raw.endswith(b"\n"):
            break
        try:
            entry = json.loads(raw)
        except json.JSONDecodeError:
            continue
        if isinstance(entry, dict) and entry.get("type") in (
            "header",
            "shard-done",
        ):
            keep = offset
    dropped = len(content) - keep
    if keep and dropped:
        with open(path, "r+b") as handle:
            handle.truncate(keep)
        obs.count("records.truncated_bytes", dropped)
        return dropped
    return 0


def load_lines(path) -> list[dict]:
    """Parse every line of a JSONL file, skipping blank/truncated tails.

    A campaign killed mid-write may leave a torn final line; it belongs to
    an uncommitted shard by construction, so dropping it is safe.
    """
    entries: list[dict] = []
    with open(path, encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                entries.append(json.loads(line))
            except json.JSONDecodeError:
                obs.count("records.torn_lines")
                continue
    return entries
