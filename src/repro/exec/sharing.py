"""Checkpoint-store sharing: publish one recorded payload to every worker.

Without sharing, every pool worker re-derives its warm state from the
picklable job description in its initializer — for the golden backends
that means each of *N* workers records its own monitored golden run and
checkpoint store, so campaign warm-up scales with the worker count.  This
module lets the parent record **once** and ship the result through
:mod:`multiprocessing.shared_memory`: the payload is pickled into one
named shared-memory block, workers attach by name and unpickle a private
copy, and the block is unlinked when the pool shuts down.  One recording
plus *N* unpickles replaces *N* recordings.

Everything shipped this way is already picklable by construction — the
campaign engine's contexts, warm caches, and golden stores are plain
data / dataclasses precisely so they can cross process boundaries (see
:mod:`repro.exec.spec`).  On platforms without
:mod:`multiprocessing.shared_memory` the handle degrades to carrying the
pickled bytes inline (one pipe copy per worker instead of a shared
block); callers never need to care which transport was used.
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass

from repro.obs import core as obs

try:  # CPython >= 3.8; guarded so exotic builds degrade gracefully.
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover - platform without shm support
    _shm = None

#: Parent-side handle for each published block, so :func:`release` can
#: close + unlink the object that *created* the segment (re-attaching to
#: unlink would double-register it with the resource tracker on 3.11).
#: Pool workers attach through the parent's resource tracker, whose
#: registry is a set — their extra registrations collapse into the
#: parent's, and the single unlink in :func:`release` balances it.
_PUBLISHED: dict[str, object] = {}


@dataclass(frozen=True, slots=True)
class SharedPayload:
    """A picklable ticket for one published payload.

    Exactly one of *name* (a shared-memory block holding the pickle) or
    *inline* (the pickled bytes themselves, fallback transport) is set.
    The ticket itself is tiny either way, so it travels safely through
    pool-initializer arguments under both ``fork`` and ``spawn``.
    """

    size: int
    name: str | None = None
    inline: bytes | None = None

    def attach(self):
        """Materialize this process's private copy of the payload."""
        if self.name is None:
            obs.count("sharing.attach.inline")
            return pickle.loads(self.inline)
        obs.count("sharing.attach")
        block = _shm.SharedMemory(name=self.name)
        try:
            return pickle.loads(block.buf[: self.size])
        finally:
            block.close()


def publish(payload) -> SharedPayload:
    """Pickle *payload* into one shared block; return the ticket.

    The caller owns the block's lifetime: pair every ``publish`` with a
    :func:`release` once the consumers are done (the harness does this
    when its pool closes).
    """
    data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    obs.count("sharing.publish")
    obs.observe("sharing.publish_bytes", len(data))
    if _shm is None:  # pragma: no cover - platform without shm support
        return SharedPayload(size=len(data), inline=data)
    try:
        block = _shm.SharedMemory(create=True, size=max(len(data), 1))
    except OSError:  # pragma: no cover - e.g. /dev/shm full or absent
        obs.count("sharing.publish.inline_fallback")
        return SharedPayload(size=len(data), inline=data)
    block.buf[: len(data)] = data
    _PUBLISHED[block.name] = block
    return SharedPayload(size=len(data), name=block.name)


def release(ticket: SharedPayload | None) -> None:
    """Unlink the shared block behind *ticket* (no-op for inline tickets)."""
    if ticket is None or ticket.name is None:
        return
    block = _PUBLISHED.pop(ticket.name, None)
    if block is None:  # pragma: no cover - already released
        return
    block.close()
    block.unlink()
