"""Parallel, resumable campaign execution.

:class:`CampaignRunner` shards a perturbation list — random faults, attack
scenarios from :mod:`repro.attacks`, or any mix of objects satisfying the
:class:`repro.faults.models.Perturbation` protocol — into fixed-size
chunks and executes them across a :mod:`multiprocessing` pool.  Each
worker materializes a :class:`Workspace` once in its pool initializer,
from the picklable :class:`~repro.exec.spec.CampaignSpec` (simulators
never cross process boundaries): the golden run and
:class:`~repro.faults.campaign.CampaignContext`, the warm per-worker
caches (built program, FHT, decode cache — see
:class:`~repro.faults.campaign.WarmProcess`), and, for the ``golden``
backend, the checkpointed :class:`~repro.exec.golden.GoldenStore`.  Every
injection of its shards then runs through the backend's kernel —
:func:`repro.faults.campaign.run_one` (full replay) or
:func:`repro.exec.golden.run_one_golden` (fork at the fault) — which share
one classification tail and produce identical results.

Determinism
    Shard boundaries depend only on the perturbation list and
    ``chunk_size``, and each shard's seed derives from ``(seed,
    shard_id)`` — never from the worker that happens to run it.  Aggregate
    results are therefore identical for any ``workers`` value *and* for
    either backend, which the engine's tests and
    ``benchmarks/bench_campaign_scaling.py`` assert.

Resumability
    With ``out=`` set, per-fault records stream to a JSONL file (schema in
    :mod:`repro.exec.records`) and every finished shard appends a
    ``shard-done`` commit marker.  Re-running with ``resume=True`` replays
    committed shards from the file and executes only the remainder; a file
    written by a different spec/seed/fault-count is refused.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import ConfigurationError
from repro.faults.campaign import (
    CampaignContext,
    CampaignReport,
    FaultCampaign,
    FaultResult,
    WarmProcess,
    run_one,
)
from repro.exec.golden import GoldenStore, build_golden_store, run_one_golden
from repro.exec.records import FaultRecord, dump_line, load_lines
from repro.exec.spec import SPEC_VERSION, CampaignSpec, shard_seed

#: Perturbations per shard; the unit of work distribution *and* of resume.
DEFAULT_CHUNK_SIZE = 16

#: A shard task: (shard_id, first index, perturbations, derived seed).
_ShardTask = tuple[int, int, list, int]


@dataclass(slots=True)
class CampaignResult:
    """Outcome of one :meth:`CampaignRunner.run` call."""

    spec: CampaignSpec
    seed: int
    total: int
    records: list[FaultRecord] = field(default_factory=list)
    out: str | None = None

    @property
    def complete(self) -> bool:
        return len(self.records) == self.total

    def report(self) -> CampaignReport:
        """Aggregate as a :class:`CampaignReport`, ordered by fault index.

        The ordering makes aggregates byte-identical regardless of worker
        count or shard completion order.
        """
        ordered = sorted(self.records, key=lambda record: record.index)
        return CampaignReport(results=[record.to_result() for record in ordered])

    def summary(self) -> str:
        return self.report().summary()


# ----------------------------------------------------------------------
# Workspaces and shard execution (serial path and pool workers alike)
# ----------------------------------------------------------------------


@dataclass(slots=True)
class Workspace:
    """Everything one worker holds warm across its injections.

    Built once per process — by the pool initializer, or lazily by the
    serial path — and reused for every shard that lands on the worker:
    the context (golden reference), the :class:`WarmProcess` (built
    program, FHT, shared decode cache), and, for ``backend="golden"``,
    the checkpointed :class:`~repro.exec.golden.GoldenStore`.
    """

    context: CampaignContext
    warm: WarmProcess
    golden: GoldenStore | None = None

    @classmethod
    def build(
        cls, spec: CampaignSpec, context: CampaignContext | None = None
    ) -> "Workspace":
        if context is None:
            context = spec.build_context()
        warm = WarmProcess.from_context(context)
        golden = (
            build_golden_store(context, warm)
            if spec.backend == "golden"
            else None
        )
        return cls(context=context, warm=warm, golden=golden)

    def run_fault(self, fault) -> FaultResult:
        if self.golden is not None:
            return run_one_golden(self.golden, fault)
        return run_one(self.context, fault, warm=self.warm)


def _run_shard(
    workspace: Workspace, task: _ShardTask
) -> tuple[int, list[FaultRecord]]:
    shard_id, start, faults, _seed = task
    records = [
        FaultRecord.from_result(
            start + offset, shard_id, workspace.run_fault(fault)
        )
        for offset, fault in enumerate(faults)
    ]
    return shard_id, records


_WORKER_WORKSPACE: Workspace | None = None


def _pool_init(spec: CampaignSpec) -> None:
    """Pool initializer: materialize this worker's workspace once —
    golden run, warm caches, and (golden backend) the checkpoint store."""
    global _WORKER_WORKSPACE
    _WORKER_WORKSPACE = Workspace.build(spec)


def _pool_shard(task: _ShardTask) -> tuple[int, list[FaultRecord]]:
    assert _WORKER_WORKSPACE is not None, "pool worker used before _pool_init"
    return _run_shard(_WORKER_WORKSPACE, task)


class CampaignRunner:
    """Shard faults over a worker pool; stream results; resume cleanly."""

    def __init__(
        self,
        spec: CampaignSpec,
        workers: int = 1,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        campaign: FaultCampaign | None = None,
    ):
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if chunk_size < 1:
            raise ConfigurationError(f"chunk_size must be >= 1, got {chunk_size}")
        self.spec = spec
        self.workers = workers
        self.chunk_size = chunk_size
        # An optional pre-built parent-side campaign skips re-running the
        # golden simulation when the caller already has an equivalent
        # context (e.g. a hash/policy sweep over one program).  Pool
        # workers still derive their own context from the spec.
        self._campaign = campaign
        self._workspace: Workspace | None = None

    @property
    def campaign(self) -> FaultCampaign:
        """Parent-side campaign (lazy): golden run plus fault generators."""
        if self._campaign is None:
            self._campaign = self.spec.build_campaign()
        return self._campaign

    @property
    def workspace(self) -> Workspace:
        """Parent-side workspace (lazy), for the serial execution path."""
        if self._workspace is None:
            self._workspace = Workspace.build(
                self.spec, context=self.campaign.context
            )
        return self._workspace

    # ------------------------------------------------------------------

    def _shards(self, perturbations: list, seed: int) -> list[_ShardTask]:
        return [
            (
                shard_id,
                start,
                perturbations[start : start + self.chunk_size],
                shard_seed(seed, shard_id),
            )
            for shard_id, start in enumerate(
                range(0, len(perturbations), self.chunk_size)
            )
        ]

    def _header(self, seed: int, total: int) -> dict:
        return {
            "type": "header",
            "version": SPEC_VERSION,
            "spec": self.spec.to_json(),
            "fingerprint": self.spec.fingerprint(),
            "seed": seed,
            "total": total,
            "chunk_size": self.chunk_size,
        }

    def _load_resume(
        self, out: str, seed: int, total: int
    ) -> tuple[set[int], list[FaultRecord]] | None:
        """Committed shards and their records from a previous run's file.

        Returns ``None`` for an empty file (a run that died before the
        header flushed): the campaign simply starts fresh.  A shard only
        counts as committed if its marker is present *and* exactly its
        expected fault indexes decode — a shard with corrupted or orphaned
        record lines is re-run, and duplicate lines (from an earlier run
        interrupted mid-shard and later re-run) collapse to the last
        committed copy.
        """
        entries = load_lines(out)
        if not entries:
            return None
        if entries[0].get("type") != "header":
            raise ConfigurationError(f"{out}: not a campaign results file")
        header = entries[0]
        expected = self._header(seed, total)
        for key in ("fingerprint", "seed", "total", "chunk_size", "version"):
            if header.get(key) != expected[key]:
                raise ConfigurationError(
                    f"{out}: cannot resume — {key} is {header.get(key)!r}, "
                    f"this campaign has {expected[key]!r}"
                )
        marked = {
            entry["shard"] for entry in entries if entry.get("type") == "shard-done"
        }
        by_shard: dict[int, dict[int, FaultRecord]] = {}
        for entry in entries:
            if entry.get("type") == "record" and entry["shard"] in marked:
                record = FaultRecord.from_json(entry)
                by_shard.setdefault(record.shard, {})[record.index] = record
        done: set[int] = set()
        records: list[FaultRecord] = []
        for shard_id in marked:
            start = shard_id * self.chunk_size
            expected_indexes = set(
                range(start, min(start + self.chunk_size, total))
            )
            found = by_shard.get(shard_id, {})
            if set(found) == expected_indexes:
                done.add(shard_id)
                records.extend(found.values())
        return done, records

    # ------------------------------------------------------------------

    def run(
        self,
        perturbations: Iterable,
        seed: int = 0,
        out: str | os.PathLike | None = None,
        resume: bool = False,
        stop_after_shards: int | None = None,
    ) -> CampaignResult:
        """Execute *perturbations*; return the (possibly partial) result.

        Parameters
        ----------
        perturbations:
            The injection list — fault models, attack scenarios, or any
            mix.  Index order is the campaign's canonical order; generate
            it from a seeded generator for full reproducibility.
        seed:
            Campaign seed recorded in the header and used to derive each
            shard's seed.  Resume requires the same value.
        out:
            JSONL results path.  Required for ``resume``.
        resume:
            Replay committed shards from *out* and run only the rest.
        stop_after_shards:
            Execute at most this many new shards, then return a partial
            result — the engine's test hook for simulating interruption.
        """
        perturbations = list(perturbations)
        total = len(perturbations)
        out_path = os.fspath(out) if out is not None else None
        if resume and out_path is None:
            raise ConfigurationError("resume=True requires out=")

        done_shards: set[int] = set()
        records: list[FaultRecord] = []
        resuming = resume and out_path is not None and os.path.exists(out_path)
        if resuming:
            loaded = self._load_resume(out_path, seed, total)
            if loaded is None:
                resuming = False  # empty file: died before the header
            else:
                done_shards, records = loaded

        pending = [
            task
            for task in self._shards(perturbations, seed)
            if task[0] not in done_shards
        ]
        if stop_after_shards is not None:
            pending = pending[:stop_after_shards]

        handle = None
        if out_path is not None:
            handle = open(out_path, "a" if resuming else "w", encoding="utf-8")
            if not resuming:
                handle.write(dump_line(self._header(seed, total)))
                handle.flush()

        def commit(shard_id: int, shard_records: list[FaultRecord]) -> None:
            records.extend(shard_records)
            if handle is not None:
                for record in shard_records:
                    handle.write(dump_line(record.to_json()))
                handle.write(
                    dump_line(
                        {
                            "type": "shard-done",
                            "shard": shard_id,
                            "seed": shard_seed(seed, shard_id),
                        }
                    )
                )
                handle.flush()

        try:
            if self.workers == 1 or len(pending) <= 1:
                workspace = self.workspace
                for task in pending:
                    commit(*_run_shard(workspace, task))
            else:
                self._run_pool(pending, commit)
        finally:
            if handle is not None:
                handle.close()

        return CampaignResult(
            spec=self.spec,
            seed=seed,
            total=total,
            records=records,
            out=out_path,
        )

    def _run_pool(self, pending: list[_ShardTask], commit) -> None:
        import multiprocessing

        method = (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        context = multiprocessing.get_context(method)
        workers = min(self.workers, len(pending))
        with context.Pool(
            processes=workers, initializer=_pool_init, initargs=(self.spec,)
        ) as pool:
            for shard_id, shard_records in pool.imap_unordered(
                _pool_shard, pending
            ):
                commit(shard_id, shard_records)
