"""Parallel, resumable campaign execution — a thin harness client.

:class:`CampaignRunner` runs a perturbation list — random faults, attack
scenarios from :mod:`repro.attacks`, or any mix of objects satisfying the
:class:`repro.faults.models.Perturbation` protocol — through the generic
execution harness (:mod:`repro.exec.harness`).  All sharding, JSONL
streaming, ``shard-done`` commit markers, kill/resume, and worker-count
invariance live in :class:`~repro.exec.harness.HarnessRunner`; this
module only contributes the campaign-shaped pieces:

* :class:`CampaignWorkspaceFactory` — builds one :class:`Workspace` per
  worker from the picklable :class:`~repro.exec.spec.CampaignSpec`
  (simulators never cross process boundaries), executes one injection
  through the spec's registered backend
  (:mod:`repro.exec.backends`: ``full`` replay, ``golden`` fork-at-fault,
  or cycle-measuring ``pipeline-golden``), and translates
  :class:`~repro.exec.records.FaultRecord` to and from the JSONL wire;
* :class:`CampaignRunner`/:class:`CampaignResult` — the stable public
  API and result aggregation.

The on-disk artifacts are byte-for-byte the pre-harness SPEC_VERSION-3
format: existing campaign files load and resume unchanged
(``tests/harness/test_artifact_compat.py`` pins this against committed
pre-redesign fixtures).

Determinism and resumability are the harness's guarantees — see
:mod:`repro.exec.harness`.  With ``workers > 1`` the parent records the
workspace once (golden run, warm caches, checkpoint store) and ships it
to the pool through shared memory instead of every worker re-recording
it (:mod:`repro.exec.sharing`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable

from repro.obs import core as obs
from repro.faults.campaign import (
    CampaignContext,
    CampaignReport,
    FaultCampaign,
    FaultResult,
    WarmProcess,
)
from repro.exec.backends import Backend, get_backend
from repro.exec.harness import (
    DEFAULT_CHUNK_SIZE,
    HarnessResult,
    HarnessRunner,
    Job,
    WorkspaceFactory,
    validate_plan,
)
from repro.exec.records import FaultRecord
from repro.exec.spec import SPEC_VERSION, CampaignSpec


@dataclass(slots=True)
class CampaignResult:
    """Outcome of one :meth:`CampaignRunner.run` call.

    ``telemetry``/``shard_stats`` relay the harness's run-level
    observation (see :class:`~repro.exec.harness.HarnessResult`) so
    callers that aggregate many campaigns — coverage runs foremost — can
    build one metrics artifact without each inner run naming an ``out``.
    """

    spec: CampaignSpec
    seed: int
    total: int
    records: list[FaultRecord] = field(default_factory=list)
    out: str | None = None
    telemetry: dict | None = None
    shard_stats: list = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return len(self.records) == self.total

    def report(self) -> CampaignReport:
        """Aggregate as a :class:`CampaignReport`, ordered by fault index.

        The ordering makes aggregates byte-identical regardless of worker
        count or shard completion order.
        """
        ordered = sorted(self.records, key=lambda record: record.index)
        return CampaignReport(results=[record.to_result() for record in ordered])

    def summary(self) -> str:
        return self.report().summary()


@dataclass(slots=True)
class Workspace:
    """Everything one worker holds warm across its injections.

    Built once per process — by the harness's pool initializer, attached
    from the parent's shared payload, or lazily by the serial path — and
    reused for every shard that lands on the worker: the context (golden
    reference), the :class:`WarmProcess` (built program, FHT, shared
    decode cache), the spec's :class:`~repro.exec.backends.Backend`, and
    the backend's prepared per-worker state (for the golden backends,
    the checkpoint store).
    """

    context: CampaignContext
    warm: WarmProcess
    backend: Backend
    state: object

    @classmethod
    def build(
        cls, spec: CampaignSpec, context: CampaignContext | None = None
    ) -> "Workspace":
        if context is None:
            context = spec.build_context()
        warm = WarmProcess.from_context(context)
        backend = get_backend(spec.backend)
        return cls(
            context=context,
            warm=warm,
            backend=backend,
            state=backend.prepare(context, warm),
        )

    def run_fault(self, fault) -> FaultResult:
        return self.backend.run(self.state, fault)

    def run_batch(self, faults: list) -> list[FaultResult]:
        """Classify *faults* through the backend's batched kernel.

        Element-for-element identical to ``[self.run_fault(f) for f in
        faults]`` (the backends pin this differentially); the batched
        kernels amortize prefix replay and object construction.
        """
        return self.backend.run_batch(self.state, faults)


@dataclass(slots=True)
class CampaignWorkspaceFactory(WorkspaceFactory):
    """The campaign client: spec-derived workspaces, FaultRecord wire."""

    spec: CampaignSpec
    #: Faults per batched-kernel call; ``None`` dispatches per item.  An
    #: execution knob like ``workers`` — never serialized into headers,
    #: so artifacts stay byte-identical across batch plans.
    batch_size: int | None = None

    record_type = "record"
    kind = "campaign results"

    def build(self, shared=None) -> Workspace:
        if shared is not None:
            return shared
        return Workspace.build(self.spec)

    def shared_payload(self, workspace: Workspace) -> Workspace:
        """Ship the whole recorded workspace: context, warm caches, and
        the backend's prepared state (checkpoint stores included)."""
        return workspace

    def run_item(
        self, workspace: Workspace, index: int, shard: int, item
    ) -> FaultRecord:
        result = workspace.run_fault(item)
        obs.count(f"outcome.{result.outcome.value}")
        return FaultRecord.from_result(index, shard, result)

    def run_items(
        self, workspace: Workspace, start: int, shard: int, items: list
    ) -> list[FaultRecord]:
        """Run a shard through the backend's batched kernel.

        With no ``batch_size`` the whole shard is one batch; otherwise
        the shard is cut into ``batch_size`` slices.  Either way the
        records are exactly what the per-item path yields — pinned by
        ``tests/exec/test_scaling_invariants.py``.
        """
        size = self.batch_size or len(items)
        records: list[FaultRecord] = []
        for base in range(0, len(items), max(size, 1)):
            chunk = items[base : base + size]
            for offset, result in enumerate(workspace.run_batch(chunk)):
                obs.count(f"outcome.{result.outcome.value}")
                records.append(
                    FaultRecord.from_result(start + base + offset, shard, result)
                )
        return records

    def encode(self, record: FaultRecord) -> dict:
        return record.to_json()

    def decode(self, data: dict) -> FaultRecord:
        return FaultRecord.from_json(data)

    def describe(self) -> dict:
        """Campaign provenance for the run's metrics manifest."""
        return {
            "backend": self.spec.backend,
            "batch_size": self.batch_size,
            "workload": self.spec.workload,
            "scale": self.spec.scale,
        }


class CampaignRunner:
    """Run perturbation lists on the execution harness; resume cleanly."""

    def __init__(
        self,
        spec: CampaignSpec,
        workers: int = 1,
        chunk_size: int = DEFAULT_CHUNK_SIZE,
        campaign: FaultCampaign | None = None,
        share: bool = True,
        batch_size: int | None = None,
        persistent: bool = True,
        workspace: Workspace | None = None,
    ):
        self.spec = spec
        self.workers = workers
        self.chunk_size = chunk_size
        self.share = share
        # Execution knobs only — never recorded in artifacts: batch_size
        # sizes the batched-kernel calls (None = whole shard at once),
        # persistent reuses warm worker pools across runs and campaigns
        # (:mod:`repro.exec.pool`).
        self.batch_size = batch_size
        self.persistent = persistent
        # An optional pre-built parent-side campaign skips re-running the
        # golden simulation when the caller already has an equivalent
        # context (e.g. a hash/policy sweep over one program); an optional
        # pre-built workspace additionally skips recording the checkpoint
        # store (e.g. a service-tier checkpoint-cache lease).
        self._campaign = campaign
        self._workspace: Workspace | None = workspace
        self._factory = CampaignWorkspaceFactory(spec, batch_size=batch_size)
        validate_plan(workers=workers, chunk_size=chunk_size)

    @property
    def campaign(self) -> FaultCampaign:
        """Parent-side campaign (lazy): golden run plus fault generators."""
        if self._campaign is None:
            self._campaign = self.spec.build_campaign()
        return self._campaign

    @property
    def workspace(self) -> Workspace:
        """Parent-side workspace (lazy): the serial path and the source
        of the pool's shared payload."""
        if self._workspace is None:
            self._workspace = Workspace.build(
                self.spec, context=self.campaign.context
            )
        return self._workspace

    # ------------------------------------------------------------------

    def _job(self, perturbations: list, seed: int) -> Job:
        return Job(
            factory=self._factory,
            items=perturbations,
            seed=seed,
            version=SPEC_VERSION,
            payload={
                "spec": self.spec.to_json(),
                "fingerprint": self.spec.fingerprint(),
            },
            chunk_size=self.chunk_size,
        )

    def run(
        self,
        perturbations: Iterable,
        seed: int = 0,
        out: str | os.PathLike | None = None,
        resume: bool = False,
        stop_after_shards: int | None = None,
    ) -> CampaignResult:
        """Execute *perturbations*; return the (possibly partial) result.

        Parameters
        ----------
        perturbations:
            The injection list — fault models, attack scenarios, or any
            mix.  Index order is the campaign's canonical order; generate
            it from a seeded generator for full reproducibility.
        seed:
            Campaign seed recorded in the header and used to derive each
            shard's seed.  Resume requires the same value.
        out:
            JSONL results path.  Required for ``resume``.
        resume:
            Replay committed shards from *out* and run only the rest.
        stop_after_shards:
            Execute at most this many new shards, then return a partial
            result — the test/CLI hook for simulating interruption.
        """
        job = self._job(list(perturbations), seed)
        harness = HarnessRunner(
            job,
            workers=self.workers,
            workspace_supplier=lambda: self.workspace,
            share=self.share,
            persistent=self.persistent,
        )
        result: HarnessResult = harness.run(
            out=out, resume=resume, stop_after_shards=stop_after_shards
        )
        return CampaignResult(
            spec=self.spec,
            seed=seed,
            total=result.total,
            records=result.records,
            out=result.out,
            telemetry=result.telemetry,
            shard_stats=result.shard_stats,
        )
