"""Campaign-execution engine: parallel, resumable perturbation sweeps.

The paper's Section 6.3 coverage numbers come from injecting thousands of
faults per workload; this package is the substrate that makes such sweeps
— random fault campaigns, the adversarial attack sweeps of
:mod:`repro.attacks`, and the detection objectives of the design-space
explorer (:mod:`repro.dse`) — scale across CPU cores without giving up
reproducibility:

* :mod:`repro.exec.harness` — the generic execution harness:
  :class:`Job` + :class:`WorkspaceFactory` + :class:`HarnessRunner`, the
  **single** implementation of sharding, JSONL streaming, commit
  markers, kill/resume, and worker-count invariance that every sweep in
  the repo (campaigns, attack sweeps, the design-space explorer) runs
  on;
* :mod:`repro.exec.backends` — the pluggable :class:`Backend` registry:
  ``full`` replay, ``golden`` fork-at-fault
  (:mod:`repro.exec.golden`), and the cycle-measuring
  ``pipeline-golden`` (:mod:`repro.exec.pipeline_golden`);
* :mod:`repro.exec.spec` — :class:`CampaignSpec`, the picklable campaign
  description every worker re-derives its simulator state from; its
  ``backend`` field names a registered backend;
* :mod:`repro.exec.runner` — :class:`CampaignRunner`, the campaign
  client of the harness; each worker holds one warm
  :class:`~repro.exec.runner.Workspace`;
* :mod:`repro.exec.sharing` — shared-memory shipping of once-recorded
  checkpoint stores to pool workers;
* :mod:`repro.exec.presets` — named campaign presets
  (e.g. ``exhaustive-single-bit``);
* :mod:`repro.exec.records` — :class:`FaultRecord` and the JSONL schema.

Outcome taxonomy
----------------
Every injected fault is classified by the shared
:func:`repro.faults.campaign.run_one` kernel into exactly one
:class:`~repro.faults.campaign.Outcome`:

=====================  ====================================================
outcome (JSON value)   meaning
=====================  ====================================================
``detected-cic``       the Code Integrity Checker raised a violation —
                       the paper's mechanism caught the fault
``detected-baseline``  a baseline machine check fired first: invalid
                       opcode/operand (decoder reject) or a misaligned /
                       out-of-segment access trap (§6.3: "some errors can
                       be detected by baseline microarchitecture itself")
``crashed``            some other simulator-level failure (e.g. an
                       impossible syscall number)
``hang``               the run exceeded its instruction budget
``silent-corruption``  run completed but console output or exit code
                       differ from the golden run — the dangerous case
``benign``             run completed with output identical to the golden
                       run (fault masked, or in never-executed code)
=====================  ====================================================

``detected-cic`` + ``detected-baseline`` count as coverage
(:data:`repro.faults.campaign.DETECTED`); ``silent-corruption`` is the
escape the checksum ablations try to close.

Typical use::

    from repro.exec import CampaignRunner, CampaignSpec

    spec = CampaignSpec(workload="sha", scale="tiny", iht_size=8)
    runner = CampaignRunner(spec, workers=4)
    faults = runner.campaign.random_single_bit(200, seed=42)
    result = runner.run(faults, seed=42, out="sha.jsonl", resume=True)
    print(result.summary())

or, from a shell, ``python -m repro campaign sha --scale tiny --faults 200
--workers 4 --seed 42 --out sha.jsonl --resume``.
"""

from repro.exec.backends import (
    Backend,
    backend_names,
    get_backend,
    register_backend,
)
from repro.exec.golden import (
    GoldenStore,
    build_golden_store,
    run_batch_golden,
    run_one_golden,
)
from repro.exec.harness import (
    DEFAULT_CHUNK_SIZE,
    HarnessResult,
    HarnessRunner,
    Job,
    MeasureCache,
    WorkspaceFactory,
)
from repro.exec.pipeline_golden import (
    PipelineGoldenStore,
    build_pipeline_golden_store,
    run_batch_pipeline_golden,
    run_one_pipeline,
    run_one_pipeline_golden,
)
from repro.exec.pool import WarmPool, pool_stats, shutdown_pools
from repro.exec.presets import CampaignPreset, get_campaign_preset
from repro.exec.records import FaultRecord, fault_from_json, fault_to_json
from repro.exec.runner import CampaignResult, CampaignRunner, Workspace
from repro.exec.spec import BACKENDS, CampaignSpec, shard_seed

__all__ = [
    "BACKENDS",
    "Backend",
    "CampaignPreset",
    "CampaignResult",
    "CampaignRunner",
    "CampaignSpec",
    "DEFAULT_CHUNK_SIZE",
    "FaultRecord",
    "GoldenStore",
    "HarnessResult",
    "HarnessRunner",
    "Job",
    "MeasureCache",
    "PipelineGoldenStore",
    "WarmPool",
    "Workspace",
    "WorkspaceFactory",
    "backend_names",
    "build_golden_store",
    "build_pipeline_golden_store",
    "fault_from_json",
    "fault_to_json",
    "get_backend",
    "get_campaign_preset",
    "pool_stats",
    "register_backend",
    "run_batch_golden",
    "run_batch_pipeline_golden",
    "run_one_golden",
    "run_one_pipeline",
    "run_one_pipeline_golden",
    "shard_seed",
    "shutdown_pools",
]
