"""Cycle-level golden-trace backend: fork :class:`PipelineCPU` at the fault.

:mod:`repro.exec.golden` made campaigns cheap by forking the *functional*
simulator at the first corrupted fetch.  This module applies the same
design to the cycle-level 5-stage pipeline, which buys the one thing the
functional backends cannot offer: **measured cycles**.  Every classified
injection (and the recorded pristine run) carries the pipeline's actual
cycle count — OS miss penalties, multiplier busy time, squashed fetch
slots and all — so the design-space explorer can score cycle overhead
per penalty model by *measurement* instead of the (exact, but analytic)
Table-1 accounting, and tampered runs can be costed in real cycles.

The mechanics mirror the functional golden store with one twist: the
pipeline fetches *speculatively* (a wrong-path slot is fetched, latched,
and squashed), so fetch ordinals live in fetch-sequence space rather than
instruction space.  The recording run therefore keeps, per checkpoint,
the number of fetch-hook invocations at the snapshot boundary, and
delivery planning / transient ``seek`` both bisect in that space.  Until
the first transformed fetch the faulty machine replays the pristine one
cycle for cycle, so ordinals read off the recording are exact.

``HANG`` classification cannot rely on :class:`FuncSim`'s instruction
budget: the pipeline bounds cycles, not instructions.  The kernels here
run in ``until=instruction_budget`` mode instead — a run still live at
the budget boundary is a hang by the same absolute-instruction criterion
the functional backends use, and the detail string is canonical across
backends.

``tests/exec/test_pipeline_golden.py`` pins this backend differentially
against full :class:`PipelineCPU` replay — outcome, detail, latency,
*and cycle count* — on the smoke workload set and every fault model.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field

from repro.errors import (
    ConfigurationError,
    DecodingError,
    MemoryAccessError,
    MonitorViolation,
    SimulationError,
)
from repro.obs import core as obs
from repro.faults.campaign import (
    CampaignContext,
    FaultResult,
    Outcome,
    WarmProcess,
    make_probe,
    split_perturbation,
)
from repro.exec.golden import (
    DEFAULT_CHECKPOINT_COUNT,
    MIN_CHECKPOINT_INTERVAL,
    _ReadRecordingMemory,
    checkpoint_interval,
)
from repro.pipeline.cpu import PipelineCPU, PipelineSnapshot


@dataclass(frozen=True, slots=True)
class PipelineCheckpoint:
    """One restore point: machine, monitor, and the fetch-stream position."""

    instructions: int
    #: Fetch-hook invocations (speculative slots included) at the boundary.
    fetches: int
    sim: PipelineSnapshot
    checker: tuple
    handler: tuple


class _PipelineFetchRecorder:
    """Fetch hook for the recording run: ordinals in fetch-sequence space."""

    __slots__ = ("ordinals", "fetches")

    def __init__(self) -> None:
        self.ordinals: dict[int, list[int]] = {}
        self.fetches = 0

    def __call__(self, address: int, word: int) -> int:
        self.fetches += 1
        self.ordinals.setdefault(address, []).append(self.fetches)
        return word


@dataclass(slots=True)
class PipelineGoldenStore:
    """Everything one worker needs to fork cycle-level injections."""

    context: CampaignContext
    warm: WarmProcess
    checkpoints: list[PipelineCheckpoint]
    #: 1-based fetch-sequence ordinals at which each address was fetched.
    fetch_ordinals: dict[int, tuple[int, ...]]
    unsafe_words: frozenset[int]
    golden_instructions: int
    #: Measured cycles of the monitored pristine run — the quantity the
    #: analytic Table-1 accounting predicts, here measured per penalty.
    golden_cycles: int
    interval: int
    #: Fetch counts of ``checkpoints``, for bisection in fetch space.
    _marks: list[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._marks = [checkpoint.fetches for checkpoint in self.checkpoints]

    def checkpoint_before(self, fetch_ordinal: int) -> PipelineCheckpoint:
        """The latest checkpoint strictly before fetch *fetch_ordinal*."""
        index = bisect_right(self._marks, fetch_ordinal - 1) - 1
        return self.checkpoints[max(index, 0)]

    def fetch_counts_at(self, fetches: int, addresses) -> dict[int, int]:
        """Recorded fetches of each address among the first *fetches*."""
        counts: dict[int, int] = {}
        for address in addresses:
            ordinals = self.fetch_ordinals.get(address)
            if ordinals:
                counts[address] = bisect_right(ordinals, fetches)
        return counts


def _fresh_cpu(
    context: CampaignContext, warm: WarmProcess, fetch_hook, collect_trace=False
) -> tuple[PipelineCPU, object]:
    checker = warm.fresh_checker(context)
    cpu = PipelineCPU(
        context.program,
        monitor=checker,
        fetch_hook=fetch_hook,
        inputs=context.inputs,
        decode_cache=warm.decode_cache,
        collect_trace=collect_trace,
    )
    return cpu, checker


def build_pipeline_golden_store(
    context: CampaignContext,
    warm: WarmProcess | None = None,
    interval: int | None = None,
) -> PipelineGoldenStore:
    """Record the monitored pristine run on the cycle-level pipeline.

    Costs one monitored :class:`PipelineCPU` run plus the snapshot
    copies; every injection then forks at a checkpoint, and the run's
    measured cycle count is kept as ``golden_cycles``.
    """
    warm = warm or WarmProcess.from_context(context)
    if interval is None:
        interval = checkpoint_interval(context.golden_instructions)
    if interval < 1:
        raise ConfigurationError(f"checkpoint interval must be >= 1: {interval}")
    with obs.span("pipeline_golden.record"):
        return _record_pipeline_store(context, warm, interval)


def _record_pipeline_store(
    context: CampaignContext, warm: WarmProcess, interval: int
) -> PipelineGoldenStore:
    recorder = _PipelineFetchRecorder()
    cpu, checker = _fresh_cpu(context, warm, recorder)
    memory = _ReadRecordingMemory(
        cpu.state.memory, context.program.text_start, context.program.text_end
    )
    cpu.state.memory = memory
    handler = checker.handler
    checkpoints = [
        PipelineCheckpoint(
            0, 0, cpu.snapshot(), checker.snapshot(), handler.snapshot()
        )
    ]
    mark = interval
    while True:
        result = cpu.run(until=mark)
        if result.finished:
            break
        checkpoints.append(
            PipelineCheckpoint(
                result.instructions,
                recorder.fetches,
                cpu.snapshot(),
                checker.snapshot(),
                handler.snapshot(),
            )
        )
        mark += interval
    if (
        result.console != context.golden_console
        or result.exit_code != context.golden_exit
    ):  # pragma: no cover - invariant
        raise ConfigurationError(
            "monitored pipeline golden run diverged from the recorded reference"
        )
    fetch_counts = {
        address: len(ordinals) for address, ordinals in recorder.ordinals.items()
    }
    unsafe = set(memory.touched_words)
    for address, reads in memory.word_reads.items():
        if reads > fetch_counts.get(address, 0):
            unsafe.add(address)
    obs.count("pipeline_golden.stores_recorded")
    obs.count("pipeline_golden.checkpoints", len(checkpoints))
    return PipelineGoldenStore(
        context=context,
        warm=warm,
        checkpoints=checkpoints,
        fetch_ordinals={
            address: tuple(ordinals)
            for address, ordinals in recorder.ordinals.items()
        },
        unsafe_words=frozenset(unsafe),
        golden_instructions=result.instructions,
        golden_cycles=result.cycles,
        interval=interval,
    )


def classify_pipeline_run(
    context: CampaignContext, fault, cpu: PipelineCPU, probe
) -> FaultResult:
    """Run a prepared, injected pipeline and classify its outcome.

    The cycle-level twin of :func:`repro.faults.campaign.classify_run`:
    same taxonomy and detail conventions, but the instruction budget is
    enforced through ``run(until=...)`` (the pipeline has no instruction
    limit of its own) and every verdict carries the measured cycle count
    at the moment it was reached.
    """
    budget = context.instruction_budget
    try:
        result = cpu.run(until=budget)
        if not result.finished:
            return FaultResult(
                fault,
                Outcome.HANG,
                f"instruction limit {budget} exceeded",
                cycles=cpu.cycles,
            )
    except MonitorViolation as error:
        return FaultResult(
            fault, Outcome.DETECTED_CIC, str(error), probe.latency(), cpu.cycles
        )
    except DecodingError as error:
        return FaultResult(
            fault,
            Outcome.DETECTED_BASELINE,
            str(error),
            probe.latency(),
            cpu.cycles,
        )
    except MemoryAccessError as error:
        return FaultResult(
            fault,
            Outcome.DETECTED_BASELINE,
            str(error),
            probe.latency(),
            cpu.cycles,
        )
    except SimulationError as error:
        if "limit" in str(error) and "exceeded" in str(error):
            # The cycle ceiling is a secondary guard; report the same
            # canonical budget detail as every other backend.
            return FaultResult(
                fault,
                Outcome.HANG,
                f"instruction limit {budget} exceeded",
                cycles=cpu.cycles,
            )
        return FaultResult(fault, Outcome.CRASHED, str(error), cycles=cpu.cycles)
    if (
        result.console == context.golden_console
        and result.exit_code == context.golden_exit
    ):
        return FaultResult(fault, Outcome.BENIGN, "", cycles=result.cycles)
    return FaultResult(
        fault, Outcome.SDC, "output differs from golden run", cycles=result.cycles
    )


def run_one_pipeline(
    context: CampaignContext, fault, warm: WarmProcess | None = None
) -> FaultResult:
    """Full cycle-level replay from boot: the reference this backend is
    pinned against (and the pipeline twin of ``run_one``)."""
    warm = warm or WarmProcess.from_context(context)
    persistents, transients = split_perturbation(fault)
    for part in transients:
        reset = getattr(part, "reset", None)
        if reset is not None:
            reset()
    probe = make_probe(persistents, transients)
    cpu, _checker = _fresh_cpu(context, warm, probe)
    for part in persistents:
        part.apply_to_memory(cpu.state.memory)
    return classify_pipeline_run(context, fault, cpu, probe)


def _plan_fork(
    store: PipelineGoldenStore, fault
) -> tuple[tuple, tuple, PipelineCheckpoint] | None:
    """Pick the fork checkpoint for *fault*; ``None`` means benign-by-plan.

    ``None`` covers perturbations that are never fetched (even
    speculatively) and never read as data: the faulty run is the recorded
    pristine run, measured cycles included.
    """
    persistents, transients = split_perturbation(fault)
    unsafe = any(
        address in store.unsafe_words
        for part in persistents
        for address in part.target_addresses()
    )
    earliest: int | None = None
    for part in persistents:
        for address in part.target_addresses():
            ordinals = store.fetch_ordinals.get(address)
            if ordinals and (earliest is None or ordinals[0] < earliest):
                earliest = ordinals[0]
    for part in transients:
        occurrence = getattr(part, "occurrence", 1)
        for address in part.target_addresses():
            ordinals = store.fetch_ordinals.get(address, ())
            if len(ordinals) >= occurrence and (
                earliest is None or ordinals[occurrence - 1] < earliest
            ):
                earliest = ordinals[occurrence - 1]
    if earliest is None and not unsafe:
        return None
    seekable = all(hasattr(part, "seek") for part in transients)
    if unsafe or not seekable:
        checkpoint = store.checkpoints[0]
    else:
        checkpoint = store.checkpoint_before(earliest)
    return persistents, transients, checkpoint


def _run_fork(
    store: PipelineGoldenStore, fault, plan, cpu: PipelineCPU, checker
) -> FaultResult:
    """Execute one planned fork on a (possibly reused) machine/monitor pair.

    The restores are complete — every mutable field of the pipeline, the
    checker, and the OS handler is covered by the snapshot protocol — so
    a machine that just finished (or crashed out of) another injection is
    indistinguishable from a fresh one.
    """
    persistents, transients, checkpoint = plan
    probe = make_probe(persistents, transients)
    cpu.fetch_hook = probe
    checker.restore(checkpoint.checker)
    checker.handler.restore(checkpoint.handler)
    cpu.restore(checkpoint.sim)
    if checkpoint.fetches == 0:
        for part in transients:
            reset = getattr(part, "reset", None)
            if reset is not None:
                reset()
    else:
        counts = store.fetch_counts_at(
            checkpoint.fetches,
            [
                address
                for part in transients
                for address in part.target_addresses()
            ],
        )
        for part in transients:
            part.seek(counts)
    for part in persistents:
        part.apply_to_memory(cpu.state.memory)
    return classify_pipeline_run(store.context, fault, cpu, probe)


def run_one_pipeline_golden(store: PipelineGoldenStore, fault) -> FaultResult:
    """Classify one injection by forking the recorded pipeline at the fault.

    Produces the identical :class:`FaultResult` — outcome, detail,
    latency, and measured cycles — as :func:`run_one_pipeline`, while
    executing only the cycles after the nearest checkpoint.
    """
    plan = _plan_fork(store, fault)
    if plan is None:
        obs.count("pipeline_golden.benign_by_plan")
        return FaultResult(fault, Outcome.BENIGN, "", cycles=store.golden_cycles)
    obs.count("pipeline_golden.fork")
    cpu, checker = _fresh_cpu(store.context, store.warm, None)
    return _run_fork(store, fault, plan, cpu, checker)


def run_batch_pipeline_golden(
    store: PipelineGoldenStore, faults
) -> list[FaultResult]:
    """Classify a batch of injections on one reused machine/monitor pair.

    Semantically ``[run_one_pipeline_golden(store, f) for f in faults]``
    (pinned by the differential tests), with the per-injection
    :class:`PipelineCPU` + checker construction hoisted out of the loop.
    Unlike the functional :func:`repro.exec.golden.run_batch_golden`, no
    prefix sharing is attempted: fork ordinals live in fetch-*sequence*
    space (speculative slots included), which ``run(until=instructions)``
    cannot address, so the coarse store checkpoints are already the best
    fork points available.
    """
    cpu = checker = None
    results = []
    for fault in faults:
        plan = _plan_fork(store, fault)
        if plan is None:
            obs.count("pipeline_golden.benign_by_plan")
            results.append(
                FaultResult(fault, Outcome.BENIGN, "", cycles=store.golden_cycles)
            )
            continue
        obs.count("pipeline_golden.fork")
        if cpu is None:
            cpu, checker = _fresh_cpu(store.context, store.warm, None)
        else:
            obs.count("pipeline_golden.machine_reuse")
        results.append(_run_fork(store, fault, plan, cpu, checker))
    return results
