"""The full hash table (FHT) — all expected hashes, resident in memory.

The FHT is "analogous to memory" while the IHT "acts like a cache of
expected hashes" (Section 3.3).  It is generated after binary code is
produced (by :mod:`repro.cfg.hashgen`, standing in for the paper's "special
program or the OS application loader") and attached to the application.

Records are kept sorted by ``(start, end)``; the OS refill policies use
:meth:`records_from` to prefetch the records that statically follow a missed
block, modelling spatial locality of the table layout.

``to_bytes``/``from_bytes`` give the on-disk/in-memory representation the
paper describes — "all the hash values are simply attached to the
application code and data" — used by the OS loader example.
"""

from __future__ import annotations

import struct

from repro.errors import LinkError

_RECORD = struct.Struct("<III")
_MAGIC = 0x46485431  # "FHT1"


class FullHashTable:
    """Sorted map from block identity ``(start, end)`` to expected hash."""

    def __init__(self, records: dict[tuple[int, int], int] | None = None):
        self._records: dict[tuple[int, int], int] = dict(records or {})
        self._ordered: list[tuple[int, int]] = sorted(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key: tuple[int, int]) -> bool:
        return key in self._records

    def get(self, start: int, end: int) -> int | None:
        return self._records.get((start, end))

    def add(self, start: int, end: int, hash_value: int) -> None:
        key = (start, end)
        if key not in self._records:
            self._ordered = []  # rebuilt lazily
        self._records[key] = hash_value

    def items(self):
        return self._records.items()

    def keys_sorted(self) -> list[tuple[int, int]]:
        if len(self._ordered) != len(self._records):
            self._ordered = sorted(self._records)
        return self._ordered

    def records_from(self, key: tuple[int, int], count: int):
        """Yield up to *count* records starting at *key*, wrapping around.

        The missed block's record comes first; subsequent records follow the
        static table order (sequential prefetch on refill).
        """
        ordered = self.keys_sorted()
        if not ordered or count <= 0:
            return
        try:
            position = ordered.index(key)
        except ValueError:
            raise LinkError(f"block {key[0]:#x}..{key[1]:#x} not in FHT") from None
        total = min(count, len(ordered))
        for offset in range(total):
            record_key = ordered[(position + offset) % len(ordered)]
            yield record_key[0], record_key[1], self._records[record_key]

    # ------------------------------------------------------------------
    # Serialized form (attached to the application image)
    # ------------------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize: magic, record count, then (start, end, hash) triples."""
        out = bytearray(struct.pack("<II", _MAGIC, len(self._records)))
        for (start, end) in self.keys_sorted():
            out.extend(_RECORD.pack(start, end, self._records[(start, end)]))
        return bytes(out)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "FullHashTable":
        if len(blob) < 8:
            raise LinkError("FHT blob too short")
        magic, count = struct.unpack_from("<II", blob, 0)
        if magic != _MAGIC:
            raise LinkError(f"bad FHT magic {magic:#010x}")
        expected = 8 + count * _RECORD.size
        if len(blob) < expected:
            raise LinkError(f"FHT blob truncated: {len(blob)} < {expected}")
        records = {}
        for index in range(count):
            start, end, hash_value = _RECORD.unpack_from(blob, 8 + index * _RECORD.size)
            records[(start, end)] = hash_value
        return cls(records)
