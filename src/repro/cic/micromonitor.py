"""Microoperation-level implementation of the Code Integrity Checker.

Where :class:`~repro.cic.checker.CodeIntegrityChecker` models the monitor
behaviourally, :class:`MicroMonitor` *executes the monitoring
microoperations* of the paper's Figures 3 and 4 through the
:mod:`repro.micro` framework, against real register/CAM resources:

* ``STA``, ``RHASH`` — bookkeeping registers (Figure 3's additions),
* ``PPC`` — the previous-PC pipeline register read by the ID extension,
* ``HASHFU`` — the hash functional unit (``ope`` = fold one word,
  ``fin`` = finalize; for the paper's XOR checksum ``fin`` is the identity
  wire and the listing degenerates to exactly Figure 4),
* ``IHTbb`` — the CAM, shared with the OS exception handler.

Both monitor implementations satisfy the same simulator protocol, so the
differential tests run the same workload under both and assert identical
statistics, verdicts, and cycle counts — closing the loop between the
paper's microoperation listings and the behavioural model.
"""

from __future__ import annotations

from repro.cic.checker import MonitorStats
from repro.cic.hashes import HashAlgorithm
from repro.cic.iht import InternalHashTable
from repro.micro.parser import parse_microprogram
from repro.micro.program import MicroContext, MicroProgram
from repro.micro.resources import (
    FunctionalUnit,
    HashTableResource,
    Register,
    ResourceSet,
)

#: Figure 3(b), monitoring additions only (the italicised lines).
IF_EXTENSION_TEXT = """
start = STA.read();
null = [start==0]STA.write(current_pc);
ohashv = RHASH.read();
nhashv = HASHFU.ope(ohashv, instr);
null = RHASH.write(nhashv);
"""

#: Figure 4, monitoring additions only, with an explicit finalize step
#: (`fin` is the identity wire for the XOR checksum the paper evaluates).
ID_EXTENSION_TEXT = """
start = STA.read();
end = PPC.read();
hashv_raw = RHASH.read();
hashv = HASHFU.fin(hashv_raw);
<found,match> = IHTbb.lookup(<start,end,hashv>);
exception0 = [found==0] '1';
exception1 = [found==1 & match==0] '1';
null = STA.reset();
null = RHASH.reset();
"""


class HashFunctionalUnit(FunctionalUnit):
    """HASHFU with the streaming ``ope`` and finalizing ``fin`` operations."""

    def __init__(self, name: str, algorithm: HashAlgorithm):
        super().__init__(name, algorithm.update)
        self.algorithm = algorithm

    def op_fin(self, state: object) -> int:
        return self.algorithm.finalize(state)


class MicroMonitor:
    """Integrity monitor driven by parsed microoperation programs."""

    def __init__(
        self,
        iht: InternalHashTable,
        handler,
        algorithm: HashAlgorithm,
        if_program: MicroProgram | None = None,
        id_program: MicroProgram | None = None,
    ):
        self.iht = iht
        self.handler = handler
        self.algorithm = algorithm
        self.if_program = if_program or parse_microprogram(
            IF_EXTENSION_TEXT, "monitor-IF"
        )
        self.id_program = id_program or parse_microprogram(
            ID_EXTENSION_TEXT, "monitor-ID"
        )
        self._sta = Register("STA", reset_value=0)
        self._rhash = Register("RHASH", reset_value=algorithm.initial())
        self._ppc = Register("PPC")
        self.resources = ResourceSet(
            self._sta,
            self._rhash,
            self._ppc,
            HashFunctionalUnit("HASHFU", algorithm),
            HashTableResource("IHTbb", iht),
        )
        self._os_cycles = 0
        self._blocks = 0

    # ------------------------------------------------------------------
    # Monitor protocol
    # ------------------------------------------------------------------

    def on_instruction(self, address: int, word: int) -> None:
        """Run the Figure 3 IF-stage extension for one fetched instruction."""
        context = MicroContext(fields={"current_pc": address, "instr": word})
        self.if_program.execute(self.resources, context)

    def on_block_end(self, end_address: int) -> int:
        """Run the Figure 4 ID-stage extension; dispatch exception signals."""
        self._ppc.op_write(end_address)
        context = MicroContext()
        self.id_program.execute(self.resources, context)
        self._blocks += 1
        start = context.value("start")
        end = context.value("end")
        hash_value = context.value("hashv")
        if context.value("exception1"):
            self.handler.on_mismatch(start, end, hash_value)
        if context.value("exception0"):
            extra = self.handler.on_miss(start, end, hash_value)
            self._os_cycles += extra
            return extra
        return 0

    # ------------------------------------------------------------------

    @property
    def stats(self) -> MonitorStats:
        table = self.iht.stats
        return MonitorStats(
            lookups=table.lookups,
            hits=table.hits,
            misses=table.misses,
            mismatches=table.mismatches,
            os_cycles=self._os_cycles,
            blocks_hashed=self._blocks,
        )

    def describe(self) -> str:
        """The embedded monitoring microprograms, paper-style."""
        return (
            "IF stage extension (all instructions):\n"
            + self.if_program.describe()
            + "\n\nID stage extension (flow-control instructions):\n"
            + self.id_program.describe()
        )
