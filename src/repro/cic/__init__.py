"""Code Integrity Checker (CIC).

The hardware monitor of the paper's Figure 2: a hash functional unit
(``HASHFU``), the internal hash table CAM (``IHTbb``), the comparator, and
the ``STA``/``RHASH`` bookkeeping registers.  The fast behavioural model
(:class:`~repro.cic.checker.CodeIntegrityChecker`) and the
microoperation-level pipeline integration share the same
:class:`~repro.cic.iht.InternalHashTable` and hash algorithms, so both paths
are checked against each other by the differential tests.
"""

from repro.cic.checker import CodeIntegrityChecker, MonitorStats
from repro.cic.fht import FullHashTable
from repro.cic.hashes import (
    HASH_ALGORITHMS,
    AddChecksum,
    Crc32,
    Fletcher32,
    HashAlgorithm,
    RotXorChecksum,
    Sha1Trunc,
    XorChecksum,
    block_hash,
    get_hash,
)
from repro.cic.iht import InternalHashTable, TableStats
from repro.cic.replay import replay_trace

__all__ = [
    "AddChecksum",
    "CodeIntegrityChecker",
    "Crc32",
    "Fletcher32",
    "FullHashTable",
    "HASH_ALGORITHMS",
    "HashAlgorithm",
    "InternalHashTable",
    "MonitorStats",
    "RotXorChecksum",
    "Sha1Trunc",
    "TableStats",
    "XorChecksum",
    "block_hash",
    "get_hash",
    "replay_trace",
]
