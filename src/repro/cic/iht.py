"""The internal hash table (IHTbb) — a small CAM inside the processor.

Each entry is the tuple ``(Addst, Addend, Hash)`` of Section 4.2 plus the
bookkeeping bits a real implementation carries: a valid bit, an LRU
timestamp (updated by the hardware on every hit), and an insertion
timestamp (for the FIFO ablation policy).

``lookup`` implements the CAM match of Figure 4: the ``(start, end)`` pair
is the tag; ``found`` reports a tag match and ``match`` reports hash
equality.  Statistics mirror what the paper's Figure 6 needs: lookups,
hits, misses, mismatches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError


@dataclass(slots=True)
class TableEntry:
    """One CAM row."""

    start: int = 0
    end: int = 0
    hash_value: int = 0
    valid: bool = False
    last_used: int = 0
    inserted: int = 0


@dataclass(slots=True)
class TableStats:
    """Hardware-visible event counters."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    mismatches: int = 0

    @property
    def miss_rate(self) -> float:
        """Fraction of lookups that missed (the Figure 6 metric)."""
        if self.lookups == 0:
            return 0.0
        return self.misses / self.lookups

    def as_dict(self) -> dict[str, float]:
        return {
            "lookups": self.lookups,
            "hits": self.hits,
            "misses": self.misses,
            "mismatches": self.mismatches,
            "miss_rate": self.miss_rate,
        }


class InternalHashTable:
    """Fully-associative expected-hash CAM with LRU bookkeeping."""

    def __init__(self, size: int):
        if size < 1:
            raise ConfigurationError(f"IHT size must be >= 1, got {size}")
        self.size = size
        self.entries = [TableEntry() for _ in range(size)]
        self.stats = TableStats()
        self._tick = 0
        self._index: dict[tuple[int, int], TableEntry] = {}

    # ------------------------------------------------------------------
    # Hardware-path operations
    # ------------------------------------------------------------------

    def lookup(self, start: int, end: int, hash_value: int) -> tuple[bool, bool]:
        """CAM lookup with the ``(start, end, hash)`` key.

        Returns ``(found, match)`` as in Figure 4.  A hit refreshes the
        entry's LRU timestamp (the replacement hardware of Section 3.3).
        """
        self.stats.lookups += 1
        entry = self._index.get((start, end))
        if entry is None:
            self.stats.misses += 1
            return (False, False)
        self._tick += 1
        entry.last_used = self._tick
        if entry.hash_value == hash_value:
            self.stats.hits += 1
            return (True, True)
        self.stats.mismatches += 1
        return (True, False)

    def probe(self, start: int, end: int) -> TableEntry | None:
        """Tag-only CAM probe without statistics or LRU effects."""
        return self._index.get((start, end))

    # ------------------------------------------------------------------
    # OS-path operations (exception handler)
    # ------------------------------------------------------------------

    def insert(self, start: int, end: int, hash_value: int) -> None:
        """Fill an invalid slot with a verified FHT record.

        The OS must have created room first (see :meth:`evict`); inserting
        into a full table is a handler bug and raises.
        """
        existing = self._index.get((start, end))
        if existing is not None:
            self._tick += 1
            existing.hash_value = hash_value
            existing.last_used = self._tick
            return
        for entry in self.entries:
            if not entry.valid:
                self._tick += 1
                entry.start = start
                entry.end = end
                entry.hash_value = hash_value
                entry.valid = True
                entry.last_used = self._tick
                entry.inserted = self._tick
                self._index[(start, end)] = entry
                return
        raise ConfigurationError("insert into full IHT — evict first")

    def evict(self, victims: list[TableEntry]) -> None:
        """Invalidate the given entries (chosen by a replacement policy)."""
        for entry in victims:
            if entry.valid:
                self._index.pop((entry.start, entry.end), None)
                entry.valid = False

    def valid_entries(self) -> list[TableEntry]:
        return [entry for entry in self.entries if entry.valid]

    def free_slots(self) -> int:
        return sum(1 for entry in self.entries if not entry.valid)

    def contents(self) -> list[tuple[int, int, int]]:
        """(start, end, hash) triples currently cached, LRU-oldest first."""
        valid = sorted(self.valid_entries(), key=lambda entry: entry.last_used)
        return [(entry.start, entry.end, entry.hash_value) for entry in valid]

    def clear(self) -> None:
        for entry in self.entries:
            entry.valid = False
        self._index.clear()

    def reset_stats(self) -> None:
        self.stats = TableStats()

    # ------------------------------------------------------------------
    # Checkpointing (golden-trace campaign backend)
    # ------------------------------------------------------------------

    def snapshot(self) -> tuple:
        """Immutable copy of every CAM row, the stats, and the LRU clock."""
        return (
            tuple(
                (
                    entry.start,
                    entry.end,
                    entry.hash_value,
                    entry.valid,
                    entry.last_used,
                    entry.inserted,
                )
                for entry in self.entries
            ),
            (
                self.stats.lookups,
                self.stats.hits,
                self.stats.misses,
                self.stats.mismatches,
            ),
            self._tick,
        )

    def restore(self, snapshot: tuple) -> None:
        """Restore a table of the same size to a :meth:`snapshot`."""
        rows, stats, tick = snapshot
        if len(rows) != self.size:
            raise ConfigurationError(
                f"snapshot has {len(rows)} rows, table has {self.size}"
            )
        self._index.clear()
        for entry, row in zip(self.entries, rows):
            (
                entry.start,
                entry.end,
                entry.hash_value,
                entry.valid,
                entry.last_used,
                entry.inserted,
            ) = row
            if entry.valid:
                self._index[(entry.start, entry.end)] = entry
        self.stats = TableStats(*stats)
        self._tick = tick
