"""Hash algorithms for the HASHFU.

The paper evaluates a 32-bit XOR checksum and names stronger candidates
(MD5, SHA-1) as future work; Section 6.3 analyses the XOR checksum's error
model.  This module implements the evaluated function plus the design-space
neighbours used by the ablation study — all from scratch:

========  =====================================  ======================
name      update                                 error-detection notes
========  =====================================  ======================
xor       ``h ^= w``                             misses any pattern with
                                                 even flips per column;
                                                 order-independent
add       ``h = (h + w) mod 2^32``               misses compensating
                                                 flips; order-independent
rotxor    ``h = rotl(h, 1) ^ w``                 position-dependent,
                                                 catches reorderings
fletcher  Fletcher-32 over 16-bit halves         position-dependent
crc32     reflected CRC-32 (poly 0xEDB88320)     detects all single-bit
                                                 and burst < 32 errors
sha1      SHA-1 truncated to 32 bits             cryptographic; collision
                                                 probability ~2^-32 at
                                                 this truncation
========  =====================================  ======================

Every algorithm follows the same streaming interface: ``initial()`` →
repeated ``update(state, word)`` → ``finalize(state)`` producing the 32-bit
value stored in the hash tables.  For the XOR-family, state *is* the
finalized value, matching the RHASH register semantics of Figure 3.
"""

from __future__ import annotations

import struct
from abc import ABC, abstractmethod

from repro.errors import ConfigurationError
from repro.utils.bitops import MASK32, rotl32


class HashAlgorithm(ABC):
    """Streaming hash over a sequence of 32-bit instruction words."""

    #: Registry key and display name.
    name: str = ""
    #: Width in bits of the finalized value (always 32 in this design).
    width: int = 32

    @abstractmethod
    def initial(self) -> object:
        """State of RHASH after reset."""

    @abstractmethod
    def update(self, state: object, word: int) -> object:
        """Fold one instruction word into the running state."""

    def finalize(self, state: object) -> int:
        """Reduce the state to the 32-bit value compared against the IHT."""
        assert isinstance(state, int)
        return state & MASK32


class XorChecksum(HashAlgorithm):
    """The paper's evaluated hash: word-wise XOR."""

    name = "xor"

    def initial(self) -> int:
        return 0

    def update(self, state: int, word: int) -> int:
        return (state ^ word) & MASK32


class AddChecksum(HashAlgorithm):
    """Modular addition checksum."""

    name = "add"

    def initial(self) -> int:
        return 0

    def update(self, state: int, word: int) -> int:
        return (state + word) & MASK32


class RotXorChecksum(HashAlgorithm):
    """Rotate-left-then-XOR: position-dependent variant of XOR.

    A one-gate-deeper HASHFU that additionally detects instruction
    *reordering* within a block, which plain XOR cannot (XOR is
    commutative).  Ablation A2 quantifies the coverage difference.
    """

    name = "rotxor"

    def initial(self) -> int:
        return 0

    def update(self, state: int, word: int) -> int:
        return (rotl32(state, 1) ^ word) & MASK32


class Fletcher32(HashAlgorithm):
    """Fletcher-32 over the two 16-bit halves of each word."""

    name = "fletcher"

    def initial(self) -> tuple[int, int]:
        return (0, 0)

    def update(self, state: tuple[int, int], word: int) -> tuple[int, int]:
        sum1, sum2 = state
        for half in (word & 0xFFFF, (word >> 16) & 0xFFFF):
            sum1 = (sum1 + half) % 65535
            sum2 = (sum2 + sum1) % 65535
        return (sum1, sum2)

    def finalize(self, state: tuple[int, int]) -> int:
        sum1, sum2 = state
        return ((sum2 << 16) | sum1) & MASK32


def _build_crc_table() -> tuple[int, ...]:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            crc = (crc >> 1) ^ 0xEDB88320 if crc & 1 else crc >> 1
        table.append(crc)
    return tuple(table)


class Crc32(HashAlgorithm):
    """Reflected CRC-32 (IEEE 802.3 polynomial), bytes in memory order."""

    name = "crc32"
    _TABLE = _build_crc_table()

    def initial(self) -> int:
        return 0xFFFFFFFF

    def update(self, state: int, word: int) -> int:
        crc = state
        for shift in (0, 8, 16, 24):  # little-endian byte order
            byte = (word >> shift) & 0xFF
            crc = (crc >> 8) ^ self._TABLE[(crc ^ byte) & 0xFF]
        return crc & MASK32

    def finalize(self, state: int) -> int:
        return (state ^ 0xFFFFFFFF) & MASK32


def _sha1_compress(h: tuple[int, int, int, int, int], chunk: bytes):
    words = list(struct.unpack(">16I", chunk))
    for index in range(16, 80):
        words.append(
            rotl32(
                words[index - 3]
                ^ words[index - 8]
                ^ words[index - 14]
                ^ words[index - 16],
                1,
            )
        )
    a, b, c, d, e = h
    for index in range(80):
        if index < 20:
            f, k = (b & c) | (~b & d), 0x5A827999
        elif index < 40:
            f, k = b ^ c ^ d, 0x6ED9EBA1
        elif index < 60:
            f, k = (b & c) | (b & d) | (c & d), 0x8F1BBCDC
        else:
            f, k = b ^ c ^ d, 0xCA62C1D6
        temp = (rotl32(a, 5) + f + e + k + words[index]) & MASK32
        a, b, c, d, e = temp, a, rotl32(b, 30), c & MASK32, d
    return (
        (h[0] + a) & MASK32,
        (h[1] + b) & MASK32,
        (h[2] + c) & MASK32,
        (h[3] + d) & MASK32,
        (h[4] + e) & MASK32,
    )


_SHA1_IV = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0)


class Sha1Trunc(HashAlgorithm):
    """Streaming SHA-1 (implemented from scratch), truncated to 32 bits.

    State is ``(h0..h4, buffered bytes, total length)``.  The paper cites
    SHA-1's 2^-80 undetected-error probability at full width; truncation to
    the 32-bit table format gives ~2^-32, still far below the checksums for
    multi-bit faults — ablation A2 measures this.
    """

    name = "sha1"

    def initial(self) -> tuple:
        return (_SHA1_IV, b"", 0)

    def update(self, state: tuple, word: int) -> tuple:
        h, buffer, length = state
        buffer += struct.pack("<I", word & MASK32)
        length += 4
        while len(buffer) >= 64:
            h = _sha1_compress(h, buffer[:64])
            buffer = buffer[64:]
        return (h, buffer, length)

    def finalize(self, state: tuple) -> int:
        h, buffer, length = state
        buffer += b"\x80"
        while len(buffer) % 64 != 56:
            buffer += b"\x00"
        buffer += struct.pack(">Q", length * 8)
        for offset in range(0, len(buffer), 64):
            h = _sha1_compress(h, buffer[offset : offset + 64])
        return h[0] & MASK32


#: Registry of all HASHFU algorithms, keyed by name.
HASH_ALGORITHMS: dict[str, type[HashAlgorithm]] = {
    cls.name: cls
    for cls in (XorChecksum, AddChecksum, RotXorChecksum, Fletcher32, Crc32, Sha1Trunc)
}


def get_hash(name: str) -> HashAlgorithm:
    """Instantiate a registered hash algorithm by name."""
    try:
        return HASH_ALGORITHMS[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown hash algorithm {name!r}; "
            f"available: {', '.join(sorted(HASH_ALGORITHMS))}"
        ) from None


def block_hash(algorithm: HashAlgorithm, words) -> int:
    """Hash of a whole basic block (sequence of instruction words)."""
    state = algorithm.initial()
    for word in words:
        state = algorithm.update(state, word)
    return algorithm.finalize(state)
