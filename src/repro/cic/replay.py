"""Trace-driven IHT replay.

Figure 6 sweeps the IHT size over nine applications.  Re-simulating each
application for every table size would repeat identical instruction
execution; since the IHT's behaviour depends only on the *block trace*, the
sweep replays a recorded trace through a fresh IHT + refill policy per
configuration.  The integration tests verify that replay statistics equal
the statistics of a full monitored simulation for every workload and size.
"""

from __future__ import annotations

from repro.cic.fht import FullHashTable
from repro.cic.iht import InternalHashTable, TableStats
from repro.pipeline.trace import BlockTrace


def replay_trace(
    trace: BlockTrace,
    fht: FullHashTable,
    iht_size: int,
    policy,
) -> TableStats:
    """Replay *trace* through an IHT of *iht_size* using *policy*.

    The trace is assumed untampered (hashes match the FHT), so every lookup
    is either a hit or a capacity/cold miss — exactly the Figure 6 regime.
    Returns the table statistics after the full replay.
    """
    iht = InternalHashTable(iht_size)
    for event in trace:
        expected = fht.get(event.start, event.end)
        if expected is None:
            raise ValueError(
                f"trace block {event.start:#x}..{event.end:#x} missing from FHT"
            )
        found, match = iht.lookup(event.start, event.end, expected)
        if found and not match:
            raise ValueError("mismatch during untampered replay — corrupt FHT?")
        if not found:
            policy.refill(iht, fht, (event.start, event.end))
    return iht.stats
