"""Behavioural model of the Code Integrity Checker.

This is the fast-path equivalent of the monitoring microoperations of
Figures 3 and 4: it maintains the ``STA`` (block start address) and
``RHASH`` (running hash) registers, performs the IHT lookup at every block
end, and dispatches hash-miss / hash-mismatch exceptions to the OS handler.

The microoperation-level pipeline executes the *same* ``InternalHashTable``
and OS handler through parsed microprograms; the differential tests assert
that both paths produce identical statistics and verdicts.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass

from repro.cic.hashes import HashAlgorithm
from repro.cic.iht import InternalHashTable, TableStats


@dataclass(slots=True)
class MonitorStats:
    """Aggregated monitor statistics reported in a RunResult."""

    lookups: int = 0
    hits: int = 0
    misses: int = 0
    mismatches: int = 0
    os_cycles: int = 0
    blocks_hashed: int = 0

    @property
    def miss_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.misses / self.lookups


class CodeIntegrityChecker:
    """The CIC of Figure 2, behavioural form.

    Parameters
    ----------
    iht:
        The internal hash table CAM (shared with the OS handler).
    handler:
        OS exception handler; must expose ``on_miss(start, end, hash) -> int``
        (extra cycles) and ``on_mismatch(start, end, hash) -> NoReturn``.
    algorithm:
        The HASHFU hash algorithm.
    """

    def __init__(self, iht: InternalHashTable, handler, algorithm: HashAlgorithm):
        self.iht = iht
        self.handler = handler
        self.algorithm = algorithm
        # STA register: None is the hardware's "cleared" state (the paper
        # encodes it as zero; text never starts at address 0 in our layout,
        # and None makes the sentinel explicit).
        self._sta: int | None = None
        self._rhash: object = algorithm.initial()
        self._os_cycles = 0
        self._blocks = 0

    # ------------------------------------------------------------------
    # Monitor protocol (called by the simulators)
    # ------------------------------------------------------------------

    def on_instruction(self, address: int, word: int) -> None:
        """The IF-stage extension of Figure 3: latch STA, fold RHASH."""
        if self._sta is None:
            self._sta = address
        self._rhash = self.algorithm.update(self._rhash, word)

    def on_block_end(self, end_address: int) -> int:
        """The ID-stage extension of Figure 4: look up, raise, reset."""
        start = self._sta if self._sta is not None else 0
        hash_value = self.algorithm.finalize(self._rhash)
        found, match = self.iht.lookup(start, end_address, hash_value)
        extra_cycles = 0
        if not found:
            extra_cycles = self.handler.on_miss(start, end_address, hash_value)
            self._os_cycles += extra_cycles
        elif not match:
            self.handler.on_mismatch(start, end_address, hash_value)
        self._sta = None
        self._rhash = self.algorithm.initial()
        self._blocks += 1
        return extra_cycles

    # ------------------------------------------------------------------
    # Checkpointing (golden-trace campaign backend)
    # ------------------------------------------------------------------

    def snapshot(self) -> tuple:
        """Capture the CIC registers and the IHT, mid-block included.

        Hash states are plain values (ints, tuples, bytes) for every
        registered algorithm, so a deep copy detaches the running RHASH
        from the live run.  The OS handler is snapshotted separately
        (:meth:`repro.osmodel.handler.OSExceptionHandler.snapshot`).
        """
        return (
            self._sta,
            copy.deepcopy(self._rhash),
            self._os_cycles,
            self._blocks,
            self.iht.snapshot(),
        )

    def restore(self, snapshot: tuple) -> None:
        sta, rhash, os_cycles, blocks, iht_snapshot = snapshot
        self._sta = sta
        self._rhash = copy.deepcopy(rhash)
        self._os_cycles = os_cycles
        self._blocks = blocks
        self.iht.restore(iht_snapshot)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def sta(self) -> int | None:
        return self._sta

    @property
    def rhash_value(self) -> int:
        """Finalized view of the running hash (for tests/debugging)."""
        return self.algorithm.finalize(self._rhash)

    @property
    def stats(self) -> MonitorStats:
        table: TableStats = self.iht.stats
        return MonitorStats(
            lookups=table.lookups,
            hits=table.hits,
            misses=table.misses,
            mismatches=table.mismatches,
            os_cycles=self._os_cycles,
            blocks_hashed=self._blocks,
        )
