"""Fault campaigns: inject, run, classify.

A campaign first runs the pristine program unmonitored to capture the
*golden* console output and the set of executed instruction addresses.
Each fault is then injected into a freshly loaded monitored simulation and
the run's outcome is classified:

=====================  ====================================================
outcome                meaning
=====================  ====================================================
``DETECTED_CIC``       the Code Integrity Checker raised a violation
``DETECTED_BASELINE``  a baseline machine check fired: the decoder rejected
                       the word (invalid opcode/operand combination) or a
                       misaligned access trapped — paper §6.3's "some errors
                       can be detected by baseline microarchitecture itself"
``CRASHED``            some other simulator-level failure
``HANG``               the run exceeded its instruction budget
``SDC``                silent data corruption: run completed, wrong output
``BENIGN``             run completed with correct output (fault masked or
                       in never-executed code)
=====================  ====================================================

The headline coverage metric counts CIC + baseline detections over faults
injected into *executed* code, matching the paper's scope ("only the errors
on the executed instructions/basic blocks can be detected").

The single-fault kernel is :func:`run_one`: it takes a
:class:`CampaignContext` (program + monitor configuration + golden
reference) and one fault, runs a monitored simulation, and classifies the
outcome.  Both the in-process :class:`FaultCampaign` and the parallel
:class:`repro.exec.runner.CampaignRunner` execute every fault through this
one function, so serial and pooled campaigns are bit-for-bit comparable.
"""

from __future__ import annotations

import enum
import random
from collections import Counter
from dataclasses import dataclass, field

from repro.errors import DecodingError, MemoryAccessError, MonitorViolation, SimulationError
from repro.asm.program import Program
from repro.cfg.hashgen import build_fht
from repro.cic.fht import FullHashTable
from repro.cic.hashes import get_hash
from repro.faults.enumerators import (
    ExhaustiveSingleBit,
    seeded_same_column_pairs,
)
from repro.faults.models import (
    BitFlipFault,
    FetchProbe,
    make_fetch_hook,
    split_perturbation,
)
from repro.osmodel.loader import load_process
from repro.pipeline.funcsim import FuncSim, run_program
from repro.pipeline.trace import executed_addresses


class Outcome(enum.Enum):
    DETECTED_CIC = "detected-cic"
    DETECTED_BASELINE = "detected-baseline"
    CRASHED = "crashed"
    HANG = "hang"
    SDC = "silent-corruption"
    BENIGN = "benign"


#: Outcomes that count as successful detection.
DETECTED = frozenset({Outcome.DETECTED_CIC, Outcome.DETECTED_BASELINE})


@dataclass(slots=True)
class FaultResult:
    """One classified injection.

    ``fault`` is any :class:`~repro.faults.models.Perturbation` (or tuple
    of them) — a random fault model or an attack scenario.  For detected
    outcomes, ``latency`` is the number of instructions that entered the
    pipeline between the first corrupted fetch and the instruction whose
    check fired (0 = caught on the corrupted instruction itself); ``None``
    when the corruption was never delivered or never detected.
    """

    fault: object
    outcome: Outcome
    detail: str = ""
    latency: int | None = None
    #: Measured cycle count of the faulty run, when the executing backend
    #: measures cycles (the cycle-level ``pipeline-golden`` backend).
    #: ``None`` on the functional backends and for runs a raised machine
    #: check cut short; never serialized into campaign records.
    cycles: int | None = None


@dataclass(slots=True)
class CampaignReport:
    """Aggregated campaign statistics."""

    results: list[FaultResult] = field(default_factory=list)

    def counts(self) -> Counter:
        return Counter(result.outcome for result in self.results)

    @property
    def total(self) -> int:
        return len(self.results)

    @property
    def detected(self) -> int:
        return sum(1 for result in self.results if result.outcome in DETECTED)

    @property
    def detection_rate(self) -> float:
        """Detections over all injected faults."""
        if not self.results:
            return 0.0
        return self.detected / self.total

    @property
    def sdc_rate(self) -> float:
        if not self.results:
            return 0.0
        silent = sum(1 for result in self.results if result.outcome is Outcome.SDC)
        return silent / self.total

    def detection_latencies(self) -> list[int]:
        """Latencies (in instructions) of every detected injection."""
        return [
            result.latency
            for result in self.results
            if result.outcome in DETECTED and result.latency is not None
        ]

    @property
    def mean_detection_latency(self) -> float | None:
        latencies = self.detection_latencies()
        if not latencies:
            return None
        return sum(latencies) / len(latencies)

    @property
    def median_detection_latency(self) -> int | None:
        latencies = sorted(self.detection_latencies())
        if not latencies:
            return None
        return latencies[len(latencies) // 2]

    def summary(self) -> str:
        counts = self.counts()
        parts = [f"{self.total} faults"]
        for outcome in Outcome:
            if counts[outcome]:
                parts.append(f"{outcome.value}={counts[outcome]}")
        parts.append(f"coverage={100 * self.detection_rate:.1f}%")
        return ", ".join(parts)


@dataclass(slots=True)
class CampaignContext:
    """Everything :func:`run_one` needs to run and classify one fault.

    A context bundles the program image, the monitor configuration, and the
    golden-run reference (console, exit code, executed addresses, budget).
    It deliberately holds *no* live simulator or monitor — each injection
    loads a fresh monitored process — so a context built in any process
    from the same program and configuration classifies identically.
    """

    program: Program
    iht_size: int = 8
    hash_name: str = "xor"
    policy_name: str = "lru_half"
    inputs: list[int] | None = None
    golden_console: str = ""
    golden_exit: int = 0
    executed_addresses: tuple[int, ...] = ()
    #: Distinct executed dynamic blocks, sorted ``(start, end)`` pairs —
    #: the canonical input to block-confined fault enumerators
    #: (:mod:`repro.faults.enumerators`).  Empty for hand-built contexts
    #: that never enumerate block-confined spaces.
    executed_blocks: tuple[tuple[int, int], ...] = ()
    instruction_budget: int = 10_000
    #: Instructions the pristine run executes (0 for hand-built contexts).
    golden_instructions: int = 0
    #: OS cycle charge per IHT miss.  In-memory only (never part of the
    #: serialized :class:`~repro.exec.spec.CampaignSpec`): outcomes do not
    #: depend on it, but the cycle-measuring ``pipeline-golden`` backend
    #: and the DSE penalty axis configure the handler through it.
    miss_penalty: int = 100


def build_context(
    program: Program,
    iht_size: int = 8,
    hash_name: str = "xor",
    policy_name: str = "lru_half",
    inputs: list[int] | None = None,
    instruction_budget_factor: int = 20,
) -> CampaignContext:
    """Run the golden (pristine, unmonitored) simulation and capture it."""
    inputs = list(inputs) if inputs else None
    golden = run_program(program, collect_trace=True, inputs=inputs)
    return CampaignContext(
        program=program,
        iht_size=iht_size,
        hash_name=hash_name,
        policy_name=policy_name,
        inputs=inputs,
        golden_console=golden.console,
        golden_exit=golden.exit_code,
        executed_addresses=executed_addresses(golden.block_trace),
        executed_blocks=tuple(sorted(golden.block_trace.unique_blocks())),
        instruction_budget=max(
            10_000, golden.instructions * instruction_budget_factor
        ),
        golden_instructions=golden.instructions,
    )


def same_column_pairs(
    block_trace, count: int, seed: int
) -> list[tuple[BitFlipFault, ...]]:
    """Seeded pairs of flips in one bit column of one executed block.

    The §6.3 adversarial pattern the XOR checksum provably cannot see:
    two flips in the same bit position of two words inside one monitored
    basic block.  Shared by the fault-analysis harness and the DSE
    engine's ``same-column`` adversary so both draw the identical
    deterministic pair list for a given ``(trace, count, seed)``.

    Implementation (and the exhaustive generalization of this space) lives
    in :mod:`repro.faults.enumerators`; this wrapper keeps the historical
    ``block_trace``-based signature its call sites use.
    """
    return seeded_same_column_pairs(block_trace.unique_blocks(), count, seed)


@dataclass(slots=True)
class WarmProcess:
    """Per-worker warm cache of everything injection runs can share.

    ``load_process`` per injection rebuilds the Full Hash Table — hashing
    every basic block of the program — and re-decodes every word, which is
    pure overhead after the first run: the FHT is immutable once built and
    decoding depends only on the word.  A :class:`WarmProcess` hoists both
    out of the per-fault path; only the genuinely per-run state (IHT,
    policy, handler counters, CIC registers, architected state) is rebuilt
    or restored per injection.  This is what made multi-worker campaigns
    scale: pool workers materialize one ``WarmProcess`` in their
    initializer instead of paying the FHT build for every fault.
    """

    program: Program
    fht: FullHashTable
    hash_name: str
    decode_cache: dict = field(default_factory=dict)

    @classmethod
    def from_context(cls, context: "CampaignContext") -> "WarmProcess":
        return cls(
            program=context.program,
            fht=build_fht(context.program, get_hash(context.hash_name)),
            hash_name=context.hash_name,
        )

    def fresh_checker(self, context: "CampaignContext"):
        """A cold monitor (empty IHT, zero counters) over the warm FHT."""
        return load_process(
            self.program,
            iht_size=context.iht_size,
            hash_name=self.hash_name,
            policy_name=context.policy_name,
            miss_penalty=context.miss_penalty,
            fht=self.fht,
        ).monitor


def make_probe(persistents, transients) -> FetchProbe:
    """The fetch-path probe for one injection: tampered set + transforms."""
    tampered: set[int] = set()
    for part in persistents:
        tampered.update(part.target_addresses())
    return FetchProbe(
        tampered,
        make_fetch_hook(transients) if transients else None,
        transients=transients,
    )


def classify_run(
    context: CampaignContext, fault, simulator: FuncSim, probe: FetchProbe
) -> FaultResult:
    """Run a prepared, injected simulation and classify its outcome.

    The classification tail shared by every backend: the full-replay path
    below and the golden-trace resume path
    (:func:`repro.exec.golden.run_one_golden`) both end here, so outcome
    taxonomy and detection-latency semantics cannot drift between them.
    """
    try:
        result = simulator.run()
    except MonitorViolation as error:
        return FaultResult(fault, Outcome.DETECTED_CIC, str(error), probe.latency())
    except DecodingError as error:
        return FaultResult(
            fault, Outcome.DETECTED_BASELINE, str(error), probe.latency()
        )
    except MemoryAccessError as error:
        # Alignment/access machine checks are baseline hardware
        # detections, the same class as invalid-opcode traps.
        return FaultResult(
            fault, Outcome.DETECTED_BASELINE, str(error), probe.latency()
        )
    except SimulationError as error:
        if "instruction limit" in str(error):
            # Canonical detail: the budget path reports the pc it happened
            # to reach and the cycling detector the loop state it caught,
            # so normalizing keeps HANG records identical across backends
            # and detector settings.
            return FaultResult(
                fault,
                Outcome.HANG,
                f"instruction limit {context.instruction_budget} exceeded",
            )
        return FaultResult(fault, Outcome.CRASHED, str(error))
    if (
        result.console == context.golden_console
        and result.exit_code == context.golden_exit
    ):
        return FaultResult(fault, Outcome.BENIGN, "")
    return FaultResult(fault, Outcome.SDC, "output differs from golden run")


def run_one(
    context: CampaignContext, fault, warm: WarmProcess | None = None
) -> FaultResult:
    """Inject one perturbation (or tuple of them) into a monitored run.

    This is the pure single-injection kernel shared by the legacy serial
    :class:`FaultCampaign` and the parallel campaign engine in
    :mod:`repro.exec`: deterministic given ``(context, fault)``, with no
    state carried between calls.  ``fault`` may be any object satisfying
    the :class:`~repro.faults.models.Perturbation` protocol — the random
    fault models of this package or the attack scenarios of
    :mod:`repro.attacks` — so fault campaigns and attack sweeps are
    interchangeable everywhere the kernel is used.

    A :class:`~repro.faults.models.FetchProbe` wraps the fetch path to
    time the first corrupted delivery, giving detected outcomes their
    detection latency in instructions.

    *warm* (optional) supplies a per-worker :class:`WarmProcess`, which
    skips the per-injection FHT rebuild and shares the decode cache —
    identical results, a fraction of the setup cost.  The checkpointed
    resume path that additionally skips the pre-injection instructions
    lives in :func:`repro.exec.golden.run_one_golden`.
    """
    if warm is not None:
        monitor = warm.fresh_checker(context)
        decode_cache = warm.decode_cache
    else:
        monitor = load_process(
            context.program,
            iht_size=context.iht_size,
            hash_name=context.hash_name,
            policy_name=context.policy_name,
            miss_penalty=context.miss_penalty,
        ).monitor
        decode_cache = None
    persistents, transients = split_perturbation(fault)
    for part in transients:
        reset = getattr(part, "reset", None)
        if reset is not None:
            reset()
    probe = make_probe(persistents, transients)
    simulator = FuncSim(
        context.program,
        monitor=monitor,
        fetch_hook=probe,
        inputs=context.inputs,
        max_instructions=context.instruction_budget,
        decode_cache=decode_cache,
        hang_detector=context.golden_instructions,
    )
    for part in persistents:
        part.apply_to_memory(simulator.state.memory)
    return classify_run(context, fault, simulator, probe)


class FaultCampaign:
    """Run fault-injection campaigns against one program."""

    def __init__(
        self,
        program: Program,
        iht_size: int = 8,
        hash_name: str = "xor",
        policy_name: str = "lru_half",
        inputs: list[int] | None = None,
        instruction_budget_factor: int = 20,
    ):
        self.context = build_context(
            program,
            iht_size=iht_size,
            hash_name=hash_name,
            policy_name=policy_name,
            inputs=inputs,
            instruction_budget_factor=instruction_budget_factor,
        )

    @classmethod
    def from_context(cls, context: CampaignContext) -> "FaultCampaign":
        """Wrap an already-built context (skips re-running the golden run)."""
        campaign = cls.__new__(cls)
        campaign.context = context
        return campaign

    @property
    def program(self) -> Program:
        return self.context.program

    @property
    def iht_size(self) -> int:
        return self.context.iht_size

    @property
    def hash_name(self) -> str:
        return self.context.hash_name

    @property
    def policy_name(self) -> str:
        return self.context.policy_name

    @property
    def inputs(self) -> list[int] | None:
        return self.context.inputs

    @property
    def golden_console(self) -> str:
        return self.context.golden_console

    @property
    def golden_exit(self) -> int:
        return self.context.golden_exit

    @property
    def executed_addresses(self) -> tuple[int, ...]:
        return self.context.executed_addresses

    @property
    def instruction_budget(self) -> int:
        return self.context.instruction_budget

    # ------------------------------------------------------------------
    # Fault generation
    # ------------------------------------------------------------------

    def random_single_bit(
        self, count: int, seed: int = 1, executed_only: bool = True
    ) -> list[BitFlipFault]:
        """Uniformly random single-bit persistent faults."""
        rng = random.Random(seed)
        pool = (
            self.executed_addresses
            if executed_only
            else tuple(self.program.text_addresses())
        )
        return [
            BitFlipFault(rng.choice(pool), (rng.randrange(32),))
            for _ in range(count)
        ]

    def random_multi_bit(
        self,
        count: int,
        flips: int,
        seed: int = 2,
        executed_only: bool = True,
        same_column: bool = False,
    ) -> list[BitFlipFault | tuple[BitFlipFault, ...]]:
        """Random *flips*-bit faults.

        With ``same_column=True`` the flips hit the same bit position of
        *flips* distinct words inside one executed basic block — the
        column-aligned pattern the XOR checksum provably cannot see.
        Multi-word faults are returned as tuples of single-word faults.
        """
        rng = random.Random(seed)
        pool = (
            self.executed_addresses
            if executed_only
            else tuple(self.program.text_addresses())
        )
        faults: list[BitFlipFault | tuple[BitFlipFault, ...]] = []
        for _ in range(count):
            if same_column:
                bit = rng.randrange(32)
                addresses = rng.sample(pool, min(flips, len(pool)))
                faults.append(
                    tuple(BitFlipFault(address, (bit,)) for address in addresses)
                )
            else:
                address = rng.choice(pool)
                bits = tuple(rng.sample(range(32), flips))
                faults.append(BitFlipFault(address, bits))
        return faults

    def exhaustive_single_bit(
        self, addresses: tuple[int, ...] | None = None
    ) -> list[BitFlipFault]:
        """Every single-bit flip over the given (default: executed) words."""
        if addresses is None:
            return ExhaustiveSingleBit().enumerate(self.context)
        return [
            BitFlipFault(address, (bit,))
            for address in addresses
            for bit in range(32)
        ]

    # ------------------------------------------------------------------
    # Execution and classification
    # ------------------------------------------------------------------

    def run_single(self, fault) -> FaultResult:
        """Inject one fault (or tuple of faults) into a monitored run."""
        return run_one(self.context, fault)

    def run_campaign(self, faults) -> CampaignReport:
        report = CampaignReport()
        for fault in faults:
            report.results.append(self.run_single(fault))
        return report
