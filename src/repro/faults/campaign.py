"""Fault campaigns: inject, run, classify.

A campaign first runs the pristine program unmonitored to capture the
*golden* console output and the set of executed instruction addresses.
Each fault is then injected into a freshly loaded monitored simulation and
the run's outcome is classified:

=====================  ====================================================
outcome                meaning
=====================  ====================================================
``DETECTED_CIC``       the Code Integrity Checker raised a violation
``DETECTED_BASELINE``  a baseline machine check fired: the decoder rejected
                       the word (invalid opcode/operand combination) or a
                       misaligned access trapped — paper §6.3's "some errors
                       can be detected by baseline microarchitecture itself"
``CRASHED``            some other simulator-level failure
``HANG``               the run exceeded its instruction budget
``SDC``                silent data corruption: run completed, wrong output
``BENIGN``             run completed with correct output (fault masked or
                       in never-executed code)
=====================  ====================================================

The headline coverage metric counts CIC + baseline detections over faults
injected into *executed* code, matching the paper's scope ("only the errors
on the executed instructions/basic blocks can be detected").
"""

from __future__ import annotations

import enum
import random
from collections import Counter
from dataclasses import dataclass, field

from repro.errors import DecodingError, MemoryAccessError, MonitorViolation, SimulationError
from repro.asm.program import Program
from repro.faults.models import BitFlipFault, TransientFetchFault, make_fetch_hook
from repro.osmodel.loader import load_process
from repro.pipeline.funcsim import FuncSim


class Outcome(enum.Enum):
    DETECTED_CIC = "detected-cic"
    DETECTED_BASELINE = "detected-baseline"
    CRASHED = "crashed"
    HANG = "hang"
    SDC = "silent-corruption"
    BENIGN = "benign"


#: Outcomes that count as successful detection.
DETECTED = frozenset({Outcome.DETECTED_CIC, Outcome.DETECTED_BASELINE})


@dataclass(slots=True)
class FaultResult:
    fault: object
    outcome: Outcome
    detail: str = ""


@dataclass(slots=True)
class CampaignReport:
    """Aggregated campaign statistics."""

    results: list[FaultResult] = field(default_factory=list)

    def counts(self) -> Counter:
        return Counter(result.outcome for result in self.results)

    @property
    def total(self) -> int:
        return len(self.results)

    @property
    def detected(self) -> int:
        return sum(1 for result in self.results if result.outcome in DETECTED)

    @property
    def detection_rate(self) -> float:
        """Detections over all injected faults."""
        if not self.results:
            return 0.0
        return self.detected / self.total

    @property
    def sdc_rate(self) -> float:
        if not self.results:
            return 0.0
        silent = sum(1 for result in self.results if result.outcome is Outcome.SDC)
        return silent / self.total

    def summary(self) -> str:
        counts = self.counts()
        parts = [f"{self.total} faults"]
        for outcome in Outcome:
            if counts[outcome]:
                parts.append(f"{outcome.value}={counts[outcome]}")
        parts.append(f"coverage={100 * self.detection_rate:.1f}%")
        return ", ".join(parts)


class FaultCampaign:
    """Run fault-injection campaigns against one program."""

    def __init__(
        self,
        program: Program,
        iht_size: int = 8,
        hash_name: str = "xor",
        policy_name: str = "lru_half",
        inputs: list[int] | None = None,
        instruction_budget_factor: int = 20,
    ):
        self.program = program
        self.iht_size = iht_size
        self.hash_name = hash_name
        self.policy_name = policy_name
        self.inputs = list(inputs) if inputs else None
        golden = FuncSim(program, collect_trace=True, inputs=self.inputs).run()
        self.golden_console = golden.console
        self.golden_exit = golden.exit_code
        self.executed_addresses = self._expand_trace(golden)
        self.instruction_budget = max(
            10_000, golden.instructions * instruction_budget_factor
        )

    @staticmethod
    def _expand_trace(golden) -> tuple[int, ...]:
        addresses: set[int] = set()
        for event in golden.block_trace:
            addresses.update(range(event.start, event.end + 4, 4))
        return tuple(sorted(addresses))

    # ------------------------------------------------------------------
    # Fault generation
    # ------------------------------------------------------------------

    def random_single_bit(
        self, count: int, seed: int = 1, executed_only: bool = True
    ) -> list[BitFlipFault]:
        """Uniformly random single-bit persistent faults."""
        rng = random.Random(seed)
        pool = (
            self.executed_addresses
            if executed_only
            else tuple(self.program.text_addresses())
        )
        return [
            BitFlipFault(rng.choice(pool), (rng.randrange(32),))
            for _ in range(count)
        ]

    def random_multi_bit(
        self,
        count: int,
        flips: int,
        seed: int = 2,
        executed_only: bool = True,
        same_column: bool = False,
    ) -> list[BitFlipFault | tuple[BitFlipFault, ...]]:
        """Random *flips*-bit faults.

        With ``same_column=True`` the flips hit the same bit position of
        *flips* distinct words inside one executed basic block — the
        column-aligned pattern the XOR checksum provably cannot see.
        Multi-word faults are returned as tuples of single-word faults.
        """
        rng = random.Random(seed)
        pool = (
            self.executed_addresses
            if executed_only
            else tuple(self.program.text_addresses())
        )
        faults: list[BitFlipFault | tuple[BitFlipFault, ...]] = []
        for _ in range(count):
            if same_column:
                bit = rng.randrange(32)
                addresses = rng.sample(pool, min(flips, len(pool)))
                faults.append(
                    tuple(BitFlipFault(address, (bit,)) for address in addresses)
                )
            else:
                address = rng.choice(pool)
                bits = tuple(rng.sample(range(32), flips))
                faults.append(BitFlipFault(address, bits))
        return faults

    def exhaustive_single_bit(
        self, addresses: tuple[int, ...] | None = None
    ) -> list[BitFlipFault]:
        """Every single-bit flip over the given (default: executed) words."""
        pool = addresses if addresses is not None else self.executed_addresses
        return [
            BitFlipFault(address, (bit,)) for address in pool for bit in range(32)
        ]

    # ------------------------------------------------------------------
    # Execution and classification
    # ------------------------------------------------------------------

    def run_single(self, fault) -> FaultResult:
        """Inject one fault (or tuple of faults) into a monitored run."""
        process = load_process(
            self.program,
            iht_size=self.iht_size,
            hash_name=self.hash_name,
            policy_name=self.policy_name,
        )
        transients: list[TransientFetchFault] = []
        persistents: list[BitFlipFault] = []
        parts = fault if isinstance(fault, tuple) else (fault,)
        for part in parts:
            if isinstance(part, TransientFetchFault):
                part.reset()
                transients.append(part)
            else:
                persistents.append(part)
        simulator = FuncSim(
            self.program,
            monitor=process.monitor,
            fetch_hook=make_fetch_hook(transients) if transients else None,
            inputs=self.inputs,
            max_instructions=self.instruction_budget,
        )
        for part in persistents:
            part.apply_to_memory(simulator.state.memory)
        try:
            result = simulator.run()
        except MonitorViolation as error:
            return FaultResult(fault, Outcome.DETECTED_CIC, str(error))
        except DecodingError as error:
            return FaultResult(fault, Outcome.DETECTED_BASELINE, str(error))
        except MemoryAccessError as error:
            # Alignment/access machine checks are baseline hardware
            # detections, the same class as invalid-opcode traps.
            return FaultResult(fault, Outcome.DETECTED_BASELINE, str(error))
        except SimulationError as error:
            if "instruction limit" in str(error):
                return FaultResult(fault, Outcome.HANG, str(error))
            return FaultResult(fault, Outcome.CRASHED, str(error))
        if (
            result.console == self.golden_console
            and result.exit_code == self.golden_exit
        ):
            return FaultResult(fault, Outcome.BENIGN, "")
        return FaultResult(fault, Outcome.SDC, "output differs from golden run")

    def run_campaign(self, faults) -> CampaignReport:
        report = CampaignReport()
        for fault in faults:
            report.results.append(self.run_single(fault))
        return report
