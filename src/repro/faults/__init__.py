"""Fault injection and detection-coverage analysis.

Models the two threat classes of the paper's introduction with one
mechanism — at the instruction level, both manifest as bit flips:

* **security attacks**: persistent modification of program words in memory
  after the load-time checkpoint (:class:`~repro.faults.models.BitFlipFault`);
* **transient soft errors**: bit flips on the memory-to-processor transfer
  path (:class:`~repro.faults.models.TransientFetchFault`), which the
  in-pipeline monitor catches but an in-cache checker would not
  (Section 3.2).

:mod:`repro.faults.campaign` runs fault campaigns against monitored
programs and classifies outcomes for the Section 6.3 fault analysis.
"""

from repro.faults.campaign import (
    CampaignContext,
    CampaignReport,
    FaultCampaign,
    FaultResult,
    Outcome,
    build_context,
    run_one,
)
from repro.faults.enumerators import (
    ENUMERATORS,
    AttackPlacement,
    ExhaustiveSameColumnPairs,
    ExhaustiveSingleBit,
    FaultEnumerator,
    get_enumerator,
)
from repro.faults.models import (
    BitFlipFault,
    FetchProbe,
    Perturbation,
    TransientFetchFault,
    flatten,
    is_transient,
    make_fetch_hook,
    split_perturbation,
)

__all__ = [
    "AttackPlacement",
    "BitFlipFault",
    "CampaignContext",
    "ENUMERATORS",
    "ExhaustiveSameColumnPairs",
    "ExhaustiveSingleBit",
    "FaultEnumerator",
    "get_enumerator",
    "CampaignReport",
    "FaultCampaign",
    "FaultResult",
    "FetchProbe",
    "Outcome",
    "Perturbation",
    "TransientFetchFault",
    "build_context",
    "flatten",
    "is_transient",
    "make_fetch_hook",
    "run_one",
    "split_perturbation",
]
