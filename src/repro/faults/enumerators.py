"""Pluggable fault enumerators: complete, canonical injection lists.

The coverage story of the paper (§6.3) rests on *complete* fault spaces:
"every single-bit flip", "every same-column pair", "every attack site".
Before this module, each complete (or sampled) space was enumerated by
ad-hoc code scattered across :mod:`repro.faults.campaign`,
:mod:`repro.eval.fault_analysis`, and :mod:`repro.dse.engine`.  A
:class:`FaultEnumerator` packages one fault space behind two operations:

``enumerate(context)``
    **Every** perturbation of the space over the context's golden run, in
    canonical order (sorted by address/site, never by hash-table or RNG
    order).  Complete and duplicate-free by construction — the property
    tier in ``tests/coverage/test_enumerators.py`` pins both against
    brute force — and a pure function of the context, so any process
    enumerates the identical list (what lets exhaustive corpora shard
    across workers and resume).

``sample(context, count, seed)``
    A seeded, order-preserving subset of ``enumerate`` — by construction
    a subset of the exhaustive space, so sampled corpora are contained in
    the committed ground-truth matrices (pinned by the coverage tier).

Registered enumerators (:data:`ENUMERATORS`):

=====================  ==================================================
``single-bit``         every single-bit flip of every executed word —
                       the §6.3 claim, 32 × executed words
``same-column-pair``   every pair of words inside one executed dynamic
                       block, flipped at the same bit position — the
                       even-weight column pattern XOR provably misses
``attack-placement``   every :mod:`repro.attacks` generator at every
                       eligible CFG site, transient variants included
=====================  ==================================================

The legacy seeded pair sampler :func:`seeded_same_column_pairs` also
lives here (re-exported as :func:`repro.faults.campaign.same_column_pairs`
for its long-standing call sites).  Its draw sequence is deliberately
byte-for-byte the historical one — committed DSE and fault-analysis
artifacts depend on it — which is why it samples *with* replacement from
the trace's block set rather than subsetting the canonical enumeration.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.errors import ConfigurationError
from repro.faults.models import BitFlipFault


@runtime_checkable
class FaultEnumerator(Protocol):
    """One complete fault space over a campaign context."""

    name: str

    def enumerate(self, context) -> list:
        """Every perturbation of the space, canonical order, no dupes."""
        ...

    def sample(self, context, count: int, seed: int) -> list:
        """Seeded order-preserving subset of :meth:`enumerate`."""
        ...


def _subset(items: list, count: int, seed: int) -> list:
    """Order-preserving seeded subset (the :class:`AttackCorpus` idiom)."""
    if count < 0:
        raise ConfigurationError(f"sample count must be >= 0, got {count}")
    if count >= len(items):
        return list(items)
    rng = random.Random(seed)
    picks = sorted(rng.sample(range(len(items)), count))
    return [items[index] for index in picks]


def _executed_blocks(context) -> tuple[tuple[int, int], ...]:
    blocks = getattr(context, "executed_blocks", ())
    if not blocks:
        raise ConfigurationError(
            "context carries no executed_blocks; build it with "
            "repro.faults.campaign.build_context (hand-built contexts "
            "must fill executed_blocks to enumerate block-confined spaces)"
        )
    return blocks


@dataclass(frozen=True, slots=True)
class ExhaustiveSingleBit:
    """Every single-bit flip of every executed word."""

    name: str = "single-bit"

    def enumerate(self, context) -> list[BitFlipFault]:
        return [
            BitFlipFault(address, (bit,))
            for address in sorted(context.executed_addresses)
            for bit in range(32)
        ]

    def sample(self, context, count: int, seed: int) -> list[BitFlipFault]:
        return _subset(self.enumerate(context), count, seed)


@dataclass(frozen=True, slots=True)
class ExhaustiveSameColumnPairs:
    """Every same-column word pair inside one executed dynamic block.

    The §6.3 adversarial pattern: two words of one monitored block flipped
    at the same bit position form an even-weight column-aligned error that
    the XOR checksum provably cannot see.  Enumeration is over the
    context's ``executed_blocks`` — for every block, every unordered
    address pair ``(a < b)``, every bit column — sorted by block start,
    then pair, then bit.  A pair of addresses shared by two distinct
    dynamic blocks (same start, different ends) is enumerated once.
    """

    name: str = "same-column-pair"

    def enumerate(self, context) -> list[tuple[BitFlipFault, ...]]:
        pairs: list[tuple[BitFlipFault, ...]] = []
        seen: set[tuple[int, int, int]] = set()
        for start, end in _executed_blocks(context):
            addresses = list(range(start, end + 4, 4))
            for i, first in enumerate(addresses):
                for second in addresses[i + 1 :]:
                    for bit in range(32):
                        key = (first, second, bit)
                        if key in seen:
                            continue
                        seen.add(key)
                        pairs.append(
                            (
                                BitFlipFault(first, (bit,)),
                                BitFlipFault(second, (bit,)),
                            )
                        )
        return pairs

    def sample(self, context, count: int, seed: int) -> list:
        return _subset(self.enumerate(context), count, seed)


@dataclass(frozen=True, slots=True)
class AttackPlacement:
    """Every attack generator at every eligible CFG site.

    Wraps :class:`repro.attacks.corpus.AttackCorpus` enumeration across
    the requested classes (default: all ten, transient variants included)
    in canonical class-then-site order.  ``sample`` draws the corpus's
    per-class seeded sample, so the sampled corpora the attack matrix and
    DSE sweeps use are index-for-index subsets of this enumeration.
    """

    classes: tuple[str, ...] = ("all",)
    name: str = "attack-placement"

    def _corpus(self, context):
        from repro.attacks.corpus import AttackCorpus

        return AttackCorpus.from_context(context)

    def _classes(self) -> tuple[str, ...]:
        from repro.attacks.corpus import resolve_classes

        return resolve_classes(self.classes)

    def enumerate(self, context) -> list:
        corpus = self._corpus(context)
        scenarios: list = []
        for attack_class in self._classes():
            scenarios.extend(corpus.enumerate(attack_class))
        return scenarios

    def sample(self, context, count: int, seed: int) -> list:
        """Up to *count* scenarios per class (the sampled-corpus shape)."""
        return self._corpus(context).build(
            self._classes(), per_class=count, seed=seed
        )


#: Registry of the complete fault spaces, by canonical name.
ENUMERATORS: dict[str, FaultEnumerator] = {
    enumerator.name: enumerator
    for enumerator in (
        ExhaustiveSingleBit(),
        ExhaustiveSameColumnPairs(),
        AttackPlacement(),
    )
}


def get_enumerator(name: str) -> FaultEnumerator:
    enumerator = ENUMERATORS.get(name)
    if enumerator is None:
        raise ConfigurationError(
            f"unknown fault enumerator {name!r}; available: "
            f"{', '.join(ENUMERATORS)}"
        )
    return enumerator


def seeded_same_column_pairs(
    blocks, count: int, seed: int
) -> list[tuple[BitFlipFault, ...]]:
    """The historical seeded same-column pair sampler (draw-compatible).

    *blocks* is an iterable of ``(start, end)`` block identities — the
    call sites pass ``block_trace.unique_blocks()`` — consumed in the
    iteration order given, and pairs are drawn with replacement.  Both
    quirks are load-bearing: committed fault-analysis and DSE artifacts
    pin this exact draw sequence for a given ``(blocks, count, seed)``.
    New code wanting a principled subset should use
    ``ExhaustiveSameColumnPairs().sample`` instead.
    """
    rng = random.Random(seed)
    eligible = [
        block
        for block in blocks
        if block[1] - block[0] >= 4  # at least two instructions
    ]
    pairs: list[tuple[BitFlipFault, ...]] = []
    attempts = 0
    while len(pairs) < count and attempts < 50 * count:
        attempts += 1
        start, end = rng.choice(eligible)
        addresses = list(range(start, end + 4, 4))
        first, second = rng.sample(addresses, 2)
        bit = rng.randrange(32)
        pairs.append((BitFlipFault(first, (bit,)), BitFlipFault(second, (bit,))))
    return pairs
