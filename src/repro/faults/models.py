"""Perturbation models: random faults and the protocol attacks share.

Everything the campaign engine injects — random soft errors *and* the
program-aware attack scenarios of :mod:`repro.attacks` — satisfies one
structural :class:`Perturbation` protocol, so fault sweeps and attack
sweeps run through the same kernel, pool, and results files:

* every perturbation has ``describe()`` and ``target_addresses()``;
* **persistent** perturbations (``transient`` is False) implement
  ``apply_to_memory(memory)`` — the stored words are altered before
  execution begins (memory-resident attack or storage-cell upset);
* **transient** perturbations (``transient`` is True) implement
  ``transform(address, word)`` / ``reset()`` — the stored words are
  intact, but a specific fetch delivers corrupted bits to the pipeline
  (bus/queue soft error, or a fetch-path attack).  Later fetches see the
  correct word again — exactly the case that defeats load-time-only
  integrity checking.

The two concrete fault models here are :class:`BitFlipFault` (persistent)
and :class:`TransientFetchFault` (transient).  Tuples of perturbations
compose into one multi-part injection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, ClassVar, Iterable, Protocol, runtime_checkable

from repro.utils.bitops import MASK32


@runtime_checkable
class Perturbation(Protocol):
    """Structural interface every injectable modification satisfies.

    ``transient`` discriminates the two delivery mechanisms; persistent
    perturbations additionally provide ``apply_to_memory``, transient ones
    ``transform``/``reset`` (see the module docstring).
    """

    transient: bool

    def describe(self) -> str:
        """One-line human-readable description."""

    def target_addresses(self) -> tuple[int, ...]:
        """Text-segment addresses whose fetched words this corrupts."""


def is_transient(perturbation) -> bool:
    """True if *perturbation* is delivered on the fetch path."""
    flag = getattr(perturbation, "transient", None)
    if flag is not None:
        return bool(flag)
    return callable(getattr(perturbation, "transform", None))


def flatten(perturbation) -> tuple:
    """Expand (possibly nested) tuples of perturbations into parts."""
    if isinstance(perturbation, tuple):
        parts: list = []
        for item in perturbation:
            parts.extend(flatten(item))
        return tuple(parts)
    return (perturbation,)


def split_perturbation(perturbation) -> tuple[list, list]:
    """Split a perturbation (or tuple) into (persistent, transient) parts."""
    persistents: list = []
    transients: list = []
    for part in flatten(perturbation):
        if is_transient(part):
            transients.append(part)
        else:
            persistents.append(part)
    return persistents, transients


@dataclass(frozen=True, slots=True)
class BitFlipFault:
    """Persistent bit flips in one stored instruction word."""

    address: int
    bits: tuple[int, ...]

    transient: ClassVar[bool] = False

    @property
    def mask(self) -> int:
        value = 0
        for bit in self.bits:
            value |= 1 << bit
        return value & MASK32

    def describe(self) -> str:
        bit_list = ",".join(str(bit) for bit in self.bits)
        return f"persistent flip @{self.address:#010x} bits[{bit_list}]"

    def target_addresses(self) -> tuple[int, ...]:
        return (self.address,)

    def apply_to_memory(self, memory) -> None:
        memory.write_word(self.address, memory.read_word(self.address) ^ self.mask)


@dataclass(slots=True)
class TransientFetchFault:
    """Bit flips delivered on the *n*-th fetch of one address (1-based)."""

    address: int
    bits: tuple[int, ...]
    occurrence: int = 1
    _seen: int = field(default=0, repr=False, compare=False)

    transient: ClassVar[bool] = True

    @property
    def mask(self) -> int:
        value = 0
        for bit in self.bits:
            value |= 1 << bit
        return value & MASK32

    def describe(self) -> str:
        bit_list = ",".join(str(bit) for bit in self.bits)
        return (
            f"transient flip @{self.address:#010x} bits[{bit_list}] "
            f"on fetch #{self.occurrence}"
        )

    def target_addresses(self) -> tuple[int, ...]:
        return (self.address,)

    def transform(self, address: int, word: int) -> int:
        if address != self.address:
            return word
        self._seen += 1
        if self._seen == self.occurrence:
            return word ^ self.mask
        return word

    def reset(self) -> None:
        self._seen = 0

    def pending(self) -> bool:
        """True while a future fetch may still be corrupted."""
        return self._seen < self.occurrence

    def seek(self, fetch_counts) -> None:
        """Position the counter as if ``fetch_counts[address]`` fetches of
        each address already happened — the golden-trace backend's resume
        from a mid-run checkpoint."""
        self._seen = fetch_counts.get(self.address, 0)


def make_fetch_hook(transients: Iterable) -> Callable[[int, int], int]:
    """Compose transient perturbations into a simulator ``fetch_hook``."""
    transients = list(transients)

    def hook(address: int, word: int) -> int:
        for part in transients:
            word = part.transform(address, word)
        return word

    return hook


class FetchProbe:
    """Fetch-path wrapper that times the first corrupted delivery.

    Wraps the simulator's ``fetch_hook`` position: counts every fetched
    instruction and records the ordinal of the first fetch that delivered
    a corrupted word — either because the stored word at a persistently
    tampered address was read, or because a transient part rewrote the
    word in flight.  Detection latency is then the number of instructions
    that entered the pipeline after the corruption, up to the one whose
    block-end check (or machine check) fired.
    """

    __slots__ = ("tampered", "inner", "transients", "fetches", "first_corrupt")

    def __init__(
        self,
        tampered: Iterable[int] = (),
        inner: Callable[[int, int], int] | None = None,
        transients: Iterable = (),
    ):
        self.tampered = frozenset(tampered)
        self.inner = inner
        self.transients = tuple(transients)
        self.fetches = 0
        self.first_corrupt: int | None = None

    def __call__(self, address: int, word: int) -> int:
        self.fetches += 1
        out = word if self.inner is None else self.inner(address, word)
        if self.first_corrupt is None and (
            out != word or address in self.tampered
        ):
            self.first_corrupt = self.fetches
        return out

    def latency(self) -> int | None:
        """Instructions from first corrupted fetch to the current one."""
        if self.first_corrupt is None:
            return None
        return self.fetches - self.first_corrupt

    def pending(self) -> bool:
        """True while any transient part may still alter a future fetch.

        Once every transient part has delivered (or there were none), the
        probe is a pure pass-through of the stored words: the simulator's
        hang detector may then treat fetches as a function of memory alone.
        A part without its own ``pending()`` is conservatively assumed to
        stay active forever.
        """
        for part in self.transients:
            part_pending = getattr(part, "pending", None)
            if part_pending is None or part_pending():
                return True
        return False
