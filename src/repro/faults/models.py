"""Fault models.

Both models identify a text-segment word and a set of bit positions:

* :class:`BitFlipFault` — persistent: the stored word is altered before
  execution begins (memory-resident attack or storage-cell upset).
* :class:`TransientFetchFault` — transient: the stored word is intact, but
  the *n*-th fetch of that address delivers flipped bits to the pipeline
  (bus/queue soft error).  Later fetches see the correct word again —
  exactly the case that defeats load-time-only integrity checking.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.utils.bitops import MASK32


@dataclass(frozen=True, slots=True)
class BitFlipFault:
    """Persistent bit flips in one stored instruction word."""

    address: int
    bits: tuple[int, ...]

    @property
    def mask(self) -> int:
        value = 0
        for bit in self.bits:
            value |= 1 << bit
        return value & MASK32

    def describe(self) -> str:
        bit_list = ",".join(str(bit) for bit in self.bits)
        return f"persistent flip @{self.address:#010x} bits[{bit_list}]"

    def apply_to_memory(self, memory) -> None:
        memory.write_word(self.address, memory.read_word(self.address) ^ self.mask)


@dataclass(slots=True)
class TransientFetchFault:
    """Bit flips delivered on the *n*-th fetch of one address (1-based)."""

    address: int
    bits: tuple[int, ...]
    occurrence: int = 1
    _seen: int = field(default=0, repr=False)

    @property
    def mask(self) -> int:
        value = 0
        for bit in self.bits:
            value |= 1 << bit
        return value & MASK32

    def describe(self) -> str:
        bit_list = ",".join(str(bit) for bit in self.bits)
        return (
            f"transient flip @{self.address:#010x} bits[{bit_list}] "
            f"on fetch #{self.occurrence}"
        )

    def transform(self, address: int, word: int) -> int:
        if address != self.address:
            return word
        self._seen += 1
        if self._seen == self.occurrence:
            return word ^ self.mask
        return word

    def reset(self) -> None:
        self._seen = 0


def make_fetch_hook(
    faults: list[TransientFetchFault],
) -> Callable[[int, int], int]:
    """Compose transient faults into a simulator ``fetch_hook``."""

    def hook(address: int, word: int) -> int:
        for fault in faults:
            word = fault.transform(address, word)
        return word

    return hook
