"""Microoperation framework.

Microoperations are "elementary operations performed on data stored in
datapath registers" (paper, Section 4.1).  This package makes them a
first-class, executable artifact:

* :mod:`repro.micro.microop` — the :class:`MicroOp` value object with guard
  conditions (``[start==0]``), argument references, and tuple destinations.
* :mod:`repro.micro.resources` — datapath resources (registers, register
  files, memory access units, functional units, the CAM hash table) that
  microoperations invoke operations on.
* :mod:`repro.micro.program` — :class:`MicroProgram`, an ordered sequence of
  microoperations executed against a resource set and a value context.
* :mod:`repro.micro.parser` — parses the paper's textual microoperation
  syntax, so the test suite can execute the *literal text of Figures 1, 3,
  and 4* and check it against the behavioural model.
"""

from repro.micro.microop import Const, Guard, MicroOp, Ref, TupleArg
from repro.micro.parser import parse_microop, parse_microprogram
from repro.micro.program import MicroContext, MicroProgram
from repro.micro.resources import (
    FunctionalUnit,
    HashTableResource,
    MemoryAccessUnit,
    Register,
    RegisterFileResource,
    Resource,
    ResourceSet,
)

__all__ = [
    "Const",
    "FunctionalUnit",
    "Guard",
    "HashTableResource",
    "MemoryAccessUnit",
    "MicroContext",
    "MicroOp",
    "MicroProgram",
    "Ref",
    "Register",
    "RegisterFileResource",
    "Resource",
    "ResourceSet",
    "TupleArg",
    "parse_microop",
    "parse_microprogram",
]
