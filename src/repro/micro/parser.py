"""Parser for the paper's textual microoperation syntax.

The accepted grammar covers every line in Figures 1, 3(b) and 4 verbatim::

    current_pc = CPC.read();
    null = [start==0]STA.write(current_pc);
    nhashv = HASHFU.ope(ohashv, instr);
    <found,match> = IHTbb.lookup(<start,end,hashv>);
    exception0 = [found==0] '1';
    exception1 = [found==1 & match==0] '1';

so the test suite can feed the figures' literal text into the framework and
check the resulting behaviour against the fast behavioural checker.
"""

from __future__ import annotations

import re

from repro.errors import ConfigurationError
from repro.micro.microop import Arg, Const, Guard, MicroOp, Ref, TupleArg
from repro.micro.program import MicroProgram

_LINE = re.compile(
    r"""
    ^\s*
    (?P<dest> null | <\s*\w+(?:\s*,\s*\w+)*\s*> | \w+ )
    \s*=\s*
    (?P<guard> \[ [^\]]+ \] )? \s*
    (?P<rhs> .+? )
    \s*;?\s*$
    """,
    re.VERBOSE,
)
_CALL = re.compile(r"^(?P<resource>\w+)\.(?P<operation>\w+)\((?P<args>.*)\)$")
_LITERAL = re.compile(r"^'(?P<value>-?\d+)'$")
_GUARD_TERM = re.compile(r"^\s*(?P<name>\w+)\s*==\s*(?P<value>-?\d+)\s*$")


def parse_microop(text: str) -> MicroOp:
    """Parse one microoperation line."""
    match = _LINE.match(text)
    if match is None:
        raise ConfigurationError(f"cannot parse microoperation {text!r}")
    dests = _parse_dest(match.group("dest"))
    guard = _parse_guard(match.group("guard"))
    rhs = match.group("rhs").strip()
    literal = _LITERAL.match(rhs)
    if literal is not None:
        return MicroOp(
            dests=dests,
            resource=None,
            operation=None,
            args=(Const(int(literal.group("value"))),),
            guard=guard,
        )
    call = _CALL.match(rhs)
    if call is None:
        raise ConfigurationError(f"cannot parse right-hand side {rhs!r}")
    args = _parse_args(call.group("args"))
    return MicroOp(
        dests=dests,
        resource=call.group("resource"),
        operation=call.group("operation"),
        args=args,
        guard=guard,
    )


def parse_microprogram(text: str, name: str = "") -> MicroProgram:
    """Parse a multi-line microoperation listing into a program.

    Blank lines and ``//``/``#`` comment lines are skipped.
    """
    ops = []
    for line in text.splitlines():
        stripped = line.strip()
        if not stripped or stripped.startswith(("//", "#")):
            continue
        ops.append(parse_microop(stripped))
    return MicroProgram(ops, name)


def _parse_dest(text: str) -> tuple[str, ...]:
    text = text.strip()
    if text == "null":
        return ()
    if text.startswith("<"):
        inner = text[1:-1]
        return tuple(part.strip() for part in inner.split(","))
    return (text,)


def _parse_guard(text: str | None) -> Guard | None:
    if text is None:
        return None
    body = text.strip()[1:-1]
    terms = []
    for part in body.split("&"):
        term = _GUARD_TERM.match(part)
        if term is None:
            raise ConfigurationError(f"cannot parse guard term {part!r}")
        terms.append((term.group("name"), int(term.group("value"))))
    return Guard(tuple(terms))


def _parse_args(text: str) -> tuple[Arg, ...]:
    text = text.strip()
    if not text:
        return ()
    args: list[Arg] = []
    for part in _split_args(text):
        args.append(_parse_arg(part))
    return tuple(args)


def _split_args(text: str) -> list[str]:
    """Split on commas not nested inside ``<...>`` tuples."""
    parts = []
    depth = 0
    current = []
    for char in text:
        if char == "<":
            depth += 1
        elif char == ">":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    parts.append("".join(current))
    return [part.strip() for part in parts if part.strip()]


def _parse_arg(text: str) -> Arg:
    if text.startswith("<"):
        inner = text[1:-1]
        items = tuple(_parse_arg(part) for part in _split_args(inner))
        for item in items:
            if isinstance(item, TupleArg):
                raise ConfigurationError("nested tuples are not supported")
        return TupleArg(items)  # type: ignore[arg-type]
    literal = _LITERAL.match(text)
    if literal is not None:
        return Const(int(literal.group("value")))
    if re.fullmatch(r"-?\d+", text):
        return Const(int(text))
    if re.fullmatch(r"\w+", text):
        return Ref(text)
    raise ConfigurationError(f"cannot parse argument {text!r}")
