"""The microoperation value objects.

A microoperation has the general form::

    <dest1, dest2> = [var==K & var2==M] RESOURCE.operation(arg, ...)

* The destination is ``null`` (discard), a single variable, or a tuple.
* The optional guard is a conjunction of equality tests on context
  variables; when it evaluates false the operation is *not* performed and
  any destinations are bound to 0 (the hardware reads de-asserted signals).
* Arguments are variable references, integer literals (the paper writes
  them as ``'1'``), or tuples (for the CAM lookup key).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union


@dataclass(frozen=True, slots=True)
class Ref:
    """Reference to a context variable or instruction field (rs, imm, ...)."""

    name: str

    def describe(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Const:
    """Literal operand."""

    value: int

    def describe(self) -> str:
        return f"'{self.value}'"


@dataclass(frozen=True, slots=True)
class TupleArg:
    """Tuple operand, e.g. the ``<start, end, hashv>`` CAM key."""

    items: tuple[Union[Ref, Const], ...]

    def describe(self) -> str:
        return "<" + ",".join(item.describe() for item in self.items) + ">"


Arg = Union[Ref, Const, TupleArg]


@dataclass(frozen=True, slots=True)
class Guard:
    """Conjunction of equality tests: ``[found==1 & match==0]``."""

    terms: tuple[tuple[str, int], ...]

    def describe(self) -> str:
        body = " & ".join(f"{name}=={value}" for name, value in self.terms)
        return f"[{body}]"


@dataclass(frozen=True, slots=True)
class MicroOp:
    """One microoperation.

    ``resource``/``operation`` are ``None`` for pure assignments such as
    ``exception0 = [found==0] '1'`` where the right-hand side is a literal.
    """

    dests: tuple[str, ...]
    resource: str | None
    operation: str | None
    args: tuple[Arg, ...]
    guard: Guard | None = None

    def describe(self) -> str:
        """Render back to the paper's textual syntax."""
        if not self.dests:
            dest_text = "null"
        elif len(self.dests) == 1:
            dest_text = self.dests[0]
        else:
            dest_text = "<" + ",".join(self.dests) + ">"
        guard_text = self.guard.describe() if self.guard else ""
        if self.resource is None:
            value = self.args[0].describe() if self.args else "'0'"
            return f"{dest_text} = {guard_text}{value}"
        arg_text = ", ".join(arg.describe() for arg in self.args)
        return f"{dest_text} = {guard_text}{self.resource}.{self.operation}({arg_text})"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.describe()
