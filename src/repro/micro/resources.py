"""Datapath resources that microoperations operate on.

A :class:`Resource` exposes named operations (``read``, ``write``, ``inc``,
``ope``, ``lookup``, ...).  The concrete resources mirror the hardware
modules of the paper's Figure 2: ``CPC``/``PPC``/``STA``/``RHASH`` registers,
the ``GPR`` register file, the ``IMAU`` instruction memory access unit, the
``HASHFU`` hash functional unit, and the ``IHTbb`` CAM.
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ConfigurationError
from repro.utils.bitops import MASK32


class Resource:
    """Base class: a named hardware resource with invocable operations."""

    def __init__(self, name: str):
        self.name = name

    def invoke(self, operation: str, args: tuple) -> object:
        method = getattr(self, f"op_{operation}", None)
        if method is None:
            raise ConfigurationError(
                f"resource {self.name!r} has no operation {operation!r}"
            )
        return method(*args)

    def operations(self) -> tuple[str, ...]:
        """Names of the operations this resource supports."""
        return tuple(
            name[3:] for name in dir(self) if name.startswith("op_")
        )


class Register(Resource):
    """A single datapath register.

    ``width`` bits wide for integer values; hash state registers may hold
    opaque (non-integer) state when a wide hash algorithm is attached, in
    which case masking is skipped — the finalized value compared against the
    CAM is still ``width`` bits.
    """

    def __init__(self, name: str, width: int = 32, reset_value: object = 0):
        super().__init__(name)
        self.width = width
        self.reset_value = reset_value
        self.value: object = reset_value

    def _mask(self, value: object) -> object:
        if isinstance(value, int):
            return value & ((1 << self.width) - 1)
        return value

    def op_read(self) -> object:
        return self.value

    def op_write(self, value: object) -> None:
        self.value = self._mask(value)

    def op_reset(self) -> None:
        self.value = self.reset_value

    def op_inc(self, step: int = 4) -> None:
        if not isinstance(self.value, int):
            raise ConfigurationError(f"cannot increment non-integer {self.name}")
        self.value = (self.value + step) & ((1 << self.width) - 1)


class RegisterFileResource(Resource):
    """The general-purpose register file (GPR).

    Wraps the simulator's register list so microoperations and the
    behavioural model observe the same state.  Register 0 stays zero.
    """

    def __init__(self, name: str, registers: list[int]):
        super().__init__(name)
        self.registers = registers

    def op_read(self, index: int) -> int:
        return self.registers[index]

    def op_write(self, index: int, value: int) -> None:
        if index:
            self.registers[index] = value & MASK32


class MemoryAccessUnit(Resource):
    """Instruction/data memory port (IMAU / DMAU).

    ``fetch_hook`` models transient faults on the memory-to-processor
    transfer path; the monitor hashes the word *after* the hook, i.e. the
    word that actually enters the pipeline — exactly the coverage argument
    of Section 3.2.
    """

    def __init__(
        self,
        name: str,
        memory,
        fetch_hook: Callable[[int, int], int] | None = None,
    ):
        super().__init__(name)
        self.memory = memory
        self.fetch_hook = fetch_hook

    def op_read(self, address: int) -> int:
        word = self.memory.read_word(address)
        if self.fetch_hook is not None:
            word = self.fetch_hook(address, word)
        return word

    def op_write(self, address: int, value: int) -> None:
        self.memory.write_word(address, value)


class FunctionalUnit(Resource):
    """A combinational functional unit with a single ``ope`` operation."""

    def __init__(self, name: str, function: Callable[..., object]):
        super().__init__(name)
        self.function = function

    def op_ope(self, *args: object) -> object:
        return self.function(*args)


class HashTableResource(Resource):
    """The IHTbb CAM, as seen from the microoperation level.

    ``lookup`` takes the ``<start, end, hashv>`` key tuple and returns the
    ``<found, match>`` pair of Figure 4.  The underlying
    :class:`~repro.cic.iht.InternalHashTable` is shared with the OS model so
    exception handling and microoperations observe one table.
    """

    def __init__(self, name: str, table):
        super().__init__(name)
        self.table = table

    def op_lookup(self, key: tuple) -> tuple[int, int]:
        start, end, hashv = key
        found, match = self.table.lookup(start, end, hashv)
        return (int(found), int(match))


class ResourceSet:
    """Named collection of resources a microprogram executes against."""

    def __init__(self, *resources: Resource):
        self._by_name: dict[str, Resource] = {}
        for resource in resources:
            self.add(resource)

    def add(self, resource: Resource) -> None:
        if resource.name in self._by_name:
            raise ConfigurationError(f"duplicate resource {resource.name!r}")
        self._by_name[resource.name] = resource

    def __getitem__(self, name: str) -> Resource:
        try:
            return self._by_name[name]
        except KeyError:
            raise ConfigurationError(f"unknown resource {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def names(self) -> tuple[str, ...]:
        return tuple(self._by_name)
