"""Microprogram execution.

A :class:`MicroProgram` is the ordered microoperation sequence attached to
one pipeline stage of one instruction (class).  Execution is sequential
within a stage; assignments bind variables in a :class:`MicroContext`, whose
name lookup falls back to the current instruction's decoded fields (``rs``,
``rt``, ``imm``...), which is how ``GPR.read(rs)`` in Figure 4 resolves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConfigurationError
from repro.micro.microop import Const, Guard, MicroOp, Ref, TupleArg
from repro.micro.resources import ResourceSet


@dataclass(slots=True)
class MicroContext:
    """Variable bindings for one microprogram activation."""

    fields: dict[str, int] = field(default_factory=dict)
    vars: dict[str, object] = field(default_factory=dict)

    def value(self, name: str) -> object:
        if name in self.vars:
            return self.vars[name]
        if name in self.fields:
            return self.fields[name]
        raise ConfigurationError(f"unbound microoperation variable {name!r}")

    def bind(self, name: str, value: object) -> None:
        self.vars[name] = value


class MicroProgram:
    """An executable sequence of microoperations."""

    def __init__(self, ops: tuple[MicroOp, ...] | list[MicroOp], name: str = ""):
        self.ops = tuple(ops)
        self.name = name

    def __len__(self) -> int:
        return len(self.ops)

    def __iter__(self):
        return iter(self.ops)

    def __add__(self, other: "MicroProgram") -> "MicroProgram":
        """Concatenation — how monitoring microoperations are *embedded*."""
        combined_name = f"{self.name}+{other.name}" if self.name else other.name
        return MicroProgram(self.ops + other.ops, combined_name)

    def describe(self) -> str:
        """The paper-style textual listing of the program."""
        return "\n".join(f"{op.describe()};" for op in self.ops)

    def execute(self, resources: ResourceSet, context: MicroContext) -> MicroContext:
        """Run every microoperation in order against *resources*."""
        for op in self.ops:
            if op.guard is not None and not _guard_holds(op.guard, context):
                # De-asserted: destinations read as 0, no side effect occurs.
                for dest in op.dests:
                    if dest not in context.vars:
                        context.bind(dest, 0)
                continue
            if op.resource is None:
                result: object = _resolve(op.args[0], context) if op.args else 0
            else:
                resolved = tuple(_resolve(arg, context) for arg in op.args)
                result = resources[op.resource].invoke(op.operation or "", resolved)
            _bind_result(op, result, context)
        return context

    def resources_used(self) -> tuple[str, ...]:
        """Resource names referenced by this program (for area accounting)."""
        seen: dict[str, None] = {}
        for op in self.ops:
            if op.resource is not None:
                seen.setdefault(op.resource)
        return tuple(seen)


def _guard_holds(guard: Guard, context: MicroContext) -> bool:
    return all(context.value(name) == value for name, value in guard.terms)


def _resolve(arg, context: MicroContext):
    if isinstance(arg, Ref):
        return context.value(arg.name)
    if isinstance(arg, Const):
        return arg.value
    if isinstance(arg, TupleArg):
        return tuple(_resolve(item, context) for item in arg.items)
    raise ConfigurationError(f"unknown argument type {arg!r}")


def _bind_result(op: MicroOp, result: object, context: MicroContext) -> None:
    if not op.dests:
        return
    if len(op.dests) == 1:
        context.bind(op.dests[0], result)
        return
    if not isinstance(result, tuple) or len(result) != len(op.dests):
        raise ConfigurationError(
            f"operation {op.resource}.{op.operation} returned {result!r}, "
            f"expected a {len(op.dests)}-tuple"
        )
    for dest, value in zip(op.dests, result):
        context.bind(dest, value)
