"""Opt-in phase profiler for the simulators: fetch/decode/execute/monitor.

Answers "where does simulated time go on the *host*?" for one
:class:`~repro.pipeline.funcsim.FuncSim` or
:class:`~repro.pipeline.cpu.PipelineCPU` run by bucketing host wall time
into the four phases the paper's pipeline names — fetch, decode,
execute, and the monitor beside them.  Attachment is pure observation:

* the simulator's ``_fetch``/``_decode``/``_execute`` (FuncSim) or
  ``_fetch_latch``/``_decode``/``_execute_stage`` (PipelineCPU) bound
  methods are shadowed by timing wrappers **on the instance** — the
  class is untouched, other simulators in the process are unaffected,
  and :meth:`PhaseProfiler.detach` restores the instance exactly;
* the attached :class:`Monitor`, if any, is replaced by a transparent
  proxy that times ``on_instruction``/``on_block_end`` and forwards
  everything else (``.stats`` included, so ``RunResult.monitor_stats``
  is the very same object either way).

Because every wrapper returns its wrappee's result unchanged, a
profiled run produces an identical :class:`RunResult` — cycles,
instructions, exit code, console, monitor stats — which
``tests/obs/test_profiler.py`` pins.  Attach **before** calling
``run()``: the simulators read ``self.monitor`` into a local at the top
of the loop, so a proxy installed mid-run would never be consulted.

The profiler is deliberately not part of campaign telemetry: per-call
wrappers cost real time on hot loops, so this is a hand tool
(``repro run --profile``) rather than an always-on instrument.
"""

from __future__ import annotations

import time

#: The four paper-named phase buckets, in pipeline order.
PHASES = ("fetch", "decode", "execute", "monitor")

#: Simulator kind -> (phase -> instance method to shadow).
_TARGETS = {
    "funcsim": {"fetch": "_fetch", "decode": "_decode", "execute": "_execute"},
    "pipeline": {
        "fetch": "_fetch_latch",
        "decode": "_decode",
        "execute": "_execute_stage",
    },
}


class _MonitorProxy:
    """Times a monitor's hook calls; forwards everything else untouched."""

    __slots__ = ("_inner", "_profiler")

    def __init__(self, inner, profiler: "PhaseProfiler"):
        object.__setattr__(self, "_inner", inner)
        object.__setattr__(self, "_profiler", profiler)

    def on_instruction(self, address: int, word: int) -> None:
        start = time.perf_counter()
        try:
            return self._inner.on_instruction(address, word)
        finally:
            self._profiler._charge("monitor", time.perf_counter() - start)

    def on_block_end(self, end_address: int) -> int:
        start = time.perf_counter()
        try:
            return self._inner.on_block_end(end_address)
        finally:
            self._profiler._charge("monitor", time.perf_counter() - start)

    def __getattr__(self, name):
        return getattr(object.__getattribute__(self, "_inner"), name)


class PhaseProfiler:
    """Host-time accounting of one simulator run, by pipeline phase."""

    __slots__ = ("buckets", "_sim", "_kind", "_had_monitor")

    def __init__(self):
        self.buckets: dict[str, dict] = {
            phase: {"calls": 0, "seconds": 0.0} for phase in PHASES
        }
        self._sim = None
        self._kind: str | None = None
        self._had_monitor = False

    def _charge(self, phase: str, seconds: float) -> None:
        entry = self.buckets[phase]
        entry["calls"] += 1
        entry["seconds"] += seconds

    def _wrap(self, phase: str, method):
        def timed(*args, **kwargs):
            start = time.perf_counter()
            try:
                return method(*args, **kwargs)
            finally:
                self._charge(phase, time.perf_counter() - start)

        return timed

    @staticmethod
    def kind_of(sim) -> str:
        """Which shadow map fits *sim* (``"funcsim"``/``"pipeline"``)."""
        if hasattr(sim, "_fetch_latch"):
            return "pipeline"
        if hasattr(sim, "_fetch"):
            return "funcsim"
        raise TypeError(
            f"cannot profile {type(sim).__name__}: "
            "no fetch/decode/execute phase methods found"
        )

    def attach(self, sim) -> "PhaseProfiler":
        """Instrument *sim* in place (call before ``sim.run()``); returns self."""
        if self._sim is not None:
            raise RuntimeError("profiler already attached")
        kind = self.kind_of(sim)
        for phase, name in _TARGETS[kind].items():
            setattr(sim, name, self._wrap(phase, getattr(sim, name)))
        self._had_monitor = getattr(sim, "monitor", None) is not None
        if self._had_monitor:
            sim.monitor = _MonitorProxy(sim.monitor, self)
        self._sim = sim
        self._kind = kind
        return self

    def detach(self) -> None:
        """Restore the simulator's own methods and monitor."""
        sim, self._sim = self._sim, None
        if sim is None:
            return
        for name in _TARGETS[self._kind].values():
            # Deleting the instance attribute un-shadows the class method.
            try:
                delattr(sim, name)
            except AttributeError:
                pass
        if self._had_monitor and isinstance(sim.monitor, _MonitorProxy):
            sim.monitor = sim.monitor._inner

    def report(self) -> dict:
        """``{phase: {"calls", "seconds", "share"}}`` over measured time."""
        total = sum(entry["seconds"] for entry in self.buckets.values())
        return {
            phase: {
                "calls": entry["calls"],
                "seconds": entry["seconds"],
                "share": (entry["seconds"] / total) if total > 0 else 0.0,
            }
            for phase, entry in self.buckets.items()
        }

    def render(self) -> str:
        """A small fixed-width table of the phase breakdown."""
        lines = [f"{'phase':<10} {'calls':>10} {'seconds':>10} {'share':>7}"]
        for phase, entry in self.report().items():
            lines.append(
                f"{phase:<10} {entry['calls']:>10} "
                f"{entry['seconds']:>10.4f} {entry['share']:>6.1%}"
            )
        return "\n".join(lines)
