"""Structured telemetry core: counters, gauges, histograms, timed spans.

The 2007 paper's CIC is an observability device bolted *beside* the fetch
path — it watches, it never steers.  :class:`Telemetry` applies the same
discipline to the reproduction's own execution tier: every instrument is
an accumulate-only side channel, so classification results are
byte-identical with telemetry enabled, disabled, or at any verbosity
(``tests/obs/test_neutrality.py`` pins this).

Design
------

* **Four instrument kinds**, all stored as plain mergeable dicts:
  monotonically increasing *counters*, last-value *gauges*,
  summary-statistic *histograms* (count / sum / min / max plus
  power-of-two bucket counts, enough for rate and tail estimates without
  keeping samples), and *spans* — wall-time intervals measured on the
  monotonic clock (:func:`time.perf_counter`), accumulated per *path*.
* **Span paths form a tree.**  ``span()`` maintains a stack per
  :class:`Telemetry` instance; a span opened while another is active
  records under ``"parent/child"``.  A rendered span tree is just the
  paths split on ``/`` (:mod:`repro.obs.stats`).
* **Process-safe by construction.**  Nothing here locks or shares:
  every process accumulates into its own process-local instance
  (:func:`local`), and the execution harness moves data across process
  boundaries by value — each worker calls :meth:`~Telemetry.drain` on
  its local instance at shard end and the parent
  :meth:`~Telemetry.merge` folds the delta in at shard commit, riding
  the same seams the JSONL records already cross.
* **Cheap enough to leave on.**  A counter bump is one dict operation;
  a span is two clock reads.  Disabled instances no-op entirely
  (``REPRO_OBS=0`` in the environment, :func:`set_enabled`, or the
  CLI's ``--no-telemetry`` flag).

The per-run aggregation (manifest + merged telemetry + per-shard stats)
lives in :mod:`repro.obs.metrics`; this module is only the accumulator.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager

#: Environment switch: ``REPRO_OBS=0`` starts the process-local
#: telemetry disabled (workers inherit the parent's choice under fork;
#: spawn-started workers re-read the environment).
ENV_SWITCH = "REPRO_OBS"


def _bucket(value: float) -> int:
    """Power-of-two histogram bucket: smallest ``e`` with ``value <= 2**e``."""
    exponent = 0
    while value > (1 << exponent) and exponent < 63:
        exponent += 1
    return exponent


class Telemetry:
    """One process-local accumulator of counters, gauges, histograms, spans.

    All state is plain dicts of JSON-serializable scalars, so a
    snapshot travels through pickle, JSON, and :meth:`merge` unchanged.
    """

    __slots__ = ("enabled", "counters", "gauges", "histograms", "spans", "_stack")

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, dict] = {}
        self.spans: dict[str, dict] = {}
        self._stack: list[str] = []

    # -- instruments -----------------------------------------------------

    def count(self, name: str, value: int = 1) -> None:
        """Add *value* to the monotonically increasing counter *name*."""
        if not self.enabled:
            return
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge *name* to its latest observed *value*."""
        if not self.enabled:
            return
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Fold *value* into histogram *name* (count/sum/min/max/buckets)."""
        if not self.enabled:
            return
        entry = self.histograms.get(name)
        if entry is None:
            entry = self.histograms[name] = {
                "count": 0, "sum": 0.0, "min": value, "max": value,
                "buckets": {},
            }
        entry["count"] += 1
        entry["sum"] += value
        if value < entry["min"]:
            entry["min"] = value
        if value > entry["max"]:
            entry["max"] = value
        key = str(_bucket(value))
        entry["buckets"][key] = entry["buckets"].get(key, 0) + 1

    @contextmanager
    def span(self, name: str):
        """Time a block on the monotonic clock, accumulated per span path.

        Nested spans record under ``"outer/inner"`` paths; the interval
        is charged on exit even when the body raises.
        """
        if not self.enabled:
            yield
            return
        self._stack.append(name)
        path = "/".join(self._stack)
        start = time.perf_counter()
        try:
            yield
        finally:
            elapsed = time.perf_counter() - start
            self._stack.pop()
            entry = self.spans.get(path)
            if entry is None:
                self.spans[path] = {"count": 1, "seconds": elapsed}
            else:
                entry["count"] += 1
                entry["seconds"] += elapsed

    # -- movement --------------------------------------------------------

    @property
    def empty(self) -> bool:
        return not (self.counters or self.gauges or self.histograms or self.spans)

    def snapshot(self) -> dict:
        """A deep-enough copy of everything recorded (empty kinds omitted)."""
        data: dict = {}
        if self.counters:
            data["counters"] = dict(self.counters)
        if self.gauges:
            data["gauges"] = dict(self.gauges)
        if self.histograms:
            data["histograms"] = {
                name: {**entry, "buckets": dict(entry["buckets"])}
                for name, entry in self.histograms.items()
            }
        if self.spans:
            data["spans"] = {
                path: dict(entry) for path, entry in self.spans.items()
            }
        return data

    def drain(self) -> dict:
        """Snapshot and reset: the shard-commit delta workers hand back."""
        data = self.snapshot()
        self.clear()
        return data

    def clear(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
        self.spans.clear()

    def merge(self, data: dict | None) -> None:
        """Fold a :meth:`snapshot`/:meth:`drain` delta into this instance.

        Merging is the parent-side half of the shard-commit protocol:
        counters and span/histogram statistics add, gauges keep the
        newest value.  Merging ignores ``enabled`` on purpose — a parent
        that collects always absorbs what workers measured.
        """
        if not data:
            return
        for name, value in data.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0) + value
        self.gauges.update(data.get("gauges", {}))
        for name, delta in data.get("histograms", {}).items():
            entry = self.histograms.get(name)
            if entry is None:
                self.histograms[name] = {
                    **delta, "buckets": dict(delta.get("buckets", {}))
                }
                continue
            entry["count"] += delta["count"]
            entry["sum"] += delta["sum"]
            entry["min"] = min(entry["min"], delta["min"])
            entry["max"] = max(entry["max"], delta["max"])
            for key, count in delta.get("buckets", {}).items():
                entry["buckets"][key] = entry["buckets"].get(key, 0) + count
        for path, delta in data.get("spans", {}).items():
            entry = self.spans.get(path)
            if entry is None:
                self.spans[path] = dict(delta)
            else:
                entry["count"] += delta["count"]
                entry["seconds"] += delta["seconds"]


# ----------------------------------------------------------------------
# The process-local instance and its module-level face
# ----------------------------------------------------------------------

_LOCAL = Telemetry(enabled=os.environ.get(ENV_SWITCH, "1") != "0")


def local() -> Telemetry:
    """This process's telemetry accumulator (workers drain it per shard)."""
    return _LOCAL


def enabled() -> bool:
    return _LOCAL.enabled


def set_enabled(flag: bool) -> None:
    """Turn the process-local instruments on or off (observer only —
    execution results are identical either way)."""
    _LOCAL.enabled = bool(flag)


@contextmanager
def scoped(flag: bool):
    """Temporarily force telemetry on/off (the neutrality tests' lever)."""
    previous = _LOCAL.enabled
    _LOCAL.enabled = bool(flag)
    try:
        yield
    finally:
        _LOCAL.enabled = previous


def count(name: str, value: int = 1) -> None:
    _LOCAL.count(name, value)


def gauge(name: str, value: float) -> None:
    _LOCAL.gauge(name, value)


def observe(name: str, value: float) -> None:
    _LOCAL.observe(name, value)


def span(name: str):
    return _LOCAL.span(name)
