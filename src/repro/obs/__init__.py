"""`repro.obs` — telemetry, structured logging, metrics, and profiling.

The observability subsystem the execution tier reports through, built on
one hard invariant: **telemetry is an execution-side observer** — result
artifacts (campaign/DSE JSONL, reports, coverage matrices) are
byte-identical with it enabled, disabled, or at any verbosity
(``tests/obs/test_neutrality.py`` pins this, in the same spirit as the
paper's CIC watching the fetch stream without steering it).

Modules
-------
:mod:`repro.obs.core`
    Process-local counters / gauges / histograms / monotonic spans, with
    the drain/merge protocol the harness uses to move worker telemetry
    across process boundaries at shard commit.
:mod:`repro.obs.log`
    The structured stderr logger behind every subcommand's
    ``-v``/``--quiet`` flags.
:mod:`repro.obs.metrics`
    Run manifests and the ``<out>.metrics.json`` artifact written beside
    every campaign/DSE results file.
:mod:`repro.obs.stats`
    Rendering for ``repro stats``: span trees, counters, per-shard and
    per-worker tables.
:mod:`repro.obs.schema`
    Dependency-free JSON-schema validation for metrics and
    ``BENCH_*.json`` artifacts.
:mod:`repro.obs.profiler`
    The opt-in fetch/decode/execute/monitor phase profiler for
    ``FuncSim``/``PipelineCPU``.
"""

from repro.obs.core import (
    ENV_SWITCH,
    Telemetry,
    count,
    enabled,
    gauge,
    local,
    observe,
    scoped,
    set_enabled,
    span,
)
from repro.obs.log import LEVELS, StructuredLog, log, set_level
from repro.obs.metrics import (
    METRICS_VERSION,
    environment,
    load_metrics,
    metrics_path,
    span_coverage,
    write_metrics,
)
from repro.obs.profiler import PhaseProfiler
from repro.obs.schema import (
    BENCH_SCHEMA,
    METRICS_SCHEMA,
    validate,
    validate_bench,
    validate_metrics,
)
from repro.obs.stats import find_metrics, render_metrics, render_path

__all__ = [
    "ENV_SWITCH",
    "Telemetry",
    "count",
    "gauge",
    "observe",
    "span",
    "local",
    "enabled",
    "set_enabled",
    "scoped",
    "LEVELS",
    "StructuredLog",
    "log",
    "set_level",
    "METRICS_VERSION",
    "environment",
    "metrics_path",
    "write_metrics",
    "load_metrics",
    "span_coverage",
    "PhaseProfiler",
    "METRICS_SCHEMA",
    "BENCH_SCHEMA",
    "validate",
    "validate_metrics",
    "validate_bench",
    "find_metrics",
    "render_metrics",
    "render_path",
]
