"""`repro.obs` — telemetry, structured logging, metrics, and profiling.

The observability subsystem the execution tier reports through, built on
one hard invariant: **telemetry is an execution-side observer** — result
artifacts (campaign/DSE JSONL, reports, coverage matrices) are
byte-identical with it enabled, disabled, or at any verbosity
(``tests/obs/test_neutrality.py`` pins this, in the same spirit as the
paper's CIC watching the fetch stream without steering it).

Modules
-------
:mod:`repro.obs.core`
    Process-local counters / gauges / histograms / monotonic spans, with
    the drain/merge protocol the harness uses to move worker telemetry
    across process boundaries at shard commit.
:mod:`repro.obs.log`
    The structured stderr logger behind every subcommand's
    ``-v``/``--quiet`` flags.
:mod:`repro.obs.metrics`
    Run manifests and the ``<out>.metrics.json`` artifact written beside
    every campaign/DSE results file.
:mod:`repro.obs.events`
    The live half: the append-only, crash-tolerant ``<out>.events.jsonl``
    stream the harness emits at the shard-commit seam, its reader, and
    the tail-following generator behind ``repro stats --follow``.
:mod:`repro.obs.stats`
    Rendering for ``repro stats``: span trees, counters, per-shard and
    per-worker tables, and the live follow view (``repro top``).
:mod:`repro.obs.trace`
    Chrome/Perfetto ``trace_event`` export of a run's event timeline and
    span tree (``repro stats --export-trace``).
:mod:`repro.obs.diff`
    Cross-run regression diffs over metrics/BENCH artifacts with a
    thresholded gate (``repro stats diff A B --gate pct``).
:mod:`repro.obs.schema`
    Dependency-free JSON-schema validation for metrics, event-log,
    trace, coverage, and ``BENCH_*.json`` artifacts.
:mod:`repro.obs.profiler`
    The opt-in fetch/decode/execute/monitor phase profiler for
    ``FuncSim``/``PipelineCPU``.
"""

from repro.obs.core import (
    ENV_SWITCH,
    Telemetry,
    count,
    enabled,
    gauge,
    local,
    observe,
    scoped,
    set_enabled,
    span,
)
from repro.obs.diff import (
    DiffReport,
    DiffRow,
    diff_artifacts,
    load_artifact,
    render_diff,
)
from repro.obs.events import (
    EVENT_TYPES,
    EVENTS_SUFFIX,
    EventWriter,
    events_path,
    follow_events,
    read_events,
    resolve_events_path,
)
from repro.obs.log import LEVELS, StructuredLog, log, set_level
from repro.obs.metrics import (
    METRICS_VERSION,
    environment,
    load_metrics,
    metrics_path,
    span_coverage,
    write_metrics,
)
from repro.obs.profiler import PhaseProfiler
from repro.obs.schema import (
    BENCH_SCHEMA,
    EVENTS_SCHEMA,
    METRICS_SCHEMA,
    TRACE_SCHEMA,
    validate,
    validate_bench,
    validate_events,
    validate_metrics,
    validate_trace,
)
from repro.obs.stats import (
    FollowView,
    find_metrics,
    follow_path,
    render_metrics,
    render_path,
)
from repro.obs.trace import build_trace, collect_sources, export_trace

__all__ = [
    "ENV_SWITCH",
    "Telemetry",
    "count",
    "gauge",
    "observe",
    "span",
    "local",
    "enabled",
    "set_enabled",
    "scoped",
    "LEVELS",
    "StructuredLog",
    "log",
    "set_level",
    "METRICS_VERSION",
    "environment",
    "metrics_path",
    "write_metrics",
    "load_metrics",
    "span_coverage",
    "PhaseProfiler",
    "METRICS_SCHEMA",
    "BENCH_SCHEMA",
    "EVENTS_SCHEMA",
    "TRACE_SCHEMA",
    "validate",
    "validate_metrics",
    "validate_bench",
    "validate_events",
    "validate_trace",
    "find_metrics",
    "render_metrics",
    "render_path",
    "FollowView",
    "follow_path",
    "EVENT_TYPES",
    "EVENTS_SUFFIX",
    "EventWriter",
    "events_path",
    "resolve_events_path",
    "read_events",
    "follow_events",
    "build_trace",
    "collect_sources",
    "export_trace",
    "DiffReport",
    "DiffRow",
    "diff_artifacts",
    "load_artifact",
    "render_diff",
]
