"""Structured progress logging behind uniform verbosity levels.

Every subcommand and benchmark used to narrate progress with ad-hoc
``print(..., file=sys.stderr)`` calls; this module is the one logger they
all share, so ``-v``/``--quiet`` mean the same thing everywhere:

* messages carry an explicit **level** (``debug`` < ``info`` <
  ``warning`` < ``error``); the process-wide threshold
  (:func:`set_level`) drops anything below it — the CLI maps ``-v`` to
  ``debug``, the default to ``info``, and ``-q``/``--quiet`` to
  ``warning``;
* messages are **structured**: ``log.info("campaign complete",
  faults=200, workers=4)`` renders the human text first and the
  machine-greppable ``key=value`` fields after it, in call order;
* output goes to *stderr* (never stdout — command results stay clean for
  pipes), prefixed with the same ``"; "`` convention the CLI's
  diagnostics always used, so scripts scraping stderr keep working.

The logger is intentionally tiny — no handlers, no configuration files,
no :mod:`logging` dependency — because its job is uniformity, not
routing.  Levels also count into the process telemetry
(``log.<level>`` counters), so a run's metrics record how noisy it was.
"""

from __future__ import annotations

import sys

from repro.obs import core

#: Severity order; the threshold keeps everything >= its value.
LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}


def _render_value(value) -> str:
    text = str(value)
    if " " in text or text == "":
        return repr(text)
    return text


class StructuredLog:
    """A leveled, structured, stderr-bound progress logger."""

    __slots__ = ("name", "stream", "threshold")

    def __init__(self, name: str = "repro", level: str = "info", stream=None):
        self.name = name
        self.stream = stream
        self.threshold = LEVELS[level]

    def set_level(self, level: str) -> None:
        if level not in LEVELS:
            raise ValueError(
                f"unknown log level {level!r}; choose from: {', '.join(LEVELS)}"
            )
        self.threshold = LEVELS[level]

    @property
    def level(self) -> str:
        for name, value in LEVELS.items():
            if value == self.threshold:
                return name
        return str(self.threshold)  # pragma: no cover - custom threshold

    def enabled_for(self, level: str) -> bool:
        return LEVELS[level] >= self.threshold

    def log(self, level: str, message: str, **fields) -> None:
        """Emit one line: ``; message key=value ...`` (if level passes)."""
        if LEVELS[level] < self.threshold:
            return
        core.count(f"log.{level}")
        parts = [message]
        parts.extend(
            f"{key}={_render_value(value)}" for key, value in fields.items()
        )
        stream = self.stream if self.stream is not None else sys.stderr
        print("; " + " ".join(parts), file=stream)

    def debug(self, message: str, **fields) -> None:
        self.log("debug", message, **fields)

    def info(self, message: str, **fields) -> None:
        self.log("info", message, **fields)

    def warning(self, message: str, **fields) -> None:
        self.log("warning", message, **fields)

    def error(self, message: str, **fields) -> None:
        self.log("error", message, **fields)


#: The process-wide logger every CLI command and benchmark shares.
log = StructuredLog()


def set_level(level: str) -> None:
    """Set the shared logger's threshold (the CLI's ``-v``/``-q`` hook)."""
    log.set_level(level)
