"""Render ``*.metrics.json`` artifacts: span trees, counters, shard tables.

The read side of the telemetry pipeline, and the rendering behind the
``repro stats`` subcommand: point it at a run directory (or one metrics
file) and it renders, per run —

* the **manifest** (host, cores, plan, backend) as one provenance block;
* the **span tree** — span paths split on ``/`` and indented, each node
  with call count, accumulated seconds, and share of the root ``run``
  span — plus the coverage line the acceptance gate reads (≥ 95% of
  wall time must land in named child spans);
* **counters**, **gauges**, and **histograms** (count / mean / min /
  max), sorted by name so diffs are stable;
* the **per-shard table** (worker pid, seconds, records, records/s) and
  its **per-worker rollup** — the direct view of how evenly the harness
  spread the run.

The live half — ``repro stats --follow`` / ``repro top`` — is
:class:`FollowView` + :func:`follow_path`: tail a run's
``*.events.jsonl`` (:mod:`repro.obs.events`), print one line per
committed shard (progress bar, cumulative throughput, cache-hit rate,
ETA), and close with a per-worker summary.  Pointing it at an
already-finished run degrades gracefully to the final summary alone.

Nothing here mutates anything; ``--check`` adds schema validation
(:mod:`repro.obs.schema`) on top.
"""

from __future__ import annotations

import os

from repro.obs.events import follow_events, read_events, resolve_events_path
from repro.obs.metrics import (
    METRICS_SUFFIX,
    load_metrics,
    per_worker,
    span_coverage,
)


def find_metrics(path: str | os.PathLike) -> list[str]:
    """Metrics files under *path*: itself if a file, else a sorted scan.

    Directories are scanned recursively so ``repro stats runs/`` finds
    every campaign and sweep below it.
    """
    target = os.fspath(path)
    if os.path.isfile(target):
        return [target]
    found: list[str] = []
    for root, _dirs, files in os.walk(target):
        for name in files:
            if name.endswith(METRICS_SUFFIX):
                found.append(os.path.join(root, name))
    return sorted(found)


def _span_tree(spans: dict) -> list[tuple[int, str, dict]]:
    """Span paths as (depth, leaf name, entry), parents before children."""
    rows = []
    for path in sorted(spans):
        parts = path.split("/")
        rows.append((len(parts) - 1, parts[-1], spans[path]))
    return rows


def _format_seconds(seconds: float) -> str:
    if seconds >= 100:
        return f"{seconds:.1f}s"
    if seconds >= 0.1:
        return f"{seconds:.3f}s"
    return f"{seconds * 1000:.2f}ms"


def render_metrics(payload: dict, path: str | None = None) -> str:
    """One metrics artifact as a human-readable report."""
    lines: list[str] = []
    if path:
        lines.append(f"== {path} ==")
    manifest = payload.get("manifest", {})
    plan = (
        f"workers={manifest.get('workers')} "
        f"chunk_size={manifest.get('chunk_size')} "
        f"share={manifest.get('share')} persistent={manifest.get('persistent')}"
    )
    lines.append(
        f"{manifest.get('kind', 'run')}: {manifest.get('total')} items, "
        f"seed {manifest.get('seed')}"
        + (", resumed" if manifest.get("resumed") else "")
    )
    backend = manifest.get("backend")
    if backend:
        batch = manifest.get("batch_size")
        lines.append(
            f"backend: {backend} (batch_size={'shard' if batch is None else batch})"
        )
    lines.append(f"plan: {plan}")
    lines.append(
        f"host: {manifest.get('host')} "
        f"(effective cores {manifest.get('effective_cores')}, "
        f"python {manifest.get('python')})"
    )
    wall = payload.get("wall_seconds", 0.0)
    lines.append(f"wall: {_format_seconds(wall)}")

    telemetry = payload.get("telemetry", {})
    spans = telemetry.get("spans", {})
    if spans:
        lines.append("")
        lines.append("spans (path, calls, seconds, share of run):")
        root = spans.get("run", {}).get("seconds", 0.0)
        for depth, name, entry in _span_tree(spans):
            share = (entry["seconds"] / root) if root > 0 else 0.0
            lines.append(
                f"  {'  ' * depth}{name:<{max(28 - 2 * depth, 8)}} "
                f"{entry['count']:>8} {_format_seconds(entry['seconds']):>10} "
                f"{share:>6.1%}"
            )
        lines.append(f"coverage: {span_coverage(payload):.1%} of run in named phases")

    counters = telemetry.get("counters", {})
    if counters:
        lines.append("")
        lines.append("counters:")
        for name in sorted(counters):
            lines.append(f"  {name:<40} {counters[name]:>12}")

    gauges = telemetry.get("gauges", {})
    if gauges:
        lines.append("")
        lines.append("gauges:")
        for name in sorted(gauges):
            lines.append(f"  {name:<40} {gauges[name]:>12g}")

    histograms = telemetry.get("histograms", {})
    if histograms:
        lines.append("")
        lines.append("histograms (count, mean, min, max):")
        for name in sorted(histograms):
            entry = histograms[name]
            mean = entry["sum"] / entry["count"] if entry["count"] else 0.0
            lines.append(
                f"  {name:<32} {entry['count']:>8} {mean:>10.3f} "
                f"{entry['min']:>10.3f} {entry['max']:>10.3f}"
            )

    shards = payload.get("shards", [])
    if shards:
        lines.append("")
        lines.append("shards (worker, seconds, records, records/s):")
        for shard in sorted(shards, key=lambda entry: entry.get("shard", 0)):
            seconds = shard.get("seconds", 0.0)
            records = shard.get("records", 0)
            rate = records / seconds if seconds > 0 else 0.0
            lines.append(
                f"  shard {shard.get('shard'):>4}  worker {shard.get('worker'):>8}  "
                f"{_format_seconds(seconds):>10}  {records:>6}  {rate:>8.0f}/s"
            )
        lines.append("")
        lines.append("workers (shards, seconds, records):")
        for worker, entry in sorted(per_worker(shards).items()):
            lines.append(
                f"  worker {worker:>8}  {entry['shards']:>4} shards  "
                f"{_format_seconds(entry['seconds']):>10}  "
                f"{entry['records']:>6} records"
            )
    return "\n".join(lines)


def render_path(path: str | os.PathLike) -> tuple[str, int]:
    """Render every metrics file under *path*; returns (text, file count)."""
    files = find_metrics(path)
    reports = [
        render_metrics(load_metrics(found), path=found) for found in files
    ]
    return "\n\n".join(reports), len(files)


# ----------------------------------------------------------------------
# Live following (`repro stats --follow`, `repro top`)
# ----------------------------------------------------------------------

_BAR_WIDTH = 24


def _progress_bar(done: int, total: int) -> str:
    if total <= 0:
        return "·" * _BAR_WIDTH
    filled = min(_BAR_WIDTH, round(_BAR_WIDTH * done / total))
    return "#" * filled + "·" * (_BAR_WIDTH - filled)


def _format_eta(seconds: float | None) -> str:
    if seconds is None:
        return "--"
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.1f}s"


class FollowView:
    """Event-by-event renderer for a live (or finished) run.

    :meth:`handle` absorbs one event and returns the line to print for
    it (``None`` for events rendered only at higher verbosity);
    :meth:`summary` renders the closing per-worker block from whatever
    has been absorbed so far — meaningful even when the stream stopped
    early (timeout, torn tail), which is why it never depends on a
    ``run-finished`` having arrived.
    """

    def __init__(self, verbose: bool = False):
        self.verbose = verbose
        self.total = 0
        self.records_done = 0
        self.finished: dict | None = None
        self.workers: dict[int, dict] = {}
        self.kind = "run"

    def handle(self, event: dict) -> str | None:
        kind = event["type"]
        if kind == "run-started":
            self.kind = event.get("kind", self.kind)
            self.total = event.get("total", 0)
            self.records_done = event.get("records_done", 0)
            line = (
                f"{self.kind}: {event.get('total')} items in "
                f"{event.get('shards_total')} shards, "
                f"{event.get('workers')} worker(s), "
                f"seed {event.get('seed')}"
            )
            if event.get("resumed"):
                line += "  [resumed]"
            return line
        if kind == "resume":
            return (
                f"resume: {event.get('shards_done')} shards / "
                f"{event.get('records_done')} records already committed"
            )
        if kind == "torn-marker":
            return "torn event-log tail from a killed run (tolerated)"
        if kind == "shard-committed":
            self.records_done = event.get("records_done", self.records_done)
            total = event.get("total", self.total) or self.total
            hits = event.get("cache_hits", 0)
            misses = event.get("cache_misses", 0)
            cache = (
                f"  cache {100 * hits / (hits + misses):.0f}%"
                if hits + misses > 0
                else ""
            )
            pct = 100 * self.records_done / total if total else 0.0
            return (
                f"[{_progress_bar(self.records_done, total)}] "
                f"{self.records_done}/{total} ({pct:5.1f}%)  "
                f"{event.get('throughput', 0.0):8.1f} rec/s  "
                f"eta {_format_eta(event.get('eta_seconds'))}"
                f"{cache}  [shard {event.get('shard')} "
                f"worker {event.get('worker')}]"
            )
        if kind == "worker-heartbeat":
            self.workers[event.get("worker", 0)] = {
                "shards": event.get("shards", 0),
                "records": event.get("records", 0),
                "seconds": event.get("seconds", 0.0),
                "throughput": event.get("throughput", 0.0),
            }
            if self.verbose:
                return (
                    f"  worker {event.get('worker')}: "
                    f"{event.get('shards')} shards, "
                    f"{event.get('records')} records, "
                    f"{event.get('throughput', 0.0):.1f} rec/s"
                )
            return None
        if kind == "run-finished":
            self.finished = event
            return None
        return None

    def summary(self) -> str:
        lines = []
        if self.finished is not None:
            event = self.finished
            state = "finished" if event.get("complete") else "stopped (partial)"
            lines.append(
                f"{self.kind} {state}: {event.get('records_done')}/"
                f"{event.get('total')} records in "
                f"{_format_seconds(event.get('wall_seconds', 0.0))} "
                f"({event.get('throughput', 0.0):.1f} rec/s)"
            )
        else:
            lines.append(
                f"{self.kind} in flight: {self.records_done}/{self.total} "
                "records (no run-finished event yet)"
            )
        if self.workers:
            lines.append("workers (shards, records, rec/s):")
            for worker, entry in sorted(self.workers.items()):
                lines.append(
                    f"  worker {worker:>8}  {entry['shards']:>4} shards  "
                    f"{entry['records']:>6} records  "
                    f"{entry['throughput']:>8.1f}/s"
                )
        return "\n".join(lines)


def follow_path(
    path: str | os.PathLike,
    interval: float = 0.2,
    timeout: float | None = None,
    verbose: bool = False,
    write=print,
) -> int:
    """Follow the run at *path* (results, metrics, or events file).

    An already-finished run (the newest event on disk is
    ``run-finished``) renders only its final summary.  Otherwise the log
    is tailed live until the run finishes — exit 0 — or *timeout*
    seconds pass without it, exit 1 with the partial summary.
    """
    events_file = resolve_events_path(path)
    view = FollowView(verbose=verbose)
    backlog = read_events(events_file) if os.path.exists(events_file) else []
    if backlog and backlog[-1]["type"] == "run-finished":
        for event in backlog:
            view.handle(event)
        write(view.summary())
        return 0
    status = 0
    try:
        for event in follow_events(events_file, poll=interval, timeout=timeout):
            line = view.handle(event)
            if line is not None:
                write(line)
    except TimeoutError as error:
        write(f"timed out: {error}")
        status = 1
    write(view.summary())
    return status
