"""Render ``*.metrics.json`` artifacts: span trees, counters, shard tables.

The read side of the telemetry pipeline, and everything the ``repro
stats`` subcommand does: point it at a run directory (or one metrics
file) and it renders, per run —

* the **manifest** (host, cores, plan, backend) as one provenance block;
* the **span tree** — span paths split on ``/`` and indented, each node
  with call count, accumulated seconds, and share of the root ``run``
  span — plus the coverage line the acceptance gate reads (≥ 95% of
  wall time must land in named child spans);
* **counters**, **gauges**, and **histograms** (count / mean / min /
  max), sorted by name so diffs are stable;
* the **per-shard table** (worker pid, seconds, records, records/s) and
  its **per-worker rollup** — the direct view of how evenly the harness
  spread the run.

Nothing here mutates anything; ``--check`` adds schema validation
(:mod:`repro.obs.schema`) on top.
"""

from __future__ import annotations

import os

from repro.obs.metrics import (
    METRICS_SUFFIX,
    load_metrics,
    per_worker,
    span_coverage,
)


def find_metrics(path: str | os.PathLike) -> list[str]:
    """Metrics files under *path*: itself if a file, else a sorted scan.

    Directories are scanned recursively so ``repro stats runs/`` finds
    every campaign and sweep below it.
    """
    target = os.fspath(path)
    if os.path.isfile(target):
        return [target]
    found: list[str] = []
    for root, _dirs, files in os.walk(target):
        for name in files:
            if name.endswith(METRICS_SUFFIX):
                found.append(os.path.join(root, name))
    return sorted(found)


def _span_tree(spans: dict) -> list[tuple[int, str, dict]]:
    """Span paths as (depth, leaf name, entry), parents before children."""
    rows = []
    for path in sorted(spans):
        parts = path.split("/")
        rows.append((len(parts) - 1, parts[-1], spans[path]))
    return rows


def _format_seconds(seconds: float) -> str:
    if seconds >= 100:
        return f"{seconds:.1f}s"
    if seconds >= 0.1:
        return f"{seconds:.3f}s"
    return f"{seconds * 1000:.2f}ms"


def render_metrics(payload: dict, path: str | None = None) -> str:
    """One metrics artifact as a human-readable report."""
    lines: list[str] = []
    if path:
        lines.append(f"== {path} ==")
    manifest = payload.get("manifest", {})
    plan = (
        f"workers={manifest.get('workers')} "
        f"chunk_size={manifest.get('chunk_size')} "
        f"share={manifest.get('share')} persistent={manifest.get('persistent')}"
    )
    lines.append(
        f"{manifest.get('kind', 'run')}: {manifest.get('total')} items, "
        f"seed {manifest.get('seed')}"
        + (", resumed" if manifest.get("resumed") else "")
    )
    backend = manifest.get("backend")
    if backend:
        batch = manifest.get("batch_size")
        lines.append(
            f"backend: {backend} (batch_size={'shard' if batch is None else batch})"
        )
    lines.append(f"plan: {plan}")
    lines.append(
        f"host: {manifest.get('host')} "
        f"(effective cores {manifest.get('effective_cores')}, "
        f"python {manifest.get('python')})"
    )
    wall = payload.get("wall_seconds", 0.0)
    lines.append(f"wall: {_format_seconds(wall)}")

    telemetry = payload.get("telemetry", {})
    spans = telemetry.get("spans", {})
    if spans:
        lines.append("")
        lines.append("spans (path, calls, seconds, share of run):")
        root = spans.get("run", {}).get("seconds", 0.0)
        for depth, name, entry in _span_tree(spans):
            share = (entry["seconds"] / root) if root > 0 else 0.0
            lines.append(
                f"  {'  ' * depth}{name:<{max(28 - 2 * depth, 8)}} "
                f"{entry['count']:>8} {_format_seconds(entry['seconds']):>10} "
                f"{share:>6.1%}"
            )
        lines.append(f"coverage: {span_coverage(payload):.1%} of run in named phases")

    counters = telemetry.get("counters", {})
    if counters:
        lines.append("")
        lines.append("counters:")
        for name in sorted(counters):
            lines.append(f"  {name:<40} {counters[name]:>12}")

    gauges = telemetry.get("gauges", {})
    if gauges:
        lines.append("")
        lines.append("gauges:")
        for name in sorted(gauges):
            lines.append(f"  {name:<40} {gauges[name]:>12g}")

    histograms = telemetry.get("histograms", {})
    if histograms:
        lines.append("")
        lines.append("histograms (count, mean, min, max):")
        for name in sorted(histograms):
            entry = histograms[name]
            mean = entry["sum"] / entry["count"] if entry["count"] else 0.0
            lines.append(
                f"  {name:<32} {entry['count']:>8} {mean:>10.3f} "
                f"{entry['min']:>10.3f} {entry['max']:>10.3f}"
            )

    shards = payload.get("shards", [])
    if shards:
        lines.append("")
        lines.append("shards (worker, seconds, records, records/s):")
        for shard in sorted(shards, key=lambda entry: entry.get("shard", 0)):
            seconds = shard.get("seconds", 0.0)
            records = shard.get("records", 0)
            rate = records / seconds if seconds > 0 else 0.0
            lines.append(
                f"  shard {shard.get('shard'):>4}  worker {shard.get('worker'):>8}  "
                f"{_format_seconds(seconds):>10}  {records:>6}  {rate:>8.0f}/s"
            )
        lines.append("")
        lines.append("workers (shards, seconds, records):")
        for worker, entry in sorted(per_worker(shards).items()):
            lines.append(
                f"  worker {worker:>8}  {entry['shards']:>4} shards  "
                f"{_format_seconds(entry['seconds']):>10}  "
                f"{entry['records']:>6} records"
            )
    return "\n".join(lines)


def render_path(path: str | os.PathLike) -> tuple[str, int]:
    """Render every metrics file under *path*; returns (text, file count)."""
    files = find_metrics(path)
    reports = [
        render_metrics(load_metrics(found), path=found) for found in files
    ]
    return "\n\n".join(reports), len(files)
