"""Cross-run regression diffs: ``repro stats diff A B [--gate pct]``.

Until now the repo accumulated performance artifacts (``*.metrics.json``
per run, committed ``results/BENCH_*.json`` per benchmark module) with
no comparator — run-over-run drift was invisible.  This module is the
comparator: load two artifacts of the same family, extract their
directional metrics, and report each one's signed regression percentage,
with an optional gate that turns "it got ≥ N% worse" into exit code 1.

Extracted metrics
-----------------

From a **metrics** artifact (``type: "metrics"``):

* ``wall_seconds`` (lower is better) and the ``run.records_per_second``
  gauge (higher is better) — the headline pair;
* cache-hit rates derived from counters (``measure_cache.*`` and pool
  ``build``/``reuse``; higher is better);
* every direct child of the ``run`` span as a *share* of the run
  (informational: shares shift for good and bad reasons, so they are
  reported but never gated).

From a **bench** artifact (``results.<test>`` objects): every numeric
leaf, flattened to dotted names.  ``*seconds*`` leaves are
lower-is-better, ``*per_second*``/``*rate*``/``*speedup*`` leaves are
higher-is-better, anything else is informational.

Regression is always signed **toward worse**: positive means B regressed
relative to A in the metric's own direction, so a single ``--gate``
percentage covers both families.  A self-diff is all-zero and exits 0 —
the ``make trace-smoke`` invariant.
"""

from __future__ import annotations

import json
import math
import os
from dataclasses import dataclass

from repro.errors import ConfigurationError

#: Senses a metric can have: gated directions, or report-only.
LOWER, HIGHER, INFO = "lower", "higher", "info"

#: Counter pairs whose hit rate is a gated higher-is-better metric.
_RATE_COUNTERS = (
    ("measure_cache_hit_rate", "measure_cache.hit", "measure_cache.miss"),
    ("pool_reuse_rate", "pool.reuse", "pool.build"),
)


@dataclass(slots=True)
class DiffRow:
    """One compared metric: values on both sides and the signed drift."""

    name: str
    sense: str
    a: float | None
    b: float | None

    @property
    def regression_pct(self) -> float | None:
        """Drift of B vs A, signed so positive = worse; ``None`` when
        either side is missing or the sense is informational."""
        if self.a is None or self.b is None or self.sense == INFO:
            return None
        if self.a == 0:
            if self.b == 0:
                return 0.0
            # Appearing from zero: infinitely worse for lower-is-better,
            # infinitely better (negative) for higher-is-better.
            return math.inf if self.sense == LOWER else -math.inf
        drift = (self.b - self.a) / abs(self.a) * 100.0
        # + 0.0 normalizes the -0.0 a negated zero drift would yield.
        return (drift if self.sense == LOWER else -drift) + 0.0


@dataclass(slots=True)
class DiffReport:
    """Every compared metric plus the headline worst regression."""

    kind: str
    a_path: str
    b_path: str
    rows: list[DiffRow]

    @property
    def worst(self) -> float:
        """The largest signed regression across gated rows (0.0 if none)."""
        worst = 0.0
        for row in self.rows:
            pct = row.regression_pct
            if pct is not None and pct > worst:
                worst = pct
        return worst

    def gated(self, gate: float) -> list[DiffRow]:
        """Rows whose regression meets or exceeds *gate* percent."""
        return [
            row
            for row in self.rows
            if row.regression_pct is not None and row.regression_pct >= gate
        ]


def load_artifact(path: str | os.PathLike) -> tuple[str, dict]:
    """``(family, payload)`` for a metrics or bench artifact.

    The family is sniffed from the payload, not the filename, so renamed
    copies (``PREV_BENCH_*.json``) diff fine.
    """
    target = os.fspath(path)
    with open(target, encoding="utf-8") as handle:
        payload = json.load(handle)
    if isinstance(payload, dict) and payload.get("type") == "metrics":
        return "metrics", payload
    if isinstance(payload, dict) and "benchmark" in payload and "results" in payload:
        return "bench", payload
    raise ConfigurationError(
        f"{target}: not a *.metrics.json or BENCH_*.json artifact"
    )


def _flatten(prefix: str, value, out: dict[str, float]) -> None:
    """Numeric leaves of nested dicts as dotted names (bools excluded)."""
    if isinstance(value, bool):
        return
    if isinstance(value, (int, float)):
        out[prefix] = float(value)
    elif isinstance(value, dict):
        for key in sorted(value):
            _flatten(f"{prefix}.{key}" if prefix else str(key), value[key], out)


def _bench_sense(name: str) -> str:
    leaf = name.rsplit(".", 1)[-1].lower()
    if "per_second" in leaf or "rate" in leaf or "speedup" in leaf:
        return HIGHER
    if "seconds" in leaf:
        return LOWER
    return INFO


def _extract_bench(payload: dict) -> dict[str, tuple[float, str]]:
    flat: dict[str, float] = {}
    _flatten("", payload.get("results", {}), flat)
    return {name: (value, _bench_sense(name)) for name, value in flat.items()}


def _extract_metrics(payload: dict) -> dict[str, tuple[float, str]]:
    metrics: dict[str, tuple[float, str]] = {}
    wall = payload.get("wall_seconds")
    if isinstance(wall, (int, float)) and not isinstance(wall, bool):
        metrics["wall_seconds"] = (float(wall), LOWER)
    telemetry = payload.get("telemetry", {})
    rate = telemetry.get("gauges", {}).get("run.records_per_second")
    if isinstance(rate, (int, float)) and not isinstance(rate, bool):
        metrics["records_per_second"] = (float(rate), HIGHER)
    counters = telemetry.get("counters", {})
    for name, hit_key, miss_key in _RATE_COUNTERS:
        hits = counters.get(hit_key, 0)
        misses = counters.get(miss_key, 0)
        if hits + misses > 0:
            metrics[name] = (hits / (hits + misses), HIGHER)
    spans = telemetry.get("spans", {})
    run = spans.get("run", {}).get("seconds", 0.0)
    if run > 0:
        for path in sorted(spans):
            if path.startswith("run/") and "/" not in path[len("run/"):]:
                metrics[f"span_share:{path}"] = (
                    spans[path]["seconds"] / run,
                    INFO,
                )
    return metrics


def diff_artifacts(
    a_path: str | os.PathLike, b_path: str | os.PathLike
) -> DiffReport:
    """Compare two artifacts of the same family; see the module docstring."""
    a_kind, a_payload = load_artifact(a_path)
    b_kind, b_payload = load_artifact(b_path)
    if a_kind != b_kind:
        raise ConfigurationError(
            f"cannot diff {a_kind} artifact {os.fspath(a_path)} against "
            f"{b_kind} artifact {os.fspath(b_path)}"
        )
    extract = _extract_metrics if a_kind == "metrics" else _extract_bench
    a_metrics = extract(a_payload)
    b_metrics = extract(b_payload)
    rows = [
        DiffRow(
            name=name,
            sense=a_metrics.get(name, b_metrics.get(name))[1],
            a=a_metrics[name][0] if name in a_metrics else None,
            b=b_metrics[name][0] if name in b_metrics else None,
        )
        for name in sorted(set(a_metrics) | set(b_metrics))
    ]
    return DiffReport(
        kind=a_kind,
        a_path=os.fspath(a_path),
        b_path=os.fspath(b_path),
        rows=rows,
    )


def _format_value(value: float | None) -> str:
    return "-" if value is None else f"{value:.6g}"


def render_diff(report: DiffReport, gate: float | None = None) -> str:
    """The diff as an aligned table, worst offenders marked."""
    lines = [
        f"{report.kind} diff: A={report.a_path}  B={report.b_path}",
        f"{'metric':<44} {'A':>12} {'B':>12} {'regression':>11}",
    ]
    for row in report.rows:
        pct = row.regression_pct
        if pct is None:
            drift = "(info)" if row.sense == INFO else "(one side)"
        else:
            drift = f"{pct:+.1f}%"
        marker = ""
        if gate is not None and pct is not None and pct >= gate:
            marker = f"  !! >= {gate:g}% gate"
        lines.append(
            f"{row.name:<44} {_format_value(row.a):>12} "
            f"{_format_value(row.b):>12} {drift:>11}{marker}"
        )
    worst = report.worst
    verdict = f"worst regression: {worst:+.1f}%"
    if gate is not None:
        verdict += (
            f" (gate {gate:g}%: {'FAIL' if worst >= gate else 'ok'})"
        )
    lines.append(verdict)
    return "\n".join(lines)
