"""Per-run metrics artifacts: manifest + merged telemetry + shard stats.

Every harness run that writes a JSONL results file can leave a sibling
``<out>.metrics.json`` behind (:func:`metrics_path` maps
``campaign.jsonl`` → ``campaign.metrics.json``).  The artifact is pure
provenance and accounting — the results file itself stays byte-identical
with telemetry on, off, or at any verbosity:

``manifest``
    Where and how the run executed: host, Python, effective cores, the
    harness plan (workers / chunk size / seed / total / share /
    persistent / resumed), the client kind, the job fingerprint, and
    whatever the workspace factory adds through
    :meth:`~repro.exec.harness.WorkspaceFactory.describe` (backend,
    batch plan, workload...).
``wall_seconds`` / ``telemetry``
    The run's wall time and the merged
    :class:`~repro.obs.core.Telemetry` snapshot — parent spans plus
    every worker delta folded in at shard commit.
``shards``
    One entry per executed shard: which worker ran it, its wall
    seconds, record count, and that shard's own telemetry delta —
    the raw material for ``repro stats``' per-shard and per-worker
    breakdowns.

Schema: :data:`repro.obs.schema.METRICS_SCHEMA`; rendering:
:mod:`repro.obs.stats`.
"""

from __future__ import annotations

import json
import os
import platform as _platform
import time

#: Bumped when the metrics artifact shape changes incompatibly.
METRICS_VERSION = 1

#: Suffix replacing the results file's extension.
METRICS_SUFFIX = ".metrics.json"


def effective_cores() -> int:
    """CPUs this process may actually use (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def environment() -> dict:
    """The host half of a run manifest (shared with BENCH provenance)."""
    return {
        "host": _platform.node() or "unknown",
        "platform": _platform.platform(),
        "python": _platform.python_version(),
        "effective_cores": effective_cores(),
        "cpu_count": os.cpu_count() or 1,
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }


def metrics_path(out: str | os.PathLike) -> str:
    """The metrics sibling of a results path: ``x.jsonl`` → ``x.metrics.json``."""
    base, _ = os.path.splitext(os.fspath(out))
    return base + METRICS_SUFFIX


def build_payload(manifest: dict, telemetry, shards: list[dict]) -> dict:
    """Assemble one metrics artifact from a finished run.

    *telemetry* is the run-level :class:`~repro.obs.core.Telemetry`
    (parent spans + merged worker deltas); ``wall_seconds`` is its
    ``run`` span when present so the artifact is self-consistent.
    """
    snapshot = telemetry.snapshot()
    run_span = snapshot.get("spans", {}).get("run", {})
    return {
        "type": "metrics",
        "version": METRICS_VERSION,
        "manifest": manifest,
        "wall_seconds": float(run_span.get("seconds", 0.0)),
        "telemetry": snapshot,
        "shards": shards,
    }


def write_metrics(path: str | os.PathLike, payload: dict) -> str:
    """Write *payload* as pretty JSON; return the path written."""
    target = os.fspath(path)
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return target


def load_metrics(path: str | os.PathLike) -> dict:
    with open(os.fspath(path), encoding="utf-8") as handle:
        return json.load(handle)


def span_coverage(payload: dict, root: str = "run") -> float:
    """Fraction of *root*'s wall time accounted for by its direct children.

    The acceptance gate for the metrics artifact: named child spans
    (``run/execute``, ``run/resume``, ...) must explain ≥ 95% of the
    measured run — anything less means a phase is going untimed.
    """
    spans = payload.get("telemetry", {}).get("spans", {})
    total = spans.get(root, {}).get("seconds", 0.0)
    if total <= 0.0:
        return 1.0 if root in spans else 0.0
    prefix = root + "/"
    explained = sum(
        entry["seconds"]
        for path, entry in spans.items()
        if path.startswith(prefix) and "/" not in path[len(prefix):]
    )
    return explained / total


def per_worker(shards: list[dict]) -> dict[int, dict]:
    """Roll shard entries up by worker pid: shards, seconds, records."""
    workers: dict[int, dict] = {}
    for shard in shards:
        entry = workers.setdefault(
            shard.get("worker", -1),
            {"shards": 0, "seconds": 0.0, "records": 0},
        )
        entry["shards"] += 1
        entry["seconds"] += shard.get("seconds", 0.0)
        entry["records"] += shard.get("records", 0)
    return workers
