"""Export runs as Chrome/Perfetto ``trace_event`` JSON.

``repro stats --export-trace out.json`` turns the two observability
artifacts a run leaves behind into one visually inspectable timeline:

* the **event log** (``*.events.jsonl``) becomes the real timeline —
  every committed shard is a complete (``X``) slice on its worker's
  track, with cumulative throughput as a counter (``C``) series and
  run-started / resume / torn-marker / run-finished as instants (``i``);
* the **metrics artifact** (``*.metrics.json``) contributes the span
  tree as a *synthetic* track: spans are accumulated totals, not
  intervals, so the exporter lays each node out sequentially after its
  earlier siblings inside its parent.  Durations and nesting are real;
  start offsets are not (and workers time in parallel, so a child track
  may outlast its parent's slice).  The track is named accordingly.

Either source alone exports fine — a run killed before its metrics
landed still has its event prefix, and metrics-only artifacts (coverage
runs) still get their span tree.  Output conforms to
:data:`repro.obs.schema.TRACE_SCHEMA` (checked before writing) and loads
directly in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``.
"""

from __future__ import annotations

import json
import os

from repro.errors import ConfigurationError
from repro.obs.events import EVENTS_SUFFIX, read_events, resolve_events_path
from repro.obs.metrics import METRICS_SUFFIX, load_metrics

#: trace_event timestamps are microseconds.
_MICROS = 1_000_000.0

#: Synthetic pid for the aggregated span-tree track (workers' real
#: timeline is pid 1).
_SPAN_PID = 2


def _meta(pid: int, tid: int, kind: str, name: str) -> dict:
    """A metadata (``M``) event naming a process or thread track."""
    return {
        "name": kind, "ph": "M", "ts": 0.0, "pid": pid, "tid": tid,
        "args": {"name": name},
    }


def _timeline_events(events: list[dict]) -> list[dict]:
    """The real-timeline track: one slice per shard, instants, counters."""
    if not events:
        return []
    t0 = min(event["t"] for event in events)
    out = [_meta(1, 0, "process_name", "run timeline")]
    workers_seen: set[int] = set()
    for event in events:
        ts = max((event["t"] - t0) * _MICROS, 0.0)
        kind = event["type"]
        if kind == "shard-committed":
            worker = int(event.get("worker", 0))
            if worker not in workers_seen:
                workers_seen.add(worker)
                out.append(_meta(1, worker, "thread_name", f"worker {worker}"))
            duration = float(event.get("seconds", 0.0)) * _MICROS
            out.append({
                "name": f"shard {event.get('shard')}",
                "cat": "shard",
                "ph": "X",
                "ts": max(ts - duration, 0.0),
                "dur": duration,
                "pid": 1,
                "tid": worker,
                "args": {
                    "records": event.get("records"),
                    "records_done": event.get("records_done"),
                    "cache_hits": event.get("cache_hits"),
                    "cache_misses": event.get("cache_misses"),
                },
            })
            out.append({
                "name": "throughput",
                "ph": "C",
                "ts": ts,
                "pid": 1,
                "tid": 0,
                "args": {"records_per_s": event.get("throughput", 0.0)},
            })
        elif kind == "worker-heartbeat":
            worker = int(event.get("worker", 0))
            out.append({
                "name": f"worker {worker} throughput",
                "ph": "C",
                "ts": ts,
                "pid": 1,
                "tid": 0,
                "args": {"records_per_s": event.get("throughput", 0.0)},
            })
        else:  # run-started / resume / torn-marker / run-finished
            args = {
                key: value
                for key, value in event.items()
                if key not in ("type", "seq", "t") and value is not None
            }
            out.append({
                "name": kind,
                "cat": "lifecycle",
                "ph": "i",
                "s": "g",
                "ts": ts,
                "pid": 1,
                "tid": 0,
                "args": args,
            })
    return out


def _span_events(metrics: dict) -> list[dict]:
    """The synthetic span-tree track, laid out sequentially by path."""
    spans = metrics.get("telemetry", {}).get("spans", {})
    if not spans:
        return []
    children: dict[str, list[str]] = {}
    roots: list[str] = []
    for path in sorted(spans):
        if "/" in path:
            children.setdefault(path.rsplit("/", 1)[0], []).append(path)
        else:
            roots.append(path)
    out = [
        _meta(_SPAN_PID, 0, "process_name", "span tree (synthetic layout)"),
        _meta(_SPAN_PID, 1, "thread_name", "accumulated spans"),
    ]

    def emit(path: str, start: float) -> None:
        entry = spans[path]
        duration = float(entry["seconds"]) * _MICROS
        out.append({
            "name": path.rsplit("/", 1)[-1],
            "cat": "span",
            "ph": "X",
            "ts": start,
            "dur": duration,
            "pid": _SPAN_PID,
            "tid": 1,
            "args": {
                "path": path,
                "count": entry["count"],
                "synthetic_layout": True,
            },
        })
        cursor = start
        for child in children.get(path, ()):
            emit(child, cursor)
            cursor += float(spans[child]["seconds"]) * _MICROS

    cursor = 0.0
    for root in roots:
        emit(root, cursor)
        cursor += float(spans[root]["seconds"]) * _MICROS
    return out


def build_trace(
    metrics: dict | None = None, events: list[dict] | None = None
) -> dict:
    """Assemble one trace_event document from whichever sources exist."""
    trace_events: list[dict] = []
    if events:
        trace_events.extend(_timeline_events(events))
    if metrics:
        trace_events.extend(_span_events(metrics))
    manifest = (metrics or {}).get("manifest", {})
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro stats --export-trace",
            "kind": manifest.get("kind"),
            "note": (
                "pid 1 = real event-log timeline; "
                f"pid {_SPAN_PID} = accumulated span totals in a synthetic "
                "sequential layout (durations real, offsets not)"
            ),
        },
    }


def collect_sources(path: str | os.PathLike) -> tuple[dict | None, list[dict] | None]:
    """The ``(metrics, events)`` siblings of *path*, whichever exist.

    *path* may name the results file, the metrics artifact, or the event
    log; the other siblings are derived from it.
    """
    target = os.fspath(path)
    events_file = resolve_events_path(target)
    metrics_file = events_file[: -len(EVENTS_SUFFIX)] + METRICS_SUFFIX
    if target.endswith(METRICS_SUFFIX):
        metrics_file = target
    metrics = load_metrics(metrics_file) if os.path.exists(metrics_file) else None
    events = read_events(events_file) if os.path.exists(events_file) else None
    return metrics, events


def export_trace(path: str | os.PathLike, out: str | os.PathLike) -> dict:
    """Export the run at *path* to *out*; return the written document.

    Raises :class:`~repro.errors.ConfigurationError` when neither the
    metrics artifact nor the event log exists, or when the assembled
    document fails its own schema (a bug, caught before it ships).
    """
    from repro.obs.schema import validate_trace

    metrics, events = collect_sources(path)
    if metrics is None and events is None:
        raise ConfigurationError(
            f"{os.fspath(path)}: no .metrics.json or .events.jsonl sibling "
            "to export (runs emit them beside --out when telemetry is on)"
        )
    trace = build_trace(metrics=metrics, events=events)
    errors = validate_trace(trace)
    if errors:
        raise ConfigurationError(
            f"exported trace is schema-invalid: {'; '.join(errors[:3])}"
        )
    with open(os.fspath(out), "w", encoding="utf-8") as handle:
        json.dump(trace, handle, indent=1, sort_keys=True)
        handle.write("\n")
    return trace
