"""Append-only, crash-tolerant event logs: the live half of `repro.obs`.

The ``*.metrics.json`` artifact explains a run *after* it finishes; this
module makes the run explainable *while it happens*.  Every harness run
with ``--out somewhere.jsonl`` and telemetry enabled streams a sibling
``somewhere.events.jsonl`` — one JSON object per line, appended at the
shard-commit seam (the same durability boundary the result records
cross), so the event log is exactly as trustworthy as the results file:

``run-started``
    One per harness session: client kind, seed, totals, the shard plan,
    worker count, and whether the session resumed a previous one.
``resume``
    Emitted by a resuming session: how many shards/records were already
    committed on disk.
``shard-committed``
    One per committed shard: shard id, worker pid, shard wall seconds and
    record count, cumulative ``records_done``/``shards_done``, session
    throughput (records/s), the ETA derived from it, and cumulative
    measure-cache hit/miss counts.
``worker-heartbeat``
    After each commit, the committing worker's cumulative session totals
    (shards, records, seconds, throughput) — the per-worker view
    ``repro top`` renders.
``torn-marker``
    Written when a session reopens an event log whose final line was torn
    by a kill mid-append: the torn tail is terminated and recorded, and
    the new session's events append after it.
``run-finished``
    One per session that ran to its stopping point: records done, whether
    the run is complete (``stop_after_shards`` sessions finish
    incomplete), session wall seconds and throughput.

Crash tolerance is structural: every event is one ``write()`` of one
``\\n``-terminated line followed by a flush, so a killed run leaves a
valid prefix plus at most one torn final line.  Readers
(:func:`read_events`, :func:`follow_events`) skip unparsable lines, and a
resuming :class:`EventWriter` appends *after* a torn tail instead of
corrupting it further — the reader-side and writer-side halves of the
same guarantee the results JSONL already makes.

Timestamps are monotonic by construction: ``t`` is wall-clock
(``time.time()``) clamped to never decrease within or across sessions
(the writer restores the high-water mark from the existing log), and
``seq`` increases strictly, so a merged or resumed log still sorts.
"""

from __future__ import annotations

import json
import os
import time

#: Suffix replacing the results file's extension (``x.jsonl`` →
#: ``x.events.jsonl``), mirroring ``repro.obs.metrics.METRICS_SUFFIX``.
EVENTS_SUFFIX = ".events.jsonl"

#: The event vocabulary, pinned by ``repro.obs.schema.EVENTS_SCHEMA``.
EVENT_TYPES = (
    "run-started",
    "resume",
    "torn-marker",
    "shard-committed",
    "worker-heartbeat",
    "run-finished",
)

#: Metrics-artifact suffix, spelled here to avoid an import cycle with
#: :mod:`repro.obs.metrics` (which stays events-free).
_METRICS_SUFFIX = ".metrics.json"


def events_path(out: str | os.PathLike) -> str:
    """The event-log sibling of a results path: ``x.jsonl`` → ``x.events.jsonl``."""
    base, _ = os.path.splitext(os.fspath(out))
    return base + EVENTS_SUFFIX


def resolve_events_path(path: str | os.PathLike) -> str:
    """The event log for *path*, whichever sibling the caller named.

    Accepts the event log itself, the ``*.metrics.json`` sibling, or the
    results file — ``repro stats --follow`` and ``repro top`` take any of
    the three.
    """
    target = os.fspath(path)
    if target.endswith(EVENTS_SUFFIX):
        return target
    if target.endswith(_METRICS_SUFFIX):
        return target[: -len(_METRICS_SUFFIX)] + EVENTS_SUFFIX
    return events_path(target)


def _dump_line(data: dict) -> str:
    """One canonical JSONL line (same shape as the results wire format)."""
    return json.dumps(data, sort_keys=True, separators=(",", ":")) + "\n"


def _parse_line(line: bytes | str) -> dict | None:
    """One event from one line, or ``None`` for blank/torn/foreign lines."""
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError:
            return None
    line = line.strip()
    if not line:
        return None
    try:
        data = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(data, dict) or "type" not in data:
        return None
    return data


def read_events(path: str | os.PathLike) -> list[dict]:
    """Every parseable event in *path*, torn/foreign lines skipped.

    A file whose final line was torn by a kill mid-append parses to its
    valid prefix — the reader half of the crash-tolerance contract.
    """
    events: list[dict] = []
    with open(os.fspath(path), "rb") as handle:
        for line in handle:
            event = _parse_line(line)
            if event is not None:
                events.append(event)
    return events


class EventWriter:
    """Append events to a log, one atomic flushed line at a time.

    ``fresh=True`` truncates (a new run); the default appends — and on
    reopening a log whose tail was torn by a kill mid-append, terminates
    the torn line and records a ``torn-marker`` event, so a resumed
    session's events land on clean lines after the valid prefix.  The
    sequence number and timestamp high-water mark are restored from the
    existing log, keeping ``seq`` strictly increasing and ``t``
    non-decreasing across sessions.
    """

    def __init__(self, path: str | os.PathLike, fresh: bool = False):
        self.path = os.fspath(path)
        self._seq = 0
        self._last_t = 0.0
        torn = False
        if not fresh and os.path.exists(self.path):
            torn = self._restore()
        self._handle = open(self.path, "w" if fresh else "a", encoding="utf-8")
        if torn:
            # Terminate the torn tail so this session's first event
            # starts a fresh line; the remnant stays on disk, skipped by
            # every reader.
            self._handle.write("\n")
            self._handle.flush()
            self.emit("torn-marker", note="torn trailing line terminated on reopen")

    def _restore(self) -> bool:
        """Recover seq/t high-water marks; report whether the tail is torn."""
        with open(self.path, "rb") as handle:
            content = handle.read()
        for line in content.splitlines():
            event = _parse_line(line)
            if event is None:
                continue
            seq = event.get("seq")
            if isinstance(seq, int) and seq >= self._seq:
                self._seq = seq + 1
            t = event.get("t")
            if isinstance(t, (int, float)) and not isinstance(t, bool):
                self._last_t = max(self._last_t, float(t))
        return bool(content) and not content.endswith(b"\n")

    def emit(self, kind: str, /, **fields) -> dict:
        """Append one event; return it (with ``seq`` and ``t`` stamped).

        *kind* is positional-only so events may carry a ``kind`` field of
        their own (e.g. ``run-started`` records the client kind).
        """
        now = round(time.time(), 6)
        if now < self._last_t:
            now = self._last_t
        self._last_t = now
        event = {"type": kind, "seq": self._seq, "t": now, **fields}
        self._seq += 1
        self._handle.write(_dump_line(event))
        self._handle.flush()
        return event

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.close()

    def __enter__(self) -> "EventWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def follow_events(
    path: str | os.PathLike,
    poll: float = 0.2,
    timeout: float | None = None,
):
    """Tail an event log, yielding events as their lines complete.

    Yields every already-written event first (the backlog), then polls
    for appended lines every *poll* seconds.  Only complete
    (``\\n``-terminated) lines are consumed — a torn tail, whether
    mid-write or left by a kill, stays buffered until its newline lands,
    so following never crashes on truncation.  The generator returns once
    the log has been drained *and* its newest event is ``run-finished``
    (an older session's ``run-finished`` mid-log, followed by a resume,
    does not stop the tail).  Raises :class:`TimeoutError` when *timeout*
    seconds pass without that condition — including when the log never
    appears at all.
    """
    target = os.fspath(path)
    deadline = None if timeout is None else time.monotonic() + timeout
    offset = 0
    buffer = b""
    last_type: str | None = None
    while True:
        grew = False
        if os.path.exists(target):
            with open(target, "rb") as handle:
                handle.seek(offset)
                chunk = handle.read()
            if chunk:
                grew = True
                offset += len(chunk)
                buffer += chunk
                while b"\n" in buffer:
                    line, buffer = buffer.split(b"\n", 1)
                    event = _parse_line(line)
                    if event is None:
                        continue
                    last_type = event["type"]
                    yield event
        if last_type == "run-finished" and not buffer:
            return
        if deadline is not None and time.monotonic() >= deadline:
            raise TimeoutError(
                f"{target}: no run-finished event within {timeout:g}s"
            )
        if not grew:
            time.sleep(poll)
