"""Minimal JSON-schema validation for committed result artifacts.

Several artifact families leave the execution tier as JSON: the per-run
``*.metrics.json`` telemetry files (:mod:`repro.obs.metrics`), the live
``*.events.jsonl`` event logs (:mod:`repro.obs.events`), exported
Chrome/Perfetto traces (:mod:`repro.obs.trace`), committed
``results/coverage/*.json`` matrices, and the committed
``results/BENCH_*.json`` benchmark records.  All are checked against
schemas here — by ``repro stats --check``, by ``make obs-smoke`` /
``make trace-smoke``, and by ``tests/obs/test_schema.py`` over every
committed file — so a malformed artifact fails loudly instead of
silently rotting.

The validator supports the JSON-schema subset these artifacts need
(``type`` including lists of types, ``properties``, ``required``,
``additionalProperties`` as a schema or ``False``, ``items``, ``enum``,
``minimum``) with **no external dependency**: the container bakes in the
Python toolchain only, so the checker is ~60 lines of recursion rather
than a ``jsonschema`` install.
"""

from __future__ import annotations

_TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "integer": int,
    "number": (int, float),
    "boolean": bool,
    "null": type(None),
}


def _type_ok(instance, name: str) -> bool:
    expected = _TYPES[name]
    if name in ("integer", "number") and isinstance(instance, bool):
        return False
    return isinstance(instance, expected)


def validate(instance, schema: dict, path: str = "$") -> list[str]:
    """Validate *instance* against *schema*; return human-readable errors.

    An empty list means the instance conforms.  Errors name the failing
    path (``$.results.test_x.seconds``) so artifact regressions are
    one-glance diagnosable.
    """
    errors: list[str] = []
    declared = schema.get("type")
    if declared is not None:
        names = declared if isinstance(declared, list) else [declared]
        if not any(_type_ok(instance, name) for name in names):
            errors.append(
                f"{path}: expected {' or '.join(names)}, "
                f"got {type(instance).__name__}"
            )
            return errors
    if "enum" in schema and instance not in schema["enum"]:
        errors.append(f"{path}: {instance!r} not one of {schema['enum']!r}")
    minimum = schema.get("minimum")
    if minimum is not None and isinstance(instance, (int, float)):
        if not isinstance(instance, bool) and instance < minimum:
            errors.append(f"{path}: {instance!r} is below minimum {minimum}")
    if isinstance(instance, dict):
        for key in schema.get("required", ()):
            if key not in instance:
                errors.append(f"{path}: missing required key {key!r}")
        properties = schema.get("properties", {})
        additional = schema.get("additionalProperties", True)
        for key, value in instance.items():
            child_path = f"{path}.{key}"
            if key in properties:
                errors.extend(validate(value, properties[key], child_path))
            elif additional is False:
                errors.append(f"{path}: unexpected key {key!r}")
            elif isinstance(additional, dict):
                errors.extend(validate(value, additional, child_path))
    if isinstance(instance, list) and "items" in schema:
        for index, value in enumerate(instance):
            errors.extend(validate(value, schema["items"], f"{path}[{index}]"))
    return errors


#: One accumulated statistic kind inside a metrics payload.
_SPAN_SCHEMA = {
    "type": "object",
    "required": ["count", "seconds"],
    "properties": {
        "count": {"type": "integer", "minimum": 1},
        "seconds": {"type": "number", "minimum": 0},
    },
}

_HISTOGRAM_SCHEMA = {
    "type": "object",
    "required": ["count", "sum", "min", "max"],
    "properties": {
        "count": {"type": "integer", "minimum": 1},
        "sum": {"type": "number"},
        "min": {"type": "number"},
        "max": {"type": "number"},
        "buckets": {"type": "object", "additionalProperties": {"type": "integer"}},
    },
}

_TELEMETRY_SCHEMA = {
    "type": "object",
    "properties": {
        "counters": {"type": "object", "additionalProperties": {"type": "integer"}},
        "gauges": {"type": "object", "additionalProperties": {"type": "number"}},
        "histograms": {
            "type": "object", "additionalProperties": _HISTOGRAM_SCHEMA
        },
        "spans": {"type": "object", "additionalProperties": _SPAN_SCHEMA},
    },
    "additionalProperties": False,
}

#: Schema of one ``<run>.metrics.json`` artifact.
METRICS_SCHEMA = {
    "type": "object",
    "required": ["type", "version", "manifest", "wall_seconds", "telemetry"],
    "properties": {
        "type": {"enum": ["metrics"]},
        "version": {"type": "integer", "minimum": 1},
        "manifest": {
            "type": "object",
            "required": [
                "host", "python", "effective_cores", "workers",
                "chunk_size", "kind", "seed", "total",
            ],
            "properties": {
                "host": {"type": "string"},
                "platform": {"type": "string"},
                "python": {"type": "string"},
                "effective_cores": {"type": "integer", "minimum": 1},
                "cpu_count": {"type": "integer", "minimum": 1},
                "workers": {"type": "integer", "minimum": 1},
                "chunk_size": {"type": "integer", "minimum": 1},
                "kind": {"type": "string"},
                "seed": {"type": "integer"},
                "total": {"type": "integer", "minimum": 0},
                "version": {"type": "integer"},
                "fingerprint": {"type": ["string", "null"]},
                "backend": {"type": ["string", "null"]},
                "batch_size": {"type": ["integer", "null"]},
                "share": {"type": "boolean"},
                "persistent": {"type": "boolean"},
                "resumed": {"type": "boolean"},
                "created": {"type": "string"},
                "out": {"type": "string"},
            },
        },
        "wall_seconds": {"type": "number", "minimum": 0},
        "telemetry": _TELEMETRY_SCHEMA,
        "shards": {
            "type": "array",
            "items": {
                "type": "object",
                "required": ["shard", "worker", "seconds", "records"],
                "properties": {
                    "shard": {"type": "integer", "minimum": 0},
                    "worker": {"type": "integer"},
                    "seconds": {"type": "number", "minimum": 0},
                    "records": {"type": "integer", "minimum": 0},
                    "telemetry": _TELEMETRY_SCHEMA,
                },
            },
        },
    },
}

#: Schema of one committed ``results/BENCH_<module>.json`` artifact.
BENCH_SCHEMA = {
    "type": "object",
    "required": ["benchmark", "results"],
    "properties": {
        "benchmark": {"type": "string"},
        "results": {
            "type": "object",
            "additionalProperties": {
                "type": "object",
                "required": ["seconds"],
                "properties": {"seconds": {"type": "number", "minimum": 0}},
            },
        },
        "manifest": {
            "type": "object",
            "required": ["host", "python", "effective_cores"],
            "properties": {
                "host": {"type": "string"},
                "platform": {"type": "string"},
                "python": {"type": "string"},
                "effective_cores": {"type": "integer", "minimum": 1},
                "cpu_count": {"type": "integer", "minimum": 1},
                "created": {"type": "string"},
            },
        },
    },
}


#: One cell of a committed coverage matrix (``results/coverage/*.json``).
_COVERAGE_CELL_SCHEMA = {
    "type": "object",
    "required": [
        "workload", "subject", "hash", "policy", "total", "outcomes",
        "detection_rate", "latency_histogram", "escapes",
    ],
    "additionalProperties": False,
    "properties": {
        "workload": {"type": "string"},
        "subject": {"type": "string"},
        "hash": {"type": "string"},
        "policy": {"type": "string"},
        "total": {"type": "integer", "minimum": 0},
        "outcomes": {
            "type": "object",
            "additionalProperties": {"type": "integer", "minimum": 0},
        },
        "detection_rate": {"type": "number", "minimum": 0},
        "latency_histogram": {
            "type": "object",
            "additionalProperties": {"type": "integer", "minimum": 1},
        },
        "escapes": {"type": "array", "items": {"type": "string"}},
    },
}

#: Schema of one committed ``results/coverage/*.json`` ground-truth matrix.
COVERAGE_SCHEMA = {
    "type": "object",
    "required": ["type", "version", "spec", "manifest", "cells"],
    "additionalProperties": False,
    "properties": {
        "type": {"enum": ["coverage"]},
        "version": {"type": "integer", "minimum": 1},
        "spec": {
            "type": "object",
            "required": [
                "name", "kind", "scale", "workloads", "hash_names",
                "policy_names", "iht_size", "backend", "classes", "seed",
            ],
            "properties": {
                "name": {"type": "string"},
                "kind": {"enum": ["pairs", "attacks"]},
                "scale": {"type": "string"},
                "workloads": {"type": "array", "items": {"type": "string"}},
                "source": {"type": ["string", "null"]},
                "source_name": {"type": ["string", "null"]},
                "hash_names": {"type": "array", "items": {"type": "string"}},
                "policy_names": {"type": "array", "items": {"type": "string"}},
                "iht_size": {"type": "integer", "minimum": 1},
                "backend": {"type": "string"},
                "classes": {"type": "array", "items": {"type": "string"}},
                "seed": {"type": "integer"},
            },
        },
        "manifest": {
            "type": "object",
            "required": [
                "host", "python", "effective_cores", "fingerprint",
                "total_injections", "wall_seconds", "workers",
            ],
            "properties": {
                "host": {"type": "string"},
                "platform": {"type": "string"},
                "python": {"type": "string"},
                "effective_cores": {"type": "integer", "minimum": 1},
                "cpu_count": {"type": "integer", "minimum": 1},
                "created": {"type": "string"},
                "fingerprint": {"type": "string"},
                "total_injections": {"type": "integer", "minimum": 0},
                "wall_seconds": {"type": "number", "minimum": 0},
                "workers": {"type": "integer", "minimum": 1},
            },
        },
        "cells": {"type": "array", "items": _COVERAGE_CELL_SCHEMA},
    },
}


#: One line of a ``*.events.jsonl`` live event log (:mod:`repro.obs.events`).
#: Kind-specific fields (shard, worker, throughput, ...) are additional
#: properties on purpose — the envelope (type/seq/t) is the contract.
_EVENT_SCHEMA = {
    "type": "object",
    "required": ["type", "seq", "t"],
    "properties": {
        "type": {
            "enum": [
                "run-started", "resume", "torn-marker", "shard-committed",
                "worker-heartbeat", "run-finished",
            ],
        },
        "seq": {"type": "integer", "minimum": 0},
        "t": {"type": "number", "minimum": 0},
    },
}

#: Schema of a parsed event log: the list :func:`repro.obs.events.
#: read_events` returns.
EVENTS_SCHEMA = {"type": "array", "items": _EVENT_SCHEMA}

#: One Chrome/Perfetto ``trace_event``.  ``ph`` is the phase letter —
#: this exporter emits ``X`` (complete), ``C`` (counter), ``i``
#: (instant), and ``M`` (metadata); viewers ignore letters they don't
#: know, so the enum is the exporter's vocabulary, not the format's.
_TRACE_EVENT_SCHEMA = {
    "type": "object",
    "required": ["name", "ph", "ts", "pid", "tid"],
    "properties": {
        "name": {"type": "string"},
        "ph": {"enum": ["X", "C", "i", "M"]},
        "ts": {"type": "number", "minimum": 0},
        "dur": {"type": "number", "minimum": 0},
        "pid": {"type": "integer"},
        "tid": {"type": "integer"},
        "cat": {"type": "string"},
        "s": {"enum": ["g", "p", "t"]},
        "args": {"type": "object"},
    },
}

#: Schema of one exported Chrome/Perfetto trace (``repro stats
#: --export-trace``): the JSON-object form of the trace_event format.
TRACE_SCHEMA = {
    "type": "object",
    "required": ["traceEvents"],
    "properties": {
        "traceEvents": {"type": "array", "items": _TRACE_EVENT_SCHEMA},
        "displayTimeUnit": {"enum": ["ms", "ns"]},
        "otherData": {"type": "object"},
    },
}


def validate_metrics(data) -> list[str]:
    """Errors of a metrics payload against :data:`METRICS_SCHEMA`."""
    return validate(data, METRICS_SCHEMA)


def validate_events(data) -> list[str]:
    """Errors of a parsed event log against :data:`EVENTS_SCHEMA`.

    Beyond the per-event shape, the log-level invariants the writer
    maintains are checked too: strictly increasing ``seq`` and
    non-decreasing ``t``.
    """
    errors = validate(data, EVENTS_SCHEMA)
    if not isinstance(data, list):
        return errors
    last_seq = None
    last_t = None
    for index, event in enumerate(data):
        if not isinstance(event, dict):
            continue
        seq, t = event.get("seq"), event.get("t")
        if isinstance(seq, int) and not isinstance(seq, bool):
            if last_seq is not None and seq <= last_seq:
                errors.append(
                    f"$[{index}]: seq {seq} not greater than previous {last_seq}"
                )
            last_seq = seq
        if isinstance(t, (int, float)) and not isinstance(t, bool):
            if last_t is not None and t < last_t:
                errors.append(
                    f"$[{index}]: t {t} decreases from previous {last_t}"
                )
            last_t = t
    return errors


def validate_trace(data) -> list[str]:
    """Errors of an exported trace against :data:`TRACE_SCHEMA`."""
    return validate(data, TRACE_SCHEMA)


def validate_bench(data) -> list[str]:
    """Errors of a benchmark record against :data:`BENCH_SCHEMA`."""
    return validate(data, BENCH_SCHEMA)


def validate_coverage(data) -> list[str]:
    """Errors of a coverage matrix against :data:`COVERAGE_SCHEMA`."""
    return validate(data, COVERAGE_SCHEMA)
