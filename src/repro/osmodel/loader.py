"""OS program loader.

Implements the OS-managed scheme of Section 3.3: at load time the expected
hashes are computed from the binary (or read from an FHT blob attached to
it), placed in OS-managed memory, and the process is wired to a Code
Integrity Checker with a fresh internal hash table and exception handler.

No instruction of the application is changed and its code size does not
grow — the decisive advantage over the application-managed (IMPRES-style)
scheme the paper argues in Related Work.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.program import Program
from repro.cfg.hashgen import build_fht
from repro.cic.checker import CodeIntegrityChecker
from repro.cic.fht import FullHashTable
from repro.cic.hashes import HashAlgorithm, get_hash
from repro.cic.iht import InternalHashTable
from repro.osmodel.handler import DEFAULT_MISS_PENALTY, OSExceptionHandler
from repro.osmodel.policies import ReplacementPolicy, get_policy

#: Where the OS maps the attached FHT blob (outside user segments).
FHT_REGION_BASE = 0x7000_0000


@dataclass(slots=True)
class LoadedProcess:
    """A program plus its monitoring context, ready to simulate."""

    program: Program
    fht: FullHashTable
    iht: InternalHashTable
    handler: OSExceptionHandler
    checker: CodeIntegrityChecker
    algorithm: HashAlgorithm
    policy: ReplacementPolicy

    @property
    def monitor(self) -> CodeIntegrityChecker:
        """The object to attach to a simulator's ``monitor`` parameter."""
        return self.checker


def load_process(
    program: Program,
    iht_size: int = 8,
    hash_name: str = "xor",
    policy_name: str = "lru_half",
    miss_penalty: int = DEFAULT_MISS_PENALTY,
    fht_blob: bytes | None = None,
    fht: FullHashTable | None = None,
) -> LoadedProcess:
    """Load *program* under the OS-managed monitoring scheme.

    If *fht_blob* is given it is deserialized instead of recomputed —
    the "hash values attached to the application code" path.  An already
    built *fht* (computed with *hash_name*) is adopted as-is — the warm
    per-worker path of the campaign engine, which hashes the program once
    per worker instead of once per injection.  Otherwise the loader
    computes hashes from the binary it just loaded.
    """
    algorithm = get_hash(hash_name)
    if fht is None:
        if fht_blob is not None:
            fht = FullHashTable.from_bytes(fht_blob)
        else:
            fht = build_fht(program, algorithm)
    iht = InternalHashTable(iht_size)
    policy = get_policy(policy_name)
    handler = OSExceptionHandler(
        fht=fht, iht=iht, policy=policy, miss_penalty=miss_penalty
    )
    checker = CodeIntegrityChecker(iht=iht, handler=handler, algorithm=algorithm)
    return LoadedProcess(
        program=program,
        fht=fht,
        iht=iht,
        handler=handler,
        checker=checker,
        algorithm=algorithm,
        policy=policy,
    )
