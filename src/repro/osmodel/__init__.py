"""Operating-system model.

The paper's monitoring scheme is OS-managed (Section 3.3): the loader
computes expected hashes and attaches the full hash table to the process;
hash-miss exceptions invoke an OS handler that searches the FHT and refills
the IHT under a replacement policy; hash mismatches terminate the program.
"""

from repro.osmodel.handler import OSExceptionHandler
from repro.osmodel.loader import LoadedProcess, load_process
from repro.osmodel.policies import (
    POLICIES,
    FifoPolicy,
    LruHalfPolicy,
    LruOnePolicy,
    RandomPolicy,
    ReplacementPolicy,
    get_policy,
)

__all__ = [
    "FifoPolicy",
    "LoadedProcess",
    "LruHalfPolicy",
    "LruOnePolicy",
    "OSExceptionHandler",
    "POLICIES",
    "RandomPolicy",
    "ReplacementPolicy",
    "get_policy",
    "load_process",
]
