"""IHT refill / replacement policies.

The paper's evaluation uses an LRU policy where "on each hash miss, the OS
replaces half of the entries with hash records from the FHT" (Section 6.1).
The refill heuristic — which records accompany the missed one — is not
specified; :class:`LruHalfPolicy` loads the missed record plus the records
that statically follow it in FHT order (sequential prefetch), which is the
natural software implementation of a block refill.

The alternatives (:class:`LruOnePolicy`, :class:`FifoPolicy`,
:class:`RandomPolicy`) exist for the replacement-policy ablation the paper
lists as future work ("refining the entry replacement policy for the IHT").
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod

from repro.errors import ConfigurationError
from repro.cic.fht import FullHashTable
from repro.cic.iht import InternalHashTable, TableEntry


class ReplacementPolicy(ABC):
    """Strategy invoked by the OS handler on a hash miss."""

    name: str = ""

    @abstractmethod
    def _victims(self, iht: InternalHashTable, needed: int) -> list[TableEntry]:
        """Choose entries to invalidate so *needed* slots become free."""

    def _refill_count(self, iht: InternalHashTable) -> int:
        """How many records to load on a miss (missed record included)."""
        return max(1, iht.size // 2)

    def refill(
        self,
        iht: InternalHashTable,
        fht: FullHashTable,
        missing_key: tuple[int, int],
    ) -> None:
        """Make room and load *missing_key* (plus prefetched records)."""
        count = min(self._refill_count(iht), iht.size, len(fht))
        shortfall = count - iht.free_slots()
        if shortfall > 0:
            victims = self._victims(iht, shortfall)
            iht.evict(victims)
        loaded = 0
        for start, end, hash_value in fht.records_from(missing_key, count):
            if iht.probe(start, end) is not None:
                continue  # prefetch target already cached
            if iht.free_slots() == 0:
                break
            iht.insert(start, end, hash_value)
            loaded += 1
        if iht.probe(*missing_key) is None:  # pragma: no cover - invariant
            raise ConfigurationError("refill failed to load the missed block")

    # ------------------------------------------------------------------
    # Checkpointing (golden-trace campaign backend)
    # ------------------------------------------------------------------

    def snapshot_state(self) -> object:
        """Internal policy state to checkpoint (default: stateless)."""
        return None

    def restore_state(self, state: object) -> None:
        """Restore state captured by :meth:`snapshot_state`."""


class LruHalfPolicy(ReplacementPolicy):
    """The paper's policy: evict the least-recently-used half, block refill."""

    name = "lru_half"

    def _victims(self, iht: InternalHashTable, needed: int) -> list[TableEntry]:
        by_recency = sorted(iht.valid_entries(), key=lambda entry: entry.last_used)
        return by_recency[:needed]


class LruOnePolicy(ReplacementPolicy):
    """Classic cache behaviour: evict one LRU entry, load only the miss."""

    name = "lru_one"

    def _refill_count(self, iht: InternalHashTable) -> int:
        return 1

    def _victims(self, iht: InternalHashTable, needed: int) -> list[TableEntry]:
        by_recency = sorted(iht.valid_entries(), key=lambda entry: entry.last_used)
        return by_recency[:needed]


class FifoPolicy(ReplacementPolicy):
    """Evict the oldest-inserted half (no recency tracking hardware)."""

    name = "fifo"

    def _victims(self, iht: InternalHashTable, needed: int) -> list[TableEntry]:
        by_insertion = sorted(iht.valid_entries(), key=lambda entry: entry.inserted)
        return by_insertion[:needed]


class RandomPolicy(ReplacementPolicy):
    """Evict a random half — the cheapest possible replacement hardware."""

    name = "random"

    def __init__(self, seed: int = 0x5EED):
        self._rng = random.Random(seed)

    def _victims(self, iht: InternalHashTable, needed: int) -> list[TableEntry]:
        valid = iht.valid_entries()
        return self._rng.sample(valid, min(needed, len(valid)))

    def snapshot_state(self) -> object:
        return self._rng.getstate()

    def restore_state(self, state: object) -> None:
        self._rng.setstate(state)


POLICIES: dict[str, type[ReplacementPolicy]] = {
    cls.name: cls for cls in (LruHalfPolicy, LruOnePolicy, FifoPolicy, RandomPolicy)
}


def get_policy(name: str) -> ReplacementPolicy:
    """Instantiate a replacement policy by registry name."""
    try:
        return POLICIES[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown replacement policy {name!r}; "
            f"available: {', '.join(sorted(POLICIES))}"
        ) from None
