"""OS monitoring-exception handler.

The CIC raises two exception signals (Figure 4):

* **exception0 — hash miss**: the block's ``(start, end)`` range is not in
  the IHT.  The OS searches the FHT; if the record exists and the dynamic
  hash matches, the IHT is refilled under the replacement policy and
  execution continues, at a flat cost of ``miss_penalty`` cycles (the
  paper assumes 100).  If the record is absent, or present with a different
  hash, the code was altered — the process is terminated.
* **exception1 — hash mismatch**: the range is in the IHT but the dynamic
  hash differs: definite corruption, immediate termination.

Termination is modelled by raising :class:`~repro.errors.MonitorViolation`,
which fault campaigns catch and classify as a successful detection.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NoReturn

from repro.errors import MonitorViolation
from repro.cic.fht import FullHashTable
from repro.cic.iht import InternalHashTable
from repro.osmodel.policies import ReplacementPolicy

#: The paper's assumed cost of one OS exception handling episode.
DEFAULT_MISS_PENALTY = 100


@dataclass(slots=True)
class HandlerStats:
    """Counters of OS-level monitoring activity."""

    miss_exceptions: int = 0
    fht_searches: int = 0
    refills: int = 0
    cycles: int = 0


@dataclass(slots=True)
class OSExceptionHandler:
    """Handles CIC exceptions against one process's FHT."""

    fht: FullHashTable
    iht: InternalHashTable
    policy: ReplacementPolicy
    miss_penalty: int = DEFAULT_MISS_PENALTY
    stats: HandlerStats = field(default_factory=HandlerStats)

    def on_miss(self, start: int, end: int, hash_value: int) -> int:
        """Hash-miss exception: search the FHT, refill or terminate."""
        self.stats.miss_exceptions += 1
        self.stats.fht_searches += 1
        expected = self.fht.get(start, end)
        if expected is None:
            raise MonitorViolation(start, end, None, hash_value)
        if expected != hash_value:
            raise MonitorViolation(start, end, expected, hash_value)
        self.policy.refill(self.iht, self.fht, (start, end))
        self.stats.refills += 1
        self.stats.cycles += self.miss_penalty
        return self.miss_penalty

    def on_mismatch(self, start: int, end: int, hash_value: int) -> NoReturn:
        """Hash-mismatch exception: unconditional termination."""
        entry = self.iht.probe(start, end)
        expected = entry.hash_value if entry is not None else self.fht.get(start, end)
        raise MonitorViolation(start, end, expected, hash_value)

    # ------------------------------------------------------------------
    # Checkpointing (golden-trace campaign backend)
    # ------------------------------------------------------------------

    def snapshot(self) -> tuple:
        """Counters plus the replacement policy's internal state.

        The FHT and IHT are not included: the FHT is immutable after load
        and shared across restores, the IHT travels with the checker's
        snapshot.
        """
        return (
            (
                self.stats.miss_exceptions,
                self.stats.fht_searches,
                self.stats.refills,
                self.stats.cycles,
            ),
            self.policy.snapshot_state(),
        )

    def restore(self, snapshot: tuple) -> None:
        stats, policy_state = snapshot
        self.stats = HandlerStats(*stats)
        self.policy.restore_state(policy_state)
