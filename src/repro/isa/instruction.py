"""The decoded :class:`Instruction` value object.

An ``Instruction`` is an immutable record of a decoded 32-bit word.  It
carries the raw word (needed by the hash unit, which folds *encoded* words),
the mnemonic, and the decoded fields.  Operand-dependency helpers used by the
pipeline's hazard logic live here too, close to the field definitions.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.isa.opcodes import Format, Mnemonic

# Mnemonic groups used by source/destination queries.
_SHIFT_IMMEDIATE = frozenset({Mnemonic.SLL, Mnemonic.SRL, Mnemonic.SRA})
_READS_RS_RT_R = frozenset(
    {
        Mnemonic.SLLV, Mnemonic.SRLV, Mnemonic.SRAV,
        Mnemonic.MULT, Mnemonic.MULTU, Mnemonic.DIV, Mnemonic.DIVU,
        Mnemonic.ADD, Mnemonic.ADDU, Mnemonic.SUB, Mnemonic.SUBU,
        Mnemonic.AND, Mnemonic.OR, Mnemonic.XOR, Mnemonic.NOR,
        Mnemonic.SLT, Mnemonic.SLTU,
    }
)
_WRITES_RD = _READS_RS_RT_R - {
    Mnemonic.MULT, Mnemonic.MULTU, Mnemonic.DIV, Mnemonic.DIVU
} | _SHIFT_IMMEDIATE | {Mnemonic.MFHI, Mnemonic.MFLO, Mnemonic.JALR}
_IMM_ALU = frozenset(
    {
        Mnemonic.ADDI, Mnemonic.ADDIU, Mnemonic.SLTI, Mnemonic.SLTIU,
        Mnemonic.ANDI, Mnemonic.ORI, Mnemonic.XORI,
    }
)
_LOADS = frozenset({Mnemonic.LB, Mnemonic.LH, Mnemonic.LW, Mnemonic.LBU, Mnemonic.LHU})
_STORES = frozenset({Mnemonic.SB, Mnemonic.SH, Mnemonic.SW})


@dataclass(frozen=True, slots=True)
class Instruction:
    """A decoded machine instruction.

    Field semantics follow the encoding format: R-type instructions use
    ``rs``/``rt``/``rd``/``shamt``, I-type use ``rs``/``rt``/``imm`` (already
    sign- or zero-extended as appropriate), J-type use ``target`` (a 26-bit
    word index).  ``word`` always holds the exact encoded bits.
    """

    mnemonic: Mnemonic
    format: Format
    word: int
    rs: int = 0
    rt: int = 0
    rd: int = 0
    shamt: int = 0
    imm: int = 0
    target: int = 0
    code: int = field(default=0)  # syscall/break code field

    def source_registers(self) -> tuple[int, ...]:
        """GPR numbers this instruction reads, in operand order."""
        m = self.mnemonic
        if m in _SHIFT_IMMEDIATE:
            return (self.rt,)
        if m in _READS_RS_RT_R:
            return (self.rs, self.rt)
        if m in (Mnemonic.JR, Mnemonic.JALR, Mnemonic.MTHI, Mnemonic.MTLO):
            return (self.rs,)
        if m in (Mnemonic.BEQ, Mnemonic.BNE):
            return (self.rs, self.rt)
        if m in (Mnemonic.BLEZ, Mnemonic.BGTZ, Mnemonic.BLTZ, Mnemonic.BGEZ):
            return (self.rs,)
        if m in _IMM_ALU or m in _LOADS:
            return (self.rs,)
        if m in _STORES:
            return (self.rs, self.rt)
        return ()

    def destination_register(self) -> int | None:
        """The GPR this instruction writes, or ``None``.

        Writes to register 0 are architectural no-ops and reported as
        ``None`` so hazard logic never stalls on them.
        """
        m = self.mnemonic
        dest: int | None = None
        if m in _WRITES_RD:
            dest = self.rd
        elif m in _IMM_ALU or m in _LOADS or m is Mnemonic.LUI:
            dest = self.rt
        elif m is Mnemonic.JAL:
            dest = 31
        if dest == 0:
            dest = None
        return dest

    def is_load(self) -> bool:
        return self.mnemonic in _LOADS

    def is_store(self) -> bool:
        return self.mnemonic in _STORES

    def __str__(self) -> str:
        from repro.asm.disassembler import format_instruction

        return format_instruction(self)
