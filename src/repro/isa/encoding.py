"""Binary encoding and decoding of instruction words.

``encode_fields`` assembles a 32-bit word from named fields; ``decode``
recovers an :class:`~repro.isa.instruction.Instruction` from a word.  The two
functions are exact inverses for every valid instruction, a property pinned
down by round-trip tests (including hypothesis-generated instructions).
"""

from __future__ import annotations

from repro.errors import DecodingError, EncodingError
from repro.isa import opcodes
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Format, Mnemonic
from repro.utils.bitops import MASK32, bits, sign_extend


def _check_field(name: str, value: int, width: int) -> int:
    if not 0 <= value < (1 << width):
        raise EncodingError(f"field {name}={value} does not fit in {width} bits")
    return value


def encode_fields(
    mnemonic: Mnemonic,
    rs: int = 0,
    rt: int = 0,
    rd: int = 0,
    shamt: int = 0,
    imm: int = 0,
    target: int = 0,
    code: int = 0,
) -> int:
    """Encode an instruction from its fields into a 32-bit word.

    ``imm`` accepts signed values in [-32768, 65535]; ``target`` is the
    26-bit word-index field of J-type instructions.  ``code`` fills the
    20-bit field of ``syscall``/``break``.
    """
    fmt = opcodes.MNEMONIC_FORMAT[mnemonic]
    if fmt is Format.R:
        funct = opcodes.FUNCT_CODES[mnemonic]
        if mnemonic in (Mnemonic.SYSCALL, Mnemonic.BREAK):
            _check_field("code", code, 20)
            return (code << 6) | funct
        _check_field("rs", rs, 5)
        _check_field("rt", rt, 5)
        _check_field("rd", rd, 5)
        _check_field("shamt", shamt, 5)
        return (rs << 21) | (rt << 16) | (rd << 11) | (shamt << 6) | funct
    if fmt is Format.J:
        opcode = opcodes.PRIMARY_OPCODES[mnemonic]
        _check_field("target", target, 26)
        return (opcode << 26) | target
    # I format (including REGIMM).
    if not -32768 <= imm <= 0xFFFF:
        raise EncodingError(f"immediate {imm} does not fit in 16 bits")
    imm &= 0xFFFF
    if mnemonic in opcodes.REGIMM_CODES:
        _check_field("rs", rs, 5)
        selector = opcodes.REGIMM_CODES[mnemonic]
        return (opcodes.OPCODE_REGIMM << 26) | (rs << 21) | (selector << 16) | imm
    opcode = opcodes.PRIMARY_OPCODES[mnemonic]
    _check_field("rs", rs, 5)
    _check_field("rt", rt, 5)
    return (opcode << 26) | (rs << 21) | (rt << 16) | imm


def decode(word: int, address: int | None = None) -> Instruction:
    """Decode a 32-bit word into an :class:`Instruction`.

    Raises :class:`~repro.errors.DecodingError` for invalid opcodes or
    function codes — the behaviour a real decoder would signal as an illegal
    instruction exception.  This matters for the fault-injection study: some
    bit flips are caught by the *baseline* decoder before the CIC ever sees
    a hash mismatch (Section 6.3 of the paper).
    """
    word &= MASK32
    opcode = bits(word, 31, 26)
    if opcode == opcodes.OPCODE_SPECIAL:
        funct = bits(word, 5, 0)
        mnemonic = opcodes.FUNCT_TO_MNEMONIC.get(funct)
        if mnemonic is None:
            raise DecodingError(word, address, f"invalid funct {funct}")
        if mnemonic in (Mnemonic.SYSCALL, Mnemonic.BREAK):
            return Instruction(
                mnemonic=mnemonic,
                format=Format.R,
                word=word,
                code=bits(word, 25, 6),
            )
        instruction = Instruction(
            mnemonic=mnemonic,
            format=Format.R,
            word=word,
            rs=bits(word, 25, 21),
            rt=bits(word, 20, 16),
            rd=bits(word, 15, 11),
            shamt=bits(word, 10, 6),
        )
        _validate_r_type(instruction, word, address)
        return instruction
    if opcode == opcodes.OPCODE_REGIMM:
        selector = bits(word, 20, 16)
        mnemonic = opcodes.REGIMM_TO_MNEMONIC.get(selector)
        if mnemonic is None:
            raise DecodingError(word, address, f"invalid regimm selector {selector}")
        return Instruction(
            mnemonic=mnemonic,
            format=Format.I,
            word=word,
            rs=bits(word, 25, 21),
            imm=sign_extend(bits(word, 15, 0), 16),
        )
    mnemonic = opcodes.OPCODE_TO_MNEMONIC.get(opcode)
    if mnemonic is None:
        raise DecodingError(word, address, f"invalid opcode {opcode}")
    if opcodes.MNEMONIC_FORMAT[mnemonic] is Format.J:
        return Instruction(
            mnemonic=mnemonic,
            format=Format.J,
            word=word,
            target=bits(word, 25, 0),
        )
    imm_raw = bits(word, 15, 0)
    # Logical immediates are zero-extended; everything else sign-extends.
    if mnemonic in (Mnemonic.ANDI, Mnemonic.ORI, Mnemonic.XORI, Mnemonic.LUI):
        imm = imm_raw
    else:
        imm = sign_extend(imm_raw, 16)
    return Instruction(
        mnemonic=mnemonic,
        format=Format.I,
        word=word,
        rs=bits(word, 25, 21),
        rt=bits(word, 20, 16),
        imm=imm,
    )


def _validate_r_type(instruction: Instruction, word: int, address: int | None) -> None:
    """Reject R-type encodings whose unused fields are non-zero.

    Strict decoding widens the class of bit flips the baseline machine
    detects on its own (invalid opcode/operand combinations), mirroring the
    paper's note that some errors are caught by the unmodified datapath.
    """
    m = instruction.mnemonic
    shift_ops = (Mnemonic.SLL, Mnemonic.SRL, Mnemonic.SRA)
    if m in shift_ops and instruction.rs != 0:
        raise DecodingError(word, address, f"{m} with non-zero rs field")
    if m not in shift_ops and instruction.shamt != 0:
        raise DecodingError(word, address, f"{m} with non-zero shamt field")
    if m is Mnemonic.JR and (instruction.rt or instruction.rd):
        raise DecodingError(word, address, "jr with non-zero rt/rd fields")
    if m in (Mnemonic.MULT, Mnemonic.MULTU, Mnemonic.DIV, Mnemonic.DIVU) and instruction.rd:
        raise DecodingError(word, address, f"{m} with non-zero rd field")
    if m in (Mnemonic.MFHI, Mnemonic.MFLO) and (instruction.rs or instruction.rt):
        raise DecodingError(word, address, f"{m} with non-zero rs/rt fields")
    if m in (Mnemonic.MTHI, Mnemonic.MTLO) and (instruction.rt or instruction.rd):
        raise DecodingError(word, address, f"{m} with non-zero rt/rd fields")
