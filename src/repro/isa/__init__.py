"""PISA-like 32-bit RISC instruction set architecture.

This package defines the target ISA of the reproduced ASIP: a MIPS-I-style
load/store architecture with fixed 32-bit instruction words, the register
file and ABI names, the three instruction formats (R/I/J), and the
encode/decode machinery shared by the assembler, disassembler, and both
simulators.

The paper's processor is generated from SimpleScalar's PISA; PISA itself is a
MIPS derivative, so this ISA preserves the properties the evaluation depends
on — single-issue 32-bit instructions, explicit control-flow opcodes that
delimit basic blocks, and a flat word-addressable memory.
"""

from repro.isa.encoding import decode, encode_fields
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Format, Mnemonic
from repro.isa.properties import (
    is_branch,
    is_control_flow,
    is_jump,
    is_load,
    is_store,
    static_successors,
)
from repro.isa.registers import (
    NUM_REGISTERS,
    REGISTER_ALIASES,
    REGISTER_NAMES,
    register_name,
    register_number,
)

__all__ = [
    "Format",
    "Instruction",
    "Mnemonic",
    "NUM_REGISTERS",
    "REGISTER_ALIASES",
    "REGISTER_NAMES",
    "decode",
    "encode_fields",
    "is_branch",
    "is_control_flow",
    "is_jump",
    "is_load",
    "is_store",
    "register_name",
    "register_number",
    "static_successors",
]
