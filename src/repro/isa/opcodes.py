"""Opcode and function-code tables for the PISA-like ISA.

The numeric values follow the MIPS-I encoding so that the instruction words
produced here are recognisable and the decoder can be validated against
well-known encodings.  Three instruction formats exist:

* ``R`` — opcode 0, operation selected by the ``funct`` field.
* ``I`` — 16-bit immediate; covers ALU-immediate, loads/stores and branches.
* ``J`` — 26-bit pseudo-absolute jump target.

``REGIMM`` (opcode 1) is a sub-format of ``I`` where the ``rt`` field selects
the comparison (``bltz``/``bgez``).
"""

from __future__ import annotations

import enum


class Format(enum.Enum):
    """Instruction encoding format."""

    R = "R"
    I = "I"  # noqa: E741 - the MIPS format really is called "I"
    J = "J"


class Mnemonic(str, enum.Enum):
    """All machine (non-pseudo) instruction mnemonics of the ISA."""

    # R-type ALU
    SLL = "sll"
    SRL = "srl"
    SRA = "sra"
    SLLV = "sllv"
    SRLV = "srlv"
    SRAV = "srav"
    JR = "jr"
    JALR = "jalr"
    SYSCALL = "syscall"
    BREAK = "break"
    MFHI = "mfhi"
    MTHI = "mthi"
    MFLO = "mflo"
    MTLO = "mtlo"
    MULT = "mult"
    MULTU = "multu"
    DIV = "div"
    DIVU = "divu"
    ADD = "add"
    ADDU = "addu"
    SUB = "sub"
    SUBU = "subu"
    AND = "and"
    OR = "or"
    XOR = "xor"
    NOR = "nor"
    SLT = "slt"
    SLTU = "sltu"
    # I-type
    BLTZ = "bltz"
    BGEZ = "bgez"
    BEQ = "beq"
    BNE = "bne"
    BLEZ = "blez"
    BGTZ = "bgtz"
    ADDI = "addi"
    ADDIU = "addiu"
    SLTI = "slti"
    SLTIU = "sltiu"
    ANDI = "andi"
    ORI = "ori"
    XORI = "xori"
    LUI = "lui"
    LB = "lb"
    LH = "lh"
    LW = "lw"
    LBU = "lbu"
    LHU = "lhu"
    SB = "sb"
    SH = "sh"
    SW = "sw"
    # J-type
    J = "j"
    JAL = "jal"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


# Primary opcode values (bits 31..26).
OPCODE_SPECIAL = 0
OPCODE_REGIMM = 1

#: I/J-type primary opcodes.
PRIMARY_OPCODES: dict[Mnemonic, int] = {
    Mnemonic.J: 2,
    Mnemonic.JAL: 3,
    Mnemonic.BEQ: 4,
    Mnemonic.BNE: 5,
    Mnemonic.BLEZ: 6,
    Mnemonic.BGTZ: 7,
    Mnemonic.ADDI: 8,
    Mnemonic.ADDIU: 9,
    Mnemonic.SLTI: 10,
    Mnemonic.SLTIU: 11,
    Mnemonic.ANDI: 12,
    Mnemonic.ORI: 13,
    Mnemonic.XORI: 14,
    Mnemonic.LUI: 15,
    Mnemonic.LB: 32,
    Mnemonic.LH: 33,
    Mnemonic.LW: 35,
    Mnemonic.LBU: 36,
    Mnemonic.LHU: 37,
    Mnemonic.SB: 40,
    Mnemonic.SH: 41,
    Mnemonic.SW: 43,
}

#: R-type function codes (bits 5..0 when opcode == 0).
FUNCT_CODES: dict[Mnemonic, int] = {
    Mnemonic.SLL: 0,
    Mnemonic.SRL: 2,
    Mnemonic.SRA: 3,
    Mnemonic.SLLV: 4,
    Mnemonic.SRLV: 6,
    Mnemonic.SRAV: 7,
    Mnemonic.JR: 8,
    Mnemonic.JALR: 9,
    Mnemonic.SYSCALL: 12,
    Mnemonic.BREAK: 13,
    Mnemonic.MFHI: 16,
    Mnemonic.MTHI: 17,
    Mnemonic.MFLO: 18,
    Mnemonic.MTLO: 19,
    Mnemonic.MULT: 24,
    Mnemonic.MULTU: 25,
    Mnemonic.DIV: 26,
    Mnemonic.DIVU: 27,
    Mnemonic.ADD: 32,
    Mnemonic.ADDU: 33,
    Mnemonic.SUB: 34,
    Mnemonic.SUBU: 35,
    Mnemonic.AND: 36,
    Mnemonic.OR: 37,
    Mnemonic.XOR: 38,
    Mnemonic.NOR: 39,
    Mnemonic.SLT: 42,
    Mnemonic.SLTU: 43,
}

#: REGIMM selector values stored in the ``rt`` field (opcode == 1).
REGIMM_CODES: dict[Mnemonic, int] = {
    Mnemonic.BLTZ: 0,
    Mnemonic.BGEZ: 1,
}

# Reverse maps used by the decoder.
OPCODE_TO_MNEMONIC: dict[int, Mnemonic] = {v: k for k, v in PRIMARY_OPCODES.items()}
FUNCT_TO_MNEMONIC: dict[int, Mnemonic] = {v: k for k, v in FUNCT_CODES.items()}
REGIMM_TO_MNEMONIC: dict[int, Mnemonic] = {v: k for k, v in REGIMM_CODES.items()}

#: Format of each mnemonic.
MNEMONIC_FORMAT: dict[Mnemonic, Format] = {}
for _m in FUNCT_CODES:
    MNEMONIC_FORMAT[_m] = Format.R
for _m in PRIMARY_OPCODES:
    MNEMONIC_FORMAT[_m] = Format.J if _m in (Mnemonic.J, Mnemonic.JAL) else Format.I
for _m in REGIMM_CODES:
    MNEMONIC_FORMAT[_m] = Format.I

ALL_MNEMONICS: tuple[Mnemonic, ...] = tuple(Mnemonic)
