"""Instruction classification predicates and static control-flow analysis.

These predicates define what counts as a *flow-control instruction* — the
events that delimit basic blocks in the paper's monitoring scheme (Section
4.2: "Flow control instructions, such as branch and jump, indicate the end
of a basic block").  ``syscall`` and ``break`` also transfer control (to the
OS) and are treated as block terminators; the run-time monitor checks the
block ending at them as well.
"""

from __future__ import annotations

from repro.isa.instruction import Instruction
from repro.isa.opcodes import Mnemonic
from repro.utils.bitops import MASK32

#: Conditional branches (PC-relative, may fall through).
BRANCHES = frozenset(
    {
        Mnemonic.BEQ,
        Mnemonic.BNE,
        Mnemonic.BLEZ,
        Mnemonic.BGTZ,
        Mnemonic.BLTZ,
        Mnemonic.BGEZ,
    }
)

#: Unconditional direct jumps.
DIRECT_JUMPS = frozenset({Mnemonic.J, Mnemonic.JAL})

#: Register-indirect jumps (targets unknown statically in general).
INDIRECT_JUMPS = frozenset({Mnemonic.JR, Mnemonic.JALR})

#: Control transfers to the operating system.
TRAPS = frozenset({Mnemonic.SYSCALL, Mnemonic.BREAK})

#: Everything that terminates a dynamic basic block.
CONTROL_FLOW = BRANCHES | DIRECT_JUMPS | INDIRECT_JUMPS | TRAPS

#: Call instructions (write a return address).
CALLS = frozenset({Mnemonic.JAL, Mnemonic.JALR})


def is_branch(instruction: Instruction) -> bool:
    """True for conditional PC-relative branches."""
    return instruction.mnemonic in BRANCHES


def is_jump(instruction: Instruction) -> bool:
    """True for unconditional jumps, direct or indirect."""
    return instruction.mnemonic in DIRECT_JUMPS or instruction.mnemonic in INDIRECT_JUMPS


def is_trap(instruction: Instruction) -> bool:
    """True for syscall/break."""
    return instruction.mnemonic in TRAPS


def is_control_flow(instruction: Instruction) -> bool:
    """True for every basic-block-terminating instruction."""
    return instruction.mnemonic in CONTROL_FLOW


def is_call(instruction: Instruction) -> bool:
    """True for jal/jalr."""
    return instruction.mnemonic in CALLS


def is_load(instruction: Instruction) -> bool:
    return instruction.is_load()


def is_store(instruction: Instruction) -> bool:
    return instruction.is_store()


def branch_target(instruction: Instruction, address: int) -> int:
    """Target address of a conditional branch located at *address*.

    The offset is in words relative to the instruction following the branch,
    matching the MIPS encoding the assembler emits.
    """
    if not is_branch(instruction):
        raise ValueError(f"{instruction.mnemonic} is not a branch")
    return (address + 4 + (instruction.imm << 2)) & MASK32


def jump_target(instruction: Instruction, address: int) -> int:
    """Target address of a direct jump located at *address*."""
    if instruction.mnemonic not in DIRECT_JUMPS:
        raise ValueError(f"{instruction.mnemonic} is not a direct jump")
    return ((address + 4) & 0xF0000000) | (instruction.target << 2)


def static_successors(instruction: Instruction, address: int) -> tuple[int, ...]:
    """Statically known successor addresses of the instruction at *address*.

    Conditional branches contribute both the taken target and the
    fall-through; direct jumps contribute the target; indirect jumps and
    traps contribute nothing statically (their successors are discovered via
    the entry-point rule during basic-block enumeration); ordinary
    instructions contribute the fall-through.
    """
    if is_branch(instruction):
        return (branch_target(instruction, address), (address + 4) & MASK32)
    if instruction.mnemonic in DIRECT_JUMPS:
        return (jump_target(instruction, address),)
    if instruction.mnemonic in INDIRECT_JUMPS or instruction.mnemonic in TRAPS:
        return ()
    return ((address + 4) & MASK32,)
