"""General-purpose register file layout and ABI naming.

The ISA has 32 general-purpose registers.  Register 0 is hardwired to zero,
as on MIPS/PISA.  The conventional ABI aliases are accepted by the assembler
(``$t0``, ``$sp``, ...) and produced by the disassembler.
"""

from __future__ import annotations

from repro.errors import EncodingError

NUM_REGISTERS = 32

#: Canonical ABI alias for each register number.
REGISTER_NAMES: tuple[str, ...] = (
    "zero", "at", "v0", "v1", "a0", "a1", "a2", "a3",
    "t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7",
    "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7",
    "t8", "t9", "k0", "k1", "gp", "sp", "fp", "ra",
)

#: Every accepted spelling (without the ``$`` sigil) mapped to its number.
REGISTER_ALIASES: dict[str, int] = {}
for _index, _name in enumerate(REGISTER_NAMES):
    REGISTER_ALIASES[_name] = _index
    REGISTER_ALIASES[f"r{_index}"] = _index
    REGISTER_ALIASES[str(_index)] = _index
REGISTER_ALIASES["s8"] = 30  # fp is also called s8 in the MIPS ABI


def register_number(name: str) -> int:
    """Resolve a register spelling (with or without ``$``) to its number."""
    text = name.lower().lstrip("$")
    try:
        return REGISTER_ALIASES[text]
    except KeyError:
        raise EncodingError(f"unknown register name {name!r}") from None


def register_name(number: int) -> str:
    """Canonical ``$``-prefixed ABI alias for a register number."""
    if not 0 <= number < NUM_REGISTERS:
        raise EncodingError(f"register number {number} out of range 0..31")
    return f"${REGISTER_NAMES[number]}"


# Fixed-role registers used by the toolchain and OS model.
ZERO = 0
AT = 1       # assembler temporary (used by pseudo-instruction expansion)
V0, V1 = 2, 3
A0, A1, A2, A3 = 4, 5, 6, 7
GP = 28
SP = 29
FP = 30
RA = 31
