"""repro — reproduction of Fei & Shi, "Microarchitectural Support for
Program Code Integrity Monitoring in Application-specific Instruction Set
Processors" (DATE 2007).

The package provides, end to end:

* a PISA-like 32-bit ISA with an assembler toolchain (:mod:`repro.asm`),
* two cross-validated simulators — a functional ISS with an analytical
  cycle model and a cycle-level 5-stage pipeline (:mod:`repro.pipeline`),
* the paper's Code Integrity Checker at two fidelity levels: a behavioural
  model and an executable-microoperation model driven by the literal text
  of the paper's Figures 3 and 4 (:mod:`repro.cic`, :mod:`repro.micro`),
* the OS-managed monitoring scheme: loader, full hash table, exception
  handling, replacement policies (:mod:`repro.osmodel`),
* static analysis for expected-hash generation (:mod:`repro.cfg`),
* a fault-injection framework (:mod:`repro.faults`),
* a standard-cell area/timing model standing in for synthesis
  (:mod:`repro.area`),
* the ASIP Meister-style design flow (:mod:`repro.meister`),
* nine MiBench-equivalent workloads (:mod:`repro.workloads`), and
* one evaluation harness per paper table/figure (:mod:`repro.eval`).

Quick start::

    from repro import assemble, load_process, FuncSim

    program = assemble(open("program.s").read())
    process = load_process(program, iht_size=8)
    result = FuncSim(program, monitor=process.monitor).run()
    print(result.console, result.monitor_stats)
"""

from repro.asm import assemble
from repro.errors import MonitorViolation, ReproError
from repro.meister import AsipMeister, MonitorSpec
from repro.osmodel import load_process
from repro.pipeline import FuncSim, PipelineCPU

__version__ = "1.0.0"

__all__ = [
    "AsipMeister",
    "FuncSim",
    "MonitorSpec",
    "MonitorViolation",
    "PipelineCPU",
    "ReproError",
    "assemble",
    "load_process",
    "__version__",
]
