"""Declarative monitor-configuration design space.

The paper's central claim is a *trade-off*: the IHT geometry, the hash
function, and the OS checking policy jointly set detection coverage,
detection latency, run-time overhead, and silicon area.  A
:class:`ConfigSpace` names the axes of that trade-off declaratively —
hash × IHT entries × replacement policy × miss-penalty model — plus the
workload set every point is measured on, and enumerates the Cartesian
product as picklable :class:`MonitorConfig` points in a canonical order.

Everything here is plain data: spaces and configs cross process
boundaries (pool workers re-derive their caches from them), serialize
into JSONL sweep-file headers, and fingerprint stably so a resumed sweep
refuses a results file written by a different space.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass

from repro.cic.hashes import HASH_ALGORITHMS
from repro.errors import ConfigurationError
from repro.osmodel.policies import POLICIES
from repro.workloads.suite import WORKLOAD_NAMES

#: Schema version stamped into sweep-file headers.
DSE_VERSION = 1

#: How a point's detection objectives are measured (see ``objectives.py``):
#: the seeded adversarial corpus of :mod:`repro.attacks`, the same-column
#: two-bit pairs of the §6.3 analysis, or not at all (miss-rate / area /
#: overhead sweeps such as the Figure-6 preset).
ADVERSARIES = ("attacks", "same-column", "none")

#: Workload build scales the suite understands.
SCALES = ("tiny", "small", "default")


@dataclass(frozen=True, slots=True)
class MonitorConfig:
    """One point of the design space: a complete monitor configuration.

    The axes mirror :class:`repro.meister.monitor_spec.MonitorSpec` — the
    generator's view of the same design point — but stay pure data so
    sweep engines can hash, pickle, and serialize them freely.  The IHT
    geometry axis is the entry count: the paper's table is a fully
    associative CAM (one set, ``iht_size`` ways, 64+32-bit rows).
    """

    hash_name: str = "xor"
    iht_size: int = 8
    policy_name: str = "lru_half"
    miss_penalty: int = 100

    def __post_init__(self) -> None:
        if self.hash_name not in HASH_ALGORITHMS:
            raise ConfigurationError(
                f"unknown hash {self.hash_name!r}; available: "
                f"{', '.join(sorted(HASH_ALGORITHMS))}"
            )
        if self.policy_name not in POLICIES:
            raise ConfigurationError(
                f"unknown policy {self.policy_name!r}; available: "
                f"{', '.join(sorted(POLICIES))}"
            )
        if self.iht_size < 1:
            raise ConfigurationError(
                f"IHT needs at least one entry, got {self.iht_size}"
            )
        if self.miss_penalty < 0:
            raise ConfigurationError(
                f"negative miss penalty {self.miss_penalty}"
            )

    @property
    def config_id(self) -> str:
        """Stable human-readable point identifier."""
        return (
            f"{self.hash_name}/iht{self.iht_size}/"
            f"{self.policy_name}/p{self.miss_penalty}"
        )

    def to_json(self) -> dict:
        return asdict(self)

    @classmethod
    def from_json(cls, data: dict) -> "MonitorConfig":
        return cls(**data)


@dataclass(frozen=True, slots=True)
class ConfigSpace:
    """The declarative sweep specification: axes × workload set.

    ``points()`` enumerates the product in declared axis order (hash
    outermost, penalty innermost), which is the canonical point index
    every sweep, results file, and resume handshake agrees on.
    """

    hash_names: tuple[str, ...] = ("xor",)
    iht_sizes: tuple[int, ...] = (8, 16)
    policy_names: tuple[str, ...] = ("lru_half",)
    miss_penalties: tuple[int, ...] = (100,)
    workloads: tuple[str, ...] = ("sha", "dijkstra", "bitcount")
    scale: str = "tiny"
    #: Detection-objective source (see module docstring).
    adversary: str = "attacks"
    #: ``adversary="attacks"``: classes swept and scenarios per class.
    attack_classes: tuple[str, ...] = ("all",)
    per_class: int = 4
    #: ``adversary="same-column"``: XOR-blind two-bit pairs per workload.
    pair_count: int = 24

    def __post_init__(self) -> None:
        for axis, name in (
            (self.hash_names, "hash_names"),
            (self.iht_sizes, "iht_sizes"),
            (self.policy_names, "policy_names"),
            (self.miss_penalties, "miss_penalties"),
            (self.workloads, "workloads"),
        ):
            if not axis:
                raise ConfigurationError(f"empty axis {name}")
            if len(set(axis)) != len(axis):
                raise ConfigurationError(f"duplicate values on axis {name}")
        for workload in self.workloads:
            if workload not in WORKLOAD_NAMES:
                raise ConfigurationError(
                    f"unknown workload {workload!r}; available: "
                    f"{', '.join(WORKLOAD_NAMES)}"
                )
        if self.scale not in SCALES:
            raise ConfigurationError(
                f"unknown scale {self.scale!r}; choose from: "
                f"{', '.join(SCALES)}"
            )
        if self.adversary not in ADVERSARIES:
            raise ConfigurationError(
                f"unknown adversary {self.adversary!r}; choose from: "
                f"{', '.join(ADVERSARIES)}"
            )
        if self.per_class < 1:
            raise ConfigurationError("per_class must be >= 1")
        if self.pair_count < 1:
            raise ConfigurationError("pair_count must be >= 1")
        # Every point must validate; constructing one per axis value
        # surfaces bad hash/policy/size entries at space-build time.
        for hash_name in self.hash_names:
            for size in self.iht_sizes:
                for policy in self.policy_names:
                    for penalty in self.miss_penalties:
                        MonitorConfig(hash_name, size, policy, penalty)

    @property
    def size(self) -> int:
        """Number of configuration points (not point × workload pairs)."""
        return (
            len(self.hash_names)
            * len(self.iht_sizes)
            * len(self.policy_names)
            * len(self.miss_penalties)
        )

    def points(self) -> list[MonitorConfig]:
        """Every configuration, in canonical (index) order."""
        return [
            MonitorConfig(hash_name, size, policy, penalty)
            for hash_name in self.hash_names
            for size in self.iht_sizes
            for policy in self.policy_names
            for penalty in self.miss_penalties
        ]

    def to_json(self) -> dict:
        data = asdict(self)
        for key, value in data.items():
            if isinstance(value, tuple):
                data[key] = list(value)
        return data

    @classmethod
    def from_json(cls, data: dict) -> "ConfigSpace":
        fields = dict(data)
        for key in (
            "hash_names", "iht_sizes", "policy_names", "miss_penalties",
            "workloads", "attack_classes",
        ):
            if key in fields:
                fields[key] = tuple(fields[key])
        return cls(**fields)

    def fingerprint(self) -> str:
        """Stable digest used to refuse resuming onto a different space."""
        canonical = json.dumps(self.to_json(), sort_keys=True)
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]
