"""Named design spaces: the sweeps people actually run.

A preset is just a :class:`~repro.dse.space.ConfigSpace` value — the CLI
resolves ``--preset NAME`` here, and the paper-artifact harnesses in
:mod:`repro.eval` build their own spaces the same way (Figure 6 and the
ablations are one-axis slices of these grids).
"""

from __future__ import annotations

from repro.dse.space import ConfigSpace
from repro.errors import ConfigurationError

PRESETS: dict[str, ConfigSpace] = {
    # Tiny grid for CI smoke runs: 2 hashes x 3 sizes on two workloads.
    "smoke": ConfigSpace(
        hash_names=("xor", "crc32"),
        iht_sizes=(4, 8, 16),
        policy_names=("lru_half",),
        miss_penalties=(100,),
        workloads=("sha", "bitcount"),
        scale="tiny",
        per_class=2,
    ),
    # The paper's implied trade-off study: every hash the HASHFU ablation
    # considers x the Figure-6 size ladder x both LRU variants, scored
    # against the full adversarial corpus.  48 configurations.
    "paper": ConfigSpace(
        hash_names=("xor", "add", "rotxor", "crc32"),
        iht_sizes=(1, 4, 8, 16, 32, 64),
        policy_names=("lru_half", "lru_one"),
        miss_penalties=(100,),
        workloads=("sha", "dijkstra", "bitcount"),
        scale="tiny",
        per_class=4,
    ),
    # How sensitive is the ranking to the OS handler's cost model?
    "penalty": ConfigSpace(
        hash_names=("xor", "crc32"),
        iht_sizes=(4, 8, 16, 32),
        policy_names=("lru_half",),
        miss_penalties=(50, 100, 200),
        workloads=("sha", "dijkstra", "bitcount"),
        scale="tiny",
        per_class=4,
    ),
    # Replacement-policy shoot-out over the full policy registry.
    "policies": ConfigSpace(
        hash_names=("xor",),
        iht_sizes=(8, 16),
        policy_names=("fifo", "lru_half", "lru_one", "random"),
        miss_penalties=(100,),
        workloads=("sha", "dijkstra", "bitcount"),
        scale="tiny",
        adversary="none",
    ),
}


def get_preset(name: str) -> ConfigSpace:
    space = PRESETS.get(name)
    if space is None:
        raise ConfigurationError(
            f"unknown preset {name!r}; available: {', '.join(PRESETS)}"
        )
    return space
