"""Pareto layer: dominance frontiers over any objective subset.

A point *dominates* another when it is at least as good on every selected
objective and strictly better on at least one (``None`` values compare as
worst, so an undetected configuration can never dominate on a detection
axis).  The frontier is the set of non-dominated points — the
configurations a designer could rationally pick, each trading one
objective for another.

The ranked report orders frontier points by how much of the space they
dominate (a simple, deterministic strength measure), so the report's top
rows are the configurations that beat the largest share of alternatives
outright.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.dse.objectives import Objective, resolve_objectives
from repro.utils.tables import TextTable


def dominates(left, right, objectives: tuple[Objective, ...]) -> bool:
    """True when *left* dominates *right* on the selected objectives."""
    strictly_better = False
    for objective in objectives:
        left_key = objective.key(left.objectives.get(objective.name))
        right_key = objective.key(right.objectives.get(objective.name))
        if left_key > right_key:
            return False
        if left_key < right_key:
            strictly_better = True
    return strictly_better


def pareto_frontier(points, objectives) -> list:
    """The non-dominated subset of *points*, in input order.

    Ties (identical objective vectors) all stay on the frontier: they are
    interchangeable designs, and dropping one would make the result
    depend on enumeration order.
    """
    objectives = resolve_objectives(
        [obj.name if isinstance(obj, Objective) else obj for obj in objectives]
    )
    frontier = []
    for candidate in points:
        if not any(
            dominates(other, candidate, objectives)
            for other in points
            if other is not candidate
        ):
            frontier.append(candidate)
    return frontier


@dataclass(slots=True)
class FrontierReport:
    """Frontier + per-point dominance strength over one objective subset."""

    objectives: tuple[Objective, ...]
    points: list
    frontier: list = field(default_factory=list)
    #: point index -> how many swept points it dominates.
    dominated_counts: dict[int, int] = field(default_factory=dict)

    @classmethod
    def build(cls, points, objectives) -> "FrontierReport":
        objectives = resolve_objectives(
            [
                obj.name if isinstance(obj, Objective) else obj
                for obj in objectives
            ]
        )
        report = cls(objectives=objectives, points=list(points))
        report.frontier = pareto_frontier(report.points, objectives)
        for point in report.frontier:
            report.dominated_counts[point.index] = sum(
                1
                for other in report.points
                if other is not point and dominates(point, other, objectives)
            )
        return report

    def ranked(self) -> list:
        """Frontier points, strongest (most points dominated) first."""
        return sorted(
            self.frontier,
            key=lambda point: (-self.dominated_counts[point.index], point.index),
        )

    def table(self) -> TextTable:
        names = [objective.name for objective in self.objectives]
        table = TextTable(
            ["rank", "configuration"] + names + ["dominates"],
            title=(
                f"Pareto frontier — {len(self.frontier)}/"
                f"{len(self.points)} non-dominated over "
                f"({', '.join(names)})"
            ),
        )
        for rank, point in enumerate(self.ranked(), start=1):
            cells = [rank, point.config.config_id]
            for objective in self.objectives:
                value = point.objectives.get(objective.name)
                cells.append("-" if value is None else f"{value:.4g}")
            cells.append(self.dominated_counts[point.index])
            table.add_row(cells)
        return table

    def to_json(self) -> dict:
        return {
            "objectives": [objective.name for objective in self.objectives],
            "swept_points": len(self.points),
            "frontier": [
                {
                    "rank": rank,
                    "index": point.index,
                    "config": point.config.to_json(),
                    "objectives": {
                        objective.name: point.objectives.get(objective.name)
                        for objective in self.objectives
                    },
                    "dominates": self.dominated_counts[point.index],
                }
                for rank, point in enumerate(self.ranked(), start=1)
            ],
        }

    def render_json(self) -> str:
        return json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n"
