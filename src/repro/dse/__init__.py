"""Design-space exploration for monitor configurations.

The paper's evaluation samples a handful of hand-picked points from a
four-dimensional trade-off — hash function × IHT geometry × replacement
policy × OS penalty model, scored on detection coverage, detection
latency, miss rate, cycle overhead, and silicon area.  This package turns
that into a reusable subsystem on the fast golden substrate:

* :mod:`repro.dse.space` — declarative :class:`ConfigSpace` axes and the
  :class:`MonitorConfig` points they enumerate;
* :mod:`repro.dse.objectives` — the scored quantities and their senses;
* :mod:`repro.dse.engine` — the sharded, resumable :class:`DseSweep`
  evaluating every point via the Figure-6 replay kernel, the Table-1
  accounting, the attack-corpus campaign kernels, and the Table-2 cost
  model;
* :mod:`repro.dse.pareto` — dominance frontiers over any objective
  subset and the ranked :class:`FrontierReport`;
* :mod:`repro.dse.presets` — the named spaces the CLI exposes.

The Figure-6 and ablation harnesses of :mod:`repro.eval` are thin presets
over this engine; ``repro dse sweep|frontier|report`` is the CLI.
"""

from repro.dse.engine import (
    DsePoint,
    DseSweep,
    DseWorkspace,
    DseWorkspaceFactory,
    SweepResult,
    evaluate_point,
    load_points,
)
from repro.dse.objectives import DEFAULT_FRONTIER, OBJECTIVES, resolve_objectives
from repro.dse.pareto import FrontierReport, dominates, pareto_frontier
from repro.dse.presets import PRESETS, get_preset
from repro.dse.space import ConfigSpace, MonitorConfig

__all__ = [
    "ConfigSpace",
    "DEFAULT_FRONTIER",
    "DsePoint",
    "DseSweep",
    "DseWorkspace",
    "DseWorkspaceFactory",
    "FrontierReport",
    "MonitorConfig",
    "OBJECTIVES",
    "PRESETS",
    "SweepResult",
    "dominates",
    "evaluate_point",
    "get_preset",
    "load_points",
    "pareto_frontier",
    "resolve_objectives",
]
