"""Sharded, resumable design-space sweep on the golden substrate.

One :class:`DseSweep` evaluates every :class:`~repro.dse.space.MonitorConfig`
of a :class:`~repro.dse.space.ConfigSpace` and scores it on the objective
vocabulary of :mod:`repro.dse.objectives`:

* **miss rate** replays each workload's recorded block trace through the
  point's IHT geometry and policy — the Figure-6 kernel, no re-simulation;
* **cycle overhead** applies the point's penalty model to the replay's
  miss count over the baseline cycle count — the Table-1 accounting,
  which the tier-1 suite pins as *exact* for this design
  (``monitored == base + penalty × misses``);
* **detection rate and latency** run the space's adversary — the seeded
  :mod:`repro.attacks` corpus or the §6.3 same-column pairs — through the
  campaign kernels, forking each injection from a per-configuration
  golden checkpoint store by default (``backend="golden"``);
* **area and period** come from the Table-2 synthesis model.

Execution mirrors :class:`repro.exec.runner.CampaignRunner`: points shard
into fixed-size chunks, a :mod:`multiprocessing` pool evaluates shards on
per-worker :class:`DseWorkspace` caches (golden runs, FHTs, adversary
corpora, and penalty-independent measures are shared across the points
that agree on them), results stream to a JSONL file with ``shard-done``
commit markers, and ``resume=True`` replays committed shards instead of
re-running them.  Every point's evaluation is deterministic given
``(space, seed, index)``, so the point records — and any aggregate
ordered by point index, such as the frontier — are identical for any
worker count and either backend (shards *commit* in completion order,
so only the line order of a multi-worker file varies).
"""

from __future__ import annotations

import os
import statistics
from dataclasses import dataclass, field, replace
from typing import Iterable

from repro.area.synthesis import SynthesisReport, synthesize
from repro.attacks.corpus import AttackCorpus, resolve_classes
from repro.cic.replay import replay_trace
from repro.errors import ConfigurationError
from repro.eval.common import baseline_run, workload_fht
from repro.exec.golden import build_golden_store, run_one_golden
from repro.exec.records import dump_line, load_lines
from repro.exec.spec import BACKENDS, shard_seed
from repro.faults.campaign import (
    CampaignContext,
    CampaignReport,
    WarmProcess,
    run_one,
    same_column_pairs,
)
from repro.dse.objectives import DEFAULT_FRONTIER
from repro.dse.pareto import FrontierReport, pareto_frontier
from repro.dse.space import DSE_VERSION, ConfigSpace, MonitorConfig
from repro.osmodel.policies import get_policy
from repro.pipeline.trace import executed_addresses
from repro.utils.tables import TextTable
from repro.workloads.suite import build, workload_inputs

#: Configurations per shard: the unit of distribution *and* of resume.
DEFAULT_DSE_CHUNK = 4

#: A shard task: (shard_id, first index, configs, derived seed).
_ShardTask = tuple[int, int, list, int]


@dataclass(slots=True)
class DsePoint:
    """One evaluated configuration, positioned inside its sweep."""

    index: int
    shard: int
    config: MonitorConfig
    #: Objective name -> value (None = not measured / nothing detected).
    objectives: dict[str, float | None]
    #: Per-workload breakdown backing the aggregates.
    per_workload: dict[str, dict]

    def to_json(self) -> dict:
        return {
            "type": "point",
            "index": self.index,
            "shard": self.shard,
            "config": self.config.to_json(),
            "objectives": dict(self.objectives),
            "per_workload": self.per_workload,
        }

    @classmethod
    def from_json(cls, data: dict) -> "DsePoint":
        return cls(
            index=data["index"],
            shard=data["shard"],
            config=MonitorConfig.from_json(data["config"]),
            objectives=dict(data["objectives"]),
            per_workload=data["per_workload"],
        )


# ----------------------------------------------------------------------
# Per-worker evaluation caches
# ----------------------------------------------------------------------


class DseWorkspace:
    """Everything one worker keeps warm across the points it evaluates.

    Golden runs, FHTs, adversary corpora, and the penalty-independent
    measures — replay statistics and detection reports keyed by
    ``(workload, hash, iht, policy)`` — are shared across every point
    that agrees on them, so a penalty-model axis multiplies the space
    for free and repeated hash/policy combinations are measured once.
    """

    def __init__(self, space: ConfigSpace, seed: int, backend: str = "golden"):
        if backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown backend {backend!r}; "
                f"choose from: {', '.join(BACKENDS)}"
            )
        self.space = space
        self.seed = seed
        self.backend = backend
        self._contexts: dict[str, CampaignContext] = {}
        self._adversaries: dict[str, list] = {}
        self._measures: dict[tuple, dict] = {}
        self._synthesis: dict[tuple[int, str], SynthesisReport] = {}
        self._baseline_synthesis = synthesize(None)

    # -- shared inputs ---------------------------------------------------

    def base_context(self, workload: str) -> CampaignContext:
        """Monitor-agnostic campaign context built from the cached golden
        run (the same record the Figure-6 replay consumes)."""
        context = self._contexts.get(workload)
        if context is None:
            golden = baseline_run(workload, self.space.scale)
            inputs = workload_inputs(workload, self.space.scale)
            context = CampaignContext(
                program=build(workload, self.space.scale),
                inputs=list(inputs) if inputs else None,
                golden_console=golden.console,
                golden_exit=golden.exit_code,
                executed_addresses=executed_addresses(golden.block_trace),
                instruction_budget=max(10_000, golden.instructions * 20),
                golden_instructions=golden.instructions,
            )
            self._contexts[workload] = context
        return context

    def adversary(self, workload: str) -> list:
        """The seeded injection list scored for detection objectives."""
        cached = self._adversaries.get(workload)
        if cached is not None:
            return cached
        space = self.space
        if space.adversary == "attacks":
            corpus = AttackCorpus.from_context(self.base_context(workload))
            injections = corpus.build(
                resolve_classes(space.attack_classes),
                per_class=space.per_class,
                seed=self.seed,
            )
        elif space.adversary == "same-column":
            golden = baseline_run(workload, space.scale)
            injections = same_column_pairs(
                golden.block_trace, space.pair_count, self.seed
            )
        else:
            injections = []
        self._adversaries[workload] = injections
        return injections

    def synthesis(self, config: MonitorConfig) -> SynthesisReport:
        key = (config.iht_size, config.hash_name)
        report = self._synthesis.get(key)
        if report is None:
            report = synthesize(config.iht_size, config.hash_name)
            self._synthesis[key] = report
        return report

    @property
    def baseline_synthesis(self) -> SynthesisReport:
        return self._baseline_synthesis

    # -- per-point measurement -------------------------------------------

    def measure(self, workload: str, config: MonitorConfig) -> dict:
        """Penalty-independent measures of one (workload, config) pair."""
        key = (workload, config.hash_name, config.iht_size, config.policy_name)
        cached = self._measures.get(key)
        if cached is not None:
            return cached
        space = self.space
        golden = baseline_run(workload, space.scale)
        fht = workload_fht(workload, space.scale, config.hash_name)
        stats = replay_trace(
            golden.block_trace, fht, config.iht_size,
            get_policy(config.policy_name),
        )
        measures = {
            "lookups": stats.lookups,
            "misses": stats.misses,
            "miss_rate": stats.miss_rate,
            "base_cycles": golden.cycles,
        }
        injections = self.adversary(workload)
        if injections:
            context = replace(
                self.base_context(workload),
                hash_name=config.hash_name,
                iht_size=config.iht_size,
                policy_name=config.policy_name,
            )
            warm = WarmProcess.from_context(context)
            if self.backend == "golden":
                store = build_golden_store(context, warm)
                results = [
                    run_one_golden(store, injection) for injection in injections
                ]
            else:
                results = [
                    run_one(context, injection, warm=warm)
                    for injection in injections
                ]
            report = CampaignReport(results=results)
            measures.update(
                injections=report.total,
                detected=report.detected,
                detection_rate=report.detection_rate,
                detection_latencies=report.detection_latencies(),
            )
        self._measures[key] = measures
        return measures


def evaluate_point(
    workspace: DseWorkspace, index: int, shard: int, config: MonitorConfig
) -> DsePoint:
    """Score one configuration over the space's workload set."""
    per_workload: dict[str, dict] = {}
    miss_rates: list[float] = []
    overheads: list[float] = []
    injections = 0
    detected = 0
    latencies: list[int] = []
    for workload in workspace.space.workloads:
        measures = workspace.measure(workload, config)
        overhead = (
            measures["misses"] * config.miss_penalty / measures["base_cycles"]
        )
        entry = {
            "lookups": measures["lookups"],
            "misses": measures["misses"],
            "miss_rate": measures["miss_rate"],
            "base_cycles": measures["base_cycles"],
            "cycle_overhead": overhead,
        }
        miss_rates.append(measures["miss_rate"])
        overheads.append(overhead)
        if "injections" in measures:
            entry["injections"] = measures["injections"]
            entry["detected"] = measures["detected"]
            entry["detection_rate"] = measures["detection_rate"]
            injections += measures["injections"]
            detected += measures["detected"]
            latencies.extend(measures["detection_latencies"])
        per_workload[workload] = entry
    synthesis = workspace.synthesis(config)
    objectives: dict[str, float | None] = {
        "miss_rate": statistics.fmean(miss_rates),
        "cycle_overhead": statistics.fmean(overheads),
        "detection_rate": detected / injections if injections else None,
        "detection_latency": (
            statistics.fmean(latencies) if latencies else None
        ),
        "area_overhead": synthesis.area_overhead(
            workspace.baseline_synthesis
        ),
        "min_period": synthesis.min_period,
    }
    return DsePoint(
        index=index,
        shard=shard,
        config=config,
        objectives=objectives,
        per_workload=per_workload,
    )


# ----------------------------------------------------------------------
# Sweep results
# ----------------------------------------------------------------------


@dataclass(slots=True)
class SweepResult:
    """Outcome of one :meth:`DseSweep.run` call."""

    space: ConfigSpace
    seed: int
    backend: str
    total: int
    points: list[DsePoint] = field(default_factory=list)
    out: str | None = None

    @property
    def complete(self) -> bool:
        return len(self.points) == self.total

    def ordered(self) -> list[DsePoint]:
        """Points by canonical index — identical for any worker count."""
        return sorted(self.points, key=lambda point: point.index)

    def frontier(self, objectives=DEFAULT_FRONTIER) -> list[DsePoint]:
        return pareto_frontier(self.ordered(), objectives)

    def report(self, objectives=DEFAULT_FRONTIER) -> FrontierReport:
        return FrontierReport.build(self.ordered(), objectives)

    def table(self) -> TextTable:
        table = TextTable(
            [
                "idx", "configuration", "miss %", "ovhd %", "det %",
                "lat μ", "area ovhd %", "period ns",
            ],
            title=(
                f"DSE sweep — {len(self.points)}/{self.total} points, "
                f"{len(self.space.workloads)} workloads "
                f"({', '.join(self.space.workloads)}) @ {self.space.scale}, "
                f"adversary={self.space.adversary}, seed {self.seed}, "
                f"backend {self.backend}"
            ),
        )
        for point in self.ordered():
            values = point.objectives

            def cell(name, scale=1.0, fmt="{:.2f}"):
                value = values.get(name)
                return "-" if value is None else fmt.format(scale * value)

            table.add_row(
                [
                    point.index,
                    point.config.config_id,
                    cell("miss_rate", 100.0),
                    cell("cycle_overhead", 100.0),
                    cell("detection_rate", 100.0, "{:.1f}"),
                    cell("detection_latency"),
                    cell("area_overhead"),
                    cell("min_period"),
                ]
            )
        return table

    def summary(self) -> str:
        frontier = self.frontier()
        return (
            f"{len(self.points)}/{self.total} configurations evaluated on "
            f"{len(self.space.workloads)} workloads, "
            f"{len(frontier)} on the default frontier "
            f"({', '.join(DEFAULT_FRONTIER)})"
        )


# ----------------------------------------------------------------------
# The sharded, resumable runner
# ----------------------------------------------------------------------


def _run_shard(
    workspace: DseWorkspace, task: _ShardTask
) -> tuple[int, list[DsePoint]]:
    shard_id, start, configs, _seed = task
    return shard_id, [
        evaluate_point(workspace, start + offset, shard_id, config)
        for offset, config in enumerate(configs)
    ]


_WORKER_WORKSPACE: DseWorkspace | None = None


def _pool_init(space: ConfigSpace, seed: int, backend: str) -> None:
    global _WORKER_WORKSPACE
    _WORKER_WORKSPACE = DseWorkspace(space, seed, backend)


def _pool_shard(task: _ShardTask) -> tuple[int, list[DsePoint]]:
    assert _WORKER_WORKSPACE is not None, "pool worker used before _pool_init"
    return _run_shard(_WORKER_WORKSPACE, task)


class DseSweep:
    """Shard configurations over a pool; stream points; resume cleanly."""

    def __init__(
        self,
        space: ConfigSpace,
        seed: int = 0,
        workers: int = 1,
        chunk_size: int = DEFAULT_DSE_CHUNK,
        backend: str = "golden",
    ):
        if workers < 1:
            raise ConfigurationError(f"workers must be >= 1, got {workers}")
        if chunk_size < 1:
            raise ConfigurationError(
                f"chunk_size must be >= 1, got {chunk_size}"
            )
        if backend not in BACKENDS:
            raise ConfigurationError(
                f"unknown backend {backend!r}; "
                f"choose from: {', '.join(BACKENDS)}"
            )
        self.space = space
        self.seed = seed
        self.workers = workers
        self.chunk_size = chunk_size
        self.backend = backend
        self._workspace: DseWorkspace | None = None

    @property
    def workspace(self) -> DseWorkspace:
        """Parent-side workspace (lazy), for the serial execution path."""
        if self._workspace is None:
            self._workspace = DseWorkspace(self.space, self.seed, self.backend)
        return self._workspace

    # ------------------------------------------------------------------

    def _shards(self, configs: list[MonitorConfig]) -> list[_ShardTask]:
        return [
            (
                shard_id,
                start,
                configs[start : start + self.chunk_size],
                shard_seed(self.seed, shard_id),
            )
            for shard_id, start in enumerate(
                range(0, len(configs), self.chunk_size)
            )
        ]

    def _header(self, total: int) -> dict:
        return {
            "type": "header",
            "version": DSE_VERSION,
            "space": self.space.to_json(),
            "fingerprint": self.space.fingerprint(),
            "seed": self.seed,
            "total": total,
            "chunk_size": self.chunk_size,
            # Informational: both backends are differentially pinned to
            # identical results, so resume does not validate it.
            "backend": self.backend,
        }

    def _load_resume(
        self, out: str, total: int
    ) -> tuple[set[int], list[DsePoint]] | None:
        """Committed shards and their points from a previous run's file."""
        entries = load_lines(out)
        if not entries:
            return None
        if entries[0].get("type") != "header":
            raise ConfigurationError(f"{out}: not a DSE sweep file")
        header = entries[0]
        expected = self._header(total)
        for key in ("fingerprint", "seed", "total", "chunk_size", "version"):
            if header.get(key) != expected[key]:
                raise ConfigurationError(
                    f"{out}: cannot resume — {key} is {header.get(key)!r}, "
                    f"this sweep has {expected[key]!r}"
                )
        marked = {
            entry["shard"]
            for entry in entries
            if entry.get("type") == "shard-done"
        }
        by_shard: dict[int, dict[int, DsePoint]] = {}
        for entry in entries:
            if entry.get("type") == "point" and entry["shard"] in marked:
                point = DsePoint.from_json(entry)
                by_shard.setdefault(point.shard, {})[point.index] = point
        done: set[int] = set()
        points: list[DsePoint] = []
        for shard_id in marked:
            start = shard_id * self.chunk_size
            expected_indexes = set(
                range(start, min(start + self.chunk_size, total))
            )
            found = by_shard.get(shard_id, {})
            if set(found) == expected_indexes:
                done.add(shard_id)
                points.extend(found.values())
        return done, points

    # ------------------------------------------------------------------

    def run(
        self,
        out: str | os.PathLike | None = None,
        resume: bool = False,
        stop_after_shards: int | None = None,
    ) -> SweepResult:
        """Evaluate the space; return the (possibly partial) result.

        ``stop_after_shards`` executes at most that many new shards and
        returns a partial result — the engine's test hook for simulating
        interruption, mirroring the campaign runner.
        """
        configs = self.space.points()
        total = len(configs)
        out_path = os.fspath(out) if out is not None else None
        if resume and out_path is None:
            raise ConfigurationError("resume=True requires out=")

        done_shards: set[int] = set()
        points: list[DsePoint] = []
        resuming = resume and out_path is not None and os.path.exists(out_path)
        if resuming:
            loaded = self._load_resume(out_path, total)
            if loaded is None:
                resuming = False  # empty file: died before the header
            else:
                done_shards, points = loaded

        pending = [
            task for task in self._shards(configs) if task[0] not in done_shards
        ]
        if stop_after_shards is not None:
            pending = pending[:stop_after_shards]

        handle = None
        if out_path is not None:
            handle = open(out_path, "a" if resuming else "w", encoding="utf-8")
            if not resuming:
                handle.write(dump_line(self._header(total)))
                handle.flush()

        def commit(shard_id: int, shard_points: list[DsePoint]) -> None:
            points.extend(shard_points)
            if handle is not None:
                for point in shard_points:
                    handle.write(dump_line(point.to_json()))
                handle.write(
                    dump_line(
                        {
                            "type": "shard-done",
                            "shard": shard_id,
                            "seed": shard_seed(self.seed, shard_id),
                        }
                    )
                )
                handle.flush()

        try:
            if self.workers == 1 or len(pending) <= 1:
                workspace = self.workspace
                for task in pending:
                    commit(*_run_shard(workspace, task))
            else:
                self._run_pool(pending, commit)
        finally:
            if handle is not None:
                handle.close()

        return SweepResult(
            space=self.space,
            seed=self.seed,
            backend=self.backend,
            total=total,
            points=points,
            out=out_path,
        )

    def _run_pool(self, pending: list[_ShardTask], commit) -> None:
        import multiprocessing

        method = (
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        context = multiprocessing.get_context(method)
        workers = min(self.workers, len(pending))
        with context.Pool(
            processes=workers,
            initializer=_pool_init,
            initargs=(self.space, self.seed, self.backend),
        ) as pool:
            for shard_id, shard_points in pool.imap_unordered(
                _pool_shard, pending
            ):
                commit(shard_id, shard_points)


# ----------------------------------------------------------------------
# Sweep-file loading (the frontier/report CLI entry points)
# ----------------------------------------------------------------------


def load_points(path) -> tuple[dict, list[DsePoint]]:
    """Header and points of a sweep file, deduplicated by index.

    Accepts partial files: points from uncommitted shards count too (a
    frontier over whatever finished is still a valid frontier), and a
    point re-run after an interrupted shard collapses to its last copy.
    """
    entries = load_lines(path)
    if not entries or entries[0].get("type") != "header":
        raise ConfigurationError(f"{path}: not a DSE sweep file")
    by_index: dict[int, DsePoint] = {}
    for entry in entries:
        if entry.get("type") == "point":
            point = DsePoint.from_json(entry)
            by_index[point.index] = point
    return entries[0], [by_index[index] for index in sorted(by_index)]
