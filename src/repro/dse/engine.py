"""Sharded, resumable design-space sweep — a thin harness client.

One :class:`DseSweep` evaluates every :class:`~repro.dse.space.MonitorConfig`
of a :class:`~repro.dse.space.ConfigSpace` and scores it on the objective
vocabulary of :mod:`repro.dse.objectives`:

* **miss rate** replays each workload's recorded block trace through the
  point's IHT geometry and policy — the Figure-6 kernel, no re-simulation;
* **cycle overhead** applies the point's penalty model to the replay's
  miss count over the baseline cycle count — the Table-1 accounting,
  which the tier-1 suite pins as *exact* for this design
  (``monitored == base + penalty × misses``);
* **measured cycle overhead** (``backend="pipeline-golden"`` only) runs
  the monitored program on the cycle-level pipeline with the point's
  miss penalty configured in the OS handler and *measures* the overhead
  — the empirical check on the accounting, per penalty model;
* **detection rate and latency** run the space's adversary — the seeded
  :mod:`repro.attacks` corpus or the §6.3 same-column pairs — through the
  campaign kernels of the selected :class:`~repro.exec.backends.Backend`
  (default ``golden``: fork each injection from a per-configuration
  checkpoint store);
* **area and period** come from the Table-2 synthesis model.

Execution runs on the generic harness (:mod:`repro.exec.harness`):
:class:`DseWorkspaceFactory` describes how to build one
:class:`DseWorkspace` per worker and evaluate one configuration;
:class:`~repro.exec.harness.HarnessRunner` owns all sharding, JSONL
streaming, ``shard-done`` commit markers, kill/resume, and worker-count
invariance — the campaign engine and this sweep share one
implementation, so the two resume protocols cannot diverge.  Sweep files
written before the harness redesign load and resume byte-identically.

Every point's evaluation is deterministic given ``(space, seed, index)``,
so the point records — and any aggregate ordered by point index, such as
the frontier — are identical for any worker count and either functional
backend (shards *commit* in completion order, so only the line order of
a multi-worker file varies).  With ``workers > 1`` the parent records
the per-workload golden runs and adversary corpora once and ships them
to the pool through shared memory (:mod:`repro.exec.sharing`).
"""

from __future__ import annotations

import os
import statistics
from dataclasses import dataclass, field, replace

from repro.area.synthesis import SynthesisReport, synthesize
from repro.attacks.corpus import AttackCorpus, resolve_classes
from repro.cic.replay import replay_trace
from repro.errors import ConfigurationError
from repro.eval.common import baseline_run, workload_fht
from repro.exec.backends import Backend, get_backend
from repro.exec.harness import (
    HarnessRunner,
    Job,
    MeasureCache,
    WorkspaceFactory,
    validate_plan,
)
from repro.exec.records import load_lines
from repro.faults.campaign import (
    CampaignContext,
    CampaignReport,
    WarmProcess,
    same_column_pairs,
)
from repro.dse.objectives import DEFAULT_FRONTIER
from repro.dse.pareto import FrontierReport, pareto_frontier
from repro.dse.space import DSE_VERSION, ConfigSpace, MonitorConfig
from repro.osmodel.policies import get_policy
from repro.pipeline.trace import executed_addresses
from repro.utils.tables import TextTable
from repro.workloads.suite import build, workload_inputs

#: Configurations per shard: the unit of distribution *and* of resume.
DEFAULT_DSE_CHUNK = 4


@dataclass(slots=True)
class DsePoint:
    """One evaluated configuration, positioned inside its sweep."""

    index: int
    shard: int
    config: MonitorConfig
    #: Objective name -> value (None = not measured / nothing detected).
    objectives: dict[str, float | None]
    #: Per-workload breakdown backing the aggregates.
    per_workload: dict[str, dict]

    def to_json(self) -> dict:
        return {
            "type": "point",
            "index": self.index,
            "shard": self.shard,
            "config": self.config.to_json(),
            "objectives": dict(self.objectives),
            "per_workload": self.per_workload,
        }

    @classmethod
    def from_json(cls, data: dict) -> "DsePoint":
        return cls(
            index=data["index"],
            shard=data["shard"],
            config=MonitorConfig.from_json(data["config"]),
            objectives=dict(data["objectives"]),
            per_workload=data["per_workload"],
        )


# ----------------------------------------------------------------------
# Per-worker evaluation caches
# ----------------------------------------------------------------------


class DseWorkspace:
    """Everything one worker keeps warm across the points it evaluates.

    Golden runs, FHTs, adversary corpora, and the penalty-independent
    measures — replay statistics and detection reports keyed by
    ``(workload, hash, iht, policy)`` — are shared across every point
    that agrees on them through the harness's
    :class:`~repro.exec.harness.MeasureCache`, so a penalty-model axis
    multiplies the space for free and repeated hash/policy combinations
    are measured once.  (The cycle-measuring ``pipeline-golden`` backend
    adds the penalty to the key: its monitored cycle counts *depend* on
    the penalty model — that is the point of measuring.)
    """

    def __init__(
        self,
        space: ConfigSpace,
        seed: int,
        backend: str = "golden",
        shared: dict | None = None,
    ):
        self.space = space
        self.seed = seed
        self.backend: Backend = get_backend(backend)
        shared = shared or {}
        self._contexts = MeasureCache(shared.get("contexts"))
        self._adversaries = MeasureCache(shared.get("adversaries"))
        self._measures = MeasureCache()
        self._synthesis = MeasureCache()
        self._baseline_synthesis = synthesize(None)

    # -- shared inputs ---------------------------------------------------

    def base_context(self, workload: str) -> CampaignContext:
        """Monitor-agnostic campaign context built from the cached golden
        run (the same record the Figure-6 replay consumes)."""
        return self._contexts.get(
            workload, lambda: self._build_context(workload)
        )

    def _build_context(self, workload: str) -> CampaignContext:
        golden = baseline_run(workload, self.space.scale)
        inputs = workload_inputs(workload, self.space.scale)
        return CampaignContext(
            program=build(workload, self.space.scale),
            inputs=list(inputs) if inputs else None,
            golden_console=golden.console,
            golden_exit=golden.exit_code,
            executed_addresses=executed_addresses(golden.block_trace),
            executed_blocks=tuple(sorted(golden.block_trace.unique_blocks())),
            instruction_budget=max(10_000, golden.instructions * 20),
            golden_instructions=golden.instructions,
        )

    def adversary(self, workload: str) -> list:
        """The seeded injection list scored for detection objectives."""
        return self._adversaries.get(
            workload, lambda: self._build_adversary(workload)
        )

    def _build_adversary(self, workload: str) -> list:
        space = self.space
        if space.adversary == "attacks":
            corpus = AttackCorpus.from_context(self.base_context(workload))
            return corpus.build(
                resolve_classes(space.attack_classes),
                per_class=space.per_class,
                seed=self.seed,
            )
        if space.adversary == "same-column":
            golden = baseline_run(workload, space.scale)
            return same_column_pairs(
                golden.block_trace, space.pair_count, self.seed
            )
        return []

    def synthesis(self, config: MonitorConfig) -> SynthesisReport:
        key = (config.iht_size, config.hash_name)
        return self._synthesis.get(
            key, lambda: synthesize(config.iht_size, config.hash_name)
        )

    @property
    def baseline_synthesis(self) -> SynthesisReport:
        return self._baseline_synthesis

    def shared_payload(self) -> dict:
        """The once-recorded inputs worth shipping to pool workers:
        per-workload golden contexts and adversary corpora (measures stay
        per-worker — they are what the sweep is about to compute)."""
        for workload in self.space.workloads:
            self.base_context(workload)
            self.adversary(workload)
        return {
            "contexts": self._contexts.snapshot(),
            "adversaries": self._adversaries.snapshot(),
        }

    # -- per-point measurement -------------------------------------------

    def measure(self, workload: str, config: MonitorConfig) -> dict:
        """Measures of one (workload, config) pair, cached by the subset
        of the configuration they actually depend on."""
        key = (workload, config.hash_name, config.iht_size, config.policy_name)
        if self.backend.measures_cycles:
            key += (config.miss_penalty,)
        return self._measures.get(key, lambda: self._measure(workload, config))

    def _measure(self, workload: str, config: MonitorConfig) -> dict:
        space = self.space
        golden = baseline_run(workload, space.scale)
        fht = workload_fht(workload, space.scale, config.hash_name)
        stats = replay_trace(
            golden.block_trace, fht, config.iht_size,
            get_policy(config.policy_name),
        )
        measures = {
            "lookups": stats.lookups,
            "misses": stats.misses,
            "miss_rate": stats.miss_rate,
            "base_cycles": golden.cycles,
        }
        injections = self.adversary(workload)
        if injections or self.backend.measures_cycles:
            context = replace(
                self.base_context(workload),
                hash_name=config.hash_name,
                iht_size=config.iht_size,
                policy_name=config.policy_name,
            )
            if self.backend.measures_cycles:
                context = replace(context, miss_penalty=config.miss_penalty)
            warm = WarmProcess.from_context(context)
            state = self.backend.prepare(context, warm)
            monitored_cycles = getattr(state, "golden_cycles", None)
            if monitored_cycles is not None:
                # The pipeline-golden recording *is* the measurement: the
                # monitored pristine run's cycle count under this penalty.
                measures["monitored_cycles"] = monitored_cycles
            if injections:
                # Batched kernel: one pass amortizes prefix replay and
                # simulator construction over the whole adversary corpus.
                report = CampaignReport(
                    results=self.backend.run_batch(state, injections)
                )
                measures.update(
                    injections=report.total,
                    detected=report.detected,
                    detection_rate=report.detection_rate,
                    detection_latencies=report.detection_latencies(),
                )
        return measures


def evaluate_point(
    workspace: DseWorkspace, index: int, shard: int, config: MonitorConfig
) -> DsePoint:
    """Score one configuration over the space's workload set."""
    per_workload: dict[str, dict] = {}
    miss_rates: list[float] = []
    overheads: list[float] = []
    measured_overheads: list[float] = []
    injections = 0
    detected = 0
    latencies: list[int] = []
    for workload in workspace.space.workloads:
        measures = workspace.measure(workload, config)
        overhead = (
            measures["misses"] * config.miss_penalty / measures["base_cycles"]
        )
        entry = {
            "lookups": measures["lookups"],
            "misses": measures["misses"],
            "miss_rate": measures["miss_rate"],
            "base_cycles": measures["base_cycles"],
            "cycle_overhead": overhead,
        }
        miss_rates.append(measures["miss_rate"])
        overheads.append(overhead)
        if "monitored_cycles" in measures:
            measured = (
                measures["monitored_cycles"] - measures["base_cycles"]
            ) / measures["base_cycles"]
            entry["monitored_cycles"] = measures["monitored_cycles"]
            entry["measured_cycle_overhead"] = measured
            measured_overheads.append(measured)
        if "injections" in measures:
            entry["injections"] = measures["injections"]
            entry["detected"] = measures["detected"]
            entry["detection_rate"] = measures["detection_rate"]
            injections += measures["injections"]
            detected += measures["detected"]
            latencies.extend(measures["detection_latencies"])
        per_workload[workload] = entry
    synthesis = workspace.synthesis(config)
    objectives: dict[str, float | None] = {
        "miss_rate": statistics.fmean(miss_rates),
        "cycle_overhead": statistics.fmean(overheads),
        "detection_rate": detected / injections if injections else None,
        "detection_latency": (
            statistics.fmean(latencies) if latencies else None
        ),
        "area_overhead": synthesis.area_overhead(
            workspace.baseline_synthesis
        ),
        "min_period": synthesis.min_period,
    }
    if measured_overheads:
        # Only present on cycle-measuring sweeps, so point payloads from
        # the functional backends stay byte-identical to pre-redesign
        # files (the artifact-compat fixtures pin this).
        objectives["measured_cycle_overhead"] = statistics.fmean(
            measured_overheads
        )
    return DsePoint(
        index=index,
        shard=shard,
        config=config,
        objectives=objectives,
        per_workload=per_workload,
    )


@dataclass(slots=True)
class DseWorkspaceFactory(WorkspaceFactory):
    """The DSE client: space-derived workspaces, DsePoint wire format."""

    space: ConfigSpace
    seed: int
    backend: str

    record_type = "point"
    kind = "DSE sweep"

    def build(self, shared=None) -> DseWorkspace:
        return DseWorkspace(self.space, self.seed, self.backend, shared=shared)

    def shared_payload(self, workspace: DseWorkspace) -> dict:
        return workspace.shared_payload()

    def run_item(
        self, workspace: DseWorkspace, index: int, shard: int, item
    ) -> DsePoint:
        return evaluate_point(workspace, index, shard, item)

    def encode(self, record: DsePoint) -> dict:
        return record.to_json()

    def decode(self, data: dict) -> DsePoint:
        return DsePoint.from_json(data)

    def describe(self) -> dict:
        """Sweep provenance for the run's metrics manifest."""
        return {
            "backend": self.backend,
            "workloads": list(self.space.workloads),
            "scale": self.space.scale,
            "adversary": self.space.adversary,
        }

    def check_resume_header(self, header: dict, out: str) -> None:
        """Refuse mixing cycle-measuring and functional point records.

        The functional backends are differentially pinned to identical
        points, so ``golden`` and ``full`` sweeps resume each other's
        files freely — but a cycle-measuring backend writes points with
        ``measured_cycle_overhead``/``monitored_cycles`` fields the
        functional ones lack.  Resuming across that divide would yield a
        file where only some points carry the measured objective, so it
        is refused.
        """
        recorded = header.get("backend")
        if recorded is None:
            return
        try:
            recorded_measures = get_backend(recorded).measures_cycles
        except ConfigurationError:
            raise ConfigurationError(
                f"{out}: cannot resume — written by unknown backend "
                f"{recorded!r}"
            ) from None
        mine = get_backend(self.backend).measures_cycles
        if recorded_measures != mine:
            raise ConfigurationError(
                f"{out}: cannot resume — written by backend {recorded!r} "
                f"(measures cycles: {recorded_measures}), this sweep's "
                f"{self.backend!r} (measures cycles: {mine}) would mix "
                "point record shapes"
            )


# ----------------------------------------------------------------------
# Sweep results
# ----------------------------------------------------------------------


@dataclass(slots=True)
class SweepResult:
    """Outcome of one :meth:`DseSweep.run` call."""

    space: ConfigSpace
    seed: int
    backend: str
    total: int
    points: list[DsePoint] = field(default_factory=list)
    out: str | None = None

    @property
    def complete(self) -> bool:
        return len(self.points) == self.total

    def ordered(self) -> list[DsePoint]:
        """Points by canonical index — identical for any worker count."""
        return sorted(self.points, key=lambda point: point.index)

    def frontier(self, objectives=DEFAULT_FRONTIER) -> list[DsePoint]:
        return pareto_frontier(self.ordered(), objectives)

    def report(self, objectives=DEFAULT_FRONTIER) -> FrontierReport:
        return FrontierReport.build(self.ordered(), objectives)

    def table(self) -> TextTable:
        table = TextTable(
            [
                "idx", "configuration", "miss %", "ovhd %", "det %",
                "lat μ", "area ovhd %", "period ns",
            ],
            title=(
                f"DSE sweep — {len(self.points)}/{self.total} points, "
                f"{len(self.space.workloads)} workloads "
                f"({', '.join(self.space.workloads)}) @ {self.space.scale}, "
                f"adversary={self.space.adversary}, seed {self.seed}, "
                f"backend {self.backend}"
            ),
        )
        for point in self.ordered():
            values = point.objectives

            def cell(name, scale=1.0, fmt="{:.2f}"):
                value = values.get(name)
                return "-" if value is None else fmt.format(scale * value)

            table.add_row(
                [
                    point.index,
                    point.config.config_id,
                    cell("miss_rate", 100.0),
                    cell("cycle_overhead", 100.0),
                    cell("detection_rate", 100.0, "{:.1f}"),
                    cell("detection_latency"),
                    cell("area_overhead"),
                    cell("min_period"),
                ]
            )
        return table

    def summary(self) -> str:
        frontier = self.frontier()
        return (
            f"{len(self.points)}/{self.total} configurations evaluated on "
            f"{len(self.space.workloads)} workloads, "
            f"{len(frontier)} on the default frontier "
            f"({', '.join(DEFAULT_FRONTIER)})"
        )


# ----------------------------------------------------------------------
# The sweep: a thin client of the execution harness
# ----------------------------------------------------------------------


class DseSweep:
    """Evaluate a configuration space on the execution harness."""

    def __init__(
        self,
        space: ConfigSpace,
        seed: int = 0,
        workers: int = 1,
        chunk_size: int = DEFAULT_DSE_CHUNK,
        backend: str = "golden",
        share: bool = True,
        persistent: bool = True,
    ):
        validate_plan(workers=workers, chunk_size=chunk_size)
        get_backend(backend)  # raises on unknown names
        self.space = space
        self.seed = seed
        self.workers = workers
        self.chunk_size = chunk_size
        self.backend = backend
        self.share = share
        # Execution knob, never recorded in artifacts: reuse warm worker
        # pools across runs and sweeps (:mod:`repro.exec.pool`).
        self.persistent = persistent
        self._factory = DseWorkspaceFactory(space, seed, backend)
        self._workspace: DseWorkspace | None = None

    @property
    def workspace(self) -> DseWorkspace:
        """Parent-side workspace (lazy): the serial execution path and
        the source of the pool's shared payload."""
        if self._workspace is None:
            self._workspace = self._factory.build()
        return self._workspace

    def _job(self) -> Job:
        return Job(
            factory=self._factory,
            items=self.space.points(),
            seed=self.seed,
            version=DSE_VERSION,
            payload={
                "space": self.space.to_json(),
                "fingerprint": self.space.fingerprint(),
                # The functional backends are differentially pinned to
                # identical points, so resume accepts golden <-> full
                # freely; crossing the cycle-measuring divide is refused
                # (see DseWorkspaceFactory.check_resume_header).
                "backend": self.backend,
            },
            chunk_size=self.chunk_size,
        )

    def run(
        self,
        out: str | os.PathLike | None = None,
        resume: bool = False,
        stop_after_shards: int | None = None,
    ) -> SweepResult:
        """Evaluate the space; return the (possibly partial) result.

        ``stop_after_shards`` executes at most that many new shards and
        returns a partial result — the test/CLI hook for simulating
        interruption, shared with the campaign client.
        """
        job = self._job()
        harness = HarnessRunner(
            job,
            workers=self.workers,
            workspace_supplier=lambda: self.workspace,
            share=self.share,
            persistent=self.persistent,
        )
        result = harness.run(
            out=out, resume=resume, stop_after_shards=stop_after_shards
        )
        return SweepResult(
            space=self.space,
            seed=self.seed,
            backend=self.backend,
            total=result.total,
            points=result.records,
            out=result.out,
        )


# ----------------------------------------------------------------------
# Sweep-file loading (the frontier/report CLI entry points)
# ----------------------------------------------------------------------


def load_points(path) -> tuple[dict, list[DsePoint]]:
    """Header and points of a sweep file, deduplicated by index.

    Accepts partial files: points from uncommitted shards count too (a
    frontier over whatever finished is still a valid frontier), and a
    point re-run after an interrupted shard collapses to its last copy.
    """
    entries = load_lines(path)
    if not entries or entries[0].get("type") != "header":
        raise ConfigurationError(f"{path}: not a DSE sweep file")
    by_index: dict[int, DsePoint] = {}
    for entry in entries:
        if entry.get("type") == "point":
            point = DsePoint.from_json(entry)
            by_index[point.index] = point
    return entries[0], [by_index[index] for index in sorted(by_index)]
