"""The objective vocabulary of the design-space explorer.

Every swept point is scored on the quantities the paper trades off
(Figure 6, Tables 1–2, §6.3), each produced by the subsystem that owns
it:

==================  ====  ==============================================
objective           sense  source
==================  ====  ==============================================
miss_rate           min   trace-driven IHT replay (the Figure-6 kernel,
                          :func:`repro.cic.replay.replay_trace`)
cycle_overhead      min   the Table-1 accounting — ``misses × penalty /
                          baseline cycles`` is *exact* for this design
                          (the tier-1 suite pins ``monitored == base +
                          penalty × misses``), evaluated per penalty model
measured_cycle_     min   the same overhead *measured* on the cycle-level
overhead                  pipeline with the point's penalty configured in
                          the OS handler — present only on
                          ``backend="pipeline-golden"`` sweeps
detection_rate      max   adversarial corpus on the campaign kernels
                          (:mod:`repro.attacks` via the golden backend)
detection_latency   min   mean instructions from corrupted fetch to the
                          check that fired, over detected injections
area_overhead       min   the Table-2 cost model
                          (:func:`repro.area.synthesis.synthesize`)
min_period          min   same synthesis report (ns)
==================  ====  ==============================================

``sense`` tells the Pareto layer which direction is better; a ``None``
value (e.g. latency when nothing was detected, or detection objectives in
an ``adversary="none"`` sweep) always compares as worst.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True, slots=True)
class Objective:
    """One scored quantity: its registry name and optimization sense."""

    name: str
    sense: str  # "min" | "max"
    description: str

    def better(self, left: float | None, right: float | None) -> bool:
        """True when *left* is strictly better than *right*."""
        return self.key(left) < self.key(right)

    def key(self, value: float | None) -> float:
        """Monotone score where smaller is always better (None = worst)."""
        if value is None:
            return float("inf")
        return -value if self.sense == "max" else value


OBJECTIVES: dict[str, Objective] = {
    objective.name: objective
    for objective in (
        Objective("miss_rate", "min", "mean IHT miss rate over workloads"),
        Objective(
            "cycle_overhead", "min",
            "mean run-time overhead (misses x penalty / base cycles)",
        ),
        Objective(
            "measured_cycle_overhead", "min",
            "mean run-time overhead measured on the cycle-level pipeline "
            "(pipeline-golden backend only)",
        ),
        Objective(
            "detection_rate", "max",
            "detected injections over all adversarial injections",
        ),
        Objective(
            "detection_latency", "min",
            "mean instructions from corruption to the firing check",
        ),
        Objective(
            "area_overhead", "min",
            "cell-area overhead vs the unmonitored baseline (%)",
        ),
        Objective("min_period", "min", "synthesized minimum period (ns)"),
    )
}

#: The frontier the paper's Figure-6/Table-1/Table-2 discussion implies:
#: silicon cost vs how fast tampering is caught vs run-time disturbance.
DEFAULT_FRONTIER = ("area_overhead", "detection_latency", "miss_rate")


def resolve_objectives(names) -> tuple[Objective, ...]:
    """Validate and resolve objective names (order-preserving)."""
    if isinstance(names, str):
        names = (names,)
    resolved = []
    for name in names:
        objective = OBJECTIVES.get(name)
        if objective is None:
            raise ConfigurationError(
                f"unknown objective {name!r}; available: "
                f"{', '.join(OBJECTIVES)}"
            )
        resolved.append(objective)
    if not resolved:
        raise ConfigurationError("at least one objective is required")
    if len({objective.name for objective in resolved}) != len(resolved):
        raise ConfigurationError("duplicate objectives requested")
    return tuple(resolved)
