"""Two-pass assembler.

Pass 1 lays out sections, expands pseudo-instructions (with sizes fixed at
parse time so layout is deterministic), and collects the symbol table.
Pass 2 encodes machine instructions, resolving symbolic operands against the
symbol table.

Supported directives: ``.text``, ``.data``, ``.globl`` (recorded, no effect),
``.word``, ``.half``, ``.byte``, ``.space``, ``.align``, ``.ascii``,
``.asciiz``.

Supported pseudo-instructions: ``nop``, ``move``, ``li``, ``la``, ``b``,
``beqz``, ``bnez``, ``bgt``, ``blt``, ``bge``, ``ble``, ``neg``, ``not``,
``mul``, 3-operand ``div``/``rem``, ``subi``, ``ret``.
"""

from __future__ import annotations

import struct

from repro.errors import AssemblerError, LinkError
from repro.asm.parser import (
    DirectiveStatement,
    InstructionStatement,
    LabelStatement,
    Operand,
    parse,
)
from repro.asm.program import DATA_BASE, TEXT_BASE, Program, Segment
from repro.isa import opcodes
from repro.isa.encoding import encode_fields
from repro.isa.opcodes import Mnemonic
from repro.isa.registers import AT, RA, ZERO
from repro.utils.bitops import MASK32, sign_extend

# Operand signature of every machine instruction, used for validation.
_SIGNATURES: dict[str, str] = {
    "add": "rd,rs,rt", "addu": "rd,rs,rt", "sub": "rd,rs,rt", "subu": "rd,rs,rt",
    "and": "rd,rs,rt", "or": "rd,rs,rt", "xor": "rd,rs,rt", "nor": "rd,rs,rt",
    "slt": "rd,rs,rt", "sltu": "rd,rs,rt",
    "sllv": "rd,rt,rs", "srlv": "rd,rt,rs", "srav": "rd,rt,rs",
    "sll": "rd,rt,shamt", "srl": "rd,rt,shamt", "sra": "rd,rt,shamt",
    "mult": "rs,rt", "multu": "rs,rt", "div2": "rs,rt", "divu": "rs,rt",
    "mfhi": "rd", "mflo": "rd", "mthi": "rs", "mtlo": "rs",
    "jr": "rs", "jalr": "jalr", "syscall": "none", "break": "none",
    "addi": "rt,rs,imm", "addiu": "rt,rs,imm", "slti": "rt,rs,imm",
    "sltiu": "rt,rs,imm", "andi": "rt,rs,imm", "ori": "rt,rs,imm",
    "xori": "rt,rs,imm", "lui": "rt,imm",
    "lb": "rt,mem", "lh": "rt,mem", "lw": "rt,mem", "lbu": "rt,mem",
    "lhu": "rt,mem", "sb": "rt,mem", "sh": "rt,mem", "sw": "rt,mem",
    "beq": "rs,rt,label", "bne": "rs,rt,label",
    "blez": "rs,label", "bgtz": "rs,label", "bltz": "rs,label", "bgez": "rs,label",
    "j": "label", "jal": "label",
}

_LOADS_STORES = {"lb", "lh", "lw", "lbu", "lhu", "sb", "sh", "sw"}


def _reg(value: int) -> Operand:
    return Operand("reg", value)


def _imm(value: int) -> Operand:
    return Operand("imm", value)


class Assembler:
    """Two-pass assembler producing :class:`~repro.asm.program.Program`."""

    def __init__(self, text_base: int = TEXT_BASE, data_base: int = DATA_BASE):
        self.text_base = text_base
        self.data_base = data_base

    def assemble(self, source: str, name: str = "a.out") -> Program:
        statements = parse(source)
        expanded = self._expand_all(statements)
        symbols = self._layout(expanded)
        return self._emit(expanded, symbols, name)

    # ------------------------------------------------------------------
    # Pseudo-instruction expansion
    # ------------------------------------------------------------------

    def _expand_all(self, statements: list) -> list:
        out: list = []
        for statement in statements:
            if isinstance(statement, InstructionStatement):
                out.extend(self._expand(statement))
            else:
                out.append(statement)
        return out

    def _expand(self, stmt: InstructionStatement) -> list[InstructionStatement]:
        m = stmt.mnemonic
        ops = stmt.operands
        line = stmt.line

        def instr(mnemonic: str, *operands: Operand) -> InstructionStatement:
            return InstructionStatement(mnemonic, list(operands), line)

        if m == "nop":
            return [instr("sll", _reg(0), _reg(0), _imm(0))]
        if m == "ret":
            return [instr("jr", _reg(RA))]
        if m == "move":
            self._expect(stmt, 2, ("reg", "reg"))
            return [instr("addu", ops[0], ops[1], _reg(ZERO))]
        if m == "neg":
            self._expect(stmt, 2, ("reg", "reg"))
            return [instr("sub", ops[0], _reg(ZERO), ops[1])]
        if m == "not":
            self._expect(stmt, 2, ("reg", "reg"))
            return [instr("nor", ops[0], ops[1], _reg(ZERO))]
        if m == "li":
            self._expect(stmt, 2, ("reg", "imm"))
            return self._expand_li(ops[0], ops[1].value, line)
        if m == "la":
            if len(ops) != 2 or ops[0].kind != "reg" or ops[1].kind not in ("sym", "imm"):
                raise AssemblerError("la expects register, symbol", line=line)
            if ops[1].kind == "imm":
                return self._expand_li(ops[0], ops[1].value, line)
            symbol = ops[1].symbol
            return [
                instr("lui", _reg(AT), Operand("sym", symbol=symbol, value=1)),
                instr("ori", ops[0], _reg(AT), Operand("sym", symbol=symbol, value=2)),
            ]
        if m == "b":
            return [instr("beq", _reg(ZERO), _reg(ZERO), *ops)]
        if m == "beqz":
            self._expect_min(stmt, 2)
            return [instr("beq", ops[0], _reg(ZERO), ops[1])]
        if m == "bnez":
            self._expect_min(stmt, 2)
            return [instr("bne", ops[0], _reg(ZERO), ops[1])]
        if m in ("bgt", "blt", "bge", "ble"):
            self._expect_min(stmt, 3)
            a, b, label = ops
            prologue = []
            if b.kind == "imm":
                if not -32768 <= b.value <= 32767:
                    raise AssemblerError(
                        f"branch comparison immediate {b.value} out of range",
                        line=line,
                    )
                prologue.append(instr("addiu", _reg(AT), _reg(ZERO), b))
                b = _reg(AT)
            if m in ("bgt", "ble"):
                compare = instr("slt", _reg(AT), b, a)
            else:
                compare = instr("slt", _reg(AT), a, b)
            branch = "bne" if m in ("bgt", "blt") else "beq"
            return prologue + [compare, instr(branch, _reg(AT), _reg(ZERO), label)]
        if m in ("beq", "bne") and len(ops) == 3 and ops[1].kind == "imm":
            if not -32768 <= ops[1].value <= 32767:
                raise AssemblerError(
                    f"branch comparison immediate {ops[1].value} out of range",
                    line=line,
                )
            return [
                instr("addiu", _reg(AT), _reg(ZERO), ops[1]),
                instr(m, ops[0], _reg(AT), ops[2]),
            ]
        if m == "mul":
            self._expect(stmt, 3, ("reg", "reg", "reg"))
            return [instr("mult", ops[1], ops[2]), instr("mflo", ops[0])]
        if m == "div" and len(ops) == 3:
            return [instr("div2", ops[1], ops[2]), instr("mflo", ops[0])]
        if m == "div" and len(ops) == 2:
            return [instr("div2", ops[0], ops[1])]
        if m == "divu" and len(ops) == 3:
            return [instr("divu", ops[1], ops[2]), instr("mflo", ops[0])]
        if m == "rem":
            self._expect(stmt, 3, ("reg", "reg", "reg"))
            return [instr("div2", ops[1], ops[2]), instr("mfhi", ops[0])]
        if m == "remu":
            self._expect(stmt, 3, ("reg", "reg", "reg"))
            return [instr("divu", ops[1], ops[2]), instr("mfhi", ops[0])]
        if m == "subi":
            self._expect(stmt, 3, ("reg", "reg", "imm"))
            return [instr("addi", ops[0], ops[1], _imm(-ops[2].value))]
        if m in _LOADS_STORES and len(ops) == 2 and ops[1].kind == "sym":
            # lw $t0, label  ->  lui $at, %hi(label); lw $t0, %lo(label)($at)
            symbol = ops[1].symbol
            return [
                instr("lui", _reg(AT), Operand("sym", symbol=symbol, value=3)),
                instr(m, ops[0], Operand("mem", 0, symbol=symbol, base=AT)),
            ]
        if m in _SIGNATURES or m == "div2":
            return [stmt]
        raise AssemblerError(f"unknown mnemonic {m!r}", line=line)

    def _expand_li(
        self, dest: Operand, value: int, line: int
    ) -> list[InstructionStatement]:
        value &= MASK32
        signed = sign_extend(value, 32)
        if -32768 <= signed <= 32767:
            return [
                InstructionStatement(
                    "addiu", [dest, _reg(ZERO), _imm(signed)], line
                )
            ]
        if 0 <= value <= 0xFFFF:
            return [
                InstructionStatement("ori", [dest, _reg(ZERO), _imm(value)], line)
            ]
        sequence = [
            InstructionStatement("lui", [dest, _imm(value >> 16)], line)
        ]
        if value & 0xFFFF:
            sequence.append(
                InstructionStatement(
                    "ori", [dest, dest, _imm(value & 0xFFFF)], line
                )
            )
        return sequence

    @staticmethod
    def _expect(stmt: InstructionStatement, count: int, kinds: tuple[str, ...]) -> None:
        if len(stmt.operands) != count or any(
            op.kind != kind for op, kind in zip(stmt.operands, kinds)
        ):
            raise AssemblerError(
                f"{stmt.mnemonic} expects operands {', '.join(kinds)}",
                line=stmt.line,
            )

    @staticmethod
    def _expect_min(stmt: InstructionStatement, count: int) -> None:
        if len(stmt.operands) < count:
            raise AssemblerError(
                f"{stmt.mnemonic} expects {count} operands", line=stmt.line
            )

    # ------------------------------------------------------------------
    # Pass 1: layout
    # ------------------------------------------------------------------

    def _layout(self, statements: list) -> dict[str, int]:
        symbols: dict[str, int] = {}
        counters = {"text": self.text_base, "data": self.data_base}
        section = "text"
        # Labels bind to the address of the *next emitted byte*, which may be
        # past alignment padding inserted by .word/.half/.align.  They are
        # therefore held pending until the next size-affecting statement.
        pending: list[LabelStatement] = []

        def bind(address: int) -> None:
            for label in pending:
                if label.name in symbols:
                    raise AssemblerError(
                        f"duplicate label {label.name!r}", line=label.line
                    )
                symbols[label.name] = address
            pending.clear()

        for statement in statements:
            if isinstance(statement, LabelStatement):
                pending.append(statement)
            elif isinstance(statement, DirectiveStatement):
                before = counters[section]
                new_section, new_counter = self._layout_directive(
                    statement, section, counters
                )
                if new_section != section:
                    bind(before)  # labels before .text/.data bind in the old section
                    section = new_section
                else:
                    aligned_start = self._directive_aligned_start(statement, before)
                    bind(aligned_start)
                    counters[section] = new_counter
            elif isinstance(statement, InstructionStatement):
                if section != "text":
                    raise AssemblerError(
                        "instruction outside .text section", line=statement.line
                    )
                bind(counters["text"])
                counters["text"] += 4
        bind(counters[section])
        return symbols

    @staticmethod
    def _directive_aligned_start(stmt: DirectiveStatement, counter: int) -> int:
        """Address of the first byte the directive will emit at *counter*."""
        if stmt.name == ".word":
            return _align(counter, 4)
        if stmt.name == ".half":
            return _align(counter, 2)
        if stmt.name == ".align":
            return _align(counter, 1 << int(stmt.args[0]) if stmt.args else 1)
        return counter

    def _layout_directive(
        self, stmt: DirectiveStatement, section: str, counters: dict[str, int]
    ) -> tuple[str, int]:
        name = stmt.name
        counter = counters[section]
        if name == ".text":
            return "text", counters["text"]
        if name == ".data":
            return "data", counters["data"]
        if name == ".globl":
            return section, counter
        if name == ".word":
            counter = _align(counter, 4) + 4 * len(stmt.args)
        elif name == ".half":
            counter = _align(counter, 2) + 2 * len(stmt.args)
        elif name == ".byte":
            counter += len(stmt.args)
        elif name == ".space":
            counter += int(self._single_int(stmt))
        elif name == ".align":
            counter = _align(counter, 1 << int(self._single_int(stmt)))
        elif name in (".ascii", ".asciiz"):
            total = sum(
                len(arg) + (1 if name == ".asciiz" else 0)
                for arg in stmt.args
                if isinstance(arg, str)
            )
            counter += total
        else:
            raise AssemblerError(f"unknown directive {name!r}", line=stmt.line)
        return section, counter

    @staticmethod
    def _single_int(stmt: DirectiveStatement) -> int:
        if len(stmt.args) != 1 or not isinstance(stmt.args[0], int):
            raise AssemblerError(
                f"{stmt.name} expects one integer argument", line=stmt.line
            )
        return stmt.args[0]

    # ------------------------------------------------------------------
    # Pass 2: emission
    # ------------------------------------------------------------------

    def _emit(self, statements: list, symbols: dict[str, int], name: str) -> Program:
        text = Segment(self.text_base)
        data = Segment(self.data_base)
        source_map: dict[int, str] = {}
        section = "text"
        segments = {"text": text, "data": data}
        for statement in statements:
            if isinstance(statement, LabelStatement):
                continue
            if isinstance(statement, DirectiveStatement):
                if statement.name == ".text":
                    section = "text"
                elif statement.name == ".data":
                    section = "data"
                elif statement.name != ".globl":
                    self._emit_directive(statement, segments[section], symbols)
                continue
            address = text.end
            word = self._encode(statement, address, symbols)
            text.data.extend(struct.pack("<I", word))
            source_map[address] = (
                f"{statement.mnemonic} "
                f"{', '.join(op.describe() for op in statement.operands)}"
            ).strip()
        entry = symbols.get("main", self.text_base)
        return Program(
            text=text,
            data=data,
            symbols=symbols,
            entry=entry,
            source_map=source_map,
            name=name,
        )

    def _emit_directive(
        self, stmt: DirectiveStatement, segment: Segment, symbols: dict[str, int]
    ) -> None:
        name = stmt.name

        def pad_to(alignment: int) -> None:
            address = segment.end
            aligned = _align(address, alignment)
            segment.data.extend(b"\0" * (aligned - address))

        if name == ".word":
            pad_to(4)
            for arg in stmt.args:
                value = self._directive_value(arg, symbols, stmt)
                segment.data.extend(struct.pack("<I", value & MASK32))
        elif name == ".half":
            pad_to(2)
            for arg in stmt.args:
                value = self._directive_value(arg, symbols, stmt)
                segment.data.extend(struct.pack("<H", value & 0xFFFF))
        elif name == ".byte":
            for arg in stmt.args:
                value = self._directive_value(arg, symbols, stmt)
                segment.data.append(value & 0xFF)
        elif name == ".space":
            segment.data.extend(b"\0" * int(self._single_int(stmt)))
        elif name == ".align":
            pad_to(1 << int(self._single_int(stmt)))
        elif name in (".ascii", ".asciiz"):
            for arg in stmt.args:
                if not isinstance(arg, str):
                    raise AssemblerError(
                        f"{name} expects string arguments", line=stmt.line
                    )
                segment.data.extend(arg.encode("latin-1"))
                if name == ".asciiz":
                    segment.data.append(0)

    @staticmethod
    def _directive_value(
        arg: object, symbols: dict[str, int], stmt: DirectiveStatement
    ) -> int:
        if isinstance(arg, int):
            return arg
        if isinstance(arg, Operand) and arg.kind == "sym":
            try:
                return symbols[arg.symbol or ""]
            except KeyError:
                raise AssemblerError(
                    f"undefined symbol {arg.symbol!r}", line=stmt.line
                ) from None
        raise AssemblerError(f"bad directive value {arg!r}", line=stmt.line)

    def _encode(
        self, stmt: InstructionStatement, address: int, symbols: dict[str, int]
    ) -> int:
        mnemonic = stmt.mnemonic
        signature = _SIGNATURES.get(mnemonic)
        if signature is None:
            raise AssemblerError(f"unknown mnemonic {mnemonic!r}", line=stmt.line)
        ops = stmt.operands
        enum_name = "div" if mnemonic == "div2" else mnemonic
        m = Mnemonic(enum_name)

        def resolve_sym(op: Operand) -> int:
            try:
                value = symbols[op.symbol or ""]
            except KeyError:
                raise AssemblerError(
                    f"undefined symbol {op.symbol!r}", line=stmt.line
                ) from None
            if op.value == 1:  # %hi for la (pairs with ori)
                return value >> 16
            if op.value == 2:  # %lo for la
                return value & 0xFFFF
            if op.value == 3:  # %hi for load/store (pairs with signed offset)
                return ((value + 0x8000) >> 16) & 0xFFFF
            return value

        try:
            if signature == "rd,rs,rt":
                return encode_fields(m, rd=ops[0].value, rs=ops[1].value, rt=ops[2].value)
            if signature == "rd,rt,rs":
                return encode_fields(m, rd=ops[0].value, rt=ops[1].value, rs=ops[2].value)
            if signature == "rd,rt,shamt":
                shamt = ops[2].value
                if not 0 <= shamt < 32:
                    raise AssemblerError(
                        f"shift amount {shamt} out of range", line=stmt.line
                    )
                return encode_fields(m, rd=ops[0].value, rt=ops[1].value, shamt=shamt)
            if signature == "rs,rt":
                return encode_fields(m, rs=ops[0].value, rt=ops[1].value)
            if signature == "rd":
                return encode_fields(m, rd=ops[0].value)
            if signature == "rs":
                return encode_fields(m, rs=ops[0].value)
            if signature == "jalr":
                if len(ops) == 1:
                    return encode_fields(m, rd=RA, rs=ops[0].value)
                return encode_fields(m, rd=ops[0].value, rs=ops[1].value)
            if signature == "none":
                code = ops[0].value if ops else 0
                return encode_fields(m, code=code)
            if signature == "rt,rs,imm":
                imm_op = ops[2]
                imm = resolve_sym(imm_op) if imm_op.kind == "sym" else imm_op.value
                return encode_fields(m, rt=ops[0].value, rs=ops[1].value, imm=imm)
            if signature == "rt,imm":
                imm_op = ops[1]
                imm = resolve_sym(imm_op) if imm_op.kind == "sym" else imm_op.value
                return encode_fields(m, rt=ops[0].value, imm=imm & 0xFFFF)
            if signature == "rt,mem":
                mem = ops[1]
                if mem.kind != "mem":
                    raise AssemblerError(
                        f"{mnemonic} expects offset($reg) operand", line=stmt.line
                    )
                offset = mem.value
                if mem.symbol is not None:
                    symbol_value = symbols.get(mem.symbol)
                    if symbol_value is None:
                        raise AssemblerError(
                            f"undefined symbol {mem.symbol!r}", line=stmt.line
                        )
                    offset = sign_extend(symbol_value & 0xFFFF, 16)
                return encode_fields(m, rt=ops[0].value, rs=mem.base or 0, imm=offset)
            if signature == "rs,rt,label":
                return encode_fields(
                    m,
                    rs=ops[0].value,
                    rt=ops[1].value,
                    imm=self._branch_offset(ops[2], address, symbols, stmt),
                )
            if signature == "rs,label":
                return encode_fields(
                    m,
                    rs=ops[0].value,
                    imm=self._branch_offset(ops[1], address, symbols, stmt),
                )
            if signature == "label":
                target = self._absolute_target(ops[0], symbols, stmt)
                if target & 3:
                    raise AssemblerError(
                        f"jump target {target:#x} not word aligned", line=stmt.line
                    )
                return encode_fields(m, target=(target >> 2) & 0x03FF_FFFF)
        except IndexError:
            raise AssemblerError(
                f"{mnemonic} expects operands {signature}", line=stmt.line
            ) from None
        raise AssemblerError(f"unhandled signature {signature!r}", line=stmt.line)

    def _branch_offset(
        self,
        op: Operand,
        address: int,
        symbols: dict[str, int],
        stmt: InstructionStatement,
    ) -> int:
        target = self._absolute_target(op, symbols, stmt)
        delta = target - (address + 4)
        if delta & 3:
            raise AssemblerError(
                f"branch target {target:#x} not word aligned", line=stmt.line
            )
        offset = delta >> 2
        if not -32768 <= offset <= 32767:
            raise AssemblerError(
                f"branch target {target:#x} out of range", line=stmt.line
            )
        return offset

    @staticmethod
    def _absolute_target(
        op: Operand, symbols: dict[str, int], stmt: InstructionStatement
    ) -> int:
        if op.kind == "sym":
            try:
                return symbols[op.symbol or ""]
            except KeyError:
                raise AssemblerError(
                    f"undefined symbol {op.symbol!r}", line=stmt.line
                ) from None
        if op.kind == "imm":
            return op.value & MASK32
        raise AssemblerError(
            f"bad control-flow target {op.describe()!r}", line=stmt.line
        )


def _align(value: int, alignment: int) -> int:
    remainder = value % alignment
    return value + (alignment - remainder) % alignment


def assemble(source: str, name: str = "a.out") -> Program:
    """Assemble *source* with default bases; convenience wrapper."""
    return Assembler().assemble(source, name)
