"""Disassembler: instruction words back to canonical assembly text.

The canonical text produced here round-trips through the assembler for all
machine instructions, a property the test suite checks exhaustively over the
mnemonic set and with hypothesis-generated operands.
"""

from __future__ import annotations

from repro.isa.encoding import decode
from repro.isa.instruction import Instruction
from repro.isa.opcodes import Format, Mnemonic
from repro.isa.properties import BRANCHES
from repro.isa.registers import register_name

_THREE_REG = {
    Mnemonic.ADD, Mnemonic.ADDU, Mnemonic.SUB, Mnemonic.SUBU,
    Mnemonic.AND, Mnemonic.OR, Mnemonic.XOR, Mnemonic.NOR,
    Mnemonic.SLT, Mnemonic.SLTU,
}
_SHIFT_VAR = {Mnemonic.SLLV, Mnemonic.SRLV, Mnemonic.SRAV}
_SHIFT_IMM = {Mnemonic.SLL, Mnemonic.SRL, Mnemonic.SRA}
_MULDIV = {Mnemonic.MULT, Mnemonic.MULTU, Mnemonic.DIV, Mnemonic.DIVU}
_IMM_ALU = {
    Mnemonic.ADDI, Mnemonic.ADDIU, Mnemonic.SLTI, Mnemonic.SLTIU,
    Mnemonic.ANDI, Mnemonic.ORI, Mnemonic.XORI,
}
_MEM = {
    Mnemonic.LB, Mnemonic.LH, Mnemonic.LW, Mnemonic.LBU, Mnemonic.LHU,
    Mnemonic.SB, Mnemonic.SH, Mnemonic.SW,
}


def format_instruction(instruction: Instruction, address: int | None = None) -> str:
    """Render *instruction* as canonical assembly text.

    When *address* is given, branch and jump targets are rendered as absolute
    hex addresses; otherwise branches show raw word offsets.
    """
    m = instruction.mnemonic
    name = m.value
    rs = register_name(instruction.rs)
    rt = register_name(instruction.rt)
    rd = register_name(instruction.rd)
    if m in _THREE_REG:
        return f"{name} {rd}, {rs}, {rt}"
    if m in _SHIFT_VAR:
        return f"{name} {rd}, {rt}, {rs}"
    if m in _SHIFT_IMM:
        return f"{name} {rd}, {rt}, {instruction.shamt}"
    if m in _MULDIV:
        return f"{name} {rs}, {rt}"
    if m in (Mnemonic.MFHI, Mnemonic.MFLO):
        return f"{name} {rd}"
    if m in (Mnemonic.MTHI, Mnemonic.MTLO):
        return f"{name} {rs}"
    if m is Mnemonic.JR:
        return f"{name} {rs}"
    if m is Mnemonic.JALR:
        return f"{name} {rd}, {rs}"
    if m in (Mnemonic.SYSCALL, Mnemonic.BREAK):
        return name if instruction.code == 0 else f"{name} {instruction.code}"
    if m in _IMM_ALU:
        return f"{name} {rt}, {rs}, {instruction.imm}"
    if m is Mnemonic.LUI:
        return f"{name} {rt}, {instruction.imm:#x}"
    if m in _MEM:
        return f"{name} {rt}, {instruction.imm}({rs})"
    if m in (Mnemonic.BEQ, Mnemonic.BNE):
        target = _branch_target_text(instruction, address)
        return f"{name} {rs}, {rt}, {target}"
    if m in BRANCHES:
        target = _branch_target_text(instruction, address)
        return f"{name} {rs}, {target}"
    if instruction.format is Format.J:
        if address is not None:
            absolute = ((address + 4) & 0xF0000000) | (instruction.target << 2)
            return f"{name} {absolute:#x}"
        return f"{name} {instruction.target:#x}"
    raise AssertionError(f"unhandled mnemonic {m}")  # pragma: no cover


def _branch_target_text(instruction: Instruction, address: int | None) -> str:
    if address is None:
        return str(instruction.imm)
    return f"{(address + 4 + (instruction.imm << 2)) & 0xFFFFFFFF:#x}"


def disassemble_word(word: int, address: int | None = None) -> str:
    """Decode and render one instruction word."""
    return format_instruction(decode(word, address), address)
