"""The loadable program image.

A :class:`Program` is what the assembler emits and what loaders consume: a
text segment, a data segment, the symbol table, and the entry point.  Memory
layout follows the SPIM convention the workloads assume:

* text at ``0x0040_0000``
* static data at ``0x1001_0000``
* stack top at ``0x7FFF_EFFC`` (grows down)

Addresses are byte addresses; all words are little-endian.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.errors import LinkError

TEXT_BASE = 0x0040_0000
DATA_BASE = 0x1001_0000
STACK_TOP = 0x7FFF_EFFC


@dataclass(slots=True)
class Segment:
    """A contiguous byte range at a fixed base address."""

    base: int
    data: bytearray = field(default_factory=bytearray)

    @property
    def end(self) -> int:
        """One past the last byte of the segment."""
        return self.base + len(self.data)

    def contains(self, address: int) -> bool:
        return self.base <= address < self.end

    def word_at(self, address: int) -> int:
        """Little-endian 32-bit word at *address* (must be in range)."""
        offset = address - self.base
        return struct.unpack_from("<I", self.data, offset)[0]

    def set_word(self, address: int, value: int) -> None:
        offset = address - self.base
        struct.pack_into("<I", self.data, offset, value & 0xFFFFFFFF)


@dataclass(slots=True)
class Program:
    """An assembled, linked program image."""

    text: Segment
    data: Segment
    symbols: dict[str, int] = field(default_factory=dict)
    entry: int = TEXT_BASE
    #: Map from text address to the source line that produced it (listing).
    source_map: dict[int, str] = field(default_factory=dict)
    name: str = "a.out"

    @property
    def text_start(self) -> int:
        return self.text.base

    @property
    def text_end(self) -> int:
        """Address one past the last text word."""
        return self.text.end

    def text_addresses(self) -> range:
        """All instruction addresses in the text segment."""
        return range(self.text.base, self.text.end, 4)

    def word_at(self, address: int) -> int:
        """Read a word from whichever segment holds *address*."""
        if self.text.contains(address):
            return self.text.word_at(address)
        if self.data.contains(address):
            return self.data.word_at(address)
        raise LinkError(f"address {address:#010x} not in any segment")

    def symbol(self, name: str) -> int:
        try:
            return self.symbols[name]
        except KeyError:
            raise LinkError(f"undefined symbol {name!r}") from None

    def listing(self) -> str:
        """Human-readable listing of the text segment (for debugging)."""
        from repro.asm.disassembler import disassemble_word

        lines = []
        for address in self.text_addresses():
            word = self.text.word_at(address)
            try:
                text = disassemble_word(word, address)
            except Exception:  # invalid word placed intentionally (tests)
                text = f".word {word:#010x}"
            source = self.source_map.get(address, "")
            suffix = f"  ; {source}" if source else ""
            lines.append(f"{address:#010x}: {word:08x}  {text}{suffix}")
        return "\n".join(lines)
