"""Parser: token lines → statements.

Statements are the assembler's intermediate form.  A line may carry any
number of labels followed by at most one directive or instruction.  Operands
are parsed into a small algebra (:class:`Operand`) covering registers,
literal values, symbols, and register-indirect ``offset($reg)`` forms.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AssemblerError
from repro.asm.lexer import Token, tokenize
from repro.isa.registers import register_number

ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    "0": "\0",
    "\\": "\\",
    '"': '"',
    "'": "'",
}


@dataclass(frozen=True, slots=True)
class Operand:
    """One parsed operand.

    ``kind`` is one of:

    * ``reg`` — ``value`` holds the register number.
    * ``imm`` — ``value`` holds a literal integer.
    * ``sym`` — ``symbol`` holds a label name, ``value`` an addend.
    * ``mem`` — register-indirect: ``value`` = offset (or ``symbol`` set),
      ``base`` = base register number.
    """

    kind: str
    value: int = 0
    symbol: str | None = None
    base: int | None = None

    def describe(self) -> str:
        if self.kind == "reg":
            return f"${self.value}"
        if self.kind == "imm":
            return str(self.value)
        if self.kind == "sym":
            return self.symbol or "?"
        return f"{self.symbol or self.value}(${self.base})"


@dataclass(slots=True)
class LabelStatement:
    name: str
    line: int


@dataclass(slots=True)
class DirectiveStatement:
    name: str
    args: list[object]  # ints, strings, or Operand('sym')
    line: int


@dataclass(slots=True)
class InstructionStatement:
    mnemonic: str
    operands: list[Operand] = field(default_factory=list)
    line: int = 0


Statement = LabelStatement | DirectiveStatement | InstructionStatement


def parse(source: str) -> list[Statement]:
    """Parse assembly source text into a statement list."""
    statements: list[Statement] = []
    for tokens in tokenize(source):
        statements.extend(_parse_line(tokens))
    return statements


def _parse_line(tokens: list[Token]) -> list[Statement]:
    statements: list[Statement] = []
    index = 0
    # Leading labels: IDENT ':' pairs.
    while (
        index + 1 < len(tokens)
        and tokens[index].kind in ("IDENT", "NUM")
        and tokens[index + 1].kind == "COLON"
    ):
        statements.append(LabelStatement(tokens[index].text, tokens[index].line))
        index += 2
    if index >= len(tokens):
        return statements
    head = tokens[index]
    rest = tokens[index + 1 :]
    if head.kind != "IDENT":
        raise AssemblerError(f"expected mnemonic, found {head.text!r}", line=head.line)
    if head.text.startswith("."):
        statements.append(_parse_directive(head, rest))
    else:
        statements.append(_parse_instruction(head, rest))
    return statements


def _parse_directive(head: Token, rest: list[Token]) -> DirectiveStatement:
    args: list[object] = []
    for token in rest:
        if token.kind == "COMMA":
            continue
        if token.kind in ("NUM", "HEX"):
            args.append(int(token.text, 0))
        elif token.kind == "CHAR":
            args.append(_char_value(token))
        elif token.kind == "STRING":
            args.append(_string_value(token))
        elif token.kind == "IDENT":
            args.append(Operand("sym", symbol=token.text))
        else:
            raise AssemblerError(
                f"bad directive argument {token.text!r}", line=token.line
            )
    return DirectiveStatement(head.text.lower(), args, head.line)


def _parse_instruction(head: Token, rest: list[Token]) -> InstructionStatement:
    operands: list[Operand] = []
    index = 0
    while index < len(rest):
        token = rest[index]
        if token.kind == "COMMA":
            index += 1
            continue
        if token.kind == "REG":
            operands.append(Operand("reg", register_number(token.text)))
            index += 1
        elif token.kind in ("NUM", "HEX", "CHAR", "IDENT"):
            if token.kind == "CHAR":
                value: int | None = _char_value(token)
                symbol = None
            elif token.kind == "IDENT":
                value = None
                symbol = token.text
            else:
                value = int(token.text, 0)
                symbol = None
            # Look ahead for the register-indirect form: value ( $reg )
            if index + 1 < len(rest) and rest[index + 1].kind == "LPAREN":
                if index + 3 >= len(rest) or rest[index + 2].kind != "REG" or rest[
                    index + 3
                ].kind != "RPAREN":
                    raise AssemblerError("malformed address operand", line=token.line)
                base = register_number(rest[index + 2].text)
                operands.append(
                    Operand("mem", value or 0, symbol=symbol, base=base)
                )
                index += 4
            elif symbol is not None:
                operands.append(Operand("sym", symbol=symbol))
                index += 1
            else:
                operands.append(Operand("imm", value or 0))
                index += 1
        elif token.kind == "LPAREN":
            # Bare "($reg)" means offset 0.
            if index + 2 >= len(rest) or rest[index + 1].kind != "REG" or rest[
                index + 2
            ].kind != "RPAREN":
                raise AssemblerError("malformed address operand", line=token.line)
            operands.append(
                Operand("mem", 0, base=register_number(rest[index + 1].text))
            )
            index += 3
        else:
            raise AssemblerError(f"bad operand {token.text!r}", line=token.line)
    return InstructionStatement(head.text.lower(), operands, head.line)


def _char_value(token: Token) -> int:
    body = token.text[1:-1]
    if body.startswith("\\"):
        try:
            return ord(ESCAPES[body[1]])
        except KeyError:
            raise AssemblerError(
                f"unknown escape {body!r}", line=token.line
            ) from None
    return ord(body)


def _string_value(token: Token) -> str:
    body = token.text[1:-1]
    out = []
    index = 0
    while index < len(body):
        char = body[index]
        if char == "\\" and index + 1 < len(body):
            escape = body[index + 1]
            if escape not in ESCAPES:
                raise AssemblerError(
                    f"unknown escape \\{escape}", line=token.line
                )
            out.append(ESCAPES[escape])
            index += 2
        else:
            out.append(char)
            index += 1
    return "".join(out)
