"""Line-oriented tokenizer for assembly source.

The assembler's grammar is line based, so the lexer yields a token list per
source line.  Comments start with ``#`` or ``;`` and run to end of line.
String literals (for ``.asciiz``) keep their quotes so the parser can apply
escape processing in one place.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import AssemblerError

TOKEN_PATTERN = re.compile(
    r"""
    (?P<STRING>"(?:[^"\\]|\\.)*")        # quoted string
  | (?P<CHAR>'(?:[^'\\]|\\.)')           # character literal
  | (?P<HEX>[+-]?0[xX][0-9a-fA-F]+)      # hex number
  | (?P<NUM>[+-]?\d+)                    # decimal number
  | (?P<REG>\$[a-zA-Z0-9]+)              # register
  | (?P<IDENT>\.?[A-Za-z_][A-Za-z0-9_.$]*)  # identifier / directive
  | (?P<COLON>:)
  | (?P<COMMA>,)
  | (?P<LPAREN>\()
  | (?P<RPAREN>\))
  | (?P<WS>[ \t]+)
    """,
    re.VERBOSE,
)


@dataclass(frozen=True, slots=True)
class Token:
    """A single lexical token with its source line for diagnostics."""

    kind: str
    text: str
    line: int


def strip_comment(line: str) -> str:
    """Remove ``#``/``;`` comments, respecting string and char literals."""
    out = []
    in_string: str | None = None
    index = 0
    while index < len(line):
        char = line[index]
        if in_string:
            out.append(char)
            if char == "\\" and index + 1 < len(line):
                out.append(line[index + 1])
                index += 2
                continue
            if char == in_string:
                in_string = None
        elif char in "\"'":
            in_string = char
            out.append(char)
        elif char in "#;":
            break
        else:
            out.append(char)
        index += 1
    return "".join(out)


def tokenize_line(line: str, line_number: int) -> list[Token]:
    """Tokenize one source line (comments already permitted in input)."""
    text = strip_comment(line)
    tokens: list[Token] = []
    position = 0
    while position < len(text):
        match = TOKEN_PATTERN.match(text, position)
        if match is None:
            raise AssemblerError(
                f"unexpected character {text[position]!r}", line=line_number
            )
        kind = match.lastgroup or ""
        if kind != "WS":
            tokens.append(Token(kind, match.group(), line_number))
        position = match.end()
    return tokens


def tokenize(source: str) -> list[list[Token]]:
    """Tokenize a whole source text into per-line token lists.

    Blank/comment-only lines yield empty lists so line numbers stay aligned
    with the original source.
    """
    return [
        tokenize_line(line, number)
        for number, line in enumerate(source.splitlines(), start=1)
    ]
