"""Assembler toolchain for the PISA-like ISA.

The toolchain turns assembly source into a :class:`~repro.asm.program.Program`
image that both simulators execute and the static analyser consumes:

* :mod:`repro.asm.lexer` — line tokenizer.
* :mod:`repro.asm.parser` — statements (labels, directives, instructions).
* :mod:`repro.asm.assembler` — two-pass assembly with pseudo-instruction
  expansion and symbol resolution.
* :mod:`repro.asm.disassembler` — canonical text for decoded instructions.
* :mod:`repro.asm.program` — the loadable image (segments + symbols).
"""

from repro.asm.assembler import Assembler, assemble
from repro.asm.disassembler import disassemble_word, format_instruction
from repro.asm.program import Program, Segment

__all__ = [
    "Assembler",
    "Program",
    "Segment",
    "assemble",
    "disassemble_word",
    "format_instruction",
]
