"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so callers
can catch the whole family with a single clause.  Toolchain errors (assembly,
encoding) carry source location information where available; simulation errors
carry the faulting address and cycle.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class EncodingError(ReproError):
    """An instruction could not be encoded (bad field value, unknown mnemonic)."""


class DecodingError(ReproError):
    """A 32-bit word does not decode to a valid instruction."""

    def __init__(self, word: int, address: int | None = None, reason: str = ""):
        self.word = word
        self.address = address
        self.reason = reason
        location = f" at {address:#010x}" if address is not None else ""
        detail = f": {reason}" if reason else ""
        super().__init__(f"cannot decode word {word:#010x}{location}{detail}")


class AssemblerError(ReproError):
    """Source-level assembly error with file/line context."""

    def __init__(self, message: str, line: int | None = None, source: str | None = None):
        self.line = line
        self.source = source
        prefix = f"line {line}: " if line is not None else ""
        super().__init__(prefix + message)


class LinkError(ReproError):
    """Symbol resolution or layout failure while building a program image."""


class SimulationError(ReproError):
    """Runtime failure inside a simulator (bad memory access, bad state)."""

    def __init__(self, message: str, pc: int | None = None, cycle: int | None = None):
        self.pc = pc
        self.cycle = cycle
        context = []
        if pc is not None:
            context.append(f"pc={pc:#010x}")
        if cycle is not None:
            context.append(f"cycle={cycle}")
        suffix = f" ({', '.join(context)})" if context else ""
        super().__init__(message + suffix)


class MemoryAccessError(SimulationError):
    """An access touched an unmapped or misaligned address."""


class MonitorViolation(ReproError):
    """Raised by the OS model when the CIC reports an unrecoverable mismatch.

    A mismatch means the dynamic hash of an executed basic block differs from
    the expected hash recorded in the full hash table: the code was altered
    after the expected behaviour was captured.
    """

    def __init__(self, start: int, end: int, expected: int | None, observed: int):
        self.start = start
        self.end = end
        self.expected = expected
        self.observed = observed
        expected_text = f"{expected:#010x}" if expected is not None else "<absent>"
        super().__init__(
            f"code integrity violation in block [{start:#010x}, {end:#010x}]: "
            f"expected hash {expected_text}, observed {observed:#010x}"
        )


class ConfigurationError(ReproError):
    """An ASIP/processor configuration is inconsistent or unsupported."""
