"""Coverage-corpus specifications and the named ground-truth registry.

A :class:`CoverageSpec` names one *complete* fault space — which
enumerator (:mod:`repro.faults.enumerators`), which workloads at which
scale, crossed with which monitor configurations — and is embedded
verbatim in the matrix artifact it produces, so ``repro coverage diff``
can re-derive a committed matrix from nothing but the artifact itself.

The committed corpora (:data:`CORPORA`) are scoped by measured cost on
the golden backend: same-column pairs that XOR cannot see survive to
full-length SDC replays (tens of injections per second, not thousands),
so the pair corpora pick the workloads whose exhaustive spaces stay
regenerable in minutes, while attack placements — detected almost
immediately — afford the full trio.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass

from repro.errors import ConfigurationError
from repro.faults.enumerators import (
    AttackPlacement,
    ExhaustiveSameColumnPairs,
    FaultEnumerator,
)

#: Enumerator kinds a coverage corpus can run.
KINDS = ("pairs", "attacks")

#: Cell subject used for the single-celled pair corpora.
PAIR_SUBJECT = "same-column-pair"


@dataclass(frozen=True, slots=True)
class CoverageSpec:
    """Self-contained description of one coverage corpus.

    Exactly one of *workloads* (names from the suite, built at *scale*)
    or *source* (raw assembly text, labelled *source_name*) selects the
    programs; *kind* selects the exhaustive enumerator; the hash/policy
    tuples span the monitor-configuration axes of the matrix.
    """

    name: str
    kind: str
    scale: str = "tiny"
    workloads: tuple[str, ...] = ()
    source: str | None = None
    source_name: str | None = None
    hash_names: tuple[str, ...] = ("xor", "crc32")
    policy_names: tuple[str, ...] = ("lru_half",)
    iht_size: int = 8
    backend: str = "golden"
    #: Attack classes for ``kind="attacks"`` (resolved like the CLI's
    #: ``--class``); ignored by the bit-flip kinds.
    classes: tuple[str, ...] = ("all",)
    seed: int = 42

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ConfigurationError(
                f"unknown coverage kind {self.kind!r}; available: "
                f"{', '.join(KINDS)}"
            )
        if bool(self.workloads) == (self.source is not None):
            raise ConfigurationError(
                "CoverageSpec needs exactly one of workloads= or source="
            )

    # ------------------------------------------------------------------

    def targets(self) -> tuple[str, ...]:
        """Per-program matrix row labels (workload names, or the source)."""
        if self.workloads:
            return self.workloads
        return (self.source_name or "inline-source",)

    def enumerator(self) -> FaultEnumerator:
        if self.kind == "pairs":
            return ExhaustiveSameColumnPairs()
        return AttackPlacement(classes=self.classes)

    def to_json(self) -> dict:
        data = asdict(self)
        data["workloads"] = list(self.workloads)
        data["hash_names"] = list(self.hash_names)
        data["policy_names"] = list(self.policy_names)
        data["classes"] = list(self.classes)
        return data

    @classmethod
    def from_json(cls, data: dict) -> "CoverageSpec":
        fields = dict(data)
        for key in ("workloads", "hash_names", "policy_names", "classes"):
            if fields.get(key) is not None:
                fields[key] = tuple(fields[key])
        return cls(**fields)


#: The committed ground-truth corpora under ``results/coverage/``.
CORPORA: dict[str, CoverageSpec] = {
    spec.name: spec
    for spec in (
        CoverageSpec(
            name="pairs-tiny",
            kind="pairs",
            scale="tiny",
            workloads=("bitcount", "dijkstra"),
        ),
        CoverageSpec(
            name="pairs-small",
            kind="pairs",
            scale="small",
            workloads=("dijkstra",),
        ),
        CoverageSpec(
            name="attacks-tiny",
            kind="attacks",
            scale="tiny",
            workloads=("bitcount", "dijkstra", "sha"),
        ),
    )
}


def get_corpus(name: str) -> CoverageSpec:
    spec = CORPORA.get(name)
    if spec is None:
        raise ConfigurationError(
            f"unknown coverage corpus {name!r}; available: "
            f"{', '.join(CORPORA)}"
        )
    return spec


def default_artifact_path(name: str) -> str:
    """Where the committed matrix of corpus *name* lives."""
    return f"results/coverage/{name.replace('-', '_')}.json"
